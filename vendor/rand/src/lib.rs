//! API-compatible stand-in for the subset of the `rand` crate (0.8 API)
//! used by this workspace, vendored locally because the build environment
//! has no access to crates.io.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ under the hood), the
//! [`SeedableRng`]/[`RngCore`]/[`Rng`] traits with `gen`, `gen_range`,
//! `gen_bool`, and [`prelude::SliceRandom::shuffle`]. Everything is
//! deterministic in the seed, which is all the workloads and tests rely
//! on; statistical quality is that of xoshiro256++ (Blackman & Vigna).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically seeds the generator from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Lemire-style rejection to avoid modulo bias.
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = x.wrapping_mul(span);
                    if lo >= span || lo >= (span.wrapping_neg() % span) {
                        return self.start + hi as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return <$t>::draw_full(rng);
                }
                (s..e + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

trait DrawFull: Sized {
    fn draw_full<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_draw_full {
    ($($t:ty),*) => {$(
        impl DrawFull for $t {
            fn draw_full<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_draw_full!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// User-facing generator methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform draw from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// In-place shuffling of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_from(rng);
            self.swap(i, j);
        }
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded via
    /// SplitMix64 exactly as the algorithm's authors recommend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits} hits for p = 0.3");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
