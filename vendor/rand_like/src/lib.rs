//! Tiny deterministic PRNG primitives used for seed derivation.
//!
//! This is a local, dependency-free stand-in vendored into the workspace
//! (the build environment has no network access to crates.io). Only the
//! pieces the workspace actually uses are provided.

#![warn(missing_docs)]

/// Sebastiano Vigna's SplitMix64: a tiny, high-quality 64-bit mixer used
/// to derive independent parameters from one seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Starts the stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// The next 64-bit output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_mixing() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        // Outputs differ from each other and from the seed.
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
        assert!(xs.iter().all(|&x| x != 42));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix::new(1);
        let mut b = SplitMix::new(2);
        assert_ne!(a.next(), b.next());
    }
}
