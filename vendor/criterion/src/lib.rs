//! API-compatible stand-in for the subset of the `criterion` crate used by
//! this workspace, vendored locally because the build environment has no
//! access to crates.io.
//!
//! It really measures: each benchmark is auto-calibrated so one sample
//! takes a few milliseconds, `sample_size` samples are collected, and the
//! median / min / max ns-per-iteration are reported. Two output channels:
//!
//! * human-readable lines on stdout (`group/name  median … ns/iter`);
//! * machine-readable JSON appended to the file named by the
//!   `PSI_BENCH_JSON` environment variable, one object per line
//!   (`{"bench": "...", "ns_per_iter": ..., ...}`) — this is what the
//!   workspace's bench-to-JSON tooling consumes.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark driver: holds configuration shared by all groups.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target wall-clock duration of one sample.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_sample_time = t / 10;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, self.target_sample_time, f);
        self
    }
}

/// Identifier for a parameterized benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(
            &full,
            self.criterion.sample_size,
            self.criterion.target_sample_time,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.full);
        run_benchmark(
            &full,
            self.criterion.sample_size,
            self.criterion.target_sample_time,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (drop also suffices; provided for API parity).
    pub fn finish(self) {}
}

/// The timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, recording the total duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    target: Duration,
    mut f: F,
) {
    // Calibration: grow the iteration count until one sample meets the
    // target duration (also serves as warm-up).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16.0
        } else {
            (target.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.5, 16.0)
        };
        iters = ((iters as f64) * grow).ceil() as u64;
    }
    let mut ns: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    ns.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let median = ns[ns.len() / 2];
    let (min, max) = (ns[0], ns[ns.len() - 1]);
    println!("{name:<48} median {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, {sample_size} samples x {iters} iters)");
    if let Ok(path) = std::env::var("PSI_BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                "{{\"bench\": \"{}\", \"ns_per_iter\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                name.replace('"', "'"),
                median,
                min,
                max,
                sample_size,
                iters
            );
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; accept and
            // ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    #[test]
    fn group_macros_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        }
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2);
            targets = target
        }
        benches();
    }
}
