//! API-compatible stand-in for the subset of the `proptest` crate used by
//! this workspace, vendored locally because the build environment has no
//! access to crates.io.
//!
//! Supports the `proptest!` macro (with optional `#![proptest_config]`),
//! range / tuple / `any::<T>()` strategies, `collection::{vec, btree_set}`,
//! `sample::Index`, `prop_map`, and the `prop_assert*` / `prop_assume!`
//! macros. Failing cases are re-run and reported with their inputs; there
//! is no shrinking (failures print the full generating input instead).

#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::prelude::*;

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The upstream default is 256; 64 keeps the heavier index-building
        // properties fast while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies (deterministic per property name).
pub type TestRng = StdRng;

/// Derives a deterministic RNG for a named property, perturbed by
/// `PROPTEST_SEED` when set (so CI can explore new cases).
pub fn rng_for(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(extra) = s.parse::<u64>() {
            h = h.wrapping_add(extra.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0u32..2) == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u32>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of values from `element`, its length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A set of values from `element`; the size is a *target* (duplicate
    /// draws may produce a smaller set, as in upstream proptest).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut out = BTreeSet::new();
            // Bounded tries so narrow element domains terminate.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::*;

    /// An index into a collection of as-yet-unknown size (`any::<Index>()`
    /// then `idx.index(len)`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index into `0..len`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.gen::<u64>())
        }
    }
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Discards the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` random cases, reporting the generating inputs on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                $( let $arg = $strat; )+
                for case in 0..cfg.cases {
                    $( let $arg = $crate::Strategy::generate(&$arg, &mut rng); )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ", )+ ""),
                        $(&$arg),+
                    );
                    let result: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = result {
                        panic!(
                            "proptest `{}` failed at case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name), case, cfg.cases, msg, inputs
                        );
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
pub mod test_runner {
    //! Namespace parity with upstream (`test_runner::Config` alias).
    pub use super::ProptestConfig as Config;
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn vec_lengths_respected(v in super::collection::vec(0u32..100, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn btree_sets_are_sorted_unique(s in super::collection::btree_set(0u64..50, 0..20)) {
            let v: Vec<u64> = s.iter().copied().collect();
            prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(v.len() < 20);
        }

        #[test]
        fn tuples_and_any(pair in (0u32..10, any::<bool>()), idx in any::<super::sample::Index>()) {
            prop_assert!(pair.0 < 10);
            let _ = pair.1;
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0 && doubled < 100);
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn prop_assert_macros_produce_errors() {
        fn failing(x: u32) -> Result<(), String> {
            prop_assert!(x > 100, "x was {}", x);
            Ok(())
        }
        fn equal(a: u32, b: u32) -> Result<(), String> {
            prop_assert_eq!(a, b);
            Ok(())
        }
        assert_eq!(failing(3), Err("x was 3".to_string()));
        assert!(equal(1, 2).unwrap_err().contains("1 != 2"));
        assert_eq!(equal(4, 4), Ok(()));
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::rng_for("x");
        let mut b = super::rng_for("x");
        use rand::prelude::*;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
