//! Binned bitmap index (§1.2, citing Sinha & Winslett [16]).
//!
//! "Divide Σ into bins of `w` characters and represent a compressed bitmap
//! for each bin corresponding to all occurrences of its characters" — plus
//! the per-character bitmaps to resolve partial bins exactly, "so a range
//! query of size ℓ can be answered by combining less than `⌊ℓ/w⌋ + 2w`
//! compressed bitmaps". One step of the space/time trade-off that
//! [`crate::MultiResolutionIndex`] applies recursively.

use psi_api::{check_range, HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_bits::{merge, GapBitmap};
use psi_io::{Disk, IoConfig, IoSession};

use crate::catalog::BitmapCatalog;

/// A two-resolution bitmap index: bins of `w` characters plus per-character
/// bitmaps for the bin edges.
#[derive(Debug)]
pub struct BinnedBitmapIndex {
    disk: Disk,
    bins: BitmapCatalog,
    chars: BitmapCatalog,
    w: u32,
    n: u64,
    sigma: Symbol,
}

impl BinnedBitmapIndex {
    /// Builds with bin width `w ≥ 1` over `symbols ∈ [0, sigma)ⁿ`.
    pub fn build(symbols: &[Symbol], sigma: Symbol, w: u32, config: IoConfig) -> Self {
        assert!(sigma > 0 && w >= 1);
        let n = symbols.len() as u64;
        let mut disk = Disk::new(config);
        let num_bins = sigma.div_ceil(w);
        // Scanning the string left to right yields sorted positions for
        // both resolutions.
        let mut bin_lists = vec![Vec::new(); num_bins as usize];
        for (i, &c) in symbols.iter().enumerate() {
            assert!(c < sigma, "symbol {c} outside alphabet of size {sigma}");
            bin_lists[(c / w) as usize].push(i as u64);
        }
        let char_lists = crate::per_char_positions(symbols, sigma);
        let bins = BitmapCatalog::build(&mut disk, n.max(1), bin_lists);
        let chars = BitmapCatalog::build(&mut disk, n.max(1), char_lists);
        BinnedBitmapIndex {
            disk,
            bins,
            chars,
            w,
            n,
            sigma,
        }
    }

    /// The bin width `w`.
    pub fn bin_width(&self) -> u32 {
        self.w
    }
}

impl HasDisk for BinnedBitmapIndex {
    fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl SecondaryIndex for BinnedBitmapIndex {
    fn len(&self) -> u64 {
        self.n
    }

    fn sigma(&self) -> Symbol {
        self.sigma
    }

    fn space_bits(&self) -> u64 {
        self.bins.size_bits(&self.disk) + self.chars.size_bits(&self.disk)
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma);
        if self.n == 0 {
            return RidSet::from_positions(GapBitmap::empty(0));
        }
        let w = self.w;
        let mut parts: Vec<(&BitmapCatalog, usize)> = Vec::new();
        // A bin b (covering [b·w, b·w + w − 1] clamped to σ) is usable iff
        // it lies entirely inside [lo, hi].
        let mut c = lo;
        while c <= hi {
            let b = c / w;
            let bin_lo = b * w;
            let bin_hi = ((b + 1) * w - 1).min(self.sigma - 1);
            if bin_lo >= lo && bin_hi <= hi && c == bin_lo {
                parts.push((&self.bins, b as usize));
                c = bin_hi + 1;
            } else {
                parts.push((&self.chars, c as usize));
                c += 1;
            }
            if c == 0 {
                break; // unreachable; guards overflow in release builds
            }
        }
        // Single-bitmap covers (one bin, or one edge character) come back
        // as a verbatim word copy of the stored stream.
        parts.retain(|&(catalog, idx)| catalog.entry(idx).count > 0);
        if parts.is_empty() {
            return RidSet::from_positions(GapBitmap::empty(self.n));
        }
        if let [(catalog, idx)] = parts[..] {
            return RidSet::from_positions(catalog.copy_bitmap_auto(&self.disk, idx, io));
        }
        // Density-planned merge over the cover's catalog metadata.
        let (total, span) = merge::cover_stats(parts.iter().map(|&(catalog, idx)| {
            let e = catalog.entry(idx);
            (
                e.count,
                e.first_pos.expect("non-empty entry"),
                e.last_pos.expect("non-empty entry"),
            )
        }));
        let streams: Vec<_> = parts
            .iter()
            .map(|&(catalog, idx)| catalog.decoder(&self.disk, idx, io))
            .collect();
        RidSet::from_positions(merge::merge_adaptive(streams, self.n, total, span))
    }

    fn cardinality_hint(&self, lo: Symbol, hi: Symbol) -> Option<u64> {
        // Exact, from the per-character catalog directory (no decode).
        Some(
            (lo..=hi)
                .map(|c| self.chars.entry(c as usize).count)
                .sum::<u64>(),
        )
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl psi_store::PersistIndex for BinnedBitmapIndex {
    const TAG: &'static str = "binned";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        self.bins.persist_meta(out);
        self.chars.persist_meta(out);
        out.put_u32(self.w);
        out.put_u64(self.n);
        out.put_u32(self.sigma);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![HasDisk::disk(self)]
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let disk = psi_store::single_volume(disks, "binned bitmap")?;
        Ok(BinnedBitmapIndex {
            bins: BitmapCatalog::restore_meta(meta, &disk)?,
            chars: BitmapCatalog::restore_meta(meta, &disk)?,
            w: meta.get_u32()?,
            n: meta.get_u64()?,
            sigma: meta.get_u32()?,
            disk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_against_naive;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn matches_naive_for_various_bin_widths() {
        let symbols = psi_workloads::uniform(2000, 24, 17);
        for w in [1, 2, 3, 5, 8, 24, 30] {
            let idx = BinnedBitmapIndex::build(&symbols, 24, w, cfg());
            check_against_naive(&idx, &symbols);
        }
    }

    #[test]
    fn aligned_query_reads_only_bins() {
        let n = 1 << 14;
        let sigma = 64;
        let symbols = psi_workloads::uniform(n, sigma, 23);
        let idx = BinnedBitmapIndex::build(&symbols, sigma, 8, IoConfig::default());
        // [8, 23] is two full bins.
        let io = IoSession::new();
        let r = idx.query(8, 23, &io);
        let aligned_bits = io.stats().bits_read;
        // [9, 24] needs 1 bin + 8 edge characters whose bitmaps are sparser
        // and hence larger in total.
        let io2 = IoSession::new();
        let r2 = idx.query(9, 24, &io2);
        assert!(r.cardinality() as usize + r2.cardinality() as usize > 0);
        assert!(
            io2.stats().bits_read > aligned_bits,
            "unaligned query should decode more bits ({} vs {aligned_bits})",
            io2.stats().bits_read
        );
    }

    #[test]
    fn width_one_bins_equal_char_catalog_duplication() {
        let symbols = psi_workloads::uniform(500, 8, 29);
        let idx = BinnedBitmapIndex::build(&symbols, 8, 1, cfg());
        // Bins == chars, so space is exactly twice the char catalog payload
        // (plus directories).
        assert_eq!(
            idx.bins.payload_bits(&idx.disk),
            idx.chars.payload_bits(&idx.disk)
        );
    }

    #[test]
    fn empty_string() {
        let idx = BinnedBitmapIndex::build(&[], 4, 2, cfg());
        let io = IoSession::new();
        assert!(idx.query(0, 3, &io).is_empty());
    }
}
