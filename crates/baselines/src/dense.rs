//! Dense (uncompressed) bitmap storage.
//!
//! The uncompressed, range-encoded and interval-encoded bitmap indexes all
//! store families of `n`-bit vectors verbatim. A [`DenseCatalog`] lays
//! `slots` such vectors out contiguously on disk, one after another, each
//! occupying `⌈n/64⌉` whole words (LSB-first bit order within each word —
//! private to this type, chosen so word-wise OR/AND-NOT on read-back is a
//! single operation per word).

use psi_io::{Disk, ExtentId, IoSession};

/// A family of equal-length uncompressed bitmaps on disk.
#[derive(Debug)]
pub struct DenseCatalog {
    ext: ExtentId,
    universe: u64,
    words_per_slot: u64,
    slots: usize,
}

impl DenseCatalog {
    /// Builds a catalog of `groups.len()` dense bitmaps over `universe`
    /// from sorted position lists.
    pub fn build<I, J>(disk: &mut Disk, universe: u64, groups: I) -> Self
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = u64>,
    {
        let groups: Vec<Vec<u64>> = groups
            .into_iter()
            .map(|g| g.into_iter().collect())
            .collect();
        let slots = groups.len();
        Self::build_with(disk, universe, slots, |idx, words| {
            words.iter_mut().for_each(|w| *w = 0);
            for &p in &groups[idx] {
                assert!(p < universe, "position {p} outside universe {universe}");
                words[(p / 64) as usize] |= 1u64 << (p % 64);
            }
        })
    }

    /// Builds `slots` dense bitmaps by repeatedly mutating one persistent
    /// word accumulator: `fill(slot, words)` edits the accumulator (which
    /// retains the previous slot's contents) and the result is written as
    /// slot `slot`. This supports incremental constructions: cumulative
    /// prefixes (range encoding) and sliding windows (interval encoding)
    /// in `O(slots·n/64 + n)` work instead of `O(slots·n)`.
    pub fn build_with(
        disk: &mut Disk,
        universe: u64,
        slots: usize,
        mut fill: impl FnMut(usize, &mut [u64]),
    ) -> Self {
        let ext = disk.alloc();
        let session = IoSession::untracked();
        let words_per_slot = universe.div_ceil(64).max(1);
        let mut writer = disk.writer(ext, &session);
        let mut words = vec![0u64; words_per_slot as usize];
        for idx in 0..slots {
            fill(idx, &mut words);
            for &w in &words {
                writer.write_bits(w, 64);
            }
        }
        DenseCatalog {
            ext,
            universe,
            words_per_slot,
            slots,
        }
    }

    /// Number of bitmaps.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The universe size `n`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Reads slot `idx` and ORs it into `acc` (which must have
    /// `words_per_slot` entries), charging `io`.
    pub fn or_into(&self, disk: &Disk, idx: usize, acc: &mut [u64], io: &IoSession) {
        assert!(idx < self.slots, "slot {idx} out of range");
        assert_eq!(acc.len() as u64, self.words_per_slot);
        let mut r = disk.reader(self.ext, idx as u64 * self.words_per_slot * 64, io);
        for a in acc.iter_mut() {
            *a |= r.read_bits(64);
        }
    }

    /// Reads slot `idx` and AND-NOTs it into `acc` (`acc &= !slot`).
    pub fn and_not_into(&self, disk: &Disk, idx: usize, acc: &mut [u64], io: &IoSession) {
        assert!(idx < self.slots, "slot {idx} out of range");
        assert_eq!(acc.len() as u64, self.words_per_slot);
        let mut r = disk.reader(self.ext, idx as u64 * self.words_per_slot * 64, io);
        for a in acc.iter_mut() {
            *a &= !r.read_bits(64);
        }
    }

    /// Reads slot `idx` and ANDs it into `acc`.
    pub fn and_into(&self, disk: &Disk, idx: usize, acc: &mut [u64], io: &IoSession) {
        assert!(idx < self.slots, "slot {idx} out of range");
        assert_eq!(acc.len() as u64, self.words_per_slot);
        let mut r = disk.reader(self.ext, idx as u64 * self.words_per_slot * 64, io);
        for a in acc.iter_mut() {
            *a &= r.read_bits(64);
        }
    }

    /// A zeroed accumulator of the right width.
    pub fn new_acc(&self) -> Vec<u64> {
        vec![0; self.words_per_slot as usize]
    }

    /// Extracts the sorted positions set in an accumulator.
    pub fn acc_positions(&self, acc: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for (i, &w) in acc.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let p = 64 * i as u64 + u64::from(w.trailing_zeros());
                if p < self.universe {
                    out.push(p);
                }
                w &= w - 1;
            }
        }
        out
    }

    /// Storage size in bits (`slots · ⌈n/64⌉ · 64`).
    pub fn size_bits(&self, disk: &Disk) -> u64 {
        disk.extent_bits(self.ext)
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl DenseCatalog {
    /// Serializes the catalog's directory (the bitmaps stay on disk).
    pub(crate) fn persist_meta(&self, out: &mut psi_store::MetaBuf) {
        out.put_u32(self.ext.0);
        out.put_u64(self.universe);
        out.put_u64(self.words_per_slot);
        out.put_len(self.slots);
    }

    /// Rebuilds the catalog over a reopened disk.
    pub(crate) fn restore_meta(
        meta: &mut psi_store::MetaCursor,
        disk: &Disk,
    ) -> Result<Self, psi_store::StoreError> {
        let ext = psi_store::check_extent(disk, meta.get_u32()?, "dense catalog")?;
        Ok(DenseCatalog {
            ext,
            universe: meta.get_u64()?,
            words_per_slot: meta.get_u64()?,
            slots: meta.get_u64()? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_io::IoConfig;

    #[test]
    fn build_and_or_roundtrip() {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let cat = DenseCatalog::build(&mut disk, 100, vec![vec![0u64, 64, 99], vec![1, 2]]);
        assert_eq!(cat.slots(), 2);
        let io = IoSession::untracked();
        let mut acc = cat.new_acc();
        cat.or_into(&disk, 0, &mut acc, &io);
        assert_eq!(cat.acc_positions(&acc), vec![0, 64, 99]);
        cat.or_into(&disk, 1, &mut acc, &io);
        assert_eq!(cat.acc_positions(&acc), vec![0, 1, 2, 64, 99]);
    }

    #[test]
    fn and_not_masks_out() {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let cat = DenseCatalog::build(&mut disk, 10, vec![vec![1u64, 3, 5], vec![3u64]]);
        let io = IoSession::untracked();
        let mut acc = cat.new_acc();
        cat.or_into(&disk, 0, &mut acc, &io);
        cat.and_not_into(&disk, 1, &mut acc, &io);
        assert_eq!(cat.acc_positions(&acc), vec![1, 5]);
    }

    #[test]
    fn and_intersects() {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let cat = DenseCatalog::build(&mut disk, 10, vec![vec![1u64, 3, 5], vec![3u64, 5, 7]]);
        let io = IoSession::untracked();
        let mut acc = cat.new_acc();
        cat.or_into(&disk, 0, &mut acc, &io);
        cat.and_into(&disk, 1, &mut acc, &io);
        assert_eq!(cat.acc_positions(&acc), vec![3, 5]);
    }

    #[test]
    fn reading_one_slot_charges_its_blocks_only() {
        // universe 128 bits -> 2 words per slot; block = 128 bits, so one
        // slot = exactly one block.
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let cat = DenseCatalog::build(&mut disk, 128, (0..8).map(|i| vec![i as u64]));
        let io = IoSession::new();
        let mut acc = cat.new_acc();
        cat.or_into(&disk, 3, &mut acc, &io);
        assert_eq!(io.stats().reads, 1);
        assert_eq!(cat.size_bits(&disk), 8 * 128);
    }
}
