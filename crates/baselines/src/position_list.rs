//! The "B-tree" baseline: per-character position lists behind a static
//! B⁺-tree directory.
//!
//! This is the abstract's "obvious solution, storing a dictionary for the
//! set `⋃ᵢ{xᵢ}` with a position set associated with each character", and
//! one of the paper's two extremes (§1.3): positions are stored explicitly
//! with `⌈lg n⌉` bits each, so a query reads `z lg n` bits — a factor
//! `Ω(lg n)` above the compressed output size when the result is dense —
//! plus a `O(log_b n)` directory descent.

use psi_api::{check_range, HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_bits::{merge, GapBitmap};
use psi_io::{cost, Disk, DiskReader, ExtentId, IoConfig, IoSession};

/// A secondary index storing explicit, fixed-width position lists per
/// character, with a static B⁺-tree directory mapping characters to data
/// blocks.
#[derive(Debug)]
pub struct PositionListIndex {
    disk: Disk,
    data: ExtentId,
    /// Directory levels, bottom-up; each level holds the first key of every
    /// block of the level below.
    dir_levels: Vec<DirLevel>,
    n: u64,
    sigma: Symbol,
    /// Bits per stored position: `⌈lg n⌉`.
    pos_width: u32,
    /// Bits per directory key: char plus position.
    key_width: u32,
    /// `prefix[c]` = index of the first entry of character `c` in the data
    /// stream (`prefix[σ]` = `n`).
    prefix: Vec<u64>,
}

#[derive(Debug)]
struct DirLevel {
    ext: ExtentId,
    keys: u64,
}

impl PositionListIndex {
    /// Builds the index over `symbols ∈ [0, sigma)ⁿ`.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        assert!(sigma > 0);
        let n = symbols.len() as u64;
        let mut disk = Disk::new(config);
        let session = IoSession::untracked();
        let pos_width = cost::lg2_ceil(n.max(2)) as u32;
        let char_width = cost::lg2_ceil(u64::from(sigma).max(2)) as u32;
        let key_width = pos_width + char_width;

        // Data stream: positions grouped by character, fixed width.
        let lists = crate::per_char_positions(symbols, sigma);
        let mut prefix = Vec::with_capacity(sigma as usize + 1);
        let data = disk.alloc();
        {
            let mut w = disk.writer(data, &session);
            let mut written = 0u64;
            for list in &lists {
                prefix.push(written);
                for &p in list {
                    w.write_bits(p, pos_width);
                    written += 1;
                }
            }
            prefix.push(written);
        }

        // Leaf-level directory keys: (char, pos) of the first entry fully
        // contained in each data block.
        let block_bits = config.block_bits;
        let data_blocks = disk.extent_blocks(data);
        let mut level_keys: Vec<u64> = Vec::with_capacity(data_blocks as usize);
        {
            // char_of_entry via prefix array.
            let mut c: usize = 0;
            for blk in 0..data_blocks {
                let entry = (blk * block_bits).div_ceil(u64::from(pos_width));
                if entry >= n {
                    break;
                }
                while prefix[c + 1] <= entry {
                    c += 1;
                }
                let pos = lists[c][(entry - prefix[c]) as usize];
                level_keys.push((c as u64) << pos_width | pos);
            }
        }

        // Build directory levels bottom-up until a level fits in one block.
        let keys_per_block = (block_bits / u64::from(key_width)).max(2);
        let mut dir_levels = Vec::new();
        loop {
            let ext = disk.alloc();
            {
                let mut w = disk.writer(ext, &session);
                for &k in &level_keys {
                    w.write_bits(k, key_width);
                }
            }
            let keys = level_keys.len() as u64;
            dir_levels.push(DirLevel { ext, keys });
            if keys <= keys_per_block {
                break;
            }
            // Parent keys: first key of every block of this level.
            level_keys = level_keys
                .iter()
                .step_by(keys_per_block as usize)
                .copied()
                .collect();
        }

        PositionListIndex {
            disk,
            data,
            dir_levels,
            n,
            sigma,
            pos_width,
            key_width,
            prefix,
        }
    }

    /// Descends the directory for the first entry with character `≥ lo`,
    /// returning the leaf-level key index found. Charges one block per
    /// level, exactly the `O(log_b n)` descent of a B-tree search.
    fn descend(&self, lo: Symbol, io: &IoSession) -> u64 {
        let target = u64::from(lo) << self.pos_width;
        let keys_per_block = (self.disk.block_bits() / u64::from(self.key_width)).max(2);
        // Start at the root (topmost level, a single block).
        let mut child: u64 = 0;
        for depth in (0..self.dir_levels.len()).rev() {
            let level = &self.dir_levels[depth];
            let start = child * keys_per_block;
            let end = (start + keys_per_block).min(level.keys);
            let mut r = self
                .disk
                .reader(level.ext, start * u64::from(self.key_width), io);
            // Last key <= target within this node (or the node's first key).
            let mut chosen = start;
            for i in start..end {
                let key = r.read_bits(self.key_width);
                if key <= target {
                    chosen = i;
                } else {
                    break;
                }
            }
            child = chosen;
        }
        child
    }

    /// Iterates one character's positions from disk.
    fn char_positions<'a>(&'a self, c: Symbol, io: &'a IoSession) -> PositionsIter<'a> {
        let start = self.prefix[c as usize];
        let count = self.prefix[c as usize + 1] - start;
        let reader = self
            .disk
            .reader(self.data, start * u64::from(self.pos_width), io);
        PositionsIter {
            reader,
            remaining: count,
            width: self.pos_width,
        }
    }
}

struct PositionsIter<'a> {
    reader: DiskReader<'a>,
    remaining: u64,
    width: u32,
}

impl Iterator for PositionsIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.reader.read_bits(self.width))
    }
}

impl HasDisk for PositionListIndex {
    fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl SecondaryIndex for PositionListIndex {
    fn len(&self) -> u64 {
        self.n
    }

    fn sigma(&self) -> Symbol {
        self.sigma
    }

    fn space_bits(&self) -> u64 {
        // Data + directory extents + the in-memory prefix array (σ+1
        // pointers of ⌈lg n⌉ bits).
        let extents: u64 = self.disk.extent_bits(self.data)
            + self
                .dir_levels
                .iter()
                .map(|l| self.disk.extent_bits(l.ext))
                .sum::<u64>();
        extents + (u64::from(self.sigma) + 1) * u64::from(self.pos_width)
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma);
        if self.n == 0 {
            return RidSet::from_positions(GapBitmap::empty(0));
        }
        // Directory descent (charged); its answer must be consistent with
        // the in-memory prefix array.
        let leaf_key = self.descend(lo, io);
        debug_assert!(
            leaf_key * self.disk.block_bits()
                <= self.prefix[lo as usize] * u64::from(self.pos_width) + self.disk.block_bits(),
            "directory descent landed after the first matching entry"
        );
        // Single-character queries read their run of fixed-width positions
        // with a straight-line batch loop — no merge machinery, no
        // per-element iterator dispatch.
        if lo == hi {
            let mut stream = self.char_positions(lo, io);
            let mut positions = vec![0u64; stream.remaining as usize];
            for slot in positions.iter_mut() {
                *slot = stream.reader.read_bits(stream.width);
            }
            return RidSet::from_positions(GapBitmap::from_sorted(&positions, self.n));
        }
        // Read and merge the per-character lists (streams share blocks at
        // their boundaries; the session deduplicates those charges). The
        // planner sees the summed counts from the prefix array; position
        // lists keep no span metadata, so the universe bounds the span —
        // conservative, but enough to switch dense unions to the bitset
        // path.
        let total = self.prefix[hi as usize + 1] - self.prefix[lo as usize];
        let streams: Vec<PositionsIter<'_>> =
            (lo..=hi).map(|c| self.char_positions(c, io)).collect();
        let span = (total > 0 && self.n > 0).then_some((0, self.n - 1));
        RidSet::from_positions(merge::merge_adaptive(streams, self.n, total, span))
    }

    fn cardinality_hint(&self, lo: Symbol, hi: Symbol) -> Option<u64> {
        // Exact, from the in-memory prefix array (no descent, no I/O).
        Some(self.prefix[hi as usize + 1] - self.prefix[lo as usize])
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl psi_store::PersistIndex for PositionListIndex {
    const TAG: &'static str = "position_list";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        out.put_u32(self.data.0);
        out.put_len(self.dir_levels.len());
        for l in &self.dir_levels {
            out.put_u32(l.ext.0);
            out.put_u64(l.keys);
        }
        out.put_u64(self.n);
        out.put_u32(self.sigma);
        out.put_u32(self.pos_width);
        out.put_u32(self.key_width);
        out.put_vec_u64(&self.prefix);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![HasDisk::disk(self)]
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let disk = psi_store::single_volume(disks, "position list")?;
        let data = psi_store::check_extent(&disk, meta.get_u32()?, "position-list data")?;
        let num_levels = meta.get_len(12)?;
        let mut dir_levels = Vec::with_capacity(num_levels);
        for _ in 0..num_levels {
            dir_levels.push(DirLevel {
                ext: psi_store::check_extent(&disk, meta.get_u32()?, "position-list directory")?,
                keys: meta.get_u64()?,
            });
        }
        Ok(PositionListIndex {
            data,
            dir_levels,
            n: meta.get_u64()?,
            sigma: meta.get_u32()?,
            pos_width: meta.get_u32()?,
            key_width: meta.get_u32()?,
            prefix: meta.get_vec_u64()?,
            disk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_against_naive;
    use psi_io::IoConfig;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn matches_naive_on_random_strings() {
        let symbols = psi_workloads::uniform(2000, 16, 42);
        let idx = PositionListIndex::build(&symbols, 16, cfg());
        check_against_naive(&idx, &symbols);
    }

    #[test]
    fn matches_naive_on_skewed_strings() {
        let symbols = psi_workloads::zipf(3000, 32, 1.2, 7);
        let idx = PositionListIndex::build(&symbols, 32, cfg());
        check_against_naive(&idx, &symbols);
    }

    #[test]
    fn empty_string_yields_empty_results() {
        let idx = PositionListIndex::build(&[], 4, cfg());
        let io = IoSession::new();
        assert!(idx.query(0, 3, &io).is_empty());
    }

    #[test]
    fn missing_characters_are_empty() {
        let symbols = vec![1u32; 100];
        let idx = PositionListIndex::build(&symbols, 4, cfg());
        let io = IoSession::new();
        assert!(idx.query(2, 3, &io).is_empty());
        assert_eq!(idx.query(0, 1, &io).cardinality(), 100);
    }

    #[test]
    fn space_is_n_lg_n_plus_directory() {
        let symbols = psi_workloads::uniform(10_000, 64, 1);
        let idx = PositionListIndex::build(&symbols, 64, cfg());
        let n = 10_000f64;
        let lg_n = cost::lg2_ceil(10_000) as f64;
        let space = idx.space_bits() as f64;
        assert!(space >= n * lg_n, "data payload alone is n lg n");
        assert!(
            space <= 1.2 * n * lg_n,
            "directory should be a small overhead, got {space}"
        );
    }

    #[test]
    fn query_ios_scale_with_z_over_b() {
        let n = 1 << 16;
        let symbols = psi_workloads::uniform(n, 256, 3);
        let idx = PositionListIndex::build(&symbols, 256, IoConfig::default());
        let (small, s_small) = idx.query_measured(0, 0);
        let (large, s_large) = idx.query_measured(0, 127);
        assert!(large.cardinality() > 100 * small.cardinality());
        assert!(
            s_large.reads > 10 * s_small.reads,
            "large result should cost much more I/O"
        );
        // Reading z positions of lg n bits each: at least z·lg n / B blocks.
        let z = large.cardinality();
        let floor = z * 16 / 8192;
        assert!(
            s_large.reads >= floor,
            "reads {} below bit floor {floor}",
            s_large.reads
        );
    }

    #[test]
    fn directory_descent_is_logarithmic() {
        let n = 1 << 16;
        let symbols = psi_workloads::uniform(n, 512, 9);
        // Small blocks force a multi-level directory.
        let idx = PositionListIndex::build(&symbols, 512, IoConfig::with_block_bits(512));
        assert!(
            idx.dir_levels.len() >= 2,
            "expected a multi-level directory"
        );
        let (_r, stats) = idx.query_measured(5, 5);
        // Descent reads one block per level plus the data blocks for one
        // character (~n/512 positions of 16 bits in 512-bit blocks).
        let char_blocks = (n as u64 / 512) * 16 / 512 + 2;
        assert!(
            stats.reads <= idx.dir_levels.len() as u64 + char_blocks + 2,
            "reads {} exceed descent+data bound",
            stats.reads
        );
    }
}
