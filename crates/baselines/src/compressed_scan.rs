//! The compressed bitmap scan: §1.2's "obvious solution" with compression.
//!
//! One gamma-gap compressed bitmap per character; a width-`ℓ` range query
//! decodes and merges all `ℓ` bitmaps. Space is `O(nH₀ + σ lg n)` — within
//! a constant of optimal — but §1.2 shows the *query* reads a factor
//! `Ω(lg σ / lg(σ/ℓ))` more bits than the optimal output size (up to
//! `Ω(lg σ)` when `ℓ = Ω(σ)`): each of the `ℓ` per-character bitmaps pays
//! `lg(n/z_c)` bits per position instead of `lg(n/z)`. Experiment E3
//! measures exactly this gap against the paper's structure.

use psi_api::{check_range, HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_bits::{merge, GapBitmap};
use psi_io::{Disk, IoConfig, IoSession};

use crate::catalog::BitmapCatalog;

/// A dictionary of per-character compressed bitmaps, scanned per query.
#[derive(Debug)]
pub struct CompressedScanIndex {
    disk: Disk,
    cat: BitmapCatalog,
    n: u64,
    sigma: Symbol,
}

impl CompressedScanIndex {
    /// Builds the index over `symbols ∈ [0, sigma)ⁿ`.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        assert!(sigma > 0);
        let n = symbols.len() as u64;
        let mut disk = Disk::new(config);
        let lists = crate::per_char_positions(symbols, sigma);
        let cat = BitmapCatalog::build(&mut disk, n.max(1), lists);
        CompressedScanIndex {
            disk,
            cat,
            n,
            sigma,
        }
    }

    /// Total compressed payload in bits (without the directory), used by
    /// the space experiments.
    pub fn payload_bits(&self) -> u64 {
        self.cat.payload_bits(&self.disk)
    }
}

impl HasDisk for CompressedScanIndex {
    fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl SecondaryIndex for CompressedScanIndex {
    fn len(&self) -> u64 {
        self.n
    }

    fn sigma(&self) -> Symbol {
        self.sigma
    }

    fn space_bits(&self) -> u64 {
        self.cat.size_bits(&self.disk)
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma);
        if self.n == 0 {
            return RidSet::from_positions(GapBitmap::empty(0));
        }
        // Point queries return the stored per-character bitmap as a
        // verbatim word copy (with its skip directory when large enough
        // to gallop over).
        if lo == hi {
            return RidSet::from_positions(self.cat.copy_bitmap_auto(&self.disk, lo as usize, io));
        }
        // Density-planned merge: counts and span come from the in-memory
        // catalog directory, before any decode.
        let chars: Vec<usize> = (lo..=hi)
            .map(|c| c as usize)
            .filter(|&c| self.cat.entry(c).count > 0)
            .collect();
        let (total, span) = merge::cover_stats(chars.iter().map(|&c| {
            let e = self.cat.entry(c);
            (
                e.count,
                e.first_pos.expect("non-empty entry"),
                e.last_pos.expect("non-empty entry"),
            )
        }));
        let decoders: Vec<_> = chars
            .iter()
            .map(|&c| self.cat.decoder(&self.disk, c, io))
            .collect();
        RidSet::from_positions(merge::merge_adaptive(decoders, self.n, total, span))
    }

    fn cardinality_hint(&self, lo: Symbol, hi: Symbol) -> Option<u64> {
        // Exact, from the in-memory catalog directory (no decode).
        Some(
            (lo..=hi)
                .map(|c| self.cat.entry(c as usize).count)
                .sum::<u64>(),
        )
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl psi_store::PersistIndex for CompressedScanIndex {
    const TAG: &'static str = "compressed_scan";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        self.cat.persist_meta(out);
        out.put_u64(self.n);
        out.put_u32(self.sigma);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![HasDisk::disk(self)]
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let disk = psi_store::single_volume(disks, "compressed scan")?;
        Ok(CompressedScanIndex {
            cat: BitmapCatalog::restore_meta(meta, &disk)?,
            n: meta.get_u64()?,
            sigma: meta.get_u32()?,
            disk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_against_naive;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn matches_naive_uniform() {
        let symbols = psi_workloads::uniform(2000, 16, 11);
        let idx = CompressedScanIndex::build(&symbols, 16, cfg());
        check_against_naive(&idx, &symbols);
    }

    #[test]
    fn matches_naive_clustered() {
        let symbols = psi_workloads::runs(2000, 8, 20.0, 13);
        let idx = CompressedScanIndex::build(&symbols, 8, cfg());
        check_against_naive(&idx, &symbols);
    }

    #[test]
    fn space_tracks_entropy_not_n_sigma() {
        let n = 1 << 16;
        let sigma = 256;
        let symbols = psi_workloads::uniform(n, sigma, 3);
        let idx = CompressedScanIndex::build(&symbols, sigma, IoConfig::default());
        let nh0 = psi_bits::entropy::nh0_bits(&symbols, sigma);
        let space = idx.payload_bits() as f64;
        // Gamma-gap coding is within a small constant of nH₀ here, and far
        // below the uncompressed n·σ bits.
        assert!(
            space < 3.0 * nh0,
            "space {space} should be O(nH0) = O({nh0})"
        );
        assert!(space < (n as u64 * u64::from(sigma)) as f64 / 10.0);
    }

    #[test]
    fn wide_queries_read_more_than_output() {
        // §1.2's gap: uniform distribution, query of width ℓ = σ reads
        // Θ(n lg σ) bits though the output is O(n) bits (every gap = 1).
        let n = 1 << 16;
        let sigma = 256;
        let symbols = psi_workloads::uniform(n, sigma, 19);
        let idx = CompressedScanIndex::build(&symbols, sigma, IoConfig::default());
        let io = IoSession::new();
        let result = idx.query(0, sigma - 1, &io);
        let bits_read = io.stats().bits_read;
        let output_bits = result.size_bits();
        assert_eq!(result.cardinality(), n as u64);
        assert!(
            bits_read > 4 * output_bits,
            "full-range scan should read far more ({bits_read}) than the output ({output_bits})"
        );
    }

    #[test]
    fn empty_string() {
        let idx = CompressedScanIndex::build(&[], 4, cfg());
        let io = IoSession::new();
        assert!(idx.query(0, 3, &io).is_empty());
    }
}
