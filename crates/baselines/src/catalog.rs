//! Concatenated compressed-bitmap storage.
//!
//! Several structures (the "obvious solution", binning, multi-resolution,
//! and the paper's own tree levels) store a family of gap-compressed
//! bitmaps concatenated in one disk stream, with an in-memory directory of
//! `(offset, length, cardinality)` triples — the paper's "for each node, we
//! also store the position and length of its compressed bitmap" (§2.1).
//!
//! Alongside the payload extent, a side extent persists one **skip
//! directory** per bitmap ([`psi_bits::SKIP_SAMPLE`]-spaced samples; see
//! `psi_bits::skip`): charged reads buy directory-assisted seeks
//! ([`BitmapCatalog::seek_decoder`]) and indexed verbatim copies whose
//! results gallop ([`BitmapCatalog::copy_bitmap_indexed`]).

use psi_bits::skip::{self, SkipDirectory, SkipEntry, SKIP_LIFT_MIN};
use psi_bits::{BitBuf, GapBitmap, GapDecoder, GapEncoder, SKIP_ENTRY_BITS, SKIP_SAMPLE};
use psi_io::{cost, Disk, DiskReader, ExtentId, IoSession};

pub use psi_bits::skip::DIR_MIN_COUNT;

/// Directory entry for one bitmap in a [`BitmapCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Bit offset of the bitmap's code stream within the extent.
    pub bit_off: u64,
    /// Length of the code stream in bits.
    pub bit_len: u64,
    /// Number of positions encoded (the bitmap's cardinality).
    pub count: u64,
    /// Smallest encoded position (with `last_pos`, the bitmap's span —
    /// read by the merge planner before any decode).
    pub first_pos: Option<u64>,
    /// Largest encoded position.
    pub last_pos: Option<u64>,
    /// Bit offset of the skip directory in the side extent.
    pub dir_off: u64,
    /// Persisted skip-directory entries.
    pub dir_entries: u64,
}

/// A family of gap-compressed bitmaps concatenated in one extent.
#[derive(Debug)]
pub struct BitmapCatalog {
    ext: ExtentId,
    /// Side extent holding every bitmap's skip directory.
    dir_ext: ExtentId,
    universe: u64,
    entries: Vec<CatalogEntry>,
}

impl BitmapCatalog {
    /// Builds a catalog over `universe` from an iterator of groups, each a
    /// sorted position iterator. Group order is preserved.
    pub fn build<I, J>(disk: &mut Disk, universe: u64, groups: I) -> Self
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = u64>,
    {
        let ext = disk.alloc();
        let dir_ext = disk.alloc();
        let session = IoSession::untracked();
        let mut entries = Vec::new();
        let mut directories: Vec<Vec<SkipEntry>> = Vec::new();
        {
            let mut writer = disk.writer(ext, &session);
            for group in groups {
                let bit_off = writer.pos();
                let mut samples = Vec::new();
                let mut first_pos = None;
                let mut enc = GapEncoder::new(&mut writer);
                for p in group {
                    enc.push(p);
                    if (enc.count() - 1).is_multiple_of(u64::from(SKIP_SAMPLE)) {
                        samples.push(SkipEntry {
                            pos: p,
                            bit_off: enc.bit_pos() - bit_off,
                            occ: SkipEntry::OCC_SELF,
                        });
                    } else if let Some(last) = samples.last_mut() {
                        last.cover(p);
                    }
                    first_pos.get_or_insert(p);
                }
                let last_pos = enc.last();
                let count = enc.finish();
                if count < DIR_MIN_COUNT {
                    samples.clear();
                }
                entries.push(CatalogEntry {
                    bit_off,
                    bit_len: writer.pos() - bit_off,
                    count,
                    first_pos,
                    last_pos,
                    dir_off: 0, // assigned below
                    dir_entries: samples.len() as u64,
                });
                directories.push(samples);
            }
        }
        let mut dw = disk.writer(dir_ext, &session);
        for (entry, samples) in entries.iter_mut().zip(&directories) {
            entry.dir_off = dw.pos();
            for e in samples {
                e.write_to(&mut dw);
            }
        }
        BitmapCatalog {
            ext,
            dir_ext,
            universe,
            entries,
        }
    }

    /// Number of bitmaps.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog holds no bitmaps.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The universe size shared by all bitmaps.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Directory entry of bitmap `idx`.
    pub fn entry(&self, idx: usize) -> &CatalogEntry {
        &self.entries[idx]
    }

    /// Streaming decoder for bitmap `idx`, charging `io`.
    pub fn decoder<'a>(
        &self,
        disk: &'a Disk,
        idx: usize,
        io: &'a IoSession,
    ) -> GapDecoder<DiskReader<'a>> {
        let e = &self.entries[idx];
        GapDecoder::new(disk.reader(self.ext, e.bit_off, io), e.count)
    }

    /// Lifts bitmap `idx` verbatim into a [`GapBitmap`], charging `io`.
    /// Queries covered by a single stored bitmap return this word copy
    /// instead of decoding and re-encoding the positions.
    pub fn copy_bitmap(&self, disk: &Disk, idx: usize, io: &IoSession) -> GapBitmap {
        let e = &self.entries[idx];
        let mut r = disk.reader(self.ext, e.bit_off, io);
        let mut bits = BitBuf::with_capacity(e.bit_len);
        bits.extend_from_source(&mut r, e.bit_len);
        GapBitmap::from_code_bits(bits, e.count, self.universe)
    }

    /// Reads bitmap `idx`'s persisted skip directory (sequential, charged).
    pub fn read_directory(&self, disk: &Disk, idx: usize, io: &IoSession) -> SkipDirectory {
        let e = &self.entries[idx];
        let mut r = disk.reader(self.dir_ext, e.dir_off, io);
        SkipDirectory::read_from_source(&mut r, SKIP_SAMPLE, e.dir_entries)
    }

    /// [`Self::copy_bitmap`] plus a lift of the persisted skip directory
    /// (charged against the side extent): payload charges are identical,
    /// the directory costs exactly its own blocks, and the returned
    /// bitmap gallops without a decode pass.
    pub fn copy_bitmap_indexed(&self, disk: &Disk, idx: usize, io: &IoSession) -> GapBitmap {
        let e = &self.entries[idx];
        let skip = self.read_directory(disk, idx, io);
        let mut r = disk.reader(self.ext, e.bit_off, io);
        let mut bits = BitBuf::with_capacity(e.bit_len);
        bits.extend_from_source(&mut r, e.bit_len);
        GapBitmap::from_code_bits_indexed(bits, e.count, self.universe, skip)
    }

    /// [`Self::copy_bitmap_indexed`] when the result is large enough for
    /// galloping to repay the directory blocks ([`SKIP_LIFT_MIN`]), else
    /// the plain verbatim copy.
    pub fn copy_bitmap_auto(&self, disk: &Disk, idx: usize, io: &IoSession) -> GapBitmap {
        if self.entries[idx].count >= SKIP_LIFT_MIN {
            self.copy_bitmap_indexed(disk, idx, io)
        } else {
            self.copy_bitmap(disk, idx, io)
        }
    }

    /// A decoder over bitmap `idx` fast-forwarded past every sampled
    /// element below `min_pos`: a binary search over the persisted
    /// directory (charging only the probed blocks) re-seats the decoder
    /// at the latest sample with position `< min_pos`, so the skipped
    /// stream prefix is never read. Returns the decoder plus the number
    /// of skipped elements; the first up-to-`K − 1` decoded elements may
    /// still be below `min_pos`.
    pub fn seek_decoder<'a>(
        &self,
        disk: &'a Disk,
        idx: usize,
        io: &'a IoSession,
        min_pos: u64,
    ) -> (GapDecoder<DiskReader<'a>>, u64) {
        let e = &self.entries[idx];
        let mut r = disk.reader(self.dir_ext, e.dir_off, io);
        let hit = skip::search_persisted(e.dir_entries, min_pos, |j| {
            r.skip_to(e.dir_off + j * SKIP_ENTRY_BITS);
            SkipEntry::read_from(&mut r)
        });
        match hit {
            None => (self.decoder(disk, idx, io), 0),
            Some((j, s)) => {
                let rank = j * u64::from(SKIP_SAMPLE);
                let src = disk.reader(self.ext, e.bit_off + s.bit_off, io);
                (GapDecoder::resume(src, e.count - rank - 1, s.pos), rank + 1)
            }
        }
    }

    /// Compressed payload size in bits.
    pub fn payload_bits(&self, disk: &Disk) -> u64 {
        disk.extent_bits(self.ext)
    }

    /// Directory overhead: three `⌈lg max(n, payload)⌉`-bit fields per
    /// entry (offset, length, cardinality) — the paper's `O(σ lg n)`
    /// pointer accounting.
    pub fn directory_bits(&self, disk: &Disk) -> u64 {
        let field = cost::lg2_ceil(self.universe.max(2))
            .max(cost::lg2_ceil(disk.extent_bits(self.ext).max(2)));
        3 * field * self.entries.len() as u64
    }

    /// Persisted skip-directory bits (the side extent).
    pub fn skip_directory_bits(&self, disk: &Disk) -> u64 {
        disk.extent_bits(self.dir_ext)
    }

    /// Payload plus directories (pointer fields and skip samples).
    pub fn size_bits(&self, disk: &Disk) -> u64 {
        self.payload_bits(disk) + self.directory_bits(disk) + self.skip_directory_bits(disk)
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl BitmapCatalog {
    /// Serializes the in-memory directory (payload stays on disk).
    pub(crate) fn persist_meta(&self, out: &mut psi_store::MetaBuf) {
        out.put_u32(self.ext.0);
        out.put_u32(self.dir_ext.0);
        out.put_u64(self.universe);
        out.put_len(self.entries.len());
        for e in &self.entries {
            out.put_u64(e.bit_off);
            out.put_u64(e.bit_len);
            out.put_u64(e.count);
            out.put_opt_u64(e.first_pos);
            out.put_opt_u64(e.last_pos);
            out.put_u64(e.dir_off);
            out.put_u64(e.dir_entries);
        }
    }

    /// Rebuilds the catalog over a reopened disk.
    pub(crate) fn restore_meta(
        meta: &mut psi_store::MetaCursor,
        disk: &Disk,
    ) -> Result<Self, psi_store::StoreError> {
        let ext = psi_store::check_extent(disk, meta.get_u32()?, "catalog")?;
        let dir_ext = psi_store::check_extent(disk, meta.get_u32()?, "catalog directory")?;
        let universe = meta.get_u64()?;
        // Minimum encoded entry: 5 u64 fields + two absent options = 42
        // bytes (an empty bitmap omits first/last_pos), so the length
        // bound must use 42, not the fully-populated 58.
        let n = meta.get_len(42)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(CatalogEntry {
                bit_off: meta.get_u64()?,
                bit_len: meta.get_u64()?,
                count: meta.get_u64()?,
                first_pos: meta.get_opt_u64()?,
                last_pos: meta.get_opt_u64()?,
                dir_off: meta.get_u64()?,
                dir_entries: meta.get_u64()?,
            });
        }
        Ok(BitmapCatalog {
            ext,
            dir_ext,
            universe,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_io::IoConfig;

    #[test]
    fn catalog_roundtrips_groups() {
        let mut disk = Disk::new(IoConfig::with_block_bits(256));
        let groups = vec![vec![0u64, 5, 9], vec![], vec![2, 3, 4, 99]];
        let cat = BitmapCatalog::build(&mut disk, 100, groups.clone());
        assert_eq!(cat.len(), 3);
        let io = IoSession::untracked();
        for (i, g) in groups.iter().enumerate() {
            let got: Vec<u64> = cat.decoder(&disk, i, &io).collect();
            assert_eq!(&got, g);
            assert_eq!(cat.entry(i).count as usize, g.len());
        }
    }

    #[test]
    fn empty_groups_use_no_payload() {
        let mut disk = Disk::new(IoConfig::with_block_bits(256));
        let cat = BitmapCatalog::build(&mut disk, 10, vec![Vec::<u64>::new(), vec![]]);
        assert_eq!(cat.payload_bits(&disk), 0);
        assert!(cat.directory_bits(&disk) > 0);
    }

    #[test]
    fn copy_bitmap_is_verbatim_and_charged_like_decode() {
        let mut disk = Disk::new(IoConfig::with_block_bits(256));
        let groups = vec![vec![0u64, 5, 9], vec![2, 3, 4, 99]];
        let cat = BitmapCatalog::build(&mut disk, 100, groups.clone());
        for (i, g) in groups.iter().enumerate() {
            let decode_io = IoSession::new();
            let decoded: Vec<u64> = cat.decoder(&disk, i, &decode_io).collect();
            let copy_io = IoSession::new();
            let copied = cat.copy_bitmap(&disk, i, &copy_io);
            assert_eq!(&decoded, g);
            assert_eq!(copied.to_vec(), decoded);
            assert_eq!(copied.universe(), 100);
            assert_eq!(copied.size_bits(), cat.entry(i).bit_len);
            assert_eq!(copy_io.stats().reads, decode_io.stats().reads);
            assert_eq!(copy_io.stats().bits_read, decode_io.stats().bits_read);
        }
    }

    #[test]
    fn copy_bitmap_indexed_charges_payload_parity_plus_directory() {
        let mut disk = Disk::new(IoConfig::with_block_bits(256));
        let positions: Vec<u64> = (0..600u64).map(|i| i * 4).collect();
        let cat = BitmapCatalog::build(&mut disk, 2400, vec![positions.clone()]);
        let e = *cat.entry(0);
        assert_eq!(e.dir_entries, 600u64.div_ceil(64));
        assert_eq!((e.first_pos, e.last_pos), (Some(0), Some(2396)));
        let plain_io = IoSession::new();
        let plain = cat.copy_bitmap(&disk, 0, &plain_io);
        let indexed_io = IoSession::new();
        let indexed = cat.copy_bitmap_indexed(&disk, 0, &indexed_io);
        assert_eq!(indexed, plain);
        let dir_blocks = {
            let b = 256;
            (e.dir_off + e.dir_entries * SKIP_ENTRY_BITS - 1) / b - e.dir_off / b + 1
        };
        assert_eq!(
            indexed_io.stats().reads,
            plain_io.stats().reads + dir_blocks
        );
        assert_eq!(
            indexed_io.stats().bits_read,
            plain_io.stats().bits_read + e.dir_entries * SKIP_ENTRY_BITS
        );
        assert!(indexed.contains(2396) && !indexed.contains(2395));
        assert_eq!(indexed.rank(1200), 300);
    }

    #[test]
    fn seek_decoder_reads_strictly_fewer_blocks() {
        let mut disk = Disk::new(IoConfig::with_block_bits(256));
        let positions: Vec<u64> = (0..5000u64).map(|i| i * 3).collect();
        let cat = BitmapCatalog::build(&mut disk, 15_001, vec![positions.clone()]);
        let full_io = IoSession::new();
        let full: Vec<u64> = cat.decoder(&disk, 0, &full_io).collect();
        assert_eq!(full, positions);
        let min_pos = 3 * 4800;
        let seek_io = IoSession::new();
        let (dec, skipped) = cat.seek_decoder(&disk, 0, &seek_io, min_pos);
        assert!(skipped >= 4800 - u64::from(psi_bits::SKIP_SAMPLE) && skipped <= 4800);
        let tail: Vec<u64> = dec.filter(|&p| p >= min_pos).collect();
        assert_eq!(tail, positions[4800..]);
        assert!(
            seek_io.stats().reads < full_io.stats().reads,
            "seek {} blocks vs full {}",
            seek_io.stats().reads,
            full_io.stats().reads
        );
        // Tiny bitmaps have no directory: the seek degenerates gracefully.
        let tiny = BitmapCatalog::build(&mut disk, 100, vec![vec![7u64, 9]]);
        let untracked = IoSession::untracked();
        let (dec, skipped) = tiny.seek_decoder(&disk, 0, &untracked, 9);
        assert_eq!(skipped, 0);
        assert_eq!(dec.collect::<Vec<_>>(), vec![7, 9]);
    }

    #[test]
    fn decoding_charges_only_touched_blocks() {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        // First group is large (spans blocks), second small.
        let big: Vec<u64> = (0..200).map(|i| i * 31).collect();
        let cat = BitmapCatalog::build(&mut disk, 10_000, vec![big, vec![1u64]]);
        let io = IoSession::new();
        let _: Vec<u64> = cat.decoder(&disk, 1, &io).collect();
        // The small bitmap occupies one or two blocks at the tail.
        assert!(io.stats().reads <= 2, "reads = {}", io.stats().reads);
    }
}
