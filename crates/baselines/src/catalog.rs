//! Concatenated compressed-bitmap storage.
//!
//! Several structures (the "obvious solution", binning, multi-resolution,
//! and the paper's own tree levels) store a family of gap-compressed
//! bitmaps concatenated in one disk stream, with an in-memory directory of
//! `(offset, length, cardinality)` triples — the paper's "for each node, we
//! also store the position and length of its compressed bitmap" (§2.1).

use psi_bits::{BitBuf, GapBitmap, GapDecoder, GapEncoder};
use psi_io::{cost, Disk, DiskReader, ExtentId, IoSession};

/// Directory entry for one bitmap in a [`BitmapCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Bit offset of the bitmap's code stream within the extent.
    pub bit_off: u64,
    /// Length of the code stream in bits.
    pub bit_len: u64,
    /// Number of positions encoded (the bitmap's cardinality).
    pub count: u64,
}

/// A family of gap-compressed bitmaps concatenated in one extent.
#[derive(Debug)]
pub struct BitmapCatalog {
    ext: ExtentId,
    universe: u64,
    entries: Vec<CatalogEntry>,
}

impl BitmapCatalog {
    /// Builds a catalog over `universe` from an iterator of groups, each a
    /// sorted position iterator. Group order is preserved.
    pub fn build<I, J>(disk: &mut Disk, universe: u64, groups: I) -> Self
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = u64>,
    {
        let ext = disk.alloc();
        let session = IoSession::untracked();
        let mut writer = disk.writer(ext, &session);
        let mut entries = Vec::new();
        for group in groups {
            let bit_off = writer.pos();
            let mut enc = GapEncoder::new(&mut writer);
            for p in group {
                enc.push(p);
            }
            let count = enc.finish();
            entries.push(CatalogEntry {
                bit_off,
                bit_len: writer.pos() - bit_off,
                count,
            });
        }
        BitmapCatalog {
            ext,
            universe,
            entries,
        }
    }

    /// Number of bitmaps.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog holds no bitmaps.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The universe size shared by all bitmaps.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Directory entry of bitmap `idx`.
    pub fn entry(&self, idx: usize) -> &CatalogEntry {
        &self.entries[idx]
    }

    /// Streaming decoder for bitmap `idx`, charging `io`.
    pub fn decoder<'a>(
        &self,
        disk: &'a Disk,
        idx: usize,
        io: &'a IoSession,
    ) -> GapDecoder<DiskReader<'a>> {
        let e = &self.entries[idx];
        GapDecoder::new(disk.reader(self.ext, e.bit_off, io), e.count)
    }

    /// Lifts bitmap `idx` verbatim into a [`GapBitmap`], charging `io`.
    /// Queries covered by a single stored bitmap return this word copy
    /// instead of decoding and re-encoding the positions.
    pub fn copy_bitmap(&self, disk: &Disk, idx: usize, io: &IoSession) -> GapBitmap {
        let e = &self.entries[idx];
        let mut r = disk.reader(self.ext, e.bit_off, io);
        let mut bits = BitBuf::with_capacity(e.bit_len);
        bits.extend_from_source(&mut r, e.bit_len);
        GapBitmap::from_code_bits(bits, e.count, self.universe)
    }

    /// Compressed payload size in bits.
    pub fn payload_bits(&self, disk: &Disk) -> u64 {
        disk.extent_bits(self.ext)
    }

    /// Directory overhead: three `⌈lg max(n, payload)⌉`-bit fields per
    /// entry (offset, length, cardinality) — the paper's `O(σ lg n)`
    /// pointer accounting.
    pub fn directory_bits(&self, disk: &Disk) -> u64 {
        let field = cost::lg2_ceil(self.universe.max(2))
            .max(cost::lg2_ceil(disk.extent_bits(self.ext).max(2)));
        3 * field * self.entries.len() as u64
    }

    /// Payload plus directory.
    pub fn size_bits(&self, disk: &Disk) -> u64 {
        self.payload_bits(disk) + self.directory_bits(disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_io::IoConfig;

    #[test]
    fn catalog_roundtrips_groups() {
        let mut disk = Disk::new(IoConfig::with_block_bits(256));
        let groups = vec![vec![0u64, 5, 9], vec![], vec![2, 3, 4, 99]];
        let cat = BitmapCatalog::build(&mut disk, 100, groups.clone());
        assert_eq!(cat.len(), 3);
        let io = IoSession::untracked();
        for (i, g) in groups.iter().enumerate() {
            let got: Vec<u64> = cat.decoder(&disk, i, &io).collect();
            assert_eq!(&got, g);
            assert_eq!(cat.entry(i).count as usize, g.len());
        }
    }

    #[test]
    fn empty_groups_use_no_payload() {
        let mut disk = Disk::new(IoConfig::with_block_bits(256));
        let cat = BitmapCatalog::build(&mut disk, 10, vec![Vec::<u64>::new(), vec![]]);
        assert_eq!(cat.payload_bits(&disk), 0);
        assert!(cat.directory_bits(&disk) > 0);
    }

    #[test]
    fn copy_bitmap_is_verbatim_and_charged_like_decode() {
        let mut disk = Disk::new(IoConfig::with_block_bits(256));
        let groups = vec![vec![0u64, 5, 9], vec![2, 3, 4, 99]];
        let cat = BitmapCatalog::build(&mut disk, 100, groups.clone());
        for (i, g) in groups.iter().enumerate() {
            let decode_io = IoSession::new();
            let decoded: Vec<u64> = cat.decoder(&disk, i, &decode_io).collect();
            let copy_io = IoSession::new();
            let copied = cat.copy_bitmap(&disk, i, &copy_io);
            assert_eq!(&decoded, g);
            assert_eq!(copied.to_vec(), decoded);
            assert_eq!(copied.universe(), 100);
            assert_eq!(copied.size_bits(), cat.entry(i).bit_len);
            assert_eq!(copy_io.stats().reads, decode_io.stats().reads);
            assert_eq!(copy_io.stats().bits_read, decode_io.stats().bits_read);
        }
    }

    #[test]
    fn decoding_charges_only_touched_blocks() {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        // First group is large (spans blocks), second small.
        let big: Vec<u64> = (0..200).map(|i| i * 31).collect();
        let cat = BitmapCatalog::build(&mut disk, 10_000, vec![big, vec![1u64]]);
        let io = IoSession::new();
        let _: Vec<u64> = cat.decoder(&disk, 1, &io).collect();
        // The small bitmap occupies one or two blocks at the tail.
        assert!(io.stats().reads <= 2, "reads = {}", io.stats().reads);
    }
}
