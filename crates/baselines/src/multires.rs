//! Multi-resolution bitmap index (§1.2, citing Sinha & Winslett [16]).
//!
//! Binning applied recursively with fanout `w`: level `j` holds compressed
//! bitmaps for bins of `wʲ` characters. "Though not analyzed in [16], the
//! worst-case space usage of such an index, when each bitmap is optimally
//! compressed, is `Θ(n lg²(σ)/lg w)` bits. Queries may in the worst case
//! require reading a factor `O(lg w)` more data than the size of the
//! output" — the space/time trade-off that the paper's structure
//! eliminates (experiment E4).
//!
//! With `w = 2` this is exactly the complete-binary-tree layout that §2.1
//! builds on (`psi_core::UniformTreeIndex` adds the paper's prefix-count
//! array and complement trick on top).

use psi_api::{check_range, HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_bits::{merge, GapBitmap};
use psi_io::{Disk, IoConfig, IoSession};

use crate::catalog::BitmapCatalog;

/// A recursive binned bitmap index with fanout `w`.
#[derive(Debug)]
pub struct MultiResolutionIndex {
    disk: Disk,
    /// `levels[j]` holds bins of width `wʲ`; level 0 is per-character.
    levels: Vec<BitmapCatalog>,
    w: u32,
    n: u64,
    sigma: Symbol,
}

impl MultiResolutionIndex {
    /// Builds with fanout `w ≥ 2` over `symbols ∈ [0, sigma)ⁿ`.
    pub fn build(symbols: &[Symbol], sigma: Symbol, w: u32, config: IoConfig) -> Self {
        assert!(sigma > 0 && w >= 2);
        let n = symbols.len() as u64;
        let mut disk = Disk::new(config);
        let mut levels = Vec::new();
        let mut bin_width: u64 = 1;
        loop {
            let num_bins = u64::from(sigma).div_ceil(bin_width);
            let mut lists = vec![Vec::new(); num_bins as usize];
            for (i, &c) in symbols.iter().enumerate() {
                assert!(c < sigma, "symbol {c} outside alphabet of size {sigma}");
                lists[(u64::from(c) / bin_width) as usize].push(i as u64);
            }
            levels.push(BitmapCatalog::build(&mut disk, n.max(1), lists));
            if num_bins == 1 {
                break;
            }
            bin_width *= u64::from(w);
        }
        MultiResolutionIndex {
            disk,
            levels,
            w,
            n,
            sigma,
        }
    }

    /// The fanout `w`.
    pub fn fanout(&self) -> u32 {
        self.w
    }

    /// Number of resolution levels (`⌈log_w σ⌉ + 1`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The canonical cover of `[lo, hi]`: maximal `w`-aligned bins, as
    /// `(level, bin_index)` pairs. At most `2(w−1)` bins per level.
    fn canonical_cover(&self, lo: Symbol, hi: Symbol) -> Vec<(usize, u64)> {
        let w = u64::from(self.w);
        let mut cover = Vec::new();
        let mut lo = u64::from(lo);
        let mut hi = u64::from(hi);
        for j in 0..self.levels.len() {
            let bins = self.levels[j].len() as u64;
            if j + 1 == self.levels.len() {
                for b in lo..=hi {
                    cover.push((j, b));
                }
                break;
            }
            // Peel unaligned bins on the left.
            while lo % w != 0 && lo <= hi {
                cover.push((j, lo));
                lo += 1;
            }
            if lo > hi {
                break;
            }
            // Peel unaligned bins on the right; the globally last bin of a
            // level may promote even when unaligned because its parent is
            // clamped to the same right edge.
            while (hi + 1) % w != 0 && hi + 1 != bins && hi >= lo {
                cover.push((j, hi));
                if hi == lo {
                    lo += 1; // signal exhaustion without underflow
                    break;
                }
                hi -= 1;
            }
            if lo > hi {
                break;
            }
            lo /= w;
            hi /= w;
        }
        cover
    }
}

impl HasDisk for MultiResolutionIndex {
    fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl SecondaryIndex for MultiResolutionIndex {
    fn len(&self) -> u64 {
        self.n
    }

    fn sigma(&self) -> Symbol {
        self.sigma
    }

    fn space_bits(&self) -> u64 {
        self.levels.iter().map(|l| l.size_bits(&self.disk)).sum()
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma);
        if self.n == 0 {
            return RidSet::from_positions(GapBitmap::empty(0));
        }
        let mut cover = self.canonical_cover(lo, hi);
        cover.retain(|&(j, b)| self.levels[j].entry(b as usize).count > 0);
        if cover.is_empty() {
            return RidSet::from_positions(GapBitmap::empty(self.n));
        }
        // A one-bin cover (aligned ranges, single characters) is already
        // stored in the output encoding: return the word copy directly.
        if let [(j, b)] = cover[..] {
            return RidSet::from_positions(
                self.levels[j].copy_bitmap_auto(&self.disk, b as usize, io),
            );
        }
        // Density-planned merge over the cover's catalog metadata.
        let (total, span) = merge::cover_stats(cover.iter().map(|&(j, b)| {
            let e = self.levels[j].entry(b as usize);
            (
                e.count,
                e.first_pos.expect("non-empty entry"),
                e.last_pos.expect("non-empty entry"),
            )
        }));
        let streams: Vec<_> = cover
            .iter()
            .map(|&(j, b)| self.levels[j].decoder(&self.disk, b as usize, io))
            .collect();
        RidSet::from_positions(merge::merge_adaptive(streams, self.n, total, span))
    }

    fn cardinality_hint(&self, lo: Symbol, hi: Symbol) -> Option<u64> {
        // Exact, from level 0's per-character catalog directory.
        Some(
            (lo..=hi)
                .map(|c| self.levels[0].entry(c as usize).count)
                .sum::<u64>(),
        )
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl psi_store::PersistIndex for MultiResolutionIndex {
    const TAG: &'static str = "multires";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        out.put_len(self.levels.len());
        for level in &self.levels {
            level.persist_meta(out);
        }
        out.put_u32(self.w);
        out.put_u64(self.n);
        out.put_u32(self.sigma);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![HasDisk::disk(self)]
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let disk = psi_store::single_volume(disks, "multi-resolution")?;
        let num_levels = meta.get_len(20)?;
        let mut levels = Vec::with_capacity(num_levels);
        for _ in 0..num_levels {
            levels.push(BitmapCatalog::restore_meta(meta, &disk)?);
        }
        Ok(MultiResolutionIndex {
            levels,
            w: meta.get_u32()?,
            n: meta.get_u64()?,
            sigma: meta.get_u32()?,
            disk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_against_naive;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn matches_naive_for_various_fanouts() {
        let symbols = psi_workloads::uniform(2000, 37, 31);
        for w in [2, 3, 4, 8, 16, 64] {
            let idx = MultiResolutionIndex::build(&symbols, 37, w, cfg());
            check_against_naive(&idx, &symbols);
        }
    }

    #[test]
    fn matches_naive_power_of_two_alphabet() {
        let symbols = psi_workloads::zipf(3000, 64, 1.0, 37);
        for w in [2, 4, 8] {
            let idx = MultiResolutionIndex::build(&symbols, 64, w, cfg());
            check_against_naive(&idx, &symbols);
        }
    }

    #[test]
    fn cover_is_disjoint_and_exact() {
        let symbols = psi_workloads::uniform(500, 64, 3);
        let idx = MultiResolutionIndex::build(&symbols, 64, 4, cfg());
        for (lo, hi) in [(0u32, 63u32), (1, 62), (5, 5), (0, 31), (17, 48)] {
            let cover = idx.canonical_cover(lo, hi);
            // Expand the cover back to characters; must equal [lo, hi].
            let mut chars = Vec::new();
            for (j, b) in cover {
                let width = 4u64.pow(j as u32);
                let start = b * width;
                let end = ((b + 1) * width).min(64) - 1;
                chars.extend(start..=end);
            }
            chars.sort_unstable();
            let expected: Vec<u64> = (u64::from(lo)..=u64::from(hi)).collect();
            assert_eq!(chars, expected, "cover of [{lo}, {hi}]");
        }
    }

    #[test]
    fn cover_size_bounded_per_level() {
        let symbols = psi_workloads::uniform(500, 256, 3);
        let idx = MultiResolutionIndex::build(&symbols, 256, 4, cfg());
        for (lo, hi) in [(0u32, 255u32), (1, 254), (3, 252), (100, 200)] {
            let cover = idx.canonical_cover(lo, hi);
            for j in 0..idx.num_levels() {
                let at_level = cover.iter().filter(|&&(l, _)| l == j).count();
                assert!(
                    at_level <= 2 * 3 + 1,
                    "level {j} has {at_level} bins for [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn space_decreases_with_fanout() {
        // Θ(n lg²σ / lg w): fewer levels for larger w.
        let symbols = psi_workloads::uniform(1 << 14, 256, 7);
        let s2 = MultiResolutionIndex::build(&symbols, 256, 2, IoConfig::default()).space_bits();
        let s16 = MultiResolutionIndex::build(&symbols, 256, 16, IoConfig::default()).space_bits();
        assert!(
            s16 < s2,
            "fanout 16 ({s16}) should use less space than fanout 2 ({s2})"
        );
    }

    #[test]
    fn single_character_alphabet() {
        let symbols = vec![0u32; 100];
        let idx = MultiResolutionIndex::build(&symbols, 1, 2, cfg());
        let io = IoSession::new();
        assert_eq!(idx.query(0, 0, &io).cardinality(), 100);
    }
}
