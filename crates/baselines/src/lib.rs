//! Baseline secondary indexes from the paper's related-work landscape.
//!
//! Pagh & Rao position their structure against the classical spectrum
//! (§1.2–1.3): "B-trees and uncompressed bitmap indexes at the extremes",
//! with compressed, binned, multi-resolution, range-encoded and
//! interval-encoded bitmap indexes in between. Every one of those
//! comparators is implemented here against the same simulated I/O model and
//! the shared [`psi_api::SecondaryIndex`] trait, so the experiment
//! harnesses can measure the entire spectrum:
//!
//! | Index | Space (bits) | Range query (I/Os) |
//! |---|---|---|
//! | [`PositionListIndex`] ("B-tree") | `O(n lg n)` | `O(log_b n + z/b)` |
//! | [`UncompressedBitmapIndex`] | `n·σ` | `O(ℓ·n/B)` |
//! | [`CompressedScanIndex`] | `O(nH₀ + σ lg n)` | `O(Σ_{c∈range} z_c lg(n/z_c)/B + ℓ)` |
//! | [`BinnedBitmapIndex`] | two resolutions | interior bins + `O(w)` edge chars |
//! | [`MultiResolutionIndex`] | `Θ(n lg²σ / lg w)` | `O(lg w)` × output |
//! | [`RangeEncodedIndex`] | `n·σ` | ≤ 2 bitmap scans (`2n/B`) |
//! | [`IntervalEncodedIndex`] | `n·(⌈σ/2⌉+1)` | ≤ 2 bitmap scans (`2n/B`) |
//!
//! (`ℓ` = range width, `z` = result size, `z_c` = count of character `c`.)

#![warn(missing_docs)]

mod binned;
mod catalog;
mod compressed_scan;
mod dense;
mod interval_encoded;
mod multires;
mod position_list;
mod range_encoded;
mod uncompressed;

pub use binned::BinnedBitmapIndex;
pub use catalog::{BitmapCatalog, CatalogEntry};
pub use compressed_scan::CompressedScanIndex;
pub use dense::DenseCatalog;
pub use interval_encoded::IntervalEncodedIndex;
pub use multires::MultiResolutionIndex;
pub use position_list::PositionListIndex;
pub use range_encoded::RangeEncodedIndex;
pub use uncompressed::UncompressedBitmapIndex;

use psi_api::Symbol;

/// Splits a string into per-character sorted position lists (positions are
/// naturally sorted because the string is scanned left to right).
pub(crate) fn per_char_positions(symbols: &[Symbol], sigma: Symbol) -> Vec<Vec<u64>> {
    let mut lists = vec![Vec::new(); sigma as usize];
    for (i, &c) in symbols.iter().enumerate() {
        assert!(c < sigma, "symbol {c} outside alphabet of size {sigma}");
        lists[c as usize].push(i as u64);
    }
    lists
}

#[cfg(test)]
pub(crate) mod testutil {
    use psi_api::{naive_query, SecondaryIndex};
    use psi_io::IoSession;

    /// Cross-checks an index against the naive scan on a grid of ranges.
    pub fn check_against_naive<I: SecondaryIndex>(index: &I, symbols: &[u32]) {
        let sigma = index.sigma();
        assert_eq!(index.len(), symbols.len() as u64);
        let widths = [1u32, 2, 3, sigma / 2, sigma].map(|w| w.clamp(1, sigma));
        for w in widths {
            for lo in (0..=sigma - w).step_by((sigma as usize / 7).max(1)) {
                let hi = lo + w - 1;
                let io = IoSession::new();
                let got = index.query(lo, hi, &io);
                let want = naive_query(symbols, lo, hi);
                assert_eq!(
                    got.to_vec(),
                    want.to_vec(),
                    "query [{lo}, {hi}] mismatch on n={} sigma={sigma}",
                    symbols.len()
                );
                assert!(
                    io.stats().reads > 0 || symbols.is_empty(),
                    "query charged no I/O"
                );
            }
        }
    }
}
