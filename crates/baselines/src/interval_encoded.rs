//! Interval-encoded bitmap index (§1.2, citing Chan & Ioannidis [9, 10]).
//!
//! Stores `σ − m + 1` bitmaps `I_k` for the sliding intervals
//! `[k, k + m − 1]` with `m = ⌈σ/2⌉`. Any range query is answered with at
//! most **two** bitmap operations:
//!
//! * width `≥ m`: `I_lo ∪ I_{hi−m+1}` (the two intervals overlap and span
//!   exactly `[lo, hi]`);
//! * width `< m`, generic case: `I_lo ∩ I_{hi−m+1}`;
//! * width `< m`, near the bottom (`hi < m − 1`): `I_lo AND NOT I_{hi+1}`;
//! * width `< m`, near the top (`lo > σ − m`): `I_{hi−m+1} AND NOT I_{lo−m}`.
//!
//! Like range encoding, the bitmaps are dense (each position is set in
//! about half of them), so the index needs `≈ n·σ/2` bits — the other
//! member of the paper's `nσ^{1−o(1)}` class.

use psi_api::{check_range, HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_bits::GapBitmap;
use psi_io::{Disk, IoConfig, IoSession};

use crate::dense::DenseCatalog;

/// An interval-encoded bitmap index.
#[derive(Debug)]
pub struct IntervalEncodedIndex {
    disk: Disk,
    cat: DenseCatalog,
    n: u64,
    sigma: Symbol,
    /// Interval width `m = ⌈σ/2⌉`.
    m: Symbol,
}

impl IntervalEncodedIndex {
    /// Builds the index over `symbols ∈ [0, sigma)ⁿ`.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        assert!(sigma > 0);
        let n = symbols.len() as u64;
        let mut disk = Disk::new(config);
        let m = sigma.div_ceil(2);
        let slots = (sigma - m + 1) as usize;
        let lists = crate::per_char_positions(symbols, sigma);
        // Slide the window: slot k = chars [k, k+m−1]. Adding char k+m−1
        // and removing char k−1 from the persistent accumulator keeps the
        // build at O(slots·n/64 + n) instead of O(slots·n).
        let cat = DenseCatalog::build_with(&mut disk, n.max(1), slots, |k, words| {
            if k == 0 {
                for l in lists.iter().take(m as usize) {
                    for &p in l {
                        words[(p / 64) as usize] |= 1u64 << (p % 64);
                    }
                }
            } else {
                for &p in &lists[k - 1] {
                    words[(p / 64) as usize] &= !(1u64 << (p % 64));
                }
                for &p in &lists[k + m as usize - 1] {
                    words[(p / 64) as usize] |= 1u64 << (p % 64);
                }
            }
        });
        IntervalEncodedIndex {
            disk,
            cat,
            n,
            sigma,
            m,
        }
    }

    /// The interval width `m = ⌈σ/2⌉`.
    pub fn interval_width(&self) -> Symbol {
        self.m
    }
}

impl HasDisk for IntervalEncodedIndex {
    fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl SecondaryIndex for IntervalEncodedIndex {
    fn len(&self) -> u64 {
        self.n
    }

    fn sigma(&self) -> Symbol {
        self.sigma
    }

    fn space_bits(&self) -> u64 {
        self.cat.size_bits(&self.disk)
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma);
        if self.n == 0 {
            return RidSet::from_positions(GapBitmap::empty(0));
        }
        let m = self.m;
        let width = hi - lo + 1;
        let mut acc = self.cat.new_acc();
        if width >= m {
            // Union of the two extreme intervals covers [lo, hi] exactly.
            self.cat.or_into(&self.disk, lo as usize, &mut acc, io);
            let k = (hi + 1 - m) as usize;
            if k != lo as usize {
                self.cat.or_into(&self.disk, k, &mut acc, io);
            }
        } else if hi < m - 1 {
            // Near the bottom: I_lo minus everything above hi.
            self.cat.or_into(&self.disk, lo as usize, &mut acc, io);
            self.cat
                .and_not_into(&self.disk, (hi + 1) as usize, &mut acc, io);
        } else if lo > self.sigma - m {
            // Near the top: I_{hi−m+1} minus everything below lo.
            self.cat
                .or_into(&self.disk, (hi + 1 - m) as usize, &mut acc, io);
            self.cat
                .and_not_into(&self.disk, (lo - m) as usize, &mut acc, io);
        } else {
            // Generic: intersection of the two extreme intervals.
            self.cat.or_into(&self.disk, lo as usize, &mut acc, io);
            self.cat
                .and_into(&self.disk, (hi + 1 - m) as usize, &mut acc, io);
        }
        // Word-scan re-encode of the accumulator (see `range_encoded.rs`):
        // CPU-only, the dense-slot reads above are the whole I/O story.
        RidSet::from_positions(GapBitmap::from_words(&acc, self.n))
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl psi_store::PersistIndex for IntervalEncodedIndex {
    const TAG: &'static str = "interval_encoded";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        self.cat.persist_meta(out);
        out.put_u64(self.n);
        out.put_u32(self.sigma);
        out.put_u32(self.m);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![HasDisk::disk(self)]
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let disk = psi_store::single_volume(disks, "interval encoded")?;
        Ok(IntervalEncodedIndex {
            cat: crate::dense::DenseCatalog::restore_meta(meta, &disk)?,
            n: meta.get_u64()?,
            sigma: meta.get_u32()?,
            m: meta.get_u32()?,
            disk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_against_naive;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn matches_naive_even_alphabet() {
        let symbols = psi_workloads::uniform(1500, 16, 61);
        let idx = IntervalEncodedIndex::build(&symbols, 16, cfg());
        check_against_naive(&idx, &symbols);
    }

    #[test]
    fn matches_naive_odd_alphabet() {
        let symbols = psi_workloads::uniform(1500, 17, 67);
        let idx = IntervalEncodedIndex::build(&symbols, 17, cfg());
        check_against_naive(&idx, &symbols);
    }

    #[test]
    fn matches_naive_tiny_alphabets() {
        for sigma in 1..=6u32 {
            let symbols = psi_workloads::uniform(400, sigma, 71);
            let idx = IntervalEncodedIndex::build(&symbols, sigma, cfg());
            check_against_naive(&idx, &symbols);
        }
    }

    #[test]
    fn exhaustive_ranges_small_alphabet() {
        let sigma = 11u32;
        let symbols = psi_workloads::uniform(700, sigma, 73);
        let idx = IntervalEncodedIndex::build(&symbols, sigma, cfg());
        for lo in 0..sigma {
            for hi in lo..sigma {
                let io = IoSession::new();
                let got = idx.query(lo, hi, &io);
                let want = psi_api::naive_query(&symbols, lo, hi);
                assert_eq!(got.to_vec(), want.to_vec(), "range [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn query_reads_at_most_two_bitmaps() {
        let n = 1 << 15;
        let symbols = psi_workloads::uniform(n, 64, 79);
        let idx = IntervalEncodedIndex::build(&symbols, 64, IoConfig::default());
        let bitmap_blocks = (n as u64).div_ceil(8192);
        for (lo, hi) in [(0u32, 63u32), (0, 0), (5, 60), (63, 63), (30, 40)] {
            let (_, stats) = idx.query_measured(lo, hi);
            assert!(
                stats.reads <= 2 * bitmap_blocks + 2,
                "[{lo}, {hi}] read {} blocks, expected <= {}",
                stats.reads,
                2 * bitmap_blocks
            );
        }
    }

    #[test]
    fn word_scan_encode_matches_scalar_path_with_io_parity() {
        // Same discipline as catalog.rs / range_encoded.rs: exercise all
        // four interval-algebra branches; the word-scan encode must
        // return the identical stream for identical block charges.
        let symbols = psi_workloads::uniform(2500, 12, 59);
        let idx = IntervalEncodedIndex::build(&symbols, 12, cfg());
        let m = idx.interval_width();
        let branches = [
            (0u32, 11u32), // width ≥ m: union
            (1, 3),        // near the bottom: AND NOT above
            (8, 10),       // near the top: AND NOT below
            (4, 8),        // generic: intersection
        ];
        for (lo, hi) in branches {
            let (fast, fast_io) = idx.query_measured(lo, hi);
            let ref_io = IoSession::new();
            let mut acc = idx.cat.new_acc();
            let width = hi - lo + 1;
            if width >= m {
                idx.cat.or_into(&idx.disk, lo as usize, &mut acc, &ref_io);
                let k = (hi + 1 - m) as usize;
                if k != lo as usize {
                    idx.cat.or_into(&idx.disk, k, &mut acc, &ref_io);
                }
            } else if hi < m - 1 {
                idx.cat.or_into(&idx.disk, lo as usize, &mut acc, &ref_io);
                idx.cat
                    .and_not_into(&idx.disk, (hi + 1) as usize, &mut acc, &ref_io);
            } else if lo > idx.sigma - m {
                idx.cat
                    .or_into(&idx.disk, (hi + 1 - m) as usize, &mut acc, &ref_io);
                idx.cat
                    .and_not_into(&idx.disk, (lo - m) as usize, &mut acc, &ref_io);
            } else {
                idx.cat.or_into(&idx.disk, lo as usize, &mut acc, &ref_io);
                idx.cat
                    .and_into(&idx.disk, (hi + 1 - m) as usize, &mut acc, &ref_io);
            }
            let reference = GapBitmap::from_sorted(&idx.cat.acc_positions(&acc), idx.n);
            assert_eq!(fast.stored(), &reference, "[{lo},{hi}]");
            assert_eq!(fast_io, ref_io.stats(), "[{lo},{hi}] I/O parity");
        }
    }

    #[test]
    fn space_is_about_half_n_sigma() {
        let n = 1u64 << 12;
        let sigma = 32u32;
        let symbols = psi_workloads::uniform(n as usize, sigma, 83);
        let idx = IntervalEncodedIndex::build(&symbols, sigma, cfg());
        // σ − ⌈σ/2⌉ + 1 = 17 bitmaps of n bits.
        assert_eq!(idx.space_bits(), 17 * n);
    }
}
