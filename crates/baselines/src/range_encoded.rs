//! Range-encoded bitmap index (§1.2, citing O'Neil & Quass [14]).
//!
//! Bitmap `RE_c` marks all positions whose character is `≤ c`. A range
//! query `[lo, hi]` is `RE_hi AND NOT RE_{lo−1}` — **two** bitmap reads
//! regardless of the range width. The price is space: the bitmaps are
//! dense (position `p` is set in `σ − x_p` of them), so compression cannot
//! help and the index occupies `n·σ` bits — the paper's `nσ^{1−o(1)}`
//! class of precomputation schemes.

use psi_api::{check_range, HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_bits::GapBitmap;
use psi_io::{Disk, IoConfig, IoSession};

use crate::dense::DenseCatalog;

/// A range-encoded (cumulative) bitmap index.
#[derive(Debug)]
pub struct RangeEncodedIndex {
    disk: Disk,
    cat: DenseCatalog,
    n: u64,
    sigma: Symbol,
}

impl RangeEncodedIndex {
    /// Builds the index over `symbols ∈ [0, sigma)ⁿ`.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        assert!(sigma > 0);
        let n = symbols.len() as u64;
        let mut disk = Disk::new(config);
        let lists = crate::per_char_positions(symbols, sigma);
        // RE_c = RE_{c−1} ∪ positions(c): fill cumulatively.
        let cat = DenseCatalog::build_with(&mut disk, n.max(1), sigma as usize, |c, words| {
            for &p in &lists[c] {
                words[(p / 64) as usize] |= 1u64 << (p % 64);
            }
        });
        RangeEncodedIndex {
            disk,
            cat,
            n,
            sigma,
        }
    }
}

impl HasDisk for RangeEncodedIndex {
    fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl SecondaryIndex for RangeEncodedIndex {
    fn len(&self) -> u64 {
        self.n
    }

    fn sigma(&self) -> Symbol {
        self.sigma
    }

    fn space_bits(&self) -> u64 {
        self.cat.size_bits(&self.disk)
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma);
        if self.n == 0 {
            return RidSet::from_positions(GapBitmap::empty(0));
        }
        let mut acc = self.cat.new_acc();
        self.cat.or_into(&self.disk, hi as usize, &mut acc, io);
        if lo > 0 {
            self.cat
                .and_not_into(&self.disk, lo as usize - 1, &mut acc, io);
        }
        // The accumulator already is the answer as an LSB-first word
        // array: re-encode it with one `trailing_zeros` word scan instead
        // of materializing a position vector and gamma-encoding it
        // element by element. CPU-only — the blocks read above are the
        // whole I/O story, identical to the scalar path.
        RidSet::from_positions(GapBitmap::from_words(&acc, self.n))
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl psi_store::PersistIndex for RangeEncodedIndex {
    const TAG: &'static str = "range_encoded";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        self.cat.persist_meta(out);
        out.put_u64(self.n);
        out.put_u32(self.sigma);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![HasDisk::disk(self)]
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let disk = psi_store::single_volume(disks, "range encoded")?;
        Ok(RangeEncodedIndex {
            cat: crate::dense::DenseCatalog::restore_meta(meta, &disk)?,
            n: meta.get_u64()?,
            sigma: meta.get_u32()?,
            disk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_against_naive;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn matches_naive() {
        let symbols = psi_workloads::uniform(1500, 16, 41);
        let idx = RangeEncodedIndex::build(&symbols, 16, cfg());
        check_against_naive(&idx, &symbols);
    }

    #[test]
    fn matches_naive_skewed() {
        let symbols = psi_workloads::zipf(1000, 8, 1.5, 43);
        let idx = RangeEncodedIndex::build(&symbols, 8, cfg());
        check_against_naive(&idx, &symbols);
    }

    #[test]
    fn query_reads_at_most_two_bitmaps() {
        let n = 1 << 15;
        let symbols = psi_workloads::uniform(n, 64, 47);
        let idx = RangeEncodedIndex::build(&symbols, 64, IoConfig::default());
        let bitmap_blocks = (n as u64).div_ceil(8192);
        for (lo, hi) in [(0u32, 63u32), (0, 0), (5, 60), (63, 63)] {
            let (_, stats) = idx.query_measured(lo, hi);
            let expected = if lo == 0 {
                bitmap_blocks
            } else {
                2 * bitmap_blocks
            };
            assert!(
                stats.reads <= expected + 2,
                "[{lo}, {hi}] read {} blocks, expected about {expected}",
                stats.reads
            );
        }
    }

    #[test]
    fn word_scan_encode_matches_scalar_path_with_io_parity() {
        // Same I/O-parity discipline as catalog.rs: the fast path must
        // charge exactly the blocks of the scalar reference, and produce
        // the identical compressed stream.
        let symbols = psi_workloads::zipf(3000, 16, 1.2, 53);
        let idx = RangeEncodedIndex::build(&symbols, 16, cfg());
        for (lo, hi) in [(0u32, 0u32), (0, 9), (3, 12), (15, 15)] {
            let (fast, fast_io) = idx.query_measured(lo, hi);
            // Scalar reference: same reads, per-element re-encode.
            let ref_io = IoSession::new();
            let mut acc = idx.cat.new_acc();
            idx.cat.or_into(&idx.disk, hi as usize, &mut acc, &ref_io);
            if lo > 0 {
                idx.cat
                    .and_not_into(&idx.disk, lo as usize - 1, &mut acc, &ref_io);
            }
            let reference = GapBitmap::from_sorted(&idx.cat.acc_positions(&acc), idx.n);
            assert_eq!(fast.stored(), &reference, "[{lo},{hi}]");
            assert_eq!(fast_io, ref_io.stats(), "[{lo},{hi}] I/O parity");
        }
    }

    #[test]
    fn space_is_n_times_sigma() {
        let symbols = psi_workloads::uniform(1 << 12, 32, 51);
        let idx = RangeEncodedIndex::build(&symbols, 32, cfg());
        assert_eq!(idx.space_bits(), 32 * (1 << 12));
    }
}
