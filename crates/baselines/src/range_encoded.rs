//! Range-encoded bitmap index (§1.2, citing O'Neil & Quass [14]).
//!
//! Bitmap `RE_c` marks all positions whose character is `≤ c`. A range
//! query `[lo, hi]` is `RE_hi AND NOT RE_{lo−1}` — **two** bitmap reads
//! regardless of the range width. The price is space: the bitmaps are
//! dense (position `p` is set in `σ − x_p` of them), so compression cannot
//! help and the index occupies `n·σ` bits — the paper's `nσ^{1−o(1)}`
//! class of precomputation schemes.

use psi_api::{check_range, RidSet, SecondaryIndex, Symbol};
use psi_bits::GapBitmap;
use psi_io::{Disk, IoConfig, IoSession};

use crate::dense::DenseCatalog;

/// A range-encoded (cumulative) bitmap index.
#[derive(Debug)]
pub struct RangeEncodedIndex {
    disk: Disk,
    cat: DenseCatalog,
    n: u64,
    sigma: Symbol,
}

impl RangeEncodedIndex {
    /// Builds the index over `symbols ∈ [0, sigma)ⁿ`.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        assert!(sigma > 0);
        let n = symbols.len() as u64;
        let mut disk = Disk::new(config);
        let lists = crate::per_char_positions(symbols, sigma);
        // RE_c = RE_{c−1} ∪ positions(c): fill cumulatively.
        let cat = DenseCatalog::build_with(&mut disk, n.max(1), sigma as usize, |c, words| {
            for &p in &lists[c] {
                words[(p / 64) as usize] |= 1u64 << (p % 64);
            }
        });
        RangeEncodedIndex {
            disk,
            cat,
            n,
            sigma,
        }
    }

    /// The simulated disk (for inspection by harnesses).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl SecondaryIndex for RangeEncodedIndex {
    fn len(&self) -> u64 {
        self.n
    }

    fn sigma(&self) -> Symbol {
        self.sigma
    }

    fn space_bits(&self) -> u64 {
        self.cat.size_bits(&self.disk)
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma);
        if self.n == 0 {
            return RidSet::from_positions(GapBitmap::empty(0));
        }
        let mut acc = self.cat.new_acc();
        self.cat.or_into(&self.disk, hi as usize, &mut acc, io);
        if lo > 0 {
            self.cat
                .and_not_into(&self.disk, lo as usize - 1, &mut acc, io);
        }
        let positions = self.cat.acc_positions(&acc);
        RidSet::from_positions(GapBitmap::from_sorted(&positions, self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_against_naive;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn matches_naive() {
        let symbols = psi_workloads::uniform(1500, 16, 41);
        let idx = RangeEncodedIndex::build(&symbols, 16, cfg());
        check_against_naive(&idx, &symbols);
    }

    #[test]
    fn matches_naive_skewed() {
        let symbols = psi_workloads::zipf(1000, 8, 1.5, 43);
        let idx = RangeEncodedIndex::build(&symbols, 8, cfg());
        check_against_naive(&idx, &symbols);
    }

    #[test]
    fn query_reads_at_most_two_bitmaps() {
        let n = 1 << 15;
        let symbols = psi_workloads::uniform(n, 64, 47);
        let idx = RangeEncodedIndex::build(&symbols, 64, IoConfig::default());
        let bitmap_blocks = (n as u64).div_ceil(8192);
        for (lo, hi) in [(0u32, 63u32), (0, 0), (5, 60), (63, 63)] {
            let (_, stats) = idx.query_measured(lo, hi);
            let expected = if lo == 0 {
                bitmap_blocks
            } else {
                2 * bitmap_blocks
            };
            assert!(
                stats.reads <= expected + 2,
                "[{lo}, {hi}] read {} blocks, expected about {expected}",
                stats.reads
            );
        }
    }

    #[test]
    fn space_is_n_times_sigma() {
        let symbols = psi_workloads::uniform(1 << 12, 32, 51);
        let idx = RangeEncodedIndex::build(&symbols, 32, cfg());
        assert_eq!(idx.space_bits(), 32 * (1 << 12));
    }
}
