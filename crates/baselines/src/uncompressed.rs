//! The uncompressed bitmap index: the other extreme of §1.3.
//!
//! One explicit `n`-bit bitmap per character (equality encoding). A range
//! query of width `ℓ` reads `ℓ` bitmaps — `ℓ·n` bits, i.e. `O(ℓ·n/B)`
//! I/Os — regardless of the result size. Optimal for tiny alphabets
//! (§1.2's opening observation), hopeless for large ones.

use psi_api::{check_range, HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_bits::GapBitmap;
use psi_io::{Disk, IoConfig, IoSession};

use crate::dense::DenseCatalog;

/// An equality-encoded, uncompressed bitmap index.
#[derive(Debug)]
pub struct UncompressedBitmapIndex {
    disk: Disk,
    cat: DenseCatalog,
    n: u64,
    sigma: Symbol,
}

impl UncompressedBitmapIndex {
    /// Builds the index over `symbols ∈ [0, sigma)ⁿ`.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        assert!(sigma > 0);
        let n = symbols.len() as u64;
        let mut disk = Disk::new(config);
        let lists = crate::per_char_positions(symbols, sigma);
        let cat = DenseCatalog::build(&mut disk, n.max(1), lists);
        UncompressedBitmapIndex {
            disk,
            cat,
            n,
            sigma,
        }
    }
}

impl HasDisk for UncompressedBitmapIndex {
    fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl SecondaryIndex for UncompressedBitmapIndex {
    fn len(&self) -> u64 {
        self.n
    }

    fn sigma(&self) -> Symbol {
        self.sigma
    }

    fn space_bits(&self) -> u64 {
        self.cat.size_bits(&self.disk)
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma);
        if self.n == 0 {
            return RidSet::from_positions(GapBitmap::empty(0));
        }
        let mut acc = self.cat.new_acc();
        for c in lo..=hi {
            self.cat.or_into(&self.disk, c as usize, &mut acc, io);
        }
        let positions = self.cat.acc_positions(&acc);
        RidSet::from_positions(GapBitmap::from_sorted(&positions, self.n))
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl psi_store::PersistIndex for UncompressedBitmapIndex {
    const TAG: &'static str = "uncompressed";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        self.cat.persist_meta(out);
        out.put_u64(self.n);
        out.put_u32(self.sigma);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![HasDisk::disk(self)]
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let disk = psi_store::single_volume(disks, "uncompressed bitmap")?;
        Ok(UncompressedBitmapIndex {
            cat: crate::dense::DenseCatalog::restore_meta(meta, &disk)?,
            n: meta.get_u64()?,
            sigma: meta.get_u32()?,
            disk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_against_naive;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn matches_naive() {
        let symbols = psi_workloads::uniform(1500, 16, 5);
        let idx = UncompressedBitmapIndex::build(&symbols, 16, cfg());
        check_against_naive(&idx, &symbols);
    }

    #[test]
    fn space_is_exactly_sigma_word_rounded_n() {
        let symbols = psi_workloads::uniform(1000, 32, 5);
        let idx = UncompressedBitmapIndex::build(&symbols, 32, cfg());
        // 1000 bits round to 16 words = 1024 bits per character.
        assert_eq!(idx.space_bits(), 32 * 1024);
    }

    #[test]
    fn query_cost_scales_with_range_width_not_result() {
        let n = 1 << 16;
        // Character 0 never occurs: results are empty but reads persist.
        let symbols: Vec<u32> = psi_workloads::uniform(n, 15, 2)
            .iter()
            .map(|&c| c + 1)
            .collect();
        let idx = UncompressedBitmapIndex::build(&symbols, 16, IoConfig::default());
        let (r1, s1) = idx.query_measured(0, 0);
        assert!(r1.is_empty());
        let blocks_per_bitmap = (n as u64).div_ceil(8192);
        assert!(
            s1.reads >= blocks_per_bitmap,
            "even an empty result reads a full bitmap"
        );
        let (_, s8) = idx.query_measured(0, 7);
        assert!(
            s8.reads >= 8 * blocks_per_bitmap - 8,
            "width-8 range reads 8 bitmaps"
        );
    }

    #[test]
    fn empty_string() {
        let idx = UncompressedBitmapIndex::build(&[], 4, cfg());
        let io = IoSession::new();
        assert!(idx.query(0, 3, &io).is_empty());
    }
}
