//! Compressed query results (RID sets).

use psi_bits::GapBitmap;

/// A compressed set of row ids (positions) returned by a range query.
///
/// The paper requires queries to "output the set in compressed format,
/// using `O(lg C(n, z))` bits" (§1.1). A `RidSet` stores the gap-compressed
/// positions — or, implementing §2.1's large-result trick, the
/// gap-compressed *complement* when the answer has more than `n/2`
/// elements (the complement is then the smaller set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RidSet {
    stored: GapBitmap,
    complemented: bool,
}

impl RidSet {
    /// Wraps a compressed position set as-is.
    pub fn from_positions(stored: GapBitmap) -> Self {
        RidSet {
            stored,
            complemented: false,
        }
    }

    /// Wraps a compressed set whose *complement* (within the stored
    /// universe) is the logical result.
    pub fn from_complement(stored: GapBitmap) -> Self {
        RidSet {
            stored,
            complemented: true,
        }
    }

    /// The universe size `n`.
    pub fn universe(&self) -> u64 {
        self.stored.universe()
    }

    /// Number of positions in the logical result (`z` in the paper).
    pub fn cardinality(&self) -> u64 {
        if self.complemented {
            self.stored.universe() - self.stored.count()
        } else {
            self.stored.count()
        }
    }

    /// Whether the logical result is empty.
    pub fn is_empty(&self) -> bool {
        self.cardinality() == 0
    }

    /// Whether the stored representation is the complement of the result.
    pub fn is_complemented(&self) -> bool {
        self.complemented
    }

    /// Size of the compressed representation in bits.
    pub fn size_bits(&self) -> u64 {
        self.stored.size_bits()
    }

    /// The stored compressed bitmap (positions or complement).
    pub fn stored(&self) -> &GapBitmap {
        &self.stored
    }

    /// Membership test (O(stored count) scan; use [`Self::iter`] for bulk
    /// access).
    pub fn contains(&self, pos: u64) -> bool {
        self.stored.contains(pos) != self.complemented
    }

    /// Iterates the logical positions in increasing order (lazily
    /// materializes the complement when necessary).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        let mut stored_iter = self.stored.iter().peekable();
        let complemented = self.complemented;
        (0..self.stored.universe()).filter(move |&p| {
            let in_stored = match stored_iter.peek() {
                Some(&q) if q == p => {
                    stored_iter.next();
                    true
                }
                _ => false,
            };
            in_stored != complemented
        })
    }

    /// Materializes the logical positions.
    pub fn to_vec(&self) -> Vec<u64> {
        if self.complemented {
            self.iter().collect()
        } else {
            self.stored.to_vec()
        }
    }

    /// Normalizes to a non-complemented compressed set (materializing the
    /// complement if needed).
    pub fn into_positions(self) -> GapBitmap {
        if self.complemented {
            self.stored.complement()
        } else {
            self.stored
        }
    }

    /// Intersects two results (RID intersection, the paper's §1 motivating
    /// use). Both must share a universe.
    pub fn intersect(&self, other: &RidSet) -> RidSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        let mut b = other.iter().peekable();
        let positions = self.iter().filter(move |&p| {
            while let Some(&q) = b.peek() {
                if q < p {
                    b.next();
                } else {
                    return q == p;
                }
            }
            false
        });
        RidSet::from_positions(GapBitmap::from_sorted_iter(positions, self.universe()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gap(positions: &[u64], n: u64) -> GapBitmap {
        GapBitmap::from_sorted(positions, n)
    }

    #[test]
    fn positions_variant_roundtrip() {
        let r = RidSet::from_positions(gap(&[1, 3, 5], 8));
        assert_eq!(r.cardinality(), 3);
        assert_eq!(r.to_vec(), vec![1, 3, 5]);
        assert!(r.contains(3) && !r.contains(2));
        assert!(!r.is_complemented());
    }

    #[test]
    fn complement_variant_inverts() {
        let r = RidSet::from_complement(gap(&[1, 3, 5], 8));
        assert_eq!(r.cardinality(), 5);
        assert_eq!(r.to_vec(), vec![0, 2, 4, 6, 7]);
        assert!(!r.contains(3) && r.contains(2));
        assert_eq!(r.clone().into_positions().to_vec(), vec![0, 2, 4, 6, 7]);
    }

    #[test]
    fn empty_results() {
        let r = RidSet::from_positions(gap(&[], 4));
        assert!(r.is_empty());
        let full_complement = RidSet::from_complement(gap(&[0, 1, 2, 3], 4));
        assert!(full_complement.is_empty());
    }

    #[test]
    fn intersection_mixed_representations() {
        let a = RidSet::from_positions(gap(&[0, 2, 4, 6], 8));
        let b = RidSet::from_complement(gap(&[0, 1], 8)); // {2..7}
        let i = a.intersect(&b);
        assert_eq!(i.to_vec(), vec![2, 4, 6]);
        // Intersection with itself is identity on positions.
        assert_eq!(a.intersect(&a).to_vec(), a.to_vec());
    }

    #[test]
    fn iter_is_sorted_and_matches_to_vec() {
        let r = RidSet::from_complement(gap(&[2, 3, 9], 12));
        let v: Vec<u64> = r.iter().collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v, r.to_vec());
    }
}
