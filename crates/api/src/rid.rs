//! Compressed query results (RID sets).
//!
//! Set operations gallop: every [`GapBitmap`] carries (or lazily builds)
//! a skip directory sampled every [`psi_bits::SKIP_SAMPLE`] elements, so
//! membership, rank and select probe the directory and decode at most
//! `K − 1` codes, and intersection leapfrogs both streams through
//! [`psi_bits::GapCursor::next_geq`] instead of scanning `0..universe`.

use psi_bits::{kernel, merge, GapBitmap, GapCursor};

/// A compressed set of row ids (positions) returned by a range query.
///
/// The paper requires queries to "output the set in compressed format,
/// using `O(lg C(n, z))` bits" (§1.1). A `RidSet` stores the gap-compressed
/// positions — or, implementing §2.1's large-result trick, the
/// gap-compressed *complement* when the answer has more than `n/2`
/// elements (the complement is then the smaller set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RidSet {
    stored: GapBitmap,
    complemented: bool,
}

impl RidSet {
    /// Wraps a compressed position set as-is.
    pub fn from_positions(stored: GapBitmap) -> Self {
        RidSet {
            stored,
            complemented: false,
        }
    }

    /// Wraps a compressed set whose *complement* (within the stored
    /// universe) is the logical result.
    pub fn from_complement(stored: GapBitmap) -> Self {
        RidSet {
            stored,
            complemented: true,
        }
    }

    /// The universe size `n`.
    pub fn universe(&self) -> u64 {
        self.stored.universe()
    }

    /// Number of positions in the logical result (`z` in the paper).
    pub fn cardinality(&self) -> u64 {
        if self.complemented {
            self.stored.universe() - self.stored.count()
        } else {
            self.stored.count()
        }
    }

    /// Whether the logical result is empty.
    pub fn is_empty(&self) -> bool {
        self.cardinality() == 0
    }

    /// Whether the stored representation is the complement of the result.
    pub fn is_complemented(&self) -> bool {
        self.complemented
    }

    /// Size of the compressed representation in bits.
    pub fn size_bits(&self) -> u64 {
        self.stored.size_bits()
    }

    /// The stored compressed bitmap (positions or complement).
    pub fn stored(&self) -> &GapBitmap {
        &self.stored
    }

    /// Membership test: one skip-directory probe plus at most `K − 1`
    /// decoded codes (`O(lg(z/K) + K)`), complement-aware.
    pub fn contains(&self, pos: u64) -> bool {
        self.stored.contains(pos) != self.complemented
    }

    /// Number of logical positions strictly below `pos`.
    ///
    /// # Panics
    /// Panics if `pos` exceeds the universe.
    pub fn rank(&self, pos: u64) -> u64 {
        assert!(pos <= self.universe(), "rank past universe");
        if self.complemented {
            pos - self.stored.rank(pos)
        } else {
            self.stored.rank(pos)
        }
    }

    /// The `k`-th logical position (0-indexed), or `None` when
    /// `k ≥ cardinality`. Plain sets answer from the skip directory;
    /// complemented sets binary-search the monotone complement rank.
    pub fn select(&self, k: u64) -> Option<u64> {
        if !self.complemented {
            return self.stored.select(k);
        }
        if k >= self.cardinality() {
            return None;
        }
        // Smallest p with |complement ∩ [0, p]| = k + 1.
        let (mut lo, mut hi) = (0u64, self.universe() - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if (mid + 1) - self.stored.rank(mid + 1) > k {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        debug_assert!(!self.stored.contains(lo));
        Some(lo)
    }

    /// Iterates the logical positions in increasing order. Plain sets
    /// stream the decoder; complemented sets walk the stored stream and
    /// emit the gaps between its elements (no `0..universe` filter scan).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        let mut stored_iter = self.stored.iter();
        let mut next_stored = stored_iter.next();
        let universe = self.universe();
        let mut cursor = 0u64;
        let complemented = self.complemented;
        std::iter::from_fn(move || {
            if !complemented {
                let p = next_stored;
                next_stored = stored_iter.next();
                return p;
            }
            loop {
                if cursor >= universe {
                    return None;
                }
                if next_stored == Some(cursor) {
                    cursor += 1;
                    next_stored = stored_iter.next();
                } else {
                    cursor += 1;
                    return Some(cursor - 1);
                }
            }
        })
    }

    /// Materializes the logical positions.
    pub fn to_vec(&self) -> Vec<u64> {
        if self.complemented {
            self.iter().collect()
        } else {
            self.stored.to_vec()
        }
    }

    /// The complement of this result within its universe, in O(1): the
    /// stored bitmap is reused unchanged and only the representation flag
    /// flips. This is how negated predicates are answered without
    /// touching a single payload bit beyond the positive query's.
    pub fn negate(self) -> RidSet {
        RidSet {
            stored: self.stored,
            complemented: !self.complemented,
        }
    }

    /// Normalizes to a non-complemented compressed set (materializing the
    /// complement if needed).
    pub fn into_positions(self) -> GapBitmap {
        if self.complemented {
            self.stored.complement()
        } else {
            self.stored
        }
    }

    /// Intersects two results (RID intersection, the paper's §1 motivating
    /// use). Both must share a universe.
    ///
    /// Galloping, complement-aware: plain ∧ plain leapfrogs both skip
    /// directories, mixed representations leapfrog a difference, and
    /// complement ∧ complement merges the two (small) stored streams and
    /// stays complemented — never the reference implementation's
    /// `O(universe)` scan (kept as [`Self::intersect_reference`]).
    pub fn intersect(&self, other: &RidSet) -> RidSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        let n = self.universe();
        match (self.complemented, other.complemented) {
            (false, false) => RidSet::from_positions(leapfrog_and(&self.stored, &other.stored, n)),
            (false, true) => RidSet::from_positions(leapfrog_diff(&self.stored, &other.stored, n)),
            (true, false) => RidSet::from_positions(leapfrog_diff(&other.stored, &self.stored, n)),
            (true, true) => {
                // ¬A ∩ ¬B = ¬(A ∪ B): union the two stored streams (they
                // may overlap) and keep the complement representation.
                let total = self.stored.count() + other.stored.count();
                let union = GapBitmap::from_sorted_iter_sized(
                    merge::union_dedup(vec![self.stored.iter(), other.stored.iter()]),
                    n,
                    total,
                );
                RidSet::from_complement(union)
            }
        }
    }

    /// The pre-directory reference intersection: co-scan both logical
    /// streams via [`Self::iter`]. `O(universe)` for complemented inputs —
    /// kept as the oracle for the galloping paths (differential tests and
    /// the before/after benchmark).
    pub fn intersect_reference(&self, other: &RidSet) -> RidSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        let mut b = other.iter().peekable();
        let positions = self.iter().filter(move |&p| {
            while let Some(&q) = b.peek() {
                if q < p {
                    b.next();
                } else {
                    return q == p;
                }
            }
            false
        });
        RidSet::from_positions(GapBitmap::from_sorted_iter(positions, self.universe()))
    }
}

/// The occupancy summary of a cursor's *current* sample block, when the
/// block is exactly summarized: `occ` covers buckets `[base, base + 64)`
/// and describes every element of the block, which spans positions up to
/// (excluding) `end` — the next sample. `j` is the block's entry index.
struct BlockOcc {
    j: usize,
    base: u64,
    occ: u64,
    end: u64,
}

/// The summary of the block `cur` currently sits in, or `None` when the
/// block cannot be trusted wholesale: the tail block (may be truncated or
/// append-grown), a conservative `occ = 0` entry, or a block spanning
/// more than the 64-bucket window its word can describe.
fn block_occ(bm: &GapBitmap, cur: &GapCursor<'_>) -> Option<BlockOcc> {
    let consumed = cur.consumed();
    if consumed == 0 {
        return None;
    }
    let dir = bm.skip_dir();
    let j = ((consumed - 1) / u64::from(dir.k())) as usize;
    let entries = dir.entries();
    if j + 1 >= entries.len() {
        return None;
    }
    let e = entries[j];
    let end = entries[j + 1].pos;
    if e.occ == 0 || ((end - 1) >> 6) - (e.pos >> 6) >= 64 {
        return None;
    }
    Some(BlockOcc {
        j,
        base: e.pos >> 6,
        occ: e.occ,
        end,
    })
}

/// Whether two exactly-summarized blocks provably share no position:
/// their occupancy words, aligned to a common bucket base, AND to zero
/// (blocks confined to disjoint bucket windows trivially qualify).
fn blocks_disjoint(a: &BlockOcc, b: &BlockOcc) -> bool {
    let anded = if a.base <= b.base {
        let d = b.base - a.base;
        if d >= 64 {
            return true;
        }
        (a.occ >> d) & b.occ
    } else {
        let d = a.base - b.base;
        if d >= 64 {
            return true;
        }
        a.occ & (b.occ >> d)
    };
    anded == 0
}

/// Credit gate on per-probe occupancy consultation. Each
/// [`SkipDirectory::rules_out`] call costs a directory binary search —
/// pure overhead on workloads it never rules out (dense-vs-dense
/// leapfrogs, where every bucket is occupied). Successes earn credit,
/// failures spend it; at zero the kernel stops consulting for the rest
/// of the operation and relies on galloping alone. Only the advance
/// mechanism changes, never the result.
const PROBE_CREDIT_START: i32 = 8;
const PROBE_CREDIT_EARN: i32 = 2;
const PROBE_CREDIT_CAP: i32 = 64;

/// Leapfrog intersection of two plain gap streams: alternately seek each
/// cursor to the other's head; matches are emitted, long runs of misses
/// are jumped via the skip directories.
///
/// Two occupancy-word kernels ride on top of the gallop (both behind
/// [`kernel::block_skip_enabled`]; the result is identical either way):
/// a probe whose bucket the other side's directory proves empty is
/// answered without touching the other stream at all (credit-gated, see
/// [`PROBE_CREDIT_START`]), and when the two cursors' current sample
/// blocks have disjoint occupancy words, the earlier-ending block is
/// skipped whole — its codes are never decoded.
fn leapfrog_and(a: &GapBitmap, b: &GapBitmap, universe: u64) -> GapBitmap {
    let skip = kernel::block_skip_enabled();
    let mut credit = if skip { PROBE_CREDIT_START } else { 0 };
    let (mut galloped, mut probe_skips, mut block_skips) = (0u64, 0u64, 0u64);
    let mut out = Vec::with_capacity(a.count().min(b.count()) as usize);
    let mut ac = a.cursor();
    let mut bc = b.cursor();
    if let Some(mut x) = ac.next() {
        'leapfrog: loop {
            if credit > 0 {
                if b.skip_dir().rules_out(x) {
                    // `x`'s bucket is provably empty in `b`: advance `a`
                    // without galloping (or decoding) `b` at all.
                    credit = (credit + PROBE_CREDIT_EARN).min(PROBE_CREDIT_CAP);
                    probe_skips += 1;
                    match ac.next() {
                        Some(v) => {
                            x = v;
                            continue 'leapfrog;
                        }
                        None => break,
                    }
                }
                credit -= 1;
            }
            galloped += 1;
            match bc.next_geq(x) {
                None => break,
                Some(y) if y == x => {
                    out.push(x);
                    match ac.next() {
                        Some(v) => x = v,
                        None => break,
                    }
                }
                Some(mut y) => {
                    if skip {
                        // Whole-block skipping: `b` proved it has nothing
                        // in `[x, y)`, so while the cursors' current
                        // blocks are provably disjoint, the one ending
                        // first can be jumped without decoding any of its
                        // codes. (The earlier-ending block's elements all
                        // lie below the other block's end, so the other
                        // side's later blocks cannot reach them.)
                        while let (Some(ba), Some(bb)) = (block_occ(a, &ac), block_occ(b, &bc)) {
                            if !blocks_disjoint(&ba, &bb) {
                                break;
                            }
                            block_skips += 1;
                            if ba.end <= bb.end {
                                x = ac.seat_at(ba.j + 1);
                                continue 'leapfrog;
                            }
                            y = bc.seat_at(bb.j + 1);
                        }
                    }
                    match ac.next_geq(y) {
                        Some(v) => x = v,
                        None => break,
                    }
                }
            }
        }
    }
    kernel::INTERSECT_GALLOP.add(galloped);
    kernel::INTERSECT_BLOCK_SKIP.add(probe_skips);
    kernel::INTERSECT_BLOCK_AND.add(block_skips);
    GapBitmap::from_sorted(&out, universe)
}

/// Leapfrog difference `a \ b` of two plain gap streams: every element of
/// `a` is checked by galloping `b`'s cursor forward, so runs of `b`
/// between consecutive `a`-elements are skipped, not decoded. An element
/// whose bucket `b`'s occupancy words prove empty is kept without
/// touching `b` (behind [`kernel::block_skip_enabled`] and the same
/// credit gate as [`leapfrog_and`]; identical result either way).
fn leapfrog_diff(a: &GapBitmap, b: &GapBitmap, universe: u64) -> GapBitmap {
    let skip = kernel::block_skip_enabled();
    let mut credit = if skip { PROBE_CREDIT_START } else { 0 };
    let (mut galloped, mut probe_skips) = (0u64, 0u64);
    let mut out = Vec::with_capacity(a.count() as usize);
    let mut bc = b.cursor();
    for p in a.iter() {
        if credit > 0 {
            if b.skip_dir().rules_out(p) {
                credit = (credit + PROBE_CREDIT_EARN).min(PROBE_CREDIT_CAP);
                probe_skips += 1;
                out.push(p);
                continue;
            }
            credit -= 1;
        }
        galloped += 1;
        match bc.next_geq(p) {
            Some(q) if q == p => {}
            _ => out.push(p),
        }
    }
    kernel::INTERSECT_GALLOP.add(galloped);
    kernel::INTERSECT_BLOCK_SKIP.add(probe_skips);
    GapBitmap::from_sorted(&out, universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gap(positions: &[u64], n: u64) -> GapBitmap {
        GapBitmap::from_sorted(positions, n)
    }

    /// Serializes the tests that toggle the process-global block-skip
    /// switch (and assert on the global kernel counters).
    static BLOCK_SKIP_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn positions_variant_roundtrip() {
        let r = RidSet::from_positions(gap(&[1, 3, 5], 8));
        assert_eq!(r.cardinality(), 3);
        assert_eq!(r.to_vec(), vec![1, 3, 5]);
        assert!(r.contains(3) && !r.contains(2));
        assert!(!r.is_complemented());
    }

    #[test]
    fn complement_variant_inverts() {
        let r = RidSet::from_complement(gap(&[1, 3, 5], 8));
        assert_eq!(r.cardinality(), 5);
        assert_eq!(r.to_vec(), vec![0, 2, 4, 6, 7]);
        assert!(!r.contains(3) && r.contains(2));
        assert_eq!(r.clone().into_positions().to_vec(), vec![0, 2, 4, 6, 7]);
    }

    #[test]
    fn empty_results() {
        let r = RidSet::from_positions(gap(&[], 4));
        assert!(r.is_empty());
        let full_complement = RidSet::from_complement(gap(&[0, 1, 2, 3], 4));
        assert!(full_complement.is_empty());
    }

    #[test]
    fn intersection_mixed_representations() {
        let a = RidSet::from_positions(gap(&[0, 2, 4, 6], 8));
        let b = RidSet::from_complement(gap(&[0, 1], 8)); // {2..7}
        let i = a.intersect(&b);
        assert_eq!(i.to_vec(), vec![2, 4, 6]);
        // Intersection with itself is identity on positions.
        assert_eq!(a.intersect(&a).to_vec(), a.to_vec());
        // Both complemented: the result stays complemented (¬(A ∪ B)).
        let c = RidSet::from_complement(gap(&[1, 2], 8));
        let bc = b.intersect(&c);
        assert!(bc.is_complemented());
        assert_eq!(bc.to_vec(), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn negate_flips_representation_without_reencoding() {
        let r = RidSet::from_positions(gap(&[1, 3, 5], 8));
        let not_r = r.clone().negate();
        assert!(not_r.is_complemented());
        assert_eq!(not_r.cardinality(), 5);
        assert_eq!(not_r.to_vec(), vec![0, 2, 4, 6, 7]);
        assert_eq!(not_r.stored(), r.stored());
        // Double negation is the identity.
        assert_eq!(not_r.negate(), r);
    }

    #[test]
    fn iter_is_sorted_and_matches_to_vec() {
        let r = RidSet::from_complement(gap(&[2, 3, 9], 12));
        let v: Vec<u64> = r.iter().collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v, r.to_vec());
    }

    #[test]
    fn rank_select_both_representations() {
        for complemented in [false, true] {
            let stored = gap(&[1, 3, 4, 9], 12);
            let r = if complemented {
                RidSet::from_complement(stored)
            } else {
                RidSet::from_positions(stored)
            };
            let logical = r.to_vec();
            for q in 0..=12u64 {
                let naive = logical.iter().filter(|&&p| p < q).count() as u64;
                assert_eq!(r.rank(q), naive, "rank({q}), comp={complemented}");
            }
            for (k, &p) in logical.iter().enumerate() {
                assert_eq!(r.select(k as u64), Some(p), "select({k})");
            }
            assert_eq!(r.select(logical.len() as u64), None);
        }
    }

    /// `n_clusters` runs of `len` contiguous positions, one every
    /// `stride`, starting at cluster index `first` and stepping `step`
    /// clusters.
    fn clusters(first: u64, step: u64, n_clusters: u64, len: u64, stride: u64) -> Vec<u64> {
        (0..n_clusters)
            .flat_map(|c| {
                let base = (first + c * step) * stride;
                base..base + len
            })
            .collect()
    }

    #[test]
    fn occupancy_probe_skip_matches_forced_scalar() {
        // B: 1000 clusters of 100 contiguous positions every 4000. A:
        // one probe per cluster, mostly in the inter-cluster dead space
        // (provably empty buckets within the occupancy window), some
        // inside clusters (hits).
        let n = 4000 * 1000 + 1;
        let b = RidSet::from_positions(gap(&clusters(0, 1, 1000, 100, 4000), n));
        let a_pos: Vec<u64> = (0..1000u64)
            .map(|c| c * 4000 + if c % 10 == 0 { c % 100 } else { 2000 + c % 64 })
            .collect();
        let a = RidSet::from_positions(gap(&a_pos, n));
        let _guard = BLOCK_SKIP_LOCK.lock().unwrap();
        let skips_before = psi_bits::kernel::INTERSECT_BLOCK_SKIP.get();
        let fast = a.intersect(&b);
        assert!(
            psi_bits::kernel::INTERSECT_BLOCK_SKIP.get() > skips_before,
            "occupancy probe skip never fired on the miss-heavy workload"
        );
        // Mixed representation exercises the difference kernel's skip.
        let fast_diff = a.intersect(&b.clone().negate());
        psi_bits::kernel::set_block_skip(false);
        let scalar = a.intersect(&b);
        let scalar_diff = a.intersect(&b.clone().negate());
        psi_bits::kernel::set_block_skip(true);
        assert_eq!(fast, scalar, "block-skip intersection diverged");
        assert_eq!(fast_diff, scalar_diff, "block-skip difference diverged");
        assert_eq!(fast.to_vec(), a.intersect_reference(&b).to_vec());
        assert_eq!(fast.cardinality(), 100, "every c % 10 == 0 probe hits");
        assert_eq!(fast_diff.cardinality(), 900);
    }

    #[test]
    fn occupancy_block_and_skips_disjoint_clusters() {
        // Interleaved clusters: A on even cluster slots, B on odd — the
        // intersection is empty, and whole sample blocks (64 elements
        // inside one 256-long cluster) AND away without decoding.
        let n = 8192 * 400 + 1;
        let a = RidSet::from_positions(gap(&clusters(0, 2, 200, 256, 8192), n));
        let b = RidSet::from_positions(gap(&clusters(1, 2, 200, 256, 8192), n));
        let _guard = BLOCK_SKIP_LOCK.lock().unwrap();
        let ands_before = psi_bits::kernel::INTERSECT_BLOCK_AND.get();
        let fast = a.intersect(&b);
        assert!(
            psi_bits::kernel::INTERSECT_BLOCK_AND.get() > ands_before,
            "whole-block AND skip never fired on disjoint clusters"
        );
        psi_bits::kernel::set_block_skip(false);
        let scalar = a.intersect(&b);
        psi_bits::kernel::set_block_skip(true);
        assert_eq!(fast, scalar);
        assert!(fast.is_empty());
        // Overlapping clusters still produce every match.
        let c = RidSet::from_positions(gap(&clusters(0, 1, 400, 128, 8192), n));
        let ac = a.intersect(&c);
        psi_bits::kernel::set_block_skip(false);
        let ac_scalar = a.intersect(&c);
        psi_bits::kernel::set_block_skip(true);
        assert_eq!(ac, ac_scalar);
        assert_eq!(ac.cardinality(), 200 * 128);
    }

    #[test]
    fn galloping_intersect_matches_reference_on_large_sets() {
        let n = 1u64 << 16;
        let a = RidSet::from_positions(gap(&(0..n / 3).map(|i| i * 3).collect::<Vec<_>>(), n));
        let b = RidSet::from_positions(gap(&(0..n / 7).map(|i| i * 7).collect::<Vec<_>>(), n));
        assert_eq!(a.intersect(&b).to_vec(), a.intersect_reference(&b).to_vec());
    }

    proptest! {
        #[test]
        fn set_ops_match_full_decode_reference(
            pos_a in proptest::collection::btree_set(0u64..2048, 0..300),
            pos_b in proptest::collection::btree_set(0u64..2048, 0..300),
            comp_a in any::<bool>(),
            comp_b in any::<bool>(),
        ) {
            let n = 2048u64;
            let mk = |pos: &std::collections::BTreeSet<u64>, comp: bool| {
                let stored = GapBitmap::from_sorted_iter(pos.iter().copied(), n);
                if comp { RidSet::from_complement(stored) } else { RidSet::from_positions(stored) }
            };
            let a = mk(&pos_a, comp_a);
            let b = mk(&pos_b, comp_b);
            // The oracle: fully decoded logical sets.
            let la: Vec<u64> = a.iter().collect();
            let lb: std::collections::BTreeSet<u64> = b.iter().collect();
            prop_assert_eq!(&la, &a.to_vec());
            for q in (0..=n).step_by(97) {
                prop_assert_eq!(a.rank(q), la.iter().filter(|&&p| p < q).count() as u64);
                if q < n {
                    prop_assert_eq!(a.contains(q), la.binary_search(&q).is_ok());
                }
            }
            for (k, &p) in la.iter().enumerate() {
                prop_assert_eq!(a.select(k as u64), Some(p));
            }
            prop_assert_eq!(a.select(la.len() as u64), None);
            let want: Vec<u64> = la.iter().copied().filter(|p| lb.contains(p)).collect();
            let got = a.intersect(&b);
            prop_assert_eq!(got.to_vec(), want.clone());
            prop_assert_eq!(got.cardinality() as usize, want.len());
            prop_assert_eq!(
                a.intersect_reference(&b).to_vec(),
                want
            );
        }
    }
}
