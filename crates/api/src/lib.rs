//! Common interface of all secondary indexes in the `psi` workspace.
//!
//! The paper's problem (§1.1): given `x = x₁x₂…xₙ ∈ Σⁿ`, answer alphabet
//! range queries `I[al;ar](x) = { i | xᵢ ∈ [al; ar] }`, returning the set
//! *in compressed format* using `O(lg C(n, z))` bits. Every index — the
//! paper's structures in `psi-core` and the baselines in `psi-baselines` —
//! implements [`SecondaryIndex`] against the simulated I/O model, so the
//! experiment harnesses can sweep implementations uniformly.

#![warn(missing_docs)]

use psi_bits::GapBitmap;
use psi_io::{Disk, IoSession, IoStats};

mod rid;

pub use psi_io::ReadError;
pub use rid::RidSet;

/// Symbols are dense character codes in `[0, σ)`; the paper's ordered
/// alphabet `Σ = {a₁ < a₂ < … < a_σ}` maps to `0 < 1 < … < σ−1`.
pub type Symbol = u32;

/// A static secondary index over a string `x ∈ Σⁿ`.
///
/// The read path is **shared-state**: `query`/`query_measured` take
/// `&self`, and the trait requires `Send + Sync`, so one opened index —
/// typically behind an `Arc` — serves any number of query threads
/// concurrently. Each thread brings its own per-query [`IoSession`];
/// everything the index itself holds is either immutable after
/// construction or guarded (the sharded buffer pool, `OnceLock` skip
/// directories).
pub trait SecondaryIndex: Send + Sync {
    /// Length `n` of the indexed string.
    fn len(&self) -> u64;

    /// Whether the indexed string is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Alphabet size `σ`.
    fn sigma(&self) -> Symbol;

    /// Total space of the data structure in bits (payload plus directory
    /// metadata, as accounted by each implementation).
    fn space_bits(&self) -> u64;

    /// Answers the alphabet range query `I[lo; hi]` (inclusive endpoints,
    /// as in the paper), charging all block accesses to `io`.
    ///
    /// The result is compressed: either the positions themselves or, for
    /// results larger than `n/2` where the structure supports it, the
    /// complement (§2.1's trick).
    ///
    /// # Panics
    /// Implementations panic if `lo > hi` or `hi ≥ σ`.
    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet;

    /// Convenience: runs `query` under a fresh tracking session and
    /// returns the result with its I/O statistics.
    fn query_measured(&self, lo: Symbol, hi: Symbol) -> (RidSet, IoStats) {
        let io = IoSession::new();
        let result = self.query(lo, hi, &io);
        let stats = io.stats();
        (result, stats)
    }

    /// Fallible form of [`Self::query`]: a real-read failure (transient
    /// exhausted retries, missing page, checksum mismatch) surfaces as a
    /// typed [`ReadError`] instead of a panic.
    ///
    /// The default wraps the infallible `query` in
    /// [`psi_io::catch_read`], converting the structured abort every
    /// pooled decode path raises into the session's recorded fault —
    /// implementations keep their panic-free hot path and codegen
    /// untouched, callers that can degrade (quarantine + table-scan
    /// fallback) get a `Result`. Range-validation panics (`lo > hi`,
    /// `hi ≥ σ`) are caller bugs and still panic.
    ///
    /// [`Self::cardinality_hint`] needs no fallible variant: by contract
    /// it reads only memory-resident metadata and charges no I/O, so it
    /// has no real read to fail.
    fn try_query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> Result<RidSet, ReadError> {
        psi_io::catch_read(io, || self.query(lo, hi, io))
    }

    /// Fallible form of [`Self::query_measured`]: the I/O statistics are
    /// returned even when the query fails — the charges and retries up
    /// to the fault are exactly what degraded-mode accounting needs.
    #[allow(clippy::type_complexity)]
    fn try_query_measured(&self, lo: Symbol, hi: Symbol) -> (Result<RidSet, ReadError>, IoStats) {
        let io = IoSession::new();
        let result = self.try_query(lo, hi, &io);
        let stats = io.stats();
        (result, stats)
    }

    /// Estimated result cardinality of `I[lo; hi]`, computed from metadata
    /// resident in memory *before any payload bit is decoded* — the
    /// paper's prefix array `A`, catalog directories, or cut-slot counts.
    ///
    /// Structures that keep per-character counts return the exact `z`;
    /// structures without such metadata return `None` and planners fall
    /// back to a uniformity assumption. Implementations must not charge
    /// any I/O: this is what conjunctive planners call to order an
    /// intersection before paying for a single cover.
    fn cardinality_hint(&self, lo: Symbol, hi: Symbol) -> Option<u64> {
        let _ = (lo, hi);
        None
    }
}

/// A semi-dynamic index supporting appends (paper §4.1: "OLAP and
/// scientific data … are typically read and append only").
pub trait AppendIndex: SecondaryIndex {
    /// Appends a character at position `n` (the end of the string).
    fn append(&mut self, symbol: Symbol, io: &IoSession);
}

/// A fully dynamic index additionally supporting in-place character
/// changes (paper §4.3). Deletions are expressible as changes to a
/// reserved `∞` character (§4).
pub trait DynamicIndex: AppendIndex {
    /// Changes the character at position `pos` to `symbol`.
    fn change(&mut self, pos: u64, symbol: Symbol, io: &IoSession);
}

/// One mutation against a dynamic index, in the vocabulary shared by the
/// durable write path (`psi-wal` journals `MutOp`s before they touch RAM
/// and replays them at recovery) and any future replication layer.
///
/// The three operations are exactly the dynamic trait surface:
/// [`AppendIndex::append`], [`DynamicIndex::change`], and deletion via
/// the paper's reserved `∞` character (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutOp {
    /// Append `symbol` at position `n`.
    Append {
        /// The appended character.
        symbol: Symbol,
    },
    /// Change the character at `pos` to `symbol`.
    Change {
        /// Target position (`< n`).
        pos: u64,
        /// The new character.
        symbol: Symbol,
    },
    /// Delete the character at `pos` (a change to `∞`).
    Delete {
        /// Target position (`< n`).
        pos: u64,
    },
}

/// Why a [`MutOp`] could not be applied to an index.
///
/// Replay paths (crash recovery) must never panic on a log whose records
/// are internally valid but inapplicable to the index at hand — a
/// mismatched checkpoint, an out-of-range position, an append-only
/// family asked to replay a change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyError {
    /// What was wrong (op, position, family).
    pub what: String,
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inapplicable operation: {}", self.what)
    }
}

impl std::error::Error for ApplyError {}

/// A dynamic index that can apply journaled [`MutOp`]s — the replay
/// surface of the durable write path.
///
/// Implementations validate before mutating (position in range, symbol
/// in alphabet, op supported by the family) and return [`ApplyError`]
/// instead of panicking, so recovery can surface a typed error on any
/// log/checkpoint mismatch.
pub trait ApplyOp {
    /// Applies one operation, charging I/O to `io`.
    fn apply_op(&mut self, op: &MutOp, io: &IoSession) -> Result<(), ApplyError>;
}

/// Read access to the simulated disk backing an index.
///
/// One trait replaces the per-family "simulated disk (for inspection)"
/// accessors: the experiment harnesses use it to read space and layout,
/// and the `psi-store` save path uses it as the payload source for
/// single-volume families.
pub trait HasDisk {
    /// The simulated disk holding this structure's payload.
    fn disk(&self) -> &Disk;
}

/// Validates query endpoints against an alphabet size. Shared helper for
/// implementations.
pub fn check_range(lo: Symbol, hi: Symbol, sigma: Symbol) {
    assert!(lo <= hi, "empty range [{lo}, {hi}]");
    assert!(
        hi < sigma,
        "range endpoint {hi} outside alphabet of size {sigma}"
    );
}

/// Builds the exact answer to a range query by scanning the string —
/// the reference implementation used in tests and harness validation.
pub fn naive_query(symbols: &[Symbol], lo: Symbol, hi: Symbol) -> RidSet {
    let positions = symbols
        .iter()
        .enumerate()
        .filter(|(_, &s)| (lo..=hi).contains(&s))
        .map(|(i, _)| i as u64);
    RidSet::from_positions(GapBitmap::from_sorted_iter(positions, symbols.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_query_filters_by_range() {
        let s = vec![3u32, 1, 4, 1, 5, 9, 2, 6];
        let r = naive_query(&s, 2, 5);
        assert_eq!(r.to_vec(), vec![0, 2, 4, 6]);
        assert_eq!(r.cardinality(), 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_rejected() {
        check_range(5, 4, 10);
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn oversized_range_rejected() {
        check_range(0, 10, 10);
    }
}
