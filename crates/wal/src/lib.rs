//! # psi-wal — the durable write path
//!
//! Makes the dynamic index families crash-safe without giving up their
//! update bounds: mutations are journaled to a **write-ahead log**
//! ([`record`]) before acknowledgement, synced in **group commits**
//! ([`WalWriter`]), folded into an **incremental checkpoint**
//! (`psi_store::checkpoint` — only dirty extents are written) at a
//! chosen cadence, and **recovered** ([`recover`]) by opening the live
//! checkpoint and replaying the log's intact prefix.
//!
//! The recovery contract, enforced by the kill-at-every-offset harness
//! in this crate's tests:
//!
//! * **Never lose an acknowledged operation.** An operation is
//!   acknowledged when a commit covering it returns; after a crash at
//!   any byte offset of any file, recovery reproduces at least the
//!   acknowledged prefix (possibly a longer one — the OS may flush
//!   uncommitted writes on its own).
//! * **Never panic on a torn tail.** The log scan stops — does not
//!   error — at the first record with a bad length, bad checksum, or
//!   non-consecutive sequence number; the checkpoint opens through
//!   whichever of its two superblock slots committed last.
//! * **Replay is exact.** A recovered index answers queries identically
//!   to one that applied the same operations in memory.

#![warn(missing_docs)]

mod durable;
pub mod metrics;
pub mod record;
mod writer;

use psi_io::ErrorClass;

pub use durable::{
    recover, wal_file_name, Durable, DurableOptions, RecoverReport, CHECKPOINT_FILE,
};
pub use metrics::{wal_metrics, WalMetrics};
pub use record::{scan_bytes, scan_wal, WalTail, MAX_RECORD_BODY, WAL_HEADER_BYTES, WAL_MAGIC};
pub use writer::WalWriter;

/// Everything that can go wrong on the durable write path.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem error on the log itself, classified for
    /// retryability like every I/O failure in the workspace.
    Io {
        /// Whether retrying the same operation can succeed.
        class: ErrorClass,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The checkpoint half failed (open, update, or attach).
    Store(psi_store::StoreError),
    /// The operation cannot apply to the current index state (rejected
    /// before journaling — the log never holds such operations).
    Apply(psi_api::ApplyError),
    /// The recovery invariants are violated in a way no torn write can
    /// produce (malformed sequence watermark, a journaled operation that
    /// does not replay): not recoverable by truncation.
    Recovery {
        /// What recovery found.
        what: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { class, source } => {
                let kind = match class {
                    ErrorClass::Transient => "transient",
                    ErrorClass::Permanent => "permanent",
                    ErrorClass::Corrupt => "corrupt",
                };
                write!(f, "{kind} i/o error on log: {source}")
            }
            WalError::Store(e) => write!(f, "checkpoint error: {e}"),
            WalError::Apply(e) => write!(f, "{e}"),
            WalError::Recovery { what } => write!(f, "recovery invariant violated: {what}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            WalError::Store(e) => Some(e),
            WalError::Apply(e) => Some(e),
            WalError::Recovery { .. } => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io {
            class: psi_io::classify_io(e.kind()),
            source: e,
        }
    }
}

impl From<psi_store::StoreError> for WalError {
    fn from(e: psi_store::StoreError) -> Self {
        WalError::Store(e)
    }
}

impl From<psi_api::ApplyError> for WalError {
    fn from(e: psi_api::ApplyError) -> Self {
        WalError::Apply(e)
    }
}

impl WalError {
    /// Retry classification: only a transient I/O failure (directly or
    /// inside the checkpoint) is worth repeating.
    pub fn class(&self) -> ErrorClass {
        match self {
            WalError::Io { class, .. } => *class,
            WalError::Store(e) => e.class(),
            WalError::Apply(_) | WalError::Recovery { .. } => ErrorClass::Permanent,
        }
    }
}
