//! The WAL record format: framing, checksums, and the truncating scan.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────────┐
//! │ header — 16 bytes: magic "PSIWAL01" + checkpoint epoch (u64 LE)  │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ record — len (u32 LE) · body · FNV-1a over (len ‖ body) (u64 LE) │
//! │   body: sequence number (u64 LE) + operation                     │
//! │     kind 1 = append: symbol (u32 LE)                             │
//! │     kind 2 = change: position (u64 LE) + symbol (u32 LE)         │
//! │     kind 3 = delete: position (u64 LE)                           │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ … records, densely packed, sequence numbers consecutive          │
//! └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The scan's contract is the recovery truncation rule: parse records
//! while they are intact (length in range, checksum matches, sequence
//! number consecutive) and **stop at the first violation** — a torn
//! record is where the crash landed, not an error. Only a missing or
//! mangled *header* distinguishes "no log" from "empty log", and the
//! caller treats both as an empty tail.

use std::io::Read;
use std::path::Path;

use psi_api::MutOp;
use psi_store::fnv1a64;

/// WAL file magic: the first 8 bytes of every log file.
pub const WAL_MAGIC: [u8; 8] = *b"PSIWAL01";
/// Fixed header length: magic plus the checkpoint epoch this log
/// extends.
pub const WAL_HEADER_BYTES: usize = 16;
/// Longest accepted record body. Real bodies are ≤ 21 bytes; anything
/// larger is garbage read from a torn length field.
pub const MAX_RECORD_BODY: u32 = 1 << 20;

/// Serializes the file header for a log extending checkpoint `epoch`.
pub fn encode_header(epoch: u64) -> [u8; WAL_HEADER_BYTES] {
    let mut h = [0u8; WAL_HEADER_BYTES];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8..].copy_from_slice(&epoch.to_le_bytes());
    h
}

/// Parses a file header, returning the epoch, or `None` for anything
/// that is not an intact psi-wal header.
pub fn decode_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < WAL_HEADER_BYTES || bytes[..8] != WAL_MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(
        bytes[8..16].try_into().expect("8 bytes"),
    ))
}

/// Appends the operation encoding (kind byte + fields) to `out`.
pub fn encode_op(op: &MutOp, out: &mut Vec<u8>) {
    match *op {
        MutOp::Append { symbol } => {
            out.push(1);
            out.extend_from_slice(&symbol.to_le_bytes());
        }
        MutOp::Change { pos, symbol } => {
            out.push(2);
            out.extend_from_slice(&pos.to_le_bytes());
            out.extend_from_slice(&symbol.to_le_bytes());
        }
        MutOp::Delete { pos } => {
            out.push(3);
            out.extend_from_slice(&pos.to_le_bytes());
        }
    }
}

/// Parses an operation encoding; `None` unless `bytes` is exactly one
/// well-formed operation.
pub fn decode_op(bytes: &[u8]) -> Option<MutOp> {
    let (&kind, rest) = bytes.split_first()?;
    match kind {
        1 if rest.len() == 4 => Some(MutOp::Append {
            symbol: u32::from_le_bytes(rest.try_into().expect("4 bytes")),
        }),
        2 if rest.len() == 12 => Some(MutOp::Change {
            pos: u64::from_le_bytes(rest[..8].try_into().expect("8 bytes")),
            symbol: u32::from_le_bytes(rest[8..].try_into().expect("4 bytes")),
        }),
        3 if rest.len() == 8 => Some(MutOp::Delete {
            pos: u64::from_le_bytes(rest.try_into().expect("8 bytes")),
        }),
        _ => None,
    }
}

/// Serializes one complete record (framing + checksum) into `out`.
pub fn encode_record(seq: u64, op: &MutOp, out: &mut Vec<u8>) {
    let body_start = out.len() + 4;
    out.extend_from_slice(&[0u8; 4]); // length backpatched below
    out.extend_from_slice(&seq.to_le_bytes());
    encode_op(op, out);
    let body_len = (out.len() - body_start) as u32;
    out[body_start - 4..body_start].copy_from_slice(&body_len.to_le_bytes());
    let sum = fnv1a64(&out[body_start - 4..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// What a scan salvaged from one log file.
#[derive(Debug, Clone)]
pub struct WalTail {
    /// Checkpoint epoch recorded in the header.
    pub epoch: u64,
    /// Intact operations in sequence order, starting at the scan's
    /// `start_seq`.
    pub ops: Vec<(u64, MutOp)>,
    /// Bytes covered by the header plus all intact records — the
    /// truncation point when trailing garbage follows.
    pub valid_bytes: u64,
    /// Whether bytes past `valid_bytes` existed (a torn tail).
    pub truncated: bool,
}

/// Scans an in-memory log image. Returns `None` when the header itself
/// is not intact (the log carries nothing); otherwise every intact
/// record from `start_seq` on, stopping — never erroring — at the first
/// torn or corrupt one.
pub fn scan_bytes(bytes: &[u8], start_seq: u64) -> Option<WalTail> {
    let epoch = decode_header(bytes)?;
    let mut ops = Vec::new();
    let mut at = WAL_HEADER_BYTES;
    let mut expected = start_seq;
    while let Some(len_bytes) = bytes.get(at..at + 4) {
        let body_len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if body_len < 8 || body_len > MAX_RECORD_BODY as usize {
            break;
        }
        let Some(framed) = bytes.get(at..at + 4 + body_len) else {
            break;
        };
        let Some(sum_bytes) = bytes.get(at + 4 + body_len..at + 4 + body_len + 8) else {
            break;
        };
        let want = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if fnv1a64(framed) != want {
            break;
        }
        let body = &framed[4..];
        let seq = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        let Some(op) = decode_op(&body[8..]) else {
            break;
        };
        if seq != expected {
            break;
        }
        ops.push((seq, op));
        expected += 1;
        at += 4 + body_len + 8;
    }
    Some(WalTail {
        epoch,
        ops,
        valid_bytes: at as u64,
        truncated: at < bytes.len(),
    })
}

/// Scans a log file on disk. `Ok(None)` when the file is missing or its
/// header is not intact — recovery treats both as an empty tail. Real
/// read failures surface as errors.
pub fn scan_wal(path: &Path, start_seq: u64) -> Result<Option<WalTail>, std::io::Error> {
    let mut bytes = Vec::new();
    match std::fs::File::open(path) {
        Ok(mut f) => f.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(scan_bytes(&bytes, start_seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<MutOp> {
        vec![
            MutOp::Append { symbol: 3 },
            MutOp::Change { pos: 17, symbol: 0 },
            MutOp::Delete { pos: 9 },
            MutOp::Append { symbol: u32::MAX },
        ]
    }

    fn build_log(epoch: u64, start_seq: u64, ops: &[MutOp]) -> Vec<u8> {
        let mut bytes = encode_header(epoch).to_vec();
        for (i, op) in ops.iter().enumerate() {
            encode_record(start_seq + i as u64, op, &mut bytes);
        }
        bytes
    }

    #[test]
    fn roundtrip_all_op_kinds() {
        let ops = sample_ops();
        let bytes = build_log(7, 100, &ops);
        let tail = scan_bytes(&bytes, 100).expect("header");
        assert_eq!(tail.epoch, 7);
        assert!(!tail.truncated);
        assert_eq!(tail.valid_bytes, bytes.len() as u64);
        assert_eq!(tail.ops.len(), ops.len());
        for (i, (seq, op)) in tail.ops.iter().enumerate() {
            assert_eq!(*seq, 100 + i as u64);
            assert_eq!(op, &ops[i]);
        }
    }

    #[test]
    fn torn_tail_truncates_at_record_boundary() {
        let ops = sample_ops();
        let full = build_log(1, 1, &ops);
        // Byte lengths of every record-boundary prefix.
        let prefixes: Vec<usize> = (0..=ops.len())
            .map(|k| build_log(1, 1, &ops[..k]).len())
            .collect();
        // Cut the log at every byte: the scan keeps exactly the records
        // that fit completely before the cut, truncating the rest.
        for cut in WAL_HEADER_BYTES..full.len() {
            let keep = prefixes.iter().filter(|&&p| p <= cut).count() - 1;
            let tail = scan_bytes(&full[..cut], 1).expect("header");
            assert_eq!(tail.ops.len(), keep, "cut at {cut}");
            assert_eq!(tail.valid_bytes, prefixes[keep] as u64, "cut at {cut}");
            assert_eq!(tail.truncated, cut > prefixes[keep], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_truncates_from_that_record_on() {
        let ops = sample_ops();
        let clean = build_log(1, 1, &ops);
        let one = build_log(1, 1, &ops[..1]).len();
        let two = build_log(1, 1, &ops[..2]).len();
        // Flip a byte inside record 2: records 3-4 are unreachable (the
        // scan cannot trust any framing past the corruption).
        let mut bytes = clean;
        bytes[one + 6] ^= 0x80;
        let tail = scan_bytes(&bytes, 1).expect("header");
        assert_eq!(tail.ops.len(), 1);
        assert!(tail.valid_bytes <= two as u64);
        assert!(tail.truncated);
    }

    #[test]
    fn sequence_gap_truncates() {
        let mut bytes = encode_header(1).to_vec();
        encode_record(1, &MutOp::Append { symbol: 0 }, &mut bytes);
        encode_record(3, &MutOp::Append { symbol: 1 }, &mut bytes); // gap
        let tail = scan_bytes(&bytes, 1).expect("header");
        assert_eq!(tail.ops.len(), 1);
        assert!(tail.truncated);
    }

    #[test]
    fn wrong_start_seq_keeps_nothing() {
        let bytes = build_log(1, 5, &sample_ops());
        let tail = scan_bytes(&bytes, 9).expect("header");
        assert!(tail.ops.is_empty());
        assert_eq!(tail.valid_bytes, WAL_HEADER_BYTES as u64);
    }

    #[test]
    fn mangled_header_is_no_log() {
        let bytes = build_log(1, 1, &sample_ops());
        assert!(scan_bytes(&bytes[..10], 1).is_none());
        let mut bad = bytes.clone();
        bad[3] ^= 0x01;
        assert!(scan_bytes(&bad, 1).is_none());
        assert!(scan_bytes(&[], 1).is_none());
    }

    #[test]
    fn missing_file_scans_as_no_log() {
        let got = scan_wal(Path::new("/nonexistent/psi.wal"), 1).expect("not an error");
        assert!(got.is_none());
    }
}
