//! The log writer: buffered appends, group commit, and the
//! crash-injection hook the kill-at-every-offset harness drives.

use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use psi_api::MutOp;

use crate::record::{encode_header, encode_record, WAL_HEADER_BYTES};
use crate::WalError;

/// Appends records to one log file with **group commit**: operations
/// accumulate in a memory buffer and hit the disk — one `write` plus one
/// `fdatasync` for the whole batch — only on [`commit`](WalWriter::commit).
/// An operation is *acknowledged* (guaranteed to survive a crash) only
/// once a commit covering it returns; recovery may legitimately recover
/// more than was acknowledged (the OS may have flushed uncommitted
/// writes), never less.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    epoch: u64,
    /// Sequence number the next appended record receives.
    next_seq: u64,
    /// Highest sequence number covered by a completed commit.
    acked_seq: u64,
    /// Encoded-but-unwritten records.
    buf: Vec<u8>,
    /// Records currently in `buf`.
    pending: usize,
    /// File bytes durably structured so far (header + committed records).
    bytes_written: u64,
    /// Completed group commits (each one `write` + one sync).
    commits: u64,
    /// Test hook: crash (abort the process) once this many total file
    /// bytes would be exceeded, writing exactly up to the limit first —
    /// how the harness plants a torn record at a chosen byte offset.
    crash_after: Option<u64>,
}

impl WalWriter {
    /// Creates a fresh log at `path` for checkpoint `epoch`, whose first
    /// record will carry `start_seq`. The header is written and synced
    /// immediately, so a crash right after checkpointing still finds a
    /// valid (empty) log.
    pub fn create(path: impl AsRef<Path>, epoch: u64, start_seq: u64) -> Result<Self, WalError> {
        let mut file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        file.write_all(&encode_header(epoch))?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            path: path.as_ref().to_path_buf(),
            epoch,
            next_seq: start_seq,
            acked_seq: start_seq.saturating_sub(1),
            buf: Vec::new(),
            pending: 0,
            bytes_written: WAL_HEADER_BYTES as u64,
            commits: 0,
            crash_after: None,
        })
    }

    /// Reopens an existing log after a recovery scan: appending resumes
    /// at `valid_bytes` (the scan's truncation point — trailing garbage
    /// is cut off now) with sequence number `next_seq`.
    pub fn resume(
        path: impl AsRef<Path>,
        epoch: u64,
        valid_bytes: u64,
        next_seq: u64,
    ) -> Result<Self, WalError> {
        let file = File::options().read(true).write(true).open(path.as_ref())?;
        file.set_len(valid_bytes)?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            path: path.as_ref().to_path_buf(),
            epoch,
            next_seq,
            acked_seq: next_seq.saturating_sub(1),
            buf: Vec::new(),
            pending: 0,
            bytes_written: valid_bytes,
            commits: 0,
            crash_after: None,
        })
    }

    /// Journals one operation into the commit buffer and returns its
    /// sequence number. Not durable until a [`commit`](Self::commit)
    /// covering it returns.
    pub fn append(&mut self, op: &MutOp) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        encode_record(seq, op, &mut self.buf);
        self.pending += 1;
        seq
    }

    /// Flushes the commit buffer — one positioned write, one
    /// `fdatasync` — and acknowledges every buffered operation.
    /// Returns the acknowledged sequence number. A no-op (no sync)
    /// when nothing is pending.
    pub fn commit(&mut self) -> Result<u64, WalError> {
        if self.pending > 0 {
            self.file.seek(SeekFrom::Start(self.bytes_written))?;
            if let Some(limit) = self.crash_after {
                if self.bytes_written + self.buf.len() as u64 > limit {
                    // Planted crash: emit exactly up to the limit — the
                    // torn suffix the harness wants on disk — then die
                    // without unwinding, like a power cut.
                    let keep = limit.saturating_sub(self.bytes_written) as usize;
                    let _ = self.file.write_all(&self.buf[..keep]);
                    let _ = self.file.sync_all();
                    std::process::abort();
                }
            }
            let sync_start = psi_obs::enabled().then(std::time::Instant::now);
            self.file.write_all(&self.buf)?;
            self.file.sync_data()?;
            let m = crate::metrics::wal_metrics();
            m.commits.inc();
            m.commit_batch.record(self.pending as u64);
            if let Some(start) = sync_start {
                m.fsync_ns.record_since(start);
            }
            self.bytes_written += self.buf.len() as u64;
            self.buf.clear();
            self.pending = 0;
            self.commits += 1;
            self.acked_seq = self.next_seq - 1;
        }
        Ok(self.acked_seq)
    }

    /// Operations buffered but not yet committed.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Checkpoint epoch this log extends.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Highest acknowledged (committed) sequence number.
    pub fn acked_seq(&self) -> u64 {
        self.acked_seq
    }

    /// Committed log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes_written
    }

    /// Group commits completed (each is one write + one sync — the
    /// group-commit win is `appends / commits` syncs saved).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Arms the crash hook: the process aborts during the first commit
    /// that would push the file past `total_bytes`, leaving a torn
    /// record. Testing only.
    #[doc(hidden)]
    pub fn set_crash_after_bytes(&mut self, total_bytes: u64) {
        self.crash_after = Some(total_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::scan_wal;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("psi_wal_writer");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_commit_scan_roundtrip() {
        let path = tmp("roundtrip.wal");
        let mut w = WalWriter::create(&path, 3, 10).expect("create");
        assert_eq!(w.append(&MutOp::Append { symbol: 1 }), 10);
        assert_eq!(w.append(&MutOp::Delete { pos: 4 }), 11);
        assert_eq!(w.pending(), 2);
        assert_eq!(w.commit().expect("commit"), 11);
        assert_eq!(w.pending(), 0);
        assert_eq!(w.commits(), 1);
        let tail = scan_wal(&path, 10).expect("scan").expect("header");
        assert_eq!(tail.epoch, 3);
        assert_eq!(tail.ops.len(), 2);
        assert!(!tail.truncated);
    }

    #[test]
    fn uncommitted_appends_are_not_on_disk() {
        let path = tmp("unflushed.wal");
        let mut w = WalWriter::create(&path, 1, 1).expect("create");
        w.append(&MutOp::Append { symbol: 7 });
        // No commit: the file holds only the header.
        let tail = scan_wal(&path, 1).expect("scan").expect("header");
        assert!(tail.ops.is_empty());
        assert_eq!(w.acked_seq(), 0);
    }

    #[test]
    fn group_commit_batches_syncs() {
        let path = tmp("group.wal");
        let mut w = WalWriter::create(&path, 1, 1).expect("create");
        for i in 0..100 {
            w.append(&MutOp::Append { symbol: i });
        }
        w.commit().expect("commit");
        assert_eq!(w.commits(), 1, "100 appends, one sync");
        assert_eq!(w.acked_seq(), 100);
        // An empty commit is free.
        w.commit().expect("noop");
        assert_eq!(w.commits(), 1);
    }

    #[test]
    fn resume_truncates_garbage_and_continues() {
        let path = tmp("resume.wal");
        let mut w = WalWriter::create(&path, 2, 1).expect("create");
        w.append(&MutOp::Append { symbol: 1 });
        w.commit().expect("commit");
        let valid = w.bytes();
        drop(w);
        // Torn tail from a crashed commit.
        let mut f = File::options().append(true).open(&path).expect("open");
        f.write_all(&[0xCD; 13]).expect("garbage");
        drop(f);
        let mut w = WalWriter::resume(&path, 2, valid, 2).expect("resume");
        w.append(&MutOp::Delete { pos: 0 });
        w.commit().expect("commit");
        let tail = scan_wal(&path, 1).expect("scan").expect("header");
        assert_eq!(tail.ops.len(), 2);
        assert!(!tail.truncated, "resume cut the garbage");
    }
}
