//! The durable handle: a dynamic index whose mutations are journaled to
//! a WAL before acknowledgement, checkpointed incrementally, and
//! recovered by checkpoint-open + log replay.

use std::path::{Path, PathBuf};

use psi_api::{ApplyOp, MutOp};
use psi_io::IoSession;
use psi_store::{
    checkpoint_epoch, open_checkpoint, CheckpointFile, CheckpointReport, OpenOptions, PersistIndex,
};

use crate::record::scan_wal;
use crate::writer::WalWriter;
use crate::WalError;

/// File name of the checkpoint inside a durable directory.
pub const CHECKPOINT_FILE: &str = "index.ck";

/// Log file name for checkpoint `epoch` inside a durable directory.
pub fn wal_file_name(epoch: u64) -> String {
    format!("wal-{epoch:016x}")
}

/// Options for [`Durable::create`] and [`recover`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Group-commit watermark: [`Durable::apply`] auto-commits once this
    /// many operations are buffered. `1` commits (syncs) every
    /// operation; larger values amortize the sync over the group.
    pub group_commit_ops: usize,
    /// When set, [`Durable::commit`] triggers an automatic checkpoint
    /// once the log exceeds this many bytes, bounding replay time.
    pub checkpoint_wal_bytes: Option<u64>,
    /// How the checkpoint file is opened during recovery.
    pub open: OpenOptions,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            group_commit_ops: 64,
            checkpoint_wal_bytes: None,
            open: OpenOptions::default(),
        }
    }
}

/// What [`recover`] found and did.
#[derive(Debug, Clone, Copy)]
pub struct RecoverReport {
    /// Checkpoint epoch recovery started from.
    pub epoch: u64,
    /// Sequence number the checkpoint had already absorbed.
    pub checkpoint_seq: u64,
    /// Log-tail operations replayed on top of the checkpoint.
    pub replayed: usize,
    /// Whether the log tail was truncated at a torn/corrupt record.
    pub log_truncated: bool,
}

/// A dynamic [`SecondaryIndex`](psi_api::SecondaryIndex) with a durable
/// write path.
///
/// Every mutation is journaled ([`apply`](Self::apply)) before being
/// acknowledged; [`commit`](Self::commit) group-syncs the journal;
/// [`checkpoint`](Self::checkpoint) absorbs the log into the incremental
/// checkpoint file and starts a fresh log; [`recover`] rebuilds the
/// exact acknowledged state (possibly more — never less) after a crash
/// at **any** byte of any of those steps.
#[derive(Debug)]
pub struct Durable<I> {
    dir: PathBuf,
    index: I,
    cp: CheckpointFile,
    wal: WalWriter,
    opts: DurableOptions,
}

impl<I: PersistIndex + ApplyOp> Durable<I> {
    /// Makes a freshly built (fully resident) index durable in directory
    /// `dir`: writes checkpoint epoch 1 and an empty log for it.
    pub fn create(dir: impl AsRef<Path>, index: I, opts: DurableOptions) -> Result<Self, WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let (cp, _) =
            CheckpointFile::create(dir.join(CHECKPOINT_FILE), &index, &0u64.to_le_bytes(), 1)?;
        let wal = WalWriter::create(dir.join(wal_file_name(cp.epoch())), cp.epoch(), 1)?;
        let durable = Durable {
            dir,
            index,
            cp,
            wal,
            opts,
        };
        durable.sweep_stale_wals();
        Ok(durable)
    }

    /// Journals one operation and applies it to the in-memory index.
    /// Returns its sequence number. The operation is **acknowledged**
    /// (durable) only once a later [`commit`](Self::commit) returns —
    /// including the automatic one this call issues when the buffered
    /// group reaches `group_commit_ops`.
    ///
    /// An inapplicable operation (out-of-range position, symbol outside
    /// the alphabet) is rejected *before* it is journaled — the log only
    /// ever holds operations that replay cleanly.
    pub fn apply(&mut self, op: &MutOp, io: &IoSession) -> Result<u64, WalError> {
        self.index.apply_op(op, io)?;
        let seq = self.wal.append(op);
        if self.wal.pending() >= self.opts.group_commit_ops.max(1) {
            self.commit()?;
        }
        Ok(seq)
    }

    /// Group-commits every journaled-but-unacknowledged operation (one
    /// write + one sync for the whole group) and returns the highest
    /// acknowledged sequence number. Auto-checkpoints afterwards when
    /// the log has outgrown `checkpoint_wal_bytes`.
    pub fn commit(&mut self) -> Result<u64, WalError> {
        let acked = self.wal.commit()?;
        if let Some(limit) = self.opts.checkpoint_wal_bytes {
            if self.wal.bytes() > limit {
                self.checkpoint()?;
            }
        }
        Ok(acked)
    }

    /// Absorbs the log into the checkpoint and starts a fresh, empty
    /// one: commit the log, incrementally checkpoint the index (only
    /// dirty extents are written) stamped with the next epoch, create
    /// the next epoch's log, then delete the old log.
    ///
    /// Crash-ordering: the new checkpoint's slot flip is the commit
    /// point. Before it, recovery uses the old checkpoint + old log
    /// (complete); after it, the new checkpoint alone already covers
    /// every acknowledged operation, whether or not the new log or the
    /// deletions happened.
    pub fn checkpoint(&mut self) -> Result<CheckpointReport, WalError> {
        self.wal.commit()?;
        let applied = self.wal.next_seq() - 1;
        let report = self.cp.update(&self.index, &applied.to_le_bytes())?;
        let m = crate::metrics::wal_metrics();
        m.checkpoints.inc();
        m.checkpoint_bytes.add(report.bytes_written);
        let epoch = self.cp.epoch();
        self.wal = WalWriter::create(
            self.dir.join(wal_file_name(epoch)),
            epoch,
            self.wal.next_seq(),
        )?;
        self.sweep_stale_wals();
        Ok(report)
    }

    /// Deletes log files no superblock slot can name (left by a crash
    /// inside the checkpoint protocol). Best-effort: the kept set is the
    /// current log **plus the log of every epoch still present in a
    /// decodable checkpoint slot** — if the newest slot's flip write
    /// turns out torn on disk, recovery falls back to the other slot and
    /// must find *its* log intact, so that log is live state, not trash.
    /// (Each checkpoint retires the two-epochs-old slot, so at most one
    /// extra log survives per sweep.)
    fn sweep_stale_wals(&self) {
        let mut keep = vec![wal_file_name(self.wal.epoch())];
        if let Ok(epochs) = psi_store::checkpoint_slot_epochs(self.dir.join(CHECKPOINT_FILE)) {
            keep.extend(epochs.into_iter().map(wal_file_name));
        }
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("wal-") && !keep.iter().any(|k| *k == name) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }

    /// The underlying index, for queries. Mutations must go through
    /// [`apply`](Self::apply) — hence no `&mut` access.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Highest acknowledged (guaranteed-durable) sequence number.
    pub fn acked_seq(&self) -> u64 {
        self.wal.acked_seq()
    }

    /// Sequence number of the last applied (possibly unacknowledged)
    /// operation.
    pub fn last_seq(&self) -> u64 {
        self.wal.next_seq() - 1
    }

    /// Committed size of the current log in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// Group commits completed on the current log.
    pub fn wal_commits(&self) -> u64 {
        self.wal.commits()
    }

    /// Current checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        self.cp.epoch()
    }

    /// Directory this handle persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arms the log writer's crash hook (see
    /// [`WalWriter::set_crash_after_bytes`]). Testing only.
    #[doc(hidden)]
    pub fn set_crash_after_bytes(&mut self, total_bytes: u64) {
        self.wal.set_crash_after_bytes(total_bytes);
    }
}

impl<I: psi_api::SecondaryIndex> Durable<I> {
    /// Fallible read straight off the durable handle: delegates to the
    /// index's [`psi_api::SecondaryIndex::try_query`], so a real-read
    /// failure under the recovered (file-backed) checkpoint surfaces as
    /// a typed [`psi_api::ReadError`] instead of a panic — the durable
    /// write path and the fault-tolerant read path meet here.
    pub fn try_query(
        &self,
        lo: psi_api::Symbol,
        hi: psi_api::Symbol,
        io: &IoSession,
    ) -> Result<psi_api::RidSet, psi_api::ReadError> {
        self.index.try_query(lo, hi, io)
    }
}

impl<I> Drop for Durable<I> {
    fn drop(&mut self) {
        // Friendly, not load-bearing: ack what was applied. Correctness
        // never depends on drop running (that is the whole point).
        let _ = self.wal.commit();
    }
}

/// Recovers the durable index in `dir` after a crash (or clean
/// shutdown): opens the live checkpoint (whichever superblock slot
/// committed last), replays the intact prefix of its log on top —
/// truncating, never erroring, at the first torn or corrupt record —
/// and returns a handle ready for new operations.
pub fn recover<I: PersistIndex + ApplyOp>(
    dir: impl AsRef<Path>,
    opts: DurableOptions,
) -> Result<(Durable<I>, RecoverReport), WalError> {
    let dir = dir.as_ref().to_path_buf();
    let ck_path = dir.join(CHECKPOINT_FILE);
    let (opened, extra) = open_checkpoint::<I>(&ck_path, &opts.open)?;
    let epoch = checkpoint_epoch(&ck_path)?;
    if extra.len() != 8 {
        return Err(WalError::Recovery {
            what: format!(
                "checkpoint sequence watermark is {} bytes, expected 8",
                extra.len()
            ),
        });
    }
    let checkpoint_seq = u64::from_le_bytes(extra[..8].try_into().expect("8 bytes"));
    let mut index = opened.index;

    // Replay the log tail. A missing or headerless log means the crash
    // hit between checkpoint commit and log creation: the checkpoint
    // alone is complete.
    let wal_path = dir.join(wal_file_name(epoch));
    let io = IoSession::untracked();
    let (replayed, log_truncated, valid_bytes, next_seq) =
        match scan_wal(&wal_path, checkpoint_seq + 1).map_err(WalError::from)? {
            Some(tail) if tail.epoch == epoch => {
                let n = tail.ops.len();
                for (seq, op) in &tail.ops {
                    index.apply_op(op, &io).map_err(|e| WalError::Recovery {
                        what: format!("journaled operation {seq} does not replay: {e}"),
                    })?;
                }
                (
                    n,
                    tail.truncated,
                    Some(tail.valid_bytes),
                    checkpoint_seq + n as u64 + 1,
                )
            }
            // Wrong-epoch header: a stale log — ignore it entirely.
            Some(_) | None => (0, false, None, checkpoint_seq + 1),
        };

    let cp = CheckpointFile::attach(&ck_path)?;
    let wal = match valid_bytes {
        Some(bytes) => WalWriter::resume(&wal_path, epoch, bytes, next_seq)?,
        None => WalWriter::create(&wal_path, epoch, next_seq)?,
    };
    let durable = Durable {
        dir,
        index,
        cp,
        wal,
        opts,
    };
    durable.sweep_stale_wals();
    let m = crate::metrics::wal_metrics();
    m.recoveries.inc();
    m.replayed_ops.add(replayed as u64);
    Ok((
        durable,
        RecoverReport {
            epoch,
            checkpoint_seq,
            replayed,
            log_truncated,
        },
    ))
}
