//! The durable write path's always-on instruments, resolved once from
//! the global [`psi_obs::Registry`].
//!
//! Recording is per *durability event* — one histogram sample per group
//! commit, one counter bump per checkpoint or recovery — never per
//! journaled operation.

use std::sync::{Arc, OnceLock};

use psi_obs::{Counter, Histogram, Registry};

/// Shared instrument handles for the WAL layer.
#[derive(Debug)]
pub struct WalMetrics {
    /// `wal/commits` — group commits completed (each one write + one
    /// fdatasync).
    pub commits: Arc<Counter>,
    /// `wal/commit_batch` — operations acknowledged per group commit
    /// (the group-commit win is this histogram's mean syncs-saved).
    pub commit_batch: Arc<Histogram>,
    /// `wal/fsync_ns` — wall-clock latency of the commit's write+sync
    /// pair.
    pub fsync_ns: Arc<Histogram>,
    /// `wal/checkpoints` — checkpoints completed.
    pub checkpoints: Arc<Counter>,
    /// `wal/checkpoint_bytes` — bytes physically written by checkpoints
    /// (the incremental advantage keeps this proportional to dirty
    /// extents, not index size).
    pub checkpoint_bytes: Arc<Counter>,
    /// `wal/recoveries` — successful crash recoveries.
    pub recoveries: Arc<Counter>,
    /// `wal/replayed_ops` — log-tail operations replayed on top of
    /// checkpoints during recovery.
    pub replayed_ops: Arc<Counter>,
}

/// The crate's instrument handles, resolved once per process.
pub fn wal_metrics() -> &'static WalMetrics {
    static METRICS: OnceLock<WalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        WalMetrics {
            commits: r.counter("wal/commits"),
            commit_batch: r.histogram("wal/commit_batch"),
            fsync_ns: r.histogram("wal/fsync_ns"),
            checkpoints: r.counter("wal/checkpoints"),
            checkpoint_bytes: r.counter("wal/checkpoint_bytes"),
            recoveries: r.counter("wal/recoveries"),
            replayed_ops: r.counter("wal/replayed_ops"),
        }
    })
}
