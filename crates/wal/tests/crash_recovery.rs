//! Crash recovery under exhaustive fault injection: kill the write path
//! at every offset and prove recovery reproduces the acknowledged
//! prefix, bit-identical to a `BTreeSet` oracle.
//!
//! The full kill-at-every-offset claim is decomposed into layers, from
//! cheap-and-exhaustive to expensive-and-sampled:
//!
//! 1. **Every-byte scan sweep** — a real log produced by a real workload
//!    is cut at every byte and the scan must keep exactly the records
//!    that fit (`scan_sweep_over_real_log_every_byte`).
//! 2. **Record-boundary recovery sweep** — directory snapshots taken at
//!    every checkpoint let the log be truncated at *every record
//!    boundary of the whole workload*; each truncation is recovered and
//!    compared against the oracle prefix (both index families).
//! 3. **Intra-record byte sweep** — one tail is additionally cut at
//!    non-boundary byte offsets (every byte under `PSI_WAL_SWEEP=full`,
//!    a stride otherwise): recovery lands on the previous boundary.
//! 4. **Real process kills** — a child process (this test binary,
//!    re-exec'd) runs the workload with the crash hook armed and is
//!    `abort()`ed mid-commit at a grid of byte offsets; the parent
//!    recovers and checks nothing acknowledged was lost.
//! 5. **Mid-checkpoint crash** — byte surgery plants a torn superblock
//!    slot flip; recovery falls back to the previous epoch and replays
//!    the old log.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use psi_api::{ApplyOp, MutOp, SecondaryIndex};
use psi_core::{FullyDynamicIndex, SemiDynamicIndex};
use psi_io::{IoConfig, IoSession};
use psi_store::PersistIndex;
use psi_wal::{recover, scan_bytes, wal_file_name, Durable, DurableOptions, WAL_HEADER_BYTES};

const SIGMA: u32 = 8;

fn cfg() -> IoConfig {
    IoConfig::with_block_bits(512)
}

fn full_sweep() -> bool {
    std::env::var("PSI_WAL_SWEEP").ok().as_deref() == Some("full")
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("psi_wal_crash").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).expect("snapshot dir");
    for entry in std::fs::read_dir(from).expect("read dir").flatten() {
        std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy");
    }
}

// ---------------------------------------------------------------- oracle

/// Per-character `BTreeSet` oracle, same convention as the workspace's
/// dynamic-oracle suite (`SIGMA` marks a deleted position).
#[derive(Clone)]
struct Oracle {
    sets: Vec<BTreeSet<u64>>,
    mirror: Vec<u32>,
}

impl Oracle {
    fn new(initial: &[u32]) -> Oracle {
        let mut o = Oracle {
            sets: vec![BTreeSet::new(); SIGMA as usize],
            mirror: Vec::new(),
        };
        for &s in initial {
            o.apply(&MutOp::Append { symbol: s });
        }
        o
    }

    fn apply(&mut self, op: &MutOp) {
        match *op {
            MutOp::Append { symbol } => {
                self.sets[symbol as usize].insert(self.mirror.len() as u64);
                self.mirror.push(symbol);
            }
            MutOp::Change { pos, symbol } => {
                let old = self.mirror[pos as usize];
                if old < SIGMA {
                    self.sets[old as usize].remove(&pos);
                }
                self.sets[symbol as usize].insert(pos);
                self.mirror[pos as usize] = symbol;
            }
            MutOp::Delete { pos } => {
                let old = self.mirror[pos as usize];
                if old < SIGMA {
                    self.sets[old as usize].remove(&pos);
                }
                self.mirror[pos as usize] = SIGMA;
            }
        }
    }

    fn expected(&self, lo: u32, hi: u32) -> Vec<u64> {
        let mut all: Vec<u64> = (lo..=hi)
            .flat_map(|c| self.sets[c as usize].iter().copied())
            .collect();
        all.sort_unstable();
        all
    }
}

/// Oracle state after the first `prefix` operations.
fn oracle_at(initial: &[u32], ops: &[MutOp], prefix: usize) -> Oracle {
    let mut o = Oracle::new(initial);
    for op in &ops[..prefix] {
        o.apply(op);
    }
    o
}

fn check_ranges<I: SecondaryIndex>(idx: &I, oracle: &Oracle, ranges: &[(u32, u32)], ctx: &str) {
    let io = IoSession::new();
    for &(lo, hi) in ranges {
        let got = idx.query(lo, hi, &io).to_vec();
        assert_eq!(got, oracle.expected(lo, hi), "{ctx}: range [{lo}, {hi}]");
    }
}

fn check_all_ranges<I: SecondaryIndex>(idx: &I, oracle: &Oracle, ctx: &str) {
    let all: Vec<(u32, u32)> = (0..SIGMA)
        .flat_map(|lo| (lo..SIGMA).map(move |hi| (lo, hi)))
        .collect();
    check_ranges(idx, oracle, &all, ctx);
}

// -------------------------------------------------------------- workload

/// Splitmix-style deterministic generator (no external RNG dependency;
/// parent and child processes must derive identical workloads).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn initial_symbols(seed: u64, n: usize) -> Vec<u32> {
    let mut g = Gen(seed ^ 0xA5A5);
    (0..n).map(|_| (g.next() % SIGMA as u64) as u32).collect()
}

/// Deterministic mixed workload (append / change / delete) that is valid
/// against a string of `initial_len` starting symbols.
fn mixed_ops(seed: u64, n: usize, initial_len: usize) -> Vec<MutOp> {
    let mut g = Gen(seed);
    let mut len = initial_len as u64;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let r = g.next();
        let op = if r % 100 < 35 || len == 0 {
            len += 1;
            MutOp::Append {
                symbol: ((r >> 8) % SIGMA as u64) as u32,
            }
        } else if r % 100 < 70 {
            MutOp::Change {
                pos: (r >> 8) % len,
                symbol: ((r >> 40) % SIGMA as u64) as u32,
            }
        } else {
            MutOp::Delete {
                pos: (r >> 8) % len,
            }
        };
        ops.push(op);
    }
    ops
}

fn append_ops(seed: u64, n: usize) -> Vec<MutOp> {
    let mut g = Gen(seed);
    (0..n)
        .map(|_| MutOp::Append {
            symbol: (g.next() % SIGMA as u64) as u32,
        })
        .collect()
}

// ------------------------------------------------- 1. every-byte scan sweep

#[test]
fn scan_sweep_over_real_log_every_byte() {
    let dir = test_dir("scan_sweep");
    let initial = initial_symbols(11, 64);
    let ops = mixed_ops(12, 300, initial.len());
    let idx = FullyDynamicIndex::build(&initial, SIGMA, cfg());
    let mut d = Durable::create(
        &dir,
        idx,
        DurableOptions {
            group_commit_ops: 16,
            ..DurableOptions::default()
        },
    )
    .expect("create");
    let io = IoSession::untracked();
    for op in &ops {
        d.apply(op, &io).expect("apply");
    }
    d.commit().expect("commit");
    let epoch = d.epoch();
    drop(d);

    let log = std::fs::read(dir.join(wal_file_name(epoch))).expect("read log");
    // Record-boundary byte offsets, reconstructed from a parallel scan.
    let full = scan_bytes(&log, 1).expect("header");
    assert_eq!(full.ops.len(), ops.len());
    // Cut at every byte: the scan keeps the longest record prefix that
    // fits, and parsed operations match the workload exactly.
    let mut boundary_count = 0;
    for cut in WAL_HEADER_BYTES..=log.len() {
        let tail = scan_bytes(&log[..cut], 1).expect("header survives any cut");
        let k = tail.ops.len();
        assert!(tail.valid_bytes <= cut as u64, "cut at {cut}");
        for (i, (seq, op)) in tail.ops.iter().enumerate() {
            assert_eq!(*seq, 1 + i as u64, "cut at {cut}");
            assert_eq!(op, &ops[i], "cut at {cut}");
        }
        if tail.valid_bytes == cut as u64 {
            boundary_count += 1;
        } else {
            // Mid-record cut: strictly fewer records than the full log.
            assert!(k < ops.len(), "cut at {cut}");
        }
    }
    assert_eq!(boundary_count, ops.len() + 1, "one boundary per record");

    // Flip every byte (one at a time): never a panic, and whatever still
    // parses is an untouched prefix of the real workload — the checksum
    // kills the flipped record and everything after it.
    let stride = if full_sweep() { 1 } else { 7 };
    for at in (WAL_HEADER_BYTES..log.len()).step_by(stride) {
        let mut mutated = log.clone();
        mutated[at] ^= 0x55;
        let tail = scan_bytes(&mutated, 1).expect("header intact");
        assert!(tail.ops.len() < ops.len(), "flip at {at} went undetected");
        for (i, (_, op)) in tail.ops.iter().enumerate() {
            assert_eq!(op, &ops[i], "flip at {at}");
        }
    }
}

// -------------------------------------- 2+3. record-boundary recovery sweep

/// Runs `ops` through a `Durable`, snapshotting the directory before
/// every checkpoint, then truncates every snapshot's log at every record
/// boundary (and, for torn coverage, at sampled non-boundary bytes),
/// recovers each truncation, and compares against the oracle prefix.
fn recovery_sweep<I, B>(family: &str, build: B, initial: &[u32], ops: &[MutOp], ckpt_every: usize)
where
    I: PersistIndex + ApplyOp + SecondaryIndex,
    B: Fn() -> I,
{
    let master = test_dir(&format!("sweep_master_{family}"));
    let scratch = test_dir(&format!("sweep_scratch_{family}"));
    let io = IoSession::untracked();

    // Snapshots: (directory, sequence number the snapshot's checkpoint
    // covers). Ops are fully committed before every snapshot, so each
    // snapshot's log holds intact records only.
    let mut snapshots: Vec<(PathBuf, u64)> = Vec::new();
    let mut d = Durable::create(
        &master,
        build(),
        DurableOptions {
            group_commit_ops: 32,
            ..DurableOptions::default()
        },
    )
    .expect("create");
    let mut ckpt_seq = 0u64;
    for (k, op) in ops.iter().enumerate() {
        if k % ckpt_every == 0 {
            d.commit().expect("commit");
            let snap = master.with_file_name(format!("sweep_snap_{family}_{k}"));
            copy_dir(&master, &snap);
            snapshots.push((snap, ckpt_seq));
            if k > 0 {
                d.checkpoint().expect("checkpoint");
                ckpt_seq = d.last_seq();
            }
        }
        d.apply(op, &io).expect("apply");
    }
    d.commit().expect("final commit");
    let snap = master.with_file_name(format!("sweep_snap_{family}_end"));
    copy_dir(&master, &snap);
    snapshots.push((snap, ckpt_seq));
    drop(d);

    // Sweep every snapshot: cut its log after 0..=tail records.
    let mut recoveries = 0usize;
    for (snap, ckpt_seq) in &snapshots {
        let epoch =
            psi_store::checkpoint_epoch(snap.join(psi_wal::CHECKPOINT_FILE)).expect("epoch");
        let log_path = snap.join(wal_file_name(epoch));
        let log = std::fs::read(&log_path).expect("read log");
        let tail = scan_bytes(&log, ckpt_seq + 1).expect("header");
        assert!(!tail.truncated, "snapshot logs are fully committed");

        // Byte offset of every record boundary (single forward pass over
        // the framing; checksums were already verified by the scan).
        let mut boundaries = vec![WAL_HEADER_BYTES as u64];
        let mut at = WAL_HEADER_BYTES;
        for _ in 0..tail.ops.len() {
            let body_len =
                u32::from_le_bytes(log[at..at + 4].try_into().expect("4 bytes")) as usize;
            at += 4 + body_len + 8;
            boundaries.push(at as u64);
        }
        assert_eq!(*boundaries.last().expect("nonempty"), log.len() as u64);

        for (k, &cut) in boundaries.iter().enumerate() {
            let trial = scratch.join("trial");
            copy_dir(snap, &trial);
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(trial.join(wal_file_name(epoch)))
                .expect("open log");
            f.set_len(cut).expect("truncate");
            drop(f);
            let (rd, report) = recover::<I>(&trial, DurableOptions::default()).expect("recover");
            assert_eq!(report.checkpoint_seq, *ckpt_seq);
            assert_eq!(report.replayed, k, "cut after {k} records");
            assert!(!report.log_truncated, "boundary cut leaves no garbage");
            let prefix = (*ckpt_seq as usize) + k;
            let oracle = oracle_at(initial, ops, prefix);
            recoveries += 1;
            if recoveries.is_multiple_of(32) || k == boundaries.len() - 1 {
                check_all_ranges(rd.index(), &oracle, &format!("{family} prefix {prefix}"));
            } else {
                check_ranges(
                    rd.index(),
                    &oracle,
                    &[(0, SIGMA - 1), (2, 5), (7, 7)],
                    &format!("{family} prefix {prefix}"),
                );
            }
        }

        // Torn (non-boundary) cuts: recovery lands on the previous
        // boundary. Every byte under PSI_WAL_SWEEP=full, sampled else.
        let stride = if full_sweep() { 1 } else { 37 };
        for cut in ((WAL_HEADER_BYTES as u64 + 1)..log.len() as u64).step_by(stride) {
            if boundaries.binary_search(&cut).is_ok() {
                continue;
            }
            let k = boundaries.partition_point(|&b| b <= cut) - 1;
            let trial = scratch.join("trial");
            copy_dir(snap, &trial);
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(trial.join(wal_file_name(epoch)))
                .expect("open log");
            f.set_len(cut).expect("truncate");
            drop(f);
            let (rd, report) = recover::<I>(&trial, DurableOptions::default()).expect("recover");
            assert_eq!(report.replayed, k, "torn cut at byte {cut}");
            assert!(report.log_truncated, "torn cut leaves garbage");
            let prefix = (*ckpt_seq as usize) + k;
            check_ranges(
                rd.index(),
                &oracle_at(initial, ops, prefix),
                &[(0, SIGMA - 1), (1, 6)],
                &format!("{family} torn byte {cut}"),
            );
        }
    }
    assert!(
        recoveries > ops.len(),
        "sweep exercised every record boundary ({recoveries} recoveries)"
    );

    for (snap, _) in &snapshots {
        let _ = std::fs::remove_dir_all(snap);
    }
}

#[test]
fn kill_at_every_record_boundary_fully_dynamic() {
    let n = if full_sweep() { 1500 } else { 1000 };
    let initial = initial_symbols(21, 128);
    let ops = mixed_ops(22, n, initial.len());
    recovery_sweep(
        "fully",
        || FullyDynamicIndex::build(&initial, SIGMA, cfg()),
        &initial,
        &ops,
        250,
    );
}

#[test]
fn kill_at_every_record_boundary_semi_dynamic() {
    let n = if full_sweep() { 1500 } else { 1000 };
    let ops = append_ops(31, n);
    recovery_sweep(
        "semi",
        || SemiDynamicIndex::new(SIGMA, cfg()),
        &[],
        &ops,
        250,
    );
}

// ------------------------------------------------ 4. real process kills

/// Child half of the subprocess kill harness: runs the deterministic
/// workload with the crash hook armed, recording every acknowledged
/// sequence number crash-atomically (temp + rename) in a side file.
/// A no-op unless spawned by `kill_mid_commit_subprocess_grid`.
#[test]
fn child_writer_entry() {
    if std::env::var("PSI_WAL_CHILD").ok().as_deref() != Some("writer") {
        return;
    }
    let dir = PathBuf::from(std::env::var("PSI_WAL_DIR").expect("dir"));
    let crash_at: u64 = std::env::var("PSI_WAL_CRASH_AT")
        .expect("offset")
        .parse()
        .expect("offset");
    let initial = initial_symbols(41, 96);
    let ops = mixed_ops(42, 400, initial.len());
    let idx = FullyDynamicIndex::build(&initial, SIGMA, cfg());
    let mut d = Durable::create(
        &dir,
        idx,
        DurableOptions {
            group_commit_ops: usize::MAX, // manual commits below
            ..DurableOptions::default()
        },
    )
    .expect("create");
    // `crash_at` counts cumulative log bytes across epochs, so the grid
    // reaches crashes in later epochs' logs too.
    let mut logged: u64 = 0;
    d.set_crash_after_bytes(crash_at);
    let io = IoSession::untracked();
    for (k, op) in ops.iter().enumerate() {
        d.apply(op, &io).expect("apply");
        if (k + 1) % 8 == 0 {
            // The planted crash aborts inside this commit once the log
            // would cross `crash_at` bytes.
            let acked = d.commit().expect("commit");
            let ack_path = dir.join("acked.txt");
            let tmp = dir.join("acked.txt.tmp");
            std::fs::write(&tmp, acked.to_string()).expect("ack tmp");
            std::fs::rename(&tmp, &ack_path).expect("ack rename");
        }
        if (k + 1) % 128 == 0 {
            logged += d.wal_bytes();
            d.checkpoint().expect("checkpoint");
            let remaining = crash_at.saturating_sub(logged);
            if remaining > 0 {
                d.set_crash_after_bytes(remaining); // re-arm the fresh log
            }
        }
    }
    std::mem::forget(d); // a real crash runs no destructors
}

#[test]
fn kill_mid_commit_subprocess_grid() {
    let exe = std::env::current_exe().expect("test binary");
    let offsets: Vec<u64> = if full_sweep() {
        (16..9000).step_by(16).collect()
    } else {
        vec![16, 40, 77, 150, 300, 500, 900, 1300, 1900, 2500, 4500, 7000]
    };
    let initial = initial_symbols(41, 96);
    let ops = mixed_ops(42, 400, initial.len());
    for crash_at in offsets {
        let dir = test_dir(&format!("subprocess_{crash_at}"));
        let status = std::process::Command::new(&exe)
            .args(["child_writer_entry", "--exact", "--test-threads=1", "-q"])
            .env("PSI_WAL_CHILD", "writer")
            .env("PSI_WAL_DIR", &dir)
            .env("PSI_WAL_CRASH_AT", crash_at.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("spawn child");
        // Small offsets abort (SIGABRT), large ones let the child finish.
        let crashed = !status.success();

        let acked: u64 = std::fs::read_to_string(dir.join("acked.txt"))
            .map(|s| s.trim().parse().expect("acked"))
            .unwrap_or(0);
        let (rd, report) = recover::<FullyDynamicIndex>(&dir, DurableOptions::default())
            .expect("recover after kill");
        let recovered = report.checkpoint_seq + report.replayed as u64;
        assert!(
            recovered >= acked,
            "crash at {crash_at} (crashed={crashed}): lost acknowledged ops \
             ({recovered} recovered < {acked} acked)"
        );
        check_all_ranges(
            rd.index(),
            &oracle_at(&initial, &ops, recovered as usize),
            &format!("subprocess crash at {crash_at}"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// --------------------------------------------- 5. mid-checkpoint crashes

#[test]
fn torn_slot_flip_falls_back_to_previous_epoch_and_replays() {
    let dir = test_dir("torn_flip");
    let initial = initial_symbols(51, 3000); // big: keeps dead < live
    let ops = mixed_ops(52, 300, initial.len());
    let idx = FullyDynamicIndex::build(&initial, SIGMA, cfg());
    let mut d = Durable::create(&dir, idx, DurableOptions::default()).expect("create");
    let io = IoSession::untracked();
    for op in &ops {
        d.apply(op, &io).expect("apply");
    }
    d.commit().expect("commit");
    let old_epoch = d.epoch();
    let old_wal = std::fs::read(dir.join(wal_file_name(old_epoch))).expect("old log");
    let report = d.checkpoint().expect("checkpoint");
    assert!(
        !report.compacted,
        "surgery needs an in-place slot flip; grow the initial string"
    );
    let new_epoch = d.epoch();
    assert!(new_epoch > old_epoch);
    drop(d);

    // The checkpoint's stale-log sweep must have spared the old epoch's
    // log: its epoch is still named by a decodable superblock slot, and
    // if the flip write below turns out torn, that log is the only
    // recovery source. (The sweep used to delete it — this test then
    // needed to write the saved bytes back by hand to recover at all.)
    assert!(
        dir.join(wal_file_name(old_epoch)).exists(),
        "sweep deleted the log of a still-decodable superblock slot"
    );
    assert_eq!(
        std::fs::read(dir.join(wal_file_name(old_epoch))).expect("old log"),
        old_wal,
        "surviving old log must be byte-identical, not rewritten"
    );

    // Byte surgery: the crash happened mid slot-flip — the new slot is
    // torn (checksum dead), the new log was never created, the old log
    // never deleted.
    let ck = dir.join(psi_wal::CHECKPOINT_FILE);
    let mut bytes = std::fs::read(&ck).expect("read checkpoint");
    let slot_off = psi_store::format::META_PAGE; // epoch 1 used slot 0; the update flipped slot 1
    bytes[slot_off + 64] ^= 0xFF;
    std::fs::write(&ck, &bytes).expect("tear slot");
    std::fs::remove_file(dir.join(wal_file_name(new_epoch))).expect("drop new log");

    let (rd, report) =
        recover::<FullyDynamicIndex>(&dir, DurableOptions::default()).expect("recover");
    assert_eq!(report.epoch, old_epoch, "fell back to the surviving slot");
    assert_eq!(report.replayed, ops.len(), "replayed the whole old log");
    check_all_ranges(
        rd.index(),
        &oracle_at(&initial, &ops, ops.len()),
        "torn slot flip",
    );

    // The handle keeps working: more ops, a clean checkpoint, recovery.
    let mut rd = rd;
    let more = mixed_ops(53, 50, initial.len()); // appends/changes valid for longer strings too
    for op in &more {
        rd.apply(op, &io).expect("apply after fallback");
    }
    rd.checkpoint().expect("checkpoint after fallback");
    drop(rd);
    let (rd2, _) =
        recover::<FullyDynamicIndex>(&dir, DurableOptions::default()).expect("re-recover");
    let mut oracle = oracle_at(&initial, &ops, ops.len());
    for op in &more {
        oracle.apply(op);
    }
    check_all_ranges(rd2.index(), &oracle, "after fallback continuation");
}

#[test]
fn crash_between_checkpoint_and_new_log_loses_nothing() {
    // Ordering: slot flip commits, then the new log is created. A crash
    // between the two leaves a checkpoint whose log is missing — that
    // checkpoint already covers everything acknowledged.
    let dir = test_dir("no_new_log");
    let initial = initial_symbols(61, 64);
    let ops = mixed_ops(62, 120, initial.len());
    let idx = FullyDynamicIndex::build(&initial, SIGMA, cfg());
    let mut d = Durable::create(&dir, idx, DurableOptions::default()).expect("create");
    let io = IoSession::untracked();
    for op in &ops {
        d.apply(op, &io).expect("apply");
    }
    d.checkpoint().expect("checkpoint");
    let epoch = d.epoch();
    drop(d);
    std::fs::remove_file(dir.join(wal_file_name(epoch))).expect("drop fresh log");

    let (rd, report) =
        recover::<FullyDynamicIndex>(&dir, DurableOptions::default()).expect("recover");
    assert_eq!(report.replayed, 0);
    assert_eq!(report.checkpoint_seq, ops.len() as u64);
    check_all_ranges(
        rd.index(),
        &oracle_at(&initial, &ops, ops.len()),
        "checkpoint-only recovery",
    );
}

// ------------------------------------------------------------ semantics

#[test]
fn uncommitted_tail_is_lost_acknowledged_prefix_is_not() {
    let dir = test_dir("unacked");
    let initial = initial_symbols(71, 32);
    let ops = mixed_ops(72, 100, initial.len());
    let idx = FullyDynamicIndex::build(&initial, SIGMA, cfg());
    let mut d = Durable::create(
        &dir,
        idx,
        DurableOptions {
            group_commit_ops: usize::MAX,
            ..DurableOptions::default()
        },
    )
    .expect("create");
    let io = IoSession::untracked();
    for (k, op) in ops.iter().enumerate() {
        d.apply(op, &io).expect("apply");
        if k == 59 {
            d.commit().expect("commit");
        }
    }
    assert_eq!(d.acked_seq(), 60);
    assert_eq!(d.last_seq(), 100);
    std::mem::forget(d); // crash: ops 61..=100 were never synced

    let (rd, report) =
        recover::<FullyDynamicIndex>(&dir, DurableOptions::default()).expect("recover");
    assert_eq!(report.checkpoint_seq + report.replayed as u64, 60);
    check_all_ranges(rd.index(), &oracle_at(&initial, &ops, 60), "acked prefix");
}

#[test]
fn inapplicable_op_is_rejected_before_journaling() {
    let dir = test_dir("rejected");
    let idx = SemiDynamicIndex::new(SIGMA, cfg());
    let mut d = Durable::create(&dir, idx, DurableOptions::default()).expect("create");
    let io = IoSession::untracked();
    d.apply(&MutOp::Append { symbol: 2 }, &io).expect("valid");
    // Semi-dynamic cannot change; out-of-alphabet append is invalid.
    assert!(d.apply(&MutOp::Change { pos: 0, symbol: 1 }, &io).is_err());
    assert!(d.apply(&MutOp::Append { symbol: SIGMA }, &io).is_err());
    d.apply(&MutOp::Append { symbol: 5 }, &io).expect("valid");
    d.commit().expect("commit");
    drop(d);
    // The log replays cleanly: rejected ops never reached it.
    let (rd, report) =
        recover::<SemiDynamicIndex>(&dir, DurableOptions::default()).expect("recover");
    assert_eq!(report.replayed, 2);
    let io = IoSession::new();
    assert_eq!(rd.index().query(2, 2, &io).to_vec(), vec![0]);
    assert_eq!(rd.index().query(5, 5, &io).to_vec(), vec![1]);
}

#[test]
fn clean_shutdown_recovers_everything() {
    let dir = test_dir("clean");
    let ops = append_ops(81, 200);
    let idx = SemiDynamicIndex::new(SIGMA, cfg());
    let mut d = Durable::create(&dir, idx, DurableOptions::default()).expect("create");
    let io = IoSession::untracked();
    for op in &ops {
        d.apply(op, &io).expect("apply");
    }
    drop(d); // Drop commits the tail
    let (rd, report) =
        recover::<SemiDynamicIndex>(&dir, DurableOptions::default()).expect("recover");
    assert_eq!(report.checkpoint_seq + report.replayed as u64, 200);
    check_all_ranges(rd.index(), &oracle_at(&[], &ops, 200), "clean shutdown");
}

#[test]
fn auto_checkpoint_bounds_log_and_keeps_correctness() {
    let dir = test_dir("auto_ckpt");
    let ops = append_ops(91, 600);
    let idx = SemiDynamicIndex::new(SIGMA, cfg());
    let mut d = Durable::create(
        &dir,
        idx,
        DurableOptions {
            group_commit_ops: 16,
            checkpoint_wal_bytes: Some(1024),
            ..DurableOptions::default()
        },
    )
    .expect("create");
    let io = IoSession::untracked();
    for op in &ops {
        d.apply(op, &io).expect("apply");
        assert!(
            d.wal_bytes() <= 1024 + 16 * 64,
            "auto-checkpoint failed to bound the log"
        );
    }
    assert!(d.epoch() > 1, "the log limit forced checkpoints");
    drop(d);
    let (rd, _) = recover::<SemiDynamicIndex>(&dir, DurableOptions::default()).expect("recover");
    check_all_ranges(rd.index(), &oracle_at(&[], &ops, 600), "auto checkpoint");
}
