//! Fault injection on the durable read/write path: transient backend
//! failures are retried away, permanent ones surface typed, and recovery
//! survives arbitrary corruption of its files without panicking.
//!
//! The corruption proptests honor `PSI_WAL_SEED` (default 1) so CI can
//! run a seed matrix over different deterministic workloads.

use std::sync::Arc;

use proptest::prelude::*;
use psi_api::{AppendIndex, MutOp, SecondaryIndex};
use psi_core::SemiDynamicIndex;
use psi_io::{
    BufferPool, Disk, ErrorClass, Fault, FaultyStore, IoConfig, IoSession, MemStore, PoolError,
    RetryPolicy, RetryStore, StoredExtent,
};
use psi_wal::{recover, wal_file_name, Durable, DurableOptions, WalError, CHECKPOINT_FILE};

const SIGMA: u32 = 8;

fn cfg() -> IoConfig {
    IoConfig::with_block_bits(512)
}

fn seed() -> u64 {
    std::env::var("PSI_WAL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn test_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("psi_wal_faults").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

// ----------------------------------------------- retry on the read path

/// A two-extent disk with a deterministic word pattern, served through a
/// fault-injecting, retry-wrapped backend.
fn pooled_disk(
    schedule: &[(u64, Fault)],
    policy: RetryPolicy,
) -> (Disk, Vec<Vec<u64>>, Arc<FaultyStore<MemStore>>) {
    let mut built = Disk::new(IoConfig::with_block_bits(256));
    let io = IoSession::untracked();
    let mut images = Vec::new();
    for e in 0..2u64 {
        let ext = built.alloc();
        {
            let mut w = built.writer(ext, &io);
            for j in 0..96u64 {
                w.write_bits(0xC0FF_EE00_0000_0000 | (e << 32) | j, 64);
            }
        }
        images.push(built.extent_words(ext).to_vec());
    }
    let faulty = Arc::new(FaultyStore::new(
        MemStore::from_disk(&built),
        schedule.iter().copied(),
    ));
    let retry: Arc<dyn psi_io::BlockStore> =
        Arc::new(RetryStore::new(SharedStore(Arc::clone(&faulty)), policy));
    let pool = Arc::new(BufferPool::new(retry, 64, 256));
    let stored: Vec<StoredExtent> = (0..2)
        .map(|i| StoredExtent {
            bit_len: built.extent_bits(psi_io::ExtentId(i)),
            freed: false,
        })
        .collect();
    let disk = Disk::from_stored(*built.config(), &stored, pool);
    (disk, images, faulty)
}

/// Arc wrapper so the test keeps a handle on the injector while the pool
/// owns the store chain.
#[derive(Debug)]
struct SharedStore(Arc<FaultyStore<MemStore>>);

impl psi_io::BlockStore for SharedStore {
    fn read_block(
        &self,
        ext: psi_io::ExtentId,
        block: u64,
        out: &mut [u64],
    ) -> Result<(), psi_io::BlockStoreError> {
        self.0.read_block(ext, block, out)
    }
    fn fetches(&self) -> u64 {
        self.0.fetches()
    }
    fn kind(&self) -> &'static str {
        self.0.kind()
    }
}

#[test]
fn transient_faults_on_lazy_reads_are_invisible_under_retry() {
    // Every third fetch fails transiently; the retry policy absorbs all
    // of it — reads see the exact original words.
    let schedule: Vec<(u64, Fault)> = (0..30).map(|i| (i * 3, Fault::Transient)).collect();
    let (disk, images, faulty) = pooled_disk(
        &schedule,
        RetryPolicy {
            max_attempts: 4,
            base_delay: std::time::Duration::from_micros(10),
        },
    );
    let io = IoSession::new();
    for (e, image) in images.iter().enumerate() {
        let mut r = disk.reader(psi_io::ExtentId(e as u32), 0, &io);
        for (w, &want) in image.iter().enumerate() {
            assert_eq!(r.read_bits(64), want, "extent {e} word {w}");
        }
    }
    assert!(faulty.injected() > 0, "the schedule actually fired");
}

#[test]
fn permanent_fault_is_not_retried_and_surfaces_typed() {
    let (disk, _, faulty) = pooled_disk(
        &[(0, Fault::Permanent)],
        RetryPolicy {
            max_attempts: 5,
            base_delay: std::time::Duration::from_micros(10),
        },
    );
    let pool = disk.pool().expect("pooled disk").clone();
    let attempts_before = faulty.attempts();
    match pool.try_pin(psi_io::ExtentId(0), 0) {
        Err(PoolError::Fetch { source }) => {
            assert_eq!(source.class, ErrorClass::Permanent);
        }
        other => panic!("expected typed fetch failure, got {other:?}"),
    }
    assert_eq!(
        faulty.attempts() - attempts_before,
        1,
        "a permanent failure must not burn retry attempts"
    );
    // The next pin (fault consumed) succeeds: the pool frame recovered.
    assert!(pool.try_pin(psi_io::ExtentId(0), 0).is_ok());
}

#[test]
fn transient_budget_exhaustion_surfaces_the_transient_error() {
    // More consecutive transient faults than the budget allows: the
    // caller sees a typed transient error and can decide to retry later.
    let schedule: Vec<(u64, Fault)> = (0..10).map(|i| (i, Fault::Transient)).collect();
    let (disk, _, _) = pooled_disk(
        &schedule,
        RetryPolicy {
            max_attempts: 2,
            base_delay: std::time::Duration::from_micros(10),
        },
    );
    let pool = disk.pool().expect("pooled disk").clone();
    match pool.try_pin(psi_io::ExtentId(0), 0) {
        Err(PoolError::Fetch { source }) => {
            assert_eq!(source.class, ErrorClass::Transient);
        }
        other => panic!("expected exhausted retries, got {other:?}"),
    }
}

#[test]
fn open_with_retry_policy_is_transparent_on_a_healthy_store() {
    // The retry wrapper in the open path must not change results.
    let dir = test_dir("retry_open");
    let mut idx = SemiDynamicIndex::new(SIGMA, cfg());
    let io = IoSession::untracked();
    let mut g = 7u64;
    for _ in 0..500 {
        g = g
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        idx.append(((g >> 33) % SIGMA as u64) as u32, &io);
    }
    let path = dir.join("plain.psi");
    psi_store::save(&idx, &path).expect("save");
    let plain = psi_store::open::<SemiDynamicIndex>(&path, &psi_store::OpenOptions::default())
        .expect("open");
    let retried = psi_store::open::<SemiDynamicIndex>(
        &path,
        &psi_store::OpenOptions {
            retry: Some(RetryPolicy::default()),
            ..psi_store::OpenOptions::default()
        },
    )
    .expect("open with retry");
    for lo in 0..SIGMA {
        for hi in lo..SIGMA {
            let io_a = IoSession::new();
            let io_b = IoSession::new();
            assert_eq!(
                plain.index.query(lo, hi, &io_a).to_vec(),
                retried.index.query(lo, hi, &io_b).to_vec(),
                "range [{lo}, {hi}]"
            );
        }
    }
}

// ------------------------------------- corruption proptests (never panic)

/// Builds a committed durable directory with a known append workload and
/// returns (dir, oracle sets, total ops).
fn durable_fixture(name: &str) -> (std::path::PathBuf, Vec<u32>, u64) {
    let dir = test_dir(name);
    let mut symbols = Vec::new();
    let mut g = seed().wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let idx = SemiDynamicIndex::new(SIGMA, cfg());
    let mut d = Durable::create(
        &dir,
        idx,
        DurableOptions {
            group_commit_ops: 16,
            ..DurableOptions::default()
        },
    )
    .expect("create");
    let io = IoSession::untracked();
    for _ in 0..150 {
        g = g
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let sym = ((g >> 33) % SIGMA as u64) as u32;
        symbols.push(sym);
        d.apply(&MutOp::Append { symbol: sym }, &io).expect("apply");
    }
    d.commit().expect("commit");
    let epoch = d.epoch();
    drop(d);
    (dir, symbols, epoch)
}

/// Recovered state must be an exact prefix of the workload: every query
/// range agrees with the first `n` appended symbols.
fn assert_is_prefix(idx: &SemiDynamicIndex, symbols: &[u32], n: usize) {
    let io = IoSession::new();
    for lo in (0..SIGMA).step_by(3) {
        let got = idx.query(lo, SIGMA - 1, &io).to_vec();
        let want: Vec<u64> = symbols[..n]
            .iter()
            .enumerate()
            .filter(|(_, &s)| s >= lo)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(got, want, "prefix {n}, range [{lo}, {}]", SIGMA - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Arbitrary log corruption — truncation plus up to 6 byte flips —
    // never panics recovery; a successful recovery is always an exact
    // workload prefix covering at least the pre-corruption checkpoint.
    #[test]
    fn log_corruption_never_panics_recovery(
        cut_permille in 0u64..1001,
        flips in proptest::collection::vec((0usize..100_000, 1u8..255), 0..6),
    ) {
        let (dir, symbols, epoch) = durable_fixture("log_corruption");
        let log_path = dir.join(wal_file_name(epoch));
        let mut log = std::fs::read(&log_path).expect("read log");
        let keep = (log.len() as u64 * cut_permille / 1000) as usize;
        log.truncate(keep.min(log.len()));
        for &(at, xor) in &flips {
            if !log.is_empty() {
                let i = at % log.len();
                log[i] ^= xor;
            }
        }
        std::fs::write(&log_path, &log).expect("rewrite log");

        match recover::<SemiDynamicIndex>(&dir, DurableOptions::default()) {
            Ok((rd, report)) => {
                let n = (report.checkpoint_seq + report.replayed as u64) as usize;
                prop_assert!(n <= symbols.len());
                assert_is_prefix(rd.index(), &symbols, n);
            }
            // Typed failure (e.g. the log's header was mangled into
            // another epoch's): acceptable, never a panic.
            Err(WalError::Io { .. } | WalError::Store(_) | WalError::Recovery { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    // Arbitrary superblock-slot corruption and file truncation on the
    // checkpoint: recovery either falls back to a surviving slot (exact
    // state) or fails typed — never panics, never serves garbage.
    #[test]
    fn checkpoint_slot_corruption_never_panics_recovery(
        keep_full in any::<bool>(),
        truncate_to in 0u64..40_000,
        flips in proptest::collection::vec((0usize..8192, 1u8..255), 1..5),
    ) {
        let (dir, symbols, _) = durable_fixture("slot_corruption");
        let ck_path = dir.join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&ck_path).expect("read checkpoint");
        for &(at, xor) in &flips {
            let i = at % bytes.len().min(8192);
            bytes[i] ^= xor;
        }
        if !keep_full {
            bytes.truncate((truncate_to as usize).min(bytes.len()));
        }
        std::fs::write(&ck_path, &bytes).expect("rewrite checkpoint");

        match recover::<SemiDynamicIndex>(&dir, DurableOptions::default()) {
            Ok((rd, report)) => {
                let n = (report.checkpoint_seq + report.replayed as u64) as usize;
                prop_assert!(n <= symbols.len());
                assert_is_prefix(rd.index(), &symbols, n);
            }
            Err(WalError::Io { .. } | WalError::Store(_) | WalError::Recovery { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }
}
