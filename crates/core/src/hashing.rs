//! Universal hashing with computable preimages (paper §3).
//!
//! The approximate index stores, for each position set `S`, hashed sets
//! `h_j(S)` where `h_j : [n] → [2^{2ʲ}]`. The paper describes "a well-known
//! and particularly attractive universal family": split `i` into
//! `(i₁, i₂)` where `i₂` is the `2ʲ` least significant bits, pick `g_j`
//! from a universal family, and let
//!
//! ```text
//! h_j(i₁, i₂) = g_j(i₁) ⊕ i₂
//! ```
//!
//! (The paper says `g_j` maps to `[2ʲ]`; consistency with the output
//! universe `[2^{2ʲ}]` requires `g_j` to produce `2ʲ` *bits* — we implement
//! that reading, see `DESIGN.md`.) The XOR structure makes preimages
//! enumerable without inversion: `h_j⁻¹(s) = {(i₁, s ⊕ g_j(i₁))}` over all
//! high parts `i₁`, which is what lets queries *generate* the approximate
//! result "without using any further I/Os".
//!
//! `g_j` is a multiply-add-shift hash (Dietzfelbinger et al.), strongly
//! universal for outputs up to 64 bits.

use rand_like::SplitMix;

/// One member `h_j` of the split-XOR family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitXorHash {
    /// The level `j ≥ 1`; output is `2ʲ` bits.
    pub j: u32,
    /// Output width in bits (`2ʲ`, capped at 64).
    pub out_bits: u32,
    a: u128,
    b: u128,
}

impl SplitXorHash {
    /// Deterministically derives the level-`j` function from a seed.
    pub fn new(j: u32, seed: u64) -> Self {
        assert!(j >= 1, "levels start at 1");
        let out_bits = (1u32 << j).min(64);
        let mut sm = SplitMix::new(seed ^ (u64::from(j) << 56));
        // Odd 128-bit multiplier for the multiply-add-shift family.
        let a = (u128::from(sm.next()) << 64 | u128::from(sm.next())) | 1;
        let b = u128::from(sm.next()) << 64 | u128::from(sm.next());
        SplitXorHash { j, out_bits, a, b }
    }

    /// The output universe size `2^{2ʲ}` (saturating at `u64::MAX` for
    /// 64-bit outputs).
    pub fn universe(&self) -> u64 {
        if self.out_bits >= 64 {
            u64::MAX
        } else {
            1u64 << self.out_bits
        }
    }

    /// `g_j(i₁)`: strongly universal hash of the high part to `2ʲ` bits.
    fn g(&self, i1: u64) -> u64 {
        (self.a.wrapping_mul(u128::from(i1)).wrapping_add(self.b) >> (128 - self.out_bits)) as u64
    }

    /// Splits `i` into `(i₁, i₂)`.
    fn split(&self, i: u64) -> (u64, u64) {
        if self.out_bits >= 64 {
            (0, i)
        } else {
            (i >> self.out_bits, i & (self.universe() - 1))
        }
    }

    /// `h_j(i) = g_j(i₁) ⊕ i₂`.
    pub fn hash(&self, i: u64) -> u64 {
        let (i1, i2) = self.split(i);
        self.g(i1) ^ i2
    }

    /// Number of distinct high parts for inputs in `[0, n)`.
    pub fn high_parts(&self, n: u64) -> u64 {
        if self.out_bits >= 64 {
            1
        } else {
            n.div_ceil(1u64 << self.out_bits).max(1)
        }
    }

    /// Enumerates `h_j⁻¹(s) ∩ [0, n)` — the paper's
    /// `{(i₁, s ⊕ g_j(i₁)) | i₁ = 0, 1, 2, …}`.
    pub fn preimage(&self, s: u64, n: u64) -> impl Iterator<Item = u64> + '_ {
        let copy = *self;
        (0..self.high_parts(n)).filter_map(move |i1| {
            let i2 = s ^ copy.g(i1);
            let i = if copy.out_bits >= 64 {
                i2
            } else {
                (i1 << copy.out_bits) | i2
            };
            (i < n).then_some(i)
        })
    }
}

/// The family `{h_1, …, h_k}` with `k = ⌊lg lg n⌋`, sharing one seed —
/// "the same k functions are used in each node" (§3).
#[derive(Debug, Clone)]
pub struct HashFamily {
    fns: Vec<SplitXorHash>,
}

impl HashFamily {
    /// Builds the family for strings of length up to `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        let k = k_for(n);
        HashFamily {
            fns: (1..=k).map(|j| SplitXorHash::new(j, seed)).collect(),
        }
    }

    /// `k = ⌊lg lg n⌋` — the number of levels.
    pub fn k(&self) -> u32 {
        self.fns.len() as u32
    }

    /// The level-`j` function (`1 ≤ j ≤ k`).
    pub fn level(&self, j: u32) -> &SplitXorHash {
        &self.fns[(j - 1) as usize]
    }

    /// Smallest `j ≤ k` with `2^{2ʲ} > z/ε`, or `None` when even level `k`
    /// is too coarse ("if j > k we cannot save anything … so we answer the
    /// query exactly", §3).
    pub fn level_for(&self, z: u64, epsilon: f64) -> Option<u32> {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        let need = z as f64 / epsilon;
        (1..=self.k()).find(|&j| {
            let f = self.level(j);
            f.out_bits >= 64 || (f.universe() as f64) > need
        })
    }
}

/// `⌊lg lg n⌋`, clamped to at least 1 (so tiny inputs still have a level).
pub fn k_for(n: u64) -> u32 {
    let lg = 64 - n.max(4).leading_zeros() - 1; // ⌊lg n⌋
    let lglg = 32 - lg.leading_zeros() - 1; // ⌊lg lg n⌋
    lglg.max(1)
}

/// Minimal SplitMix64 so the hash family needs no external RNG dependency.
mod rand_like {
    #[derive(Debug)]
    pub struct SplitMix {
        state: u64,
    }

    impl SplitMix {
        pub fn new(seed: u64) -> Self {
            SplitMix { state: seed }
        }

        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_for_matches_lg_lg() {
        assert_eq!(k_for(16), 2); // lg lg 16 = 2
        assert_eq!(k_for(1 << 16), 4);
        assert_eq!(k_for(1 << 20), 4); // lg 2^20 = 20, lg 20 = 4
        assert_eq!(k_for((1 << 32) + 1), 5);
        assert_eq!(k_for(2), 1); // clamped
    }

    #[test]
    fn output_stays_in_universe() {
        for j in 1..=6u32 {
            let h = SplitXorHash::new(j, 42);
            for i in (0..10_000u64).step_by(37) {
                if h.out_bits < 64 {
                    assert!(h.hash(i) < h.universe(), "j={j} i={i}");
                }
            }
        }
    }

    #[test]
    fn preimage_contains_original() {
        let n = 100_000u64;
        for j in 1..=5u32 {
            let h = SplitXorHash::new(j, 7);
            for i in [0u64, 1, 999, 50_000, n - 1] {
                let s = h.hash(i);
                assert!(
                    h.preimage(s, n).any(|x| x == i),
                    "j={j}: {i} missing from preimage of its own hash"
                );
            }
        }
    }

    #[test]
    fn preimage_elements_all_hash_to_s() {
        let n = 10_000u64;
        let h = SplitXorHash::new(3, 11);
        let s = 200 % h.universe();
        let pre: Vec<u64> = h.preimage(s, n).collect();
        assert!(!pre.is_empty());
        for &i in &pre {
            assert!(i < n);
            assert_eq!(h.hash(i), s);
        }
        // Preimage size ≈ n / 2^{2^j} = 10000/256 ≈ 39.
        assert!(pre.len() as u64 <= n / h.universe() + 1);
    }

    #[test]
    fn collision_rate_matches_universality() {
        // For random pairs, Pr[h(x) = h(y)] should be close to 1/2^{2^j}.
        let h = SplitXorHash::new(3, 13); // 8-bit output, universe 256
        let mut collisions = 0u32;
        let trials = 20_000u64;
        for t in 0..trials {
            let x = t.wrapping_mul(0x9E37_79B9).wrapping_add(17) % 1_000_000;
            let y = t.wrapping_mul(0x85EB_CA6B).wrapping_add(91) % 1_000_000;
            if x != y && h.hash(x) == h.hash(y) {
                collisions += 1;
            }
        }
        let rate = f64::from(collisions) / trials as f64;
        assert!(rate < 3.0 / 256.0, "collision rate {rate} far above 1/256");
    }

    #[test]
    fn family_levels_are_consistent() {
        let fam = HashFamily::new(1 << 20, 99);
        assert_eq!(fam.k(), 4);
        for j in 1..=fam.k() {
            assert_eq!(fam.level(j).j, j);
            assert_eq!(fam.level(j).out_bits, (1 << j).min(64));
        }
    }

    #[test]
    fn level_for_picks_smallest_sufficient() {
        let fam = HashFamily::new(1 << 20, 1);
        // z = 10, eps = 0.1 -> need > 100 -> 2^{2^j} > 100 -> j = 3 (256).
        assert_eq!(fam.level_for(10, 0.1), Some(3));
        // z = 3, eps = 0.5 -> need > 6 -> j = 2 (16).
        assert_eq!(fam.level_for(3, 0.5), Some(2));
        // Huge z/eps exceeds level k = 4 (universe 65536).
        assert_eq!(fam.level_for(1 << 19, 0.01), None);
        // z = 0 -> the first level suffices.
        assert_eq!(fam.level_for(0, 0.01), Some(1));
    }

    #[test]
    fn same_seed_same_functions() {
        let a = HashFamily::new(1 << 16, 5);
        let b = HashFamily::new(1 << 16, 5);
        for j in 1..=a.k() {
            for i in 0..100 {
                assert_eq!(a.level(j).hash(i), b.level(j).hash(i));
            }
        }
    }
}
