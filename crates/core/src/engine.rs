//! The Pagh–Rao index engine: pruned weight-balanced tree + materialized
//! cuts (paper §2.2), shared by the static ([`crate::OptimalIndex`]),
//! semi-dynamic ([`crate::SemiDynamicIndex`]) and approximate
//! ([`crate::ApproximateIndex`]) variants.
//!
//! # Materialized cuts
//!
//! §2.2 stores bitmaps at "the O(lg h) levels numbered 1, 2, 4, 8, …
//! (from the top), and also … all the leaves". Pruned leaves live at
//! arbitrary depths, so we define **cut ℓ** (for each materialized level
//! ℓ) as: internal nodes at depth ℓ plus pruned leaves at depths
//! `(ℓ_prev, ℓ]` — every node's bitmap is stored in *exactly one* cut,
//! concatenated in left-to-right (multiset) order. A canonical node `v` at
//! a non-materialized depth `d` is assembled from the next cut below,
//! where its frontier (leaves at depths `(d, m]` plus internal nodes at
//! depth `m`, all below `v`) forms a contiguous chunk, giving the paper's
//! "O(1) I/Os wasted per materialized level". `DESIGN.md` documents why
//! this resolves the paper's leaf-storage ambiguity without losing the
//! `O(nH₀)` space bound.
//!
//! # What is charged to the I/O session
//!
//! * tree descent: each visited node's directory record (blocked layout,
//!   `O(log_b n)` blocks per root-to-leaf path);
//! * every bitmap bit decoded (block-granular, via [`CutStream`]);
//! * every bitmap bit written by appends and rebuilds.
//!
//! The per-character prefix counts (the paper's array `A`, `O(σ lg n)`
//! bits) and the tree mirror are memory-resident, exactly as the paper
//! assumes (`M = B(σ lg n)^Ω(1)`); their size is accounted in
//! [`Engine::space_bits`].

use psi_api::{check_range, RidSet, Symbol};
use psi_bits::{merge, GapBitmap};
use psi_io::{cost, Disk, ExtentId, IoConfig, IoSession};

use crate::cutstream::{CutStream, Slack};
use crate::remap::Remap;
use crate::wbb::{NodeId, WbbTree};

/// Branching parameter used throughout (the paper requires a constant
/// `c > 4`).
pub const DEFAULT_C: u32 = 8;

#[cfg(test)]
use psi_bits::skip::SKIP_LIFT_MIN;

/// Counters exposed to the experiment harnesses.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Subtree rebuilds triggered by weight-balance or slot overflow.
    pub subtree_rebuilds: u64,
    /// Full rebuilds (root violation or fragmentation).
    pub global_rebuilds: u64,
}

/// The shared tree-plus-cuts engine.
#[derive(Debug)]
pub struct Engine {
    pub(crate) disk: Disk,
    pub(crate) tree: Option<WbbTree>,
    pub(crate) cuts: Vec<CutStream>,
    /// `NodeId -> (cut index, slot index)`, parallel to the tree arena.
    node_slot: Vec<Option<(u32, u32)>>,
    /// `NodeId -> (bit offset, bit length)` of the directory record.
    node_rec: Vec<(u64, u64)>,
    tree_ext: ExtentId,
    remap: Remap,
    /// Fenwick tree of internal-character counts (the paper's array `A`).
    counts: Fenwick,
    n: u64,
    sigma: Symbol,
    c: u32,
    slack: Slack,
    /// Performance counters.
    pub stats: EngineStats,
}

impl Engine {
    /// Builds the engine over `symbols ∈ [0, sigma)ⁿ`. Build I/O is not
    /// charged (static construction); pass `slack` = [`Slack::None`] for
    /// the static index and [`Slack::Proportional`] for dynamic variants.
    pub fn build(
        symbols: &[Symbol],
        sigma: Symbol,
        config: IoConfig,
        c: u32,
        slack: Slack,
    ) -> Self {
        let io = IoSession::untracked();
        Self::build_charged(symbols, sigma, config, c, slack, &io)
    }

    /// Builds, charging writes to `io` (used by global rebuilds).
    fn build_charged(
        symbols: &[Symbol],
        sigma: Symbol,
        config: IoConfig,
        c: u32,
        slack: Slack,
        io: &IoSession,
    ) -> Self {
        assert!(sigma > 0, "alphabet must be non-empty");
        let mut syms = symbols.to_vec();
        let remap = Remap::build(&mut syms, sigma);
        let sigma_int = remap.sigma_internal();
        let mut disk = Disk::new(config);
        let tree_ext = disk.alloc();
        let n = syms.len() as u64;
        let mut counts_vec = vec![0u64; sigma_int as usize];
        let mut lists: Vec<Vec<u64>> = vec![Vec::new(); sigma_int as usize];
        for (i, &s) in syms.iter().enumerate() {
            counts_vec[s as usize] += 1;
            lists[s as usize].push(i as u64);
        }
        let mut engine = Engine {
            disk,
            tree: None,
            cuts: Vec::new(),
            node_slot: Vec::new(),
            node_rec: Vec::new(),
            tree_ext,
            remap,
            counts: Fenwick::from_counts(&counts_vec),
            n,
            sigma,
            c,
            slack,
            stats: EngineStats::default(),
        };
        if n > 0 {
            let tree = WbbTree::build(&counts_vec, c);
            engine.tree = Some(tree);
            engine.build_storage(&lists, io);
        }
        engine
    }

    /// Materialized cut levels for a tree of max depth `h`: `{1,2,4,…} ∪
    /// {h}` (just `{0}` for a single-leaf tree).
    fn mat_levels(h: u32) -> Vec<u32> {
        if h == 0 {
            return vec![0];
        }
        let mut levels = Vec::new();
        let mut l = 1u32;
        while l < h {
            levels.push(l);
            l *= 2;
        }
        levels.push(h);
        levels
    }

    /// Index of the cut holding leaves at `depth` (smallest cut level
    /// `≥ depth`, clamped to the last cut).
    fn leaf_cut_idx(&self, depth: u32) -> u32 {
        match self.cuts.iter().position(|c| c.level >= depth) {
            Some(i) => i as u32,
            None => (self.cuts.len() - 1) as u32,
        }
    }

    /// (Re)creates all cuts, slots and directory records from per-internal-
    /// character position lists.
    fn build_storage(&mut self, lists: &[Vec<u64>], io: &IoSession) {
        let tree = self.tree.as_ref().expect("tree").clone();
        let h = tree.max_depth();
        for cut in &mut self.cuts {
            cut.clear(&mut self.disk);
        }
        self.cuts = Self::mat_levels(h)
            .into_iter()
            .map(|level| CutStream::new(&mut self.disk, level, self.slack))
            .collect();
        self.node_slot = vec![None; tree.arena_len()];
        // Prefix offsets over internal characters.
        let mut prefix = Vec::with_capacity(lists.len() + 1);
        let mut acc = 0u64;
        for l in lists {
            prefix.push(acc);
            acc += l.len() as u64;
        }
        prefix.push(acc);
        self.assign_subtree_slots(&tree, tree.root(), 0, lists, &prefix, io);
        self.write_all_records(&tree, io);
        self.tree = Some(tree);
    }

    /// Walks the subtree at `v` (whose multiset range starts at `start`),
    /// writing bitmaps for every node that owns a cut slot. `lists` and
    /// `prefix` describe the *global* multiset.
    fn assign_subtree_slots(
        &mut self,
        tree: &WbbTree,
        v: NodeId,
        start: u64,
        lists: &[Vec<u64>],
        prefix: &[u64],
        io: &IoSession,
    ) {
        if self.node_slot.len() < tree.arena_len() {
            self.node_slot.resize(tree.arena_len(), None);
        }
        let node = tree.node(v);
        let end = start + node.weight;
        let cut = {
            // Inline cut_for against the passed tree (self.tree may be
            // stale during rebuilds).
            if node.is_leaf() {
                Some(self.leaf_cut_idx(node.depth))
            } else {
                self.cuts
                    .iter()
                    .position(|c| c.level == node.depth)
                    .map(|i| i as u32)
            }
        };
        if let Some(cut_idx) = cut {
            let positions = positions_for_range(lists, prefix, start, end);
            let slot = self.cuts[cut_idx as usize].push_bitmap(&mut self.disk, positions, io);
            self.node_slot[v as usize] = Some((cut_idx, slot as u32));
        }
        let mut off = start;
        for &child in &tree.node(v).children {
            self.assign_subtree_slots(tree, child, off, lists, prefix, io);
            off += tree.node(child).weight;
        }
        debug_assert_eq!(off, if node.is_leaf() { start } else { end });
    }

    /// Rewrites the whole directory extent in blocked DFS order ("we store
    /// the top Θ(lg b) levels in a block with pointers to each of the
    /// subtrees", §2.2), so any root-to-leaf traversal touches
    /// `O(log_b n)` blocks.
    fn write_all_records(&mut self, tree: &WbbTree, io: &IoSession) {
        self.disk.free(self.tree_ext);
        self.node_rec = vec![(u64::MAX, 0); tree.arena_len()];
        // Levels per chunk: c^D records of ~rec bits should fill a block.
        let avg_rec = 200u64;
        let per_block = (self.disk.block_bits() / avg_rec).max(2);
        let d =
            (cost::lg2_floor(per_block) / cost::lg2_ceil(u64::from(self.c)).max(1)).max(1) as u32;
        let mut order = Vec::with_capacity(tree.live_nodes());
        chunk_order(tree, tree.root(), d, &mut order);
        for v in order {
            self.write_record(tree, v, io);
        }
    }

    /// Appends one node's directory record at the end of the directory
    /// extent and records its offset.
    fn write_record(&mut self, tree: &WbbTree, v: NodeId, io: &IoSession) {
        if self.node_rec.len() < tree.arena_len() {
            self.node_rec.resize(tree.arena_len(), (u64::MAX, 0));
        }
        let node = tree.node(v);
        let mut w = self.disk.writer(self.tree_ext, io);
        let off = w.pos();
        w.write_bits(node.weight & ((1 << 48) - 1), 48);
        w.write_bits(u64::from(node.char_lo) & 0xFF_FFFF, 24);
        w.write_bits(u64::from(node.char_hi) & 0xFF_FFFF, 24);
        let (has_slot, cut, slot) = match self.node_slot.get(v as usize).copied().flatten() {
            Some((c, s)) => (1u64, u64::from(c), u64::from(s)),
            None => (0, 0, 0),
        };
        w.write_bits(u64::from(node.is_leaf()) << 1 | has_slot, 8);
        w.write_bits(cut, 8);
        w.write_bits(slot, 32);
        w.write_bits(node.children.len() as u64, 16);
        for &ch in &node.children {
            w.write_bits(u64::from(ch), 32);
        }
        let len = w.pos() - off;
        self.node_rec[v as usize] = (off, len);
    }

    /// Charges the blocks of node `v`'s directory record to `io` (and,
    /// on an opened file-backed disk, faults them through the buffer
    /// pool so the charge drives a real fetch).
    fn charge_record(&self, v: NodeId, io: &IoSession) {
        let (off, len) = self.node_rec[v as usize];
        if off == u64::MAX {
            return;
        }
        self.disk.charge_read_span(self.tree_ext, off, len, io);
        io.add_bits_read(len);
    }

    /// Canonical decomposition of the multiset index range `[qs, qe)` —
    /// "any consecutive range of leaves can be covered by the disjoint
    /// union of O(lg n) subtrees" (§2.1/§2.2). Charges the directory
    /// records of all visited nodes.
    fn decompose(&self, qs: u64, qe: u64, io: &IoSession) -> Vec<NodeId> {
        let mut out = Vec::new();
        if qs >= qe {
            return out;
        }
        let tree = self.tree.as_ref().expect("tree");
        self.decompose_rec(tree, tree.root(), 0, qs, qe, io, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn decompose_rec(
        &self,
        tree: &WbbTree,
        v: NodeId,
        v_start: u64,
        qs: u64,
        qe: u64,
        io: &IoSession,
        out: &mut Vec<NodeId>,
    ) {
        self.charge_record(v, io);
        let node = tree.node(v);
        let v_end = v_start + node.weight;
        if qs <= v_start && v_end <= qe {
            out.push(v);
            return;
        }
        debug_assert!(
            !node.is_leaf(),
            "partial overlap with a leaf: query boundaries must align with character boundaries"
        );
        let mut off = v_start;
        for &child in &node.children {
            let w = tree.node(child).weight;
            let c_end = off + w;
            if off < qe && c_end > qs {
                self.decompose_rec(tree, child, off, qs, qe, io, out);
            }
            off = c_end;
        }
    }

    /// Answers the alphabet range query (paper endpoints, inclusive).
    pub fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma);
        if self.n == 0 {
            return RidSet::from_positions(GapBitmap::empty(0));
        }
        let (ilo, ihi) = self.remap.map_range(lo, hi);
        let qs = self.counts.prefix(ilo as usize);
        let qe = self.counts.prefix(ihi as usize + 1);
        let z = qe - qs;
        if z == 0 {
            return RidSet::from_positions(GapBitmap::empty(self.n));
        }
        if 2 * z > self.n {
            // §2.1's complement trick: answer the two complementary index
            // ranges and return the complement representation.
            let mut canonical = self.decompose(0, qs, io);
            canonical.extend(self.decompose(qe, self.n, io));
            let positions = self.merge_canonical(&canonical, io);
            RidSet::from_complement(positions)
        } else {
            let canonical = self.decompose(qs, qe, io);
            let positions = self.merge_canonical(&canonical, io);
            RidSet::from_positions(positions)
        }
    }

    /// The result cardinality `z` for a query, from the prefix counts
    /// (no I/O — the array `A` is memory-resident, §2.1).
    pub fn query_cardinality(&self, lo: Symbol, hi: Symbol) -> u64 {
        check_range(lo, hi, self.sigma);
        if self.n == 0 {
            return 0;
        }
        let (ilo, ihi) = self.remap.map_range(lo, hi);
        self.counts.prefix(ihi as usize + 1) - self.counts.prefix(ilo as usize)
    }

    /// Reconstructs the union of the canonical nodes' position sets. Each
    /// node contributes its own slot if materialized, otherwise its
    /// frontier in the next cut below (§2.2's "merging the bitmaps stored
    /// with all the nearest descendants that are in the materialized level
    /// immediately below").
    ///
    /// The execution is planned from slot metadata alone — counts and
    /// first/last positions, known before any stream bit is decoded:
    /// a single-slot cover is a verbatim word copy (with the persisted
    /// skip directory lifted alongside once the result is large enough to
    /// gallop over); sparse multi-slot covers stream through the linear or
    /// heap merge; dense covers (the complement trick's bread and butter)
    /// accumulate into a word array and re-encode once
    /// ([`merge::MergeStrategy::Bitset`]). Every strategy drains the same
    /// decoders, so the blocks charged are identical by construction.
    fn merge_canonical(&self, canonical: &[NodeId], io: &IoSession) -> GapBitmap {
        let mut slots = Vec::new();
        for &v in canonical {
            self.collect_slots(v, &mut slots);
        }
        // Empty slots contribute nothing — and would poison the span.
        slots.retain(|&(cut, slot)| self.cuts[cut as usize].slot(slot as usize).count > 0);
        match slots[..] {
            [] => GapBitmap::empty(self.n),
            [(cut, slot)] => {
                self.cuts[cut as usize].copy_bitmap_auto(&self.disk, slot as usize, io, self.n)
            }
            _ => {
                let (total, span) = merge::cover_stats(slots.iter().map(|&(cut, slot)| {
                    let s = self.cuts[cut as usize].slot(slot as usize);
                    (
                        s.count,
                        s.first_pos.expect("non-empty slot"),
                        s.last_pos.expect("non-empty slot"),
                    )
                }));
                let decoders: Vec<_> = slots
                    .iter()
                    .map(|&(cut, slot)| {
                        self.cuts[cut as usize].decoder(&self.disk, slot as usize, io)
                    })
                    .collect();
                merge::merge_adaptive(decoders, self.n, total, span)
            }
        }
    }

    /// Appends original character `ch` at position `n`, charging `io`
    /// (Theorem 4's operation). One bitmap per materialized cut on the
    /// root-to-leaf path is extended in place; weight-balance violations
    /// and slot overflows trigger subtree rebuilds.
    pub fn append(&mut self, ch: Symbol, io: &IoSession) {
        assert!(
            ch < self.sigma,
            "symbol {ch} outside alphabet of size {}",
            self.sigma
        );
        if self.tree.is_none() {
            let stats = self.stats;
            *self = Self::build_charged(
                &[ch],
                self.sigma,
                *self.disk.config(),
                self.c,
                self.slack,
                io,
            );
            self.stats = stats;
            return;
        }
        let ich = self.remap.map_append(ch);
        let pos = self.n;
        self.n += 1;
        self.counts.add(ich as usize, 1);
        let mut tree = self.tree.take().expect("tree");
        let path = tree.append_path(ich);
        if self.node_slot.len() < tree.arena_len() {
            self.node_slot.resize(tree.arena_len(), None);
        }
        // Append to every materialized bitmap on the path; remember the
        // highest node whose slot overflowed, and whether the leaf itself
        // missed the position (the rebuild must then be told about it).
        let leaf = *path.last().expect("append path is non-empty");
        let mut overflowed: Option<NodeId> = None;
        let mut leaf_append_failed = false;
        for &v in &path {
            match self.node_slot[v as usize] {
                Some((cut, slot)) => {
                    let ok = self.cuts[cut as usize].append_position(
                        &mut self.disk,
                        slot as usize,
                        pos,
                        io,
                    );
                    if !ok {
                        if overflowed.is_none() {
                            overflowed = Some(v);
                        }
                        if v == leaf {
                            leaf_append_failed = true;
                        }
                    }
                }
                None if tree.node(v).is_leaf() => {
                    // Fresh leaf from a previously absent character.
                    let cut_idx = self.leaf_cut_idx(tree.node(v).depth);
                    let slot = self.cuts[cut_idx as usize].push_bitmap(&mut self.disk, [pos], io);
                    self.node_slot[v as usize] = Some((cut_idx, slot as u32));
                    self.write_record(&tree, v, io);
                    if let Some(p) = tree.node(v).parent {
                        self.write_record(&tree, p, io);
                    }
                }
                None => {} // non-materialized internal node
            }
        }
        // Rebuild at the parent of the highest violated/overflowed node.
        let violated = tree.find_violation(&path);
        let trigger = match (violated, overflowed) {
            (Some(a), Some(b)) => Some(if tree.node(a).depth <= tree.node(b).depth {
                a
            } else {
                b
            }),
            (a, b) => a.or(b),
        };
        self.tree = Some(tree);
        if let Some(v) = trigger {
            let parent = self.tree.as_ref().unwrap().node(v).parent;
            // Rebuilds recompute bitmaps from the leaf bitmaps, so stale
            // internal slots heal automatically; if the *leaf* slot missed
            // the position, pass it along explicitly.
            let extra = if leaf_append_failed {
                Some((ich, pos))
            } else {
                None
            };
            match parent {
                None => self.global_rebuild(extra, io),
                Some(u) => {
                    // If the overflowed node sits above `u`, its own slot
                    // is stale; rebuild from its parent instead.
                    self.rebuild_at(u, extra, io);
                }
            }
        }
        // Compact heavily fragmented storage.
        if self
            .cuts
            .iter()
            .any(|cut| cut.extent_bits(&self.disk) > 1 << 16 && cut.dead_fraction(&self.disk) > 0.5)
        {
            self.global_rebuild(None, io);
        }
    }

    /// Rebuilds the subtree under `u` (paper §4.1): decode the leaf
    /// bitmaps below `u`, rebuild the shape, recompute and rewrite every
    /// materialized bitmap in the subtree. All reads and writes charged.
    fn rebuild_at(&mut self, u: NodeId, extra: Option<(Symbol, u64)>, io: &IoSession) {
        self.stats.subtree_rebuilds += 1;
        let mut tree = self.tree.take().expect("tree");
        // 1. Decode per-internal-character position lists under u.
        let leaves = tree.leaves_under(u);
        let mut chars: Vec<Symbol> = Vec::new();
        let mut lists: Vec<Vec<u64>> = Vec::new();
        for (leaf, ch, _w) in &leaves {
            let (cut, slot) = self.node_slot[*leaf as usize].expect("leaf without slot");
            let positions: Vec<u64> = self.cuts[cut as usize]
                .decoder(&self.disk, slot as usize, io)
                .collect();
            if chars.last() == Some(ch) {
                lists.last_mut().expect("list").extend(positions);
            } else {
                chars.push(*ch);
                lists.push(positions);
            }
        }
        if let Some((ich, pos)) = extra {
            let idx = chars
                .iter()
                .position(|&c| c == ich)
                .expect("extra char under subtree");
            lists[idx].push(pos);
        }
        // 2. Tombstone the old slots.
        let mut stack: Vec<NodeId> = tree.node(u).children.clone();
        while let Some(v) = stack.pop() {
            if let Some((cut, slot)) = self.node_slot[v as usize].take() {
                self.cuts[cut as usize].kill(slot as usize);
            }
            stack.extend(tree.node(v).children.iter().copied());
        }
        // 3. Rebuild the shape and write fresh bitmaps + records.
        tree.rebuild_subtree(u);
        if self.node_slot.len() < tree.arena_len() {
            self.node_slot.resize(tree.arena_len(), None);
        }
        // Local prefix over the collected lists; map internal char ->
        // local list index by position in `chars`.
        let mut prefix = Vec::with_capacity(lists.len() + 1);
        let mut acc = 0u64;
        for l in &lists {
            prefix.push(acc);
            acc += l.len() as u64;
        }
        prefix.push(acc);
        // u's own slot keeps its bitmap (same position set); if u became a
        // leaf without one, assign_rebuilt_slots allocates it.
        self.assign_rebuilt_slots(&tree, u, 0, &lists, &prefix, true, io);
        // Rewrite records for the subtree (blocked layout is refreshed
        // wholesale on global rebuilds).
        let mut order = Vec::new();
        chunk_order_subtree(&tree, u, &mut order);
        for v in order {
            self.write_record(&tree, v, io);
        }
        self.tree = Some(tree);
    }

    /// Like [`Self::assign_subtree_slots`] but over subtree-local lists.
    /// The subtree root `u` keeps its existing slot (its position set is
    /// unchanged by a rebuild); descendants always get fresh slots.
    #[allow(clippy::too_many_arguments)]
    fn assign_rebuilt_slots(
        &mut self,
        tree: &WbbTree,
        v: NodeId,
        start: u64,
        lists: &[Vec<u64>],
        prefix: &[u64],
        is_subtree_root: bool,
        io: &IoSession,
    ) {
        let node = tree.node(v);
        let end = start + node.weight;
        let keep_existing = is_subtree_root && self.node_slot[v as usize].is_some();
        if !keep_existing {
            let cut = if node.is_leaf() {
                Some(self.leaf_cut_idx(node.depth))
            } else {
                self.cuts
                    .iter()
                    .position(|c| c.level == node.depth)
                    .map(|i| i as u32)
            };
            if let Some(cut_idx) = cut {
                let positions = positions_for_range(lists, prefix, start, end);
                let slot = self.cuts[cut_idx as usize].push_bitmap(&mut self.disk, positions, io);
                self.node_slot[v as usize] = Some((cut_idx, slot as u32));
            }
        }
        let mut off = start;
        for &child in &tree.node(v).children {
            self.assign_rebuilt_slots(tree, child, off, lists, prefix, false, io);
            off += tree.node(child).weight;
        }
    }

    /// Full rebuild: decode everything, recompute the alphabet split,
    /// rebuild tree, cuts and directory. Charges reads of all leaf bitmaps
    /// and writes of the fresh structure.
    fn global_rebuild(&mut self, extra: Option<(Symbol, u64)>, io: &IoSession) {
        self.stats.global_rebuilds += 1;
        let tree = self.tree.as_ref().expect("tree");
        // Recover the original string from the leaf bitmaps.
        let mut syms = vec![0 as Symbol; self.n as usize];
        let orig_of: Vec<Symbol> = (0..self.remap.sigma())
            .flat_map(|c| {
                let (lo, hi) = self.remap.map_range(c, c);
                (lo..=hi).map(move |_| c)
            })
            .collect();
        for (leaf, ich, _) in tree.leaves_under(tree.root()) {
            let (cut, slot) = self.node_slot[leaf as usize].expect("leaf without slot");
            let orig = orig_of[ich as usize];
            for p in self.cuts[cut as usize].decoder(&self.disk, slot as usize, io) {
                syms[p as usize] = orig;
            }
        }
        if let Some((ich, pos)) = extra {
            syms[pos as usize] = orig_of[ich as usize];
        }
        let stats = self.stats;
        *self = Self::build_charged(
            &syms,
            self.sigma,
            *self.disk.config(),
            self.c,
            self.slack,
            io,
        );
        self.stats = stats;
    }

    /// Length `n` of the indexed string.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Original alphabet size.
    pub fn sigma(&self) -> Symbol {
        self.sigma
    }

    /// Total structure size in bits: disk payload (cuts + directory,
    /// including slack and tombstones) plus the memory-resident prefix
    /// counts and remap directory.
    pub fn space_bits(&self) -> u64 {
        let lg_n = cost::lg2_ceil(self.n.max(2));
        self.disk.used_bits()
            + self.remap.size_bits()
            + (u64::from(self.remap.sigma_internal()) + 1) * lg_n
    }

    /// The simulated disk (harness inspection).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Mutable disk access for sibling layers that allocate parallel
    /// storage (the approximate index's hashed streams).
    pub(crate) fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// Payload bits across cuts (live bitmaps only, no slack/fragments) —
    /// the quantity bounded by `O(nH₀ + n)` in Theorem 2.
    pub fn live_payload_bits(&self) -> u64 {
        self.cuts.iter().map(|c| c.live_bits()).sum()
    }

    /// Number of materialized cuts (`O(lg lg n)`).
    pub fn num_cuts(&self) -> usize {
        self.cuts.len()
    }

    /// Access to the remap (for the approximate layer).
    pub(crate) fn remap(&self) -> &Remap {
        &self.remap
    }

    /// Multiset index range `[qs, qe)` for an internal char range.
    pub(crate) fn index_range(&self, ilo: Symbol, ihi: Symbol) -> (u64, u64) {
        (
            self.counts.prefix(ilo as usize),
            self.counts.prefix(ihi as usize + 1),
        )
    }

    /// Decomposition + per-canonical-node slot walk, exposed to the
    /// approximate layer which reads *hashed* streams for the same slots.
    pub(crate) fn canonical_slots(&self, qs: u64, qe: u64, io: &IoSession) -> Vec<(u32, u32)> {
        let canonical = self.decompose(qs, qe, io);
        let mut slots = Vec::new();
        for v in canonical {
            self.collect_slots(v, &mut slots);
        }
        slots
    }

    fn collect_slots(&self, v: NodeId, out: &mut Vec<(u32, u32)>) {
        if let Some(slot) = self.node_slot[v as usize] {
            out.push(slot);
            return;
        }
        let tree = self.tree.as_ref().expect("tree");
        for &child in &tree.node(v).children {
            self.collect_slots(child, out);
        }
    }

    /// All live `(cut, slot, positions)` triples — used by the approximate
    /// layer at build time to hash every stored set.
    pub(crate) fn live_slots(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        if let Some(tree) = &self.tree {
            for v in 0..tree.arena_len() as NodeId {
                if !tree.node(v).dead {
                    if let Some(s) = self.node_slot[v as usize] {
                        out.push(s);
                    }
                }
            }
        }
        out
    }

    /// Decodes one slot's positions (charged).
    pub(crate) fn slot_positions(&self, cut: u32, slot: u32, io: &IoSession) -> Vec<u64> {
        self.cuts[cut as usize]
            .decoder(&self.disk, slot as usize, io)
            .collect()
    }
}

/// Lazily merges position-list slices covering the multiset index range
/// `[start, end)` (characters are contiguous in the multiset, so the range
/// maps to at most one partial slice per character).
fn positions_for_range(lists: &[Vec<u64>], prefix: &[u64], start: u64, end: u64) -> Vec<u64> {
    // Locate the first character whose range intersects [start, end).
    let mut c = match prefix.binary_search(&start) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    // Skip empty characters that share the prefix value.
    while c + 1 < prefix.len() && prefix[c + 1] <= start {
        c += 1;
    }
    let mut streams = Vec::new();
    while c < lists.len() && prefix[c] < end {
        let s = start.max(prefix[c]) - prefix[c];
        let e = end.min(prefix[c + 1]) - prefix[c];
        if s < e {
            streams.push(lists[c][s as usize..e as usize].iter().copied());
        }
        c += 1;
    }
    merge::merge_disjoint(streams).collect()
}

/// Chunked DFS order: emit `d` levels of a subtree, then recurse on the
/// frontier — the paper's blocked tree layout.
fn chunk_order(tree: &WbbTree, root: NodeId, d: u32, out: &mut Vec<NodeId>) {
    let mut frontier = vec![root];
    while let Some(r) = frontier.pop() {
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(r);
        let r_depth = tree.node(r).depth;
        while let Some(v) = queue.pop_front() {
            out.push(v);
            for &ch in &tree.node(v).children {
                if tree.node(ch).depth < r_depth + d {
                    queue.push_back(ch);
                } else {
                    frontier.push(ch);
                }
            }
        }
    }
}

/// DFS order of a subtree (records rewritten after a local rebuild).
fn chunk_order_subtree(tree: &WbbTree, root: NodeId, out: &mut Vec<NodeId>) {
    out.push(root);
    for &ch in &tree.node(root).children {
        chunk_order_subtree(tree, ch, out);
    }
}

/// A Fenwick (binary indexed) tree over internal-character counts — the
/// memory-resident form of the paper's prefix array `A` (§2.1), supporting
/// O(lg σ) updates under appends.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn from_counts(counts: &[u64]) -> Self {
        let mut f = Fenwick {
            tree: vec![0; counts.len() + 1],
        };
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                f.add(i, c);
            }
        }
        f
    }

    fn add(&mut self, idx: usize, delta: u64) {
        let mut i = idx + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of counts for characters `< idx`.
    fn prefix(&self, idx: usize) -> u64 {
        let mut i = idx.min(self.tree.len() - 1);
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl Engine {
    /// Serializes the engine's memory-resident state: tree mirror, cut
    /// directories, node-to-slot and node-to-record maps, remap, prefix
    /// counts and parameters. The disk payload is persisted separately
    /// (extent by extent) by the store layer.
    pub(crate) fn persist_meta(&self, out: &mut psi_store::MetaBuf) {
        match &self.tree {
            Some(tree) => {
                out.put_bool(true);
                tree.persist_meta(out);
            }
            None => out.put_bool(false),
        }
        out.put_len(self.cuts.len());
        for cut in &self.cuts {
            cut.persist_meta(out);
        }
        out.put_len(self.node_slot.len());
        for s in &self.node_slot {
            match s {
                Some((cut, slot)) => {
                    out.put_bool(true);
                    out.put_u32(*cut);
                    out.put_u32(*slot);
                }
                None => out.put_bool(false),
            }
        }
        out.put_len(self.node_rec.len());
        for &(off, len) in &self.node_rec {
            out.put_u64(off);
            out.put_u64(len);
        }
        out.put_u32(self.tree_ext.0);
        self.remap.persist_meta(out);
        out.put_vec_u64(&self.counts.tree);
        out.put_u64(self.n);
        out.put_u32(self.sigma);
        out.put_u32(self.c);
        out.put_u8(self.slack.persist_tag());
    }

    /// Rebuilds an engine over a reopened disk. Rebuild counters start
    /// from zero (they describe a process lifetime, not the structure).
    pub(crate) fn restore_meta(
        meta: &mut psi_store::MetaCursor,
        disk: Disk,
    ) -> Result<Engine, psi_store::StoreError> {
        let tree = if meta.get_bool()? {
            Some(WbbTree::restore_meta(meta)?)
        } else {
            None
        };
        let num_cuts = meta.get_len(20)?;
        let mut cuts = Vec::with_capacity(num_cuts);
        for _ in 0..num_cuts {
            cuts.push(CutStream::restore_meta(meta, &disk)?);
        }
        let slots = meta.get_len(1)?;
        let mut node_slot = Vec::with_capacity(slots);
        for _ in 0..slots {
            node_slot.push(if meta.get_bool()? {
                Some((meta.get_u32()?, meta.get_u32()?))
            } else {
                None
            });
        }
        let recs = meta.get_len(16)?;
        let mut node_rec = Vec::with_capacity(recs);
        for _ in 0..recs {
            node_rec.push((meta.get_u64()?, meta.get_u64()?));
        }
        let tree_ext = psi_store::check_extent(&disk, meta.get_u32()?, "engine tree")?;
        // Cross-consistency: the per-node tables must cover the arena and
        // every slot pointer must land in an existing cut slot — a
        // checksum-valid but inconsistent producer should fail typed at
        // open, not panic on the first query.
        if let Some(tree) = &tree {
            if node_slot.len() < tree.arena_len() || node_rec.len() < tree.arena_len() {
                return Err(psi_store::StoreError::Meta {
                    what: "engine node tables shorter than the tree arena".into(),
                });
            }
        }
        for s in node_slot.iter().flatten() {
            let valid = cuts
                .get(s.0 as usize)
                .is_some_and(|c| (s.1 as usize) < c.num_slots());
            if !valid {
                return Err(psi_store::StoreError::Meta {
                    what: format!("engine slot pointer ({}, {}) out of range", s.0, s.1),
                });
            }
        }
        let remap = crate::remap::Remap::restore_meta(meta)?;
        let counts = Fenwick {
            tree: meta.get_vec_u64()?,
        };
        let n = meta.get_u64()?;
        let sigma = meta.get_u32()?;
        let c = meta.get_u32()?;
        let slack = Slack::from_persist_tag(meta.get_u8()?)?;
        Ok(Engine {
            disk,
            tree,
            cuts,
            node_slot,
            node_rec,
            tree_ext,
            remap,
            counts,
            n,
            sigma,
            c,
            slack,
            stats: EngineStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_api::naive_query;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    fn check_engine(engine: &Engine, symbols: &[Symbol], sigma: Symbol) {
        let widths: Vec<u32> = [1u32, 2, 3, sigma / 2, sigma]
            .iter()
            .map(|&w| w.clamp(1, sigma))
            .collect();
        for &w in &widths {
            for lo in (0..=sigma - w).step_by((sigma as usize / 7).max(1)) {
                let hi = lo + w - 1;
                let io = IoSession::new();
                let got = engine.query(lo, hi, &io);
                let want = naive_query(symbols, lo, hi);
                assert_eq!(got.to_vec(), want.to_vec(), "query [{lo}, {hi}]");
                assert_eq!(got.cardinality(), engine.query_cardinality(lo, hi));
            }
        }
    }

    #[test]
    fn static_queries_match_naive_uniform() {
        let symbols = psi_workloads::uniform(2000, 16, 5);
        let engine = Engine::build(&symbols, 16, cfg(), DEFAULT_C, Slack::None);
        check_engine(&engine, &symbols, 16);
    }

    #[test]
    fn static_queries_match_naive_zipf() {
        let symbols = psi_workloads::zipf(3000, 32, 1.3, 7);
        let engine = Engine::build(&symbols, 32, cfg(), DEFAULT_C, Slack::None);
        check_engine(&engine, &symbols, 32);
    }

    #[test]
    fn static_queries_match_naive_runs() {
        let symbols = psi_workloads::runs(2500, 24, 15.0, 9);
        let engine = Engine::build(&symbols, 24, cfg(), DEFAULT_C, Slack::None);
        check_engine(&engine, &symbols, 24);
    }

    #[test]
    fn heavy_character_string_queries() {
        // One character with > n/2 occurrences exercises the remap split.
        let mut symbols = vec![3u32; 900];
        symbols.extend(psi_workloads::uniform(300, 8, 11));
        let engine = Engine::build(&symbols, 8, cfg(), DEFAULT_C, Slack::None);
        check_engine(&engine, &symbols, 8);
    }

    #[test]
    fn single_character_alphabet() {
        let symbols = vec![0u32; 257];
        let engine = Engine::build(&symbols, 1, cfg(), DEFAULT_C, Slack::None);
        let io = IoSession::new();
        let r = engine.query(0, 0, &io);
        assert_eq!(r.cardinality(), 257);
        assert_eq!(r.to_vec(), (0..257).collect::<Vec<u64>>());
    }

    #[test]
    fn complement_trick_engages_for_large_results() {
        let symbols = psi_workloads::uniform(4000, 8, 13);
        let engine = Engine::build(&symbols, 8, cfg(), DEFAULT_C, Slack::None);
        let io = IoSession::new();
        let r = engine.query(0, 6, &io); // ~7/8 of the string
        assert!(
            r.is_complemented(),
            "result of cardinality {} should be complemented",
            r.cardinality()
        );
        assert_eq!(r.to_vec(), naive_query(&symbols, 0, 6).to_vec());
        // The full range costs almost nothing: both complement ranges are
        // empty.
        let io2 = IoSession::new();
        let full = engine.query(0, 7, &io2);
        assert_eq!(full.cardinality(), 4000);
        assert!(
            io2.stats().bits_read < 100,
            "full-range query should be nearly free"
        );
    }

    #[test]
    fn empty_ranges_cost_only_directory_io() {
        let mut symbols = psi_workloads::uniform(1000, 4, 15);
        symbols.iter_mut().for_each(|s| *s = (*s).min(2)); // char 3 absent
        let engine = Engine::build(&symbols, 4, cfg(), DEFAULT_C, Slack::None);
        let io = IoSession::new();
        let r = engine.query(3, 3, &io);
        assert!(r.is_empty());
        assert_eq!(
            io.stats().reads,
            0,
            "empty result detected from prefix counts alone"
        );
    }

    #[test]
    fn cuts_are_logarithmically_many() {
        let symbols = psi_workloads::uniform(1 << 14, 128, 17);
        let engine = Engine::build(&symbols, 128, IoConfig::default(), DEFAULT_C, Slack::None);
        // h = ceil(log_8 16384) ≈ 5; cuts = {1, 2, 4, 5}-ish.
        assert!(engine.num_cuts() <= 6, "{} cuts", engine.num_cuts());
        assert!(engine.num_cuts() >= 2);
    }

    #[test]
    fn space_is_near_entropy_plus_overheads() {
        let n = 1usize << 15;
        let sigma = 64u32;
        let symbols = psi_workloads::uniform(n, sigma, 19);
        let engine = Engine::build(&symbols, sigma, IoConfig::default(), DEFAULT_C, Slack::None);
        let nh0 = psi_bits::entropy::nh0_bits(&symbols, sigma);
        let payload = engine.live_payload_bits() as f64;
        // Payload across O(lg lg n) cuts; each cut costs at most ~nH0-ish
        // bits and the geometric decrease keeps the total within a small
        // constant of nH0 + O(n).
        assert!(
            payload < 6.0 * (nh0 + n as f64),
            "payload {payload} too large vs nH0 = {nh0}"
        );
    }

    #[test]
    fn planner_branches_match_forced_heap_with_identical_io() {
        use psi_bits::merge::MergeStrategy;
        let n = 40_000usize;
        let mut seen = std::collections::HashSet::new();
        // Dense covers (small alphabet) drive the bitset branch; sparse
        // covers (large alphabet, narrow ranges) drive the heap branch.
        let cases: [(u32, &[(u32, u32)]); 2] = [
            (16, &[(3, 3), (2, 5), (4, 11), (0, 12), (1, 14), (0, 14)]),
            (1024, &[(100, 103), (7, 7), (511, 514), (200, 207)]),
        ];
        for (sigma, ranges) in cases {
            let symbols = psi_workloads::uniform(n, sigma, 33);
            let engine = Engine::build(&symbols, sigma, cfg(), DEFAULT_C, Slack::None);
            for &(lo, hi) in ranges {
                let io = IoSession::new();
                let got = engine.query(lo, hi, &io);
                assert_eq!(got.to_vec(), naive_query(&symbols, lo, hi).to_vec());
                // Replay the same canonical cover through the forced heap
                // merge: identical output stream, identical blocks charged.
                let (ilo, ihi) = engine.remap().map_range(lo, hi);
                let (qs, qe) = engine.index_range(ilo, ihi);
                let z = qe - qs;
                let io_ref = IoSession::new();
                let mut slots = if 2 * z > engine.n() {
                    let mut s = engine.canonical_slots(0, qs, &io_ref);
                    s.extend(engine.canonical_slots(qe, engine.n(), &io_ref));
                    s
                } else {
                    engine.canonical_slots(qs, qe, &io_ref)
                };
                slots.retain(|&(c, s)| engine.cuts[c as usize].slot(s as usize).count > 0);
                if slots.len() < 2 {
                    continue; // verbatim-copy path, covered elsewhere
                }
                let mut total = 0u64;
                let (mut plo, mut phi) = (u64::MAX, 0u64);
                for &(c, s) in &slots {
                    let slot = engine.cuts[c as usize].slot(s as usize);
                    total += slot.count;
                    plo = plo.min(slot.first_pos.unwrap());
                    phi = phi.max(slot.last_pos.unwrap());
                }
                seen.insert(merge::plan(slots.len(), total, Some((plo, phi))));
                let decoders: Vec<_> = slots
                    .iter()
                    .map(|&(c, s)| {
                        engine.cuts[c as usize].decoder(&engine.disk, s as usize, &io_ref)
                    })
                    .collect();
                let reference = merge::merge_with_strategy(
                    decoders,
                    engine.n(),
                    total,
                    Some((plo, phi)),
                    MergeStrategy::Heap,
                );
                assert_eq!(got.stored(), &reference, "[{lo},{hi}] planner output");
                assert_eq!(
                    io.stats(),
                    io_ref.stats(),
                    "[{lo},{hi}] planner must charge exactly the heap merge's I/O"
                );
            }
        }
        assert!(
            seen.contains(&MergeStrategy::Bitset) && seen.contains(&MergeStrategy::Heap),
            "query set failed to exercise the planner branches: {seen:?}"
        );
    }

    #[test]
    fn large_single_cover_lifts_the_skip_directory() {
        // One heavy character: its leaf slot exceeds SKIP_LIFT_MIN, so the
        // narrow query's verbatim copy carries the persisted directory and
        // the result gallops with no further decode.
        let mut symbols = vec![5u32; 10_000];
        symbols.extend(psi_workloads::uniform(9_000, 16, 35));
        let engine = Engine::build(&symbols, 16, cfg(), DEFAULT_C, Slack::None);
        let plain_io = IoSession::new();
        let r = engine.query(5, 5, &plain_io);
        assert!(r.cardinality() >= SKIP_LIFT_MIN);
        assert_eq!(r.to_vec(), naive_query(&symbols, 5, 5).to_vec());
        assert!(r.contains(0) && r.contains(9_999));
        assert_eq!(r.rank(10_000), 10_000);
    }

    #[test]
    fn append_then_query_matches_naive() {
        let mut symbols = psi_workloads::uniform(500, 12, 21);
        let mut engine = Engine::build(&symbols, 12, cfg(), DEFAULT_C, Slack::Proportional);
        let io = IoSession::untracked();
        let appends = psi_workloads::zipf(700, 12, 1.0, 23);
        for &ch in &appends {
            engine.append(ch, &io);
            symbols.push(ch);
        }
        assert_eq!(engine.n(), 1200);
        check_engine(&engine, &symbols, 12);
        engine.tree.as_ref().unwrap().check_invariants();
    }

    #[test]
    fn append_from_empty_builds_incrementally() {
        let mut engine = Engine::build(&[], 6, cfg(), DEFAULT_C, Slack::Proportional);
        let io = IoSession::untracked();
        let symbols = psi_workloads::uniform(400, 6, 25);
        for &ch in &symbols {
            engine.append(ch, &io);
        }
        check_engine(&engine, &symbols, 6);
    }

    #[test]
    fn append_new_characters_mid_stream() {
        let mut engine = Engine::build(&vec![2u32; 100], 8, cfg(), DEFAULT_C, Slack::Proportional);
        let io = IoSession::untracked();
        let mut symbols = vec![2u32; 100];
        for ch in [0u32, 7, 5, 1, 6, 3, 4, 0, 7] {
            engine.append(ch, &io);
            symbols.push(ch);
        }
        check_engine(&engine, &symbols, 8);
    }

    #[test]
    fn rebuilds_happen_and_preserve_correctness() {
        let mut symbols = psi_workloads::uniform(200, 8, 27);
        let mut engine = Engine::build(&symbols, 8, cfg(), 5, Slack::Proportional);
        let io = IoSession::untracked();
        // Hammer one character to force weight violations.
        for _ in 0..2000 {
            engine.append(3, &io);
        }
        symbols.extend(std::iter::repeat_n(3, 2000));
        assert!(
            engine.stats.subtree_rebuilds + engine.stats.global_rebuilds > 0,
            "expected at least one rebuild"
        );
        check_engine(&engine, &symbols, 8);
    }
}
