//! The semi-dynamic (append-only) index (Theorem 4).

use psi_api::{AppendIndex, HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_io::{Disk, IoConfig, IoSession};

use crate::cutstream::Slack;
use crate::engine::{Engine, EngineStats, DEFAULT_C};

/// Theorem 4's semi-dynamic index: the structure of [`crate::OptimalIndex`]
/// extended with `append` in amortized `O(lg lg n)` I/Os — "motivated by
/// the fact that OLAP and scientific data … are typically read and append
/// only" (§4.1).
///
/// An append extends one compressed bitmap per materialized cut in place
/// (slots carry proportional slack); weight-balance violations and slot
/// overflows trigger the paper's subtree rebuilds, whose cost is charged
/// to the same session and amortizes to `O(lg lg n)` per append
/// (experiment E6 measures this).
///
/// ```
/// use psi_core::SemiDynamicIndex;
/// use psi_api::{AppendIndex, SecondaryIndex};
/// use psi_io::{IoConfig, IoSession};
///
/// let mut index = SemiDynamicIndex::new(4, IoConfig::default());
/// let io = IoSession::new();
/// for &c in &[0u32, 2, 1, 2, 3] {
///     index.append(c, &io);
/// }
/// assert_eq!(index.query(1, 2, &io).to_vec(), vec![1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct SemiDynamicIndex {
    engine: Engine,
}

impl SemiDynamicIndex {
    /// An empty index over alphabet `[0, sigma)`, ready for appends.
    pub fn new(sigma: Symbol, config: IoConfig) -> Self {
        SemiDynamicIndex {
            engine: Engine::build(&[], sigma, config, DEFAULT_C, Slack::Proportional),
        }
    }

    /// Bulk-builds from an initial string, then accepts appends.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        SemiDynamicIndex {
            engine: Engine::build(symbols, sigma, config, DEFAULT_C, Slack::Proportional),
        }
    }

    /// Result cardinality from the prefix counts (no I/O).
    pub fn cardinality(&self, lo: Symbol, hi: Symbol) -> u64 {
        self.engine.query_cardinality(lo, hi)
    }

    /// Rebuild counters (amortization measurements).
    pub fn stats(&self) -> EngineStats {
        self.engine.stats
    }

    /// Live compressed payload bits across cuts.
    pub fn payload_bits(&self) -> u64 {
        self.engine.live_payload_bits()
    }
}

impl HasDisk for SemiDynamicIndex {
    fn disk(&self) -> &Disk {
        self.engine.disk()
    }
}

impl SecondaryIndex for SemiDynamicIndex {
    fn len(&self) -> u64 {
        self.engine.n()
    }

    fn sigma(&self) -> Symbol {
        self.engine.sigma()
    }

    fn space_bits(&self) -> u64 {
        self.engine.space_bits()
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        self.engine.query(lo, hi, io)
    }

    fn cardinality_hint(&self, lo: Symbol, hi: Symbol) -> Option<u64> {
        // Exact, from the memory-resident prefix counts (the paper's `A`,
        // Fenwick-maintained under appends).
        Some(self.engine.query_cardinality(lo, hi))
    }
}

impl AppendIndex for SemiDynamicIndex {
    fn append(&mut self, symbol: Symbol, io: &IoSession) {
        self.engine.append(symbol, io);
    }
}

impl psi_api::ApplyOp for SemiDynamicIndex {
    fn apply_op(&mut self, op: &psi_api::MutOp, io: &IoSession) -> Result<(), psi_api::ApplyError> {
        match *op {
            psi_api::MutOp::Append { symbol } => {
                if symbol >= self.sigma() {
                    return Err(psi_api::ApplyError {
                        what: format!("append symbol {symbol} outside alphabet {}", self.sigma()),
                    });
                }
                self.append(symbol, io);
                Ok(())
            }
            // Semi-dynamic is append-only: a change/delete in the log means
            // it was written by a different family.
            psi_api::MutOp::Change { pos, .. } | psi_api::MutOp::Delete { pos } => {
                Err(psi_api::ApplyError {
                    what: format!("semi-dynamic index cannot replay change/delete at {pos}"),
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl psi_store::PersistIndex for SemiDynamicIndex {
    const TAG: &'static str = "semi_dynamic";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        self.engine.persist_meta(out);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![HasDisk::disk(self)]
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let disk = psi_store::single_volume(disks, "semi-dynamic")?;
        Ok(SemiDynamicIndex {
            engine: Engine::restore_meta(meta, disk)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_api::naive_query;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn append_stream_matches_naive() {
        let mut idx = SemiDynamicIndex::new(16, cfg());
        let io = IoSession::untracked();
        let symbols = psi_workloads::zipf(3000, 16, 0.9, 31);
        for &c in &symbols {
            idx.append(c, &io);
        }
        assert_eq!(idx.len(), 3000);
        for lo in (0..16u32).step_by(3) {
            for hi in lo..16u32 {
                let io = IoSession::new();
                assert_eq!(
                    idx.query(lo, hi, &io).to_vec(),
                    naive_query(&symbols, lo, hi).to_vec(),
                    "range [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn bulk_build_then_append() {
        let mut symbols = psi_workloads::uniform(1000, 8, 33);
        let mut idx = SemiDynamicIndex::build(&symbols, 8, cfg());
        let io = IoSession::untracked();
        for &c in &psi_workloads::runs(1000, 8, 10.0, 35) {
            idx.append(c, &io);
            symbols.push(c);
        }
        let io = IoSession::new();
        assert_eq!(
            idx.query(2, 5, &io).to_vec(),
            naive_query(&symbols, 2, 5).to_vec()
        );
    }

    #[test]
    fn amortized_append_cost_is_small() {
        let mut idx = SemiDynamicIndex::new(32, IoConfig::default());
        let n = 20_000;
        let mut total = 0u64;
        for &c in &psi_workloads::uniform(n, 32, 37) {
            let io = IoSession::new(); // one session per operation
            idx.append(c, &io);
            total += io.stats().total();
        }
        let per_append = total as f64 / n as f64;
        // Theorem 4: amortized O(lg lg n) ≈ 4; allow implementation
        // constants.
        assert!(
            per_append < 40.0,
            "amortized {per_append:.2} I/Os per append"
        );
        assert!(idx.stats().subtree_rebuilds + idx.stats().global_rebuilds > 0);
    }

    #[test]
    fn space_stays_near_entropy_after_appends() {
        let mut idx = SemiDynamicIndex::new(64, IoConfig::default());
        let io = IoSession::untracked();
        let symbols = psi_workloads::uniform(30_000, 64, 39);
        for &c in &symbols {
            idx.append(c, &io);
        }
        let nh0 = psi_bits::entropy::nh0_bits(&symbols, 64);
        // Slack and fragmentation allow a generous constant, but the space
        // must stay within a constant factor of the entropy bound.
        assert!(
            (idx.space_bits() as f64) < 12.0 * (nh0 + symbols.len() as f64),
            "space {} vs nH0 {nh0}",
            idx.space_bits()
        );
    }
}
