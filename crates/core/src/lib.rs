//! # psi-core — the Pagh–Rao secondary index (PODS 2009)
//!
//! Implementation of every structure from *"Secondary Indexing in One
//! Dimension: Beyond B-trees and Bitmap Indexes"* (Pagh & Rao,
//! arXiv:0811.2904), over the simulated I/O model of [`psi_io`]:
//!
//! | Structure | Theorem | Space (bits) | Query (I/Os) | Update (amortized I/Os) |
//! |---|---|---|---|---|
//! | [`UniformTreeIndex`] | 1 | `O(n lg² σ)` | `O(T/B + lg σ)` | — |
//! | [`OptimalIndex`] | 2 | `O(nH₀ + n + σ lg² n)` | `O(z lg(n/z)/B + log_b n + lg lg n)` | — |
//! | [`ApproximateIndex`] | 3 | as Thm 2 | `O(z lg(1/ε)/B + log_b n + lg lg n)` | — |
//! | [`SemiDynamicIndex`] | 4 | as Thm 2 | as Thm 2 | append `O(lg lg n)` |
//! | [`BufferedIndex`] | 5 | `+ O(σ lg n (B + lg n))` | `O(z lg(n/z)/B + lg n)` | append `O(lg n / b)` |
//! | [`BufferedBitmapIndex`] | 6 | `O(nH₀)` | point `O(T/B + lg n)` | `O(lg n / b)` |
//! | [`FullyDynamicIndex`] | 7 | as Thm 2 | `O(z lg(n/z)/B + lg n lg lg n)` | change `O(lg n lg lg n / b)` |
//!
//! plus the substrates they require: the pruned weight-balanced B-tree
//! ([`wbb`]), slotted cut streams ([`cutstream`]), the heavy-character
//! alphabet split ([`remap`]), the split-XOR universal hash family with
//! computable preimages ([`hashing`]), and the deleted-position
//! translation B-tree ([`DeletedPositionMap`], paper §4).
//!
//! All structures implement the shared [`psi_api::SecondaryIndex`] trait;
//! dynamic ones add [`psi_api::AppendIndex`] / [`psi_api::DynamicIndex`].

#![warn(missing_docs)]

mod approx;
mod buffered;
mod buffered_bitmap;
pub mod cutstream;
mod delmap;
mod engine;
mod fully_dynamic;
pub mod hashing;
mod optimal;
pub mod remap;
mod semi_dynamic;
mod uniform_tree;
pub mod wbb;

pub use approx::{ApproxResult, ApproximateIndex};
pub use buffered::BufferedIndex;
pub use buffered_bitmap::BufferedBitmapIndex;
pub use delmap::DeletedPositionMap;
pub use engine::{Engine, EngineStats, DEFAULT_C};
pub use fully_dynamic::FullyDynamicIndex;
pub use optimal::OptimalIndex;
pub use semi_dynamic::SemiDynamicIndex;
pub use uniform_tree::UniformTreeIndex;
