//! Approximate range queries (Theorem 3, §3).
//!
//! "Whenever the exact data structure … stores a set of positions S ⊆ [n],
//! the approximate data structure additionally stores a sequence of
//! `k = ⌊lg lg n⌋` hashed sets `h₁(S), …, h_k(S)` … the same k functions
//! are used in each node, and we group the sets according to what hash
//! function was used."
//!
//! A query first computes `z` from the weight-balanced tree (no I/O),
//! picks the smallest `j` with `2^{2ʲ} > z/ε`, and unions the *j-th hashed
//! sets* of the canonical nodes instead of the position sets — reading
//! `O(z lg(1/ε))` bits instead of `O(z lg(n/z))`. The result is returned
//! as the hashed set plus the hash function, whose preimage
//! `h_j⁻¹(h_j(I))` is enumerable lazily; false positives occur with
//! probability at most `z/2^{2ʲ} ≤ ε` by universality.

use psi_api::{check_range, RidSet, SecondaryIndex, Symbol};
use psi_bits::{merge, GapBitmap};
use psi_io::{Disk, IoConfig, IoSession};

use crate::cutstream::{CutStream, Slack};
use crate::engine::Engine;
use crate::hashing::{HashFamily, SplitXorHash};
use crate::optimal::OptimalIndex;

/// Theorem 3's approximate secondary index: the exact structure of
/// [`OptimalIndex`] plus `k = ⌊lg lg n⌋` hashed-set families, one per
/// stored bitmap.
///
/// ```
/// use psi_core::ApproximateIndex;
/// use psi_io::{IoConfig, IoSession};
///
/// let symbols = psi_workloads::uniform(10_000, 64, 7);
/// let index = ApproximateIndex::build(&symbols, 64, IoConfig::default(), 42);
/// let io = IoSession::new();
/// let approx = index.query_approx(10, 12, 0.01, &io);
/// // Supersets of the exact result, each non-member kept with prob <= 1%.
/// for i in psi_api::naive_query(&symbols, 10, 12).iter() {
///     assert!(approx.contains(i));
/// }
/// ```
#[derive(Debug)]
pub struct ApproximateIndex {
    engine: Engine,
    family: HashFamily,
    /// `hashed[j-1][cut]` mirrors the engine's cut streams slot-for-slot,
    /// holding `h_j` images of each stored position set.
    hashed: Vec<Vec<CutStream>>,
}

impl ApproximateIndex {
    /// Builds over `symbols ∈ [0, sigma)ⁿ` with hash functions derived
    /// from `seed`.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig, seed: u64) -> Self {
        let exact = OptimalIndex::build(symbols, sigma, config);
        let engine = exact.into_engine();
        let n = engine.n().max(2);
        let family = HashFamily::new(n, seed);
        let io = IoSession::untracked();
        // Group hashed sets by function (j-major), mirroring slot order.
        let mut slots = engine.live_slots();
        slots.sort_unstable();
        let num_cuts = engine.num_cuts();
        let mut hashed: Vec<Vec<CutStream>> = Vec::new();
        // Split borrows: the streams need &mut Disk while reading slot
        // positions needs &engine — decode all positions first.
        let slot_positions: Vec<((u32, u32), Vec<u64>)> = slots
            .iter()
            .map(|&(c, s)| ((c, s), engine.slot_positions(c, s, &io)))
            .collect();
        let mut engine = engine;
        for j in 1..=family.k() {
            let h = *family.level(j);
            let mut per_cut: Vec<CutStream> = (0..num_cuts)
                .map(|c| CutStream::new(engine.disk_mut(), 100 * j + c as u32, Slack::None))
                .collect();
            for ((cut, slot), positions) in &slot_positions {
                let mut image: Vec<u64> = positions.iter().map(|&p| h.hash(p)).collect();
                image.sort_unstable();
                image.dedup();
                let idx = per_cut[*cut as usize].push_bitmap(engine.disk_mut(), image, &io);
                debug_assert_eq!(idx as u32, *slot, "hashed slots must mirror engine slots");
            }
            hashed.push(per_cut);
        }
        ApproximateIndex {
            engine,
            family,
            hashed,
        }
    }

    /// The hash family in use.
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// Answers approximately with false-positive probability at most
    /// `epsilon`; falls back to the exact algorithm when even the
    /// coarsest-universe level cannot help (`j > k`) or when the result is
    /// more than half the string.
    pub fn query_approx(
        &self,
        lo: Symbol,
        hi: Symbol,
        epsilon: f64,
        io: &IoSession,
    ) -> ApproxResult {
        check_range(lo, hi, self.engine.sigma());
        let n = self.engine.n();
        if n == 0 {
            return ApproxResult::Exact(RidSet::from_positions(GapBitmap::empty(0)));
        }
        let z = self.engine.query_cardinality(lo, hi);
        if z == 0 {
            return ApproxResult::Exact(RidSet::from_positions(GapBitmap::empty(n)));
        }
        let level = if 2 * z > n {
            None
        } else {
            self.family.level_for(z, epsilon)
        };
        let Some(j) = level else {
            return ApproxResult::Exact(self.engine.query(lo, hi, io));
        };
        let (ilo, ihi) = self.engine.remap().map_range(lo, hi);
        let (qs, qe) = self.engine.index_range(ilo, ihi);
        let slots = self.engine.canonical_slots(qs, qe, io);
        let streams = &self.hashed[(j - 1) as usize];
        let decoders: Vec<_> = slots
            .iter()
            .map(|&(cut, slot)| {
                streams[cut as usize].decoder(self.engine.disk(), slot as usize, io)
            })
            .collect();
        // Hashed sets of disjoint position sets may collide: dedup.
        let set: Vec<u64> = merge::union_dedup(decoders).collect();
        let hash = *self.family.level(j);
        ApproxResult::Hashed(HashedResult { hash, set, n, z })
    }

    /// Result cardinality `z` (exact, from prefix counts, no I/O).
    pub fn cardinality(&self, lo: Symbol, hi: Symbol) -> u64 {
        self.engine.query_cardinality(lo, hi)
    }
}

impl SecondaryIndex for ApproximateIndex {
    fn len(&self) -> u64 {
        self.engine.n()
    }

    fn sigma(&self) -> Symbol {
        self.engine.sigma()
    }

    fn space_bits(&self) -> u64 {
        self.engine.space_bits()
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        self.engine.query(lo, hi, io)
    }
}

/// The outcome of an approximate query: either an exact compressed result
/// (fallback path) or a hashed set with its hash function.
#[derive(Debug, Clone)]
pub enum ApproxResult {
    /// The exact answer (used when approximation cannot save I/O).
    Exact(RidSet),
    /// The hashed answer `h_j(I)`; the logical result is the preimage
    /// `h_j⁻¹(h_j(I))`.
    Hashed(HashedResult),
}

/// A hashed approximate result.
#[derive(Debug, Clone)]
pub struct HashedResult {
    hash: SplitXorHash,
    /// Sorted distinct hashed values.
    set: Vec<u64>,
    n: u64,
    /// Exact result cardinality (from the tree weights).
    z: u64,
}

impl ApproxResult {
    /// Membership test — exact members always pass; non-members pass with
    /// probability at most ε.
    pub fn contains(&self, i: u64) -> bool {
        match self {
            ApproxResult::Exact(r) => r.contains(i),
            ApproxResult::Hashed(h) => h.set.binary_search(&h.hash.hash(i)).is_ok(),
        }
    }

    /// Whether the fallback exact path was taken.
    pub fn is_exact(&self) -> bool {
        matches!(self, ApproxResult::Exact(_))
    }

    /// The exact result cardinality `z` (known in both cases).
    pub fn exact_cardinality(&self) -> u64 {
        match self {
            ApproxResult::Exact(r) => r.cardinality(),
            ApproxResult::Hashed(h) => h.z,
        }
    }

    /// Size of the returned representation in bits — `O(z lg(1/ε))` for
    /// hashed results (§3, Carter et al. lower bound).
    pub fn size_bits(&self) -> u64 {
        match self {
            ApproxResult::Exact(r) => r.size_bits(),
            ApproxResult::Hashed(h) => {
                GapBitmap::from_sorted_iter(h.set.iter().copied(), h.hash.universe().max(1))
                    .size_bits()
            }
        }
    }

    /// Lazily enumerates the (superset) result positions in increasing
    /// order — the preimage `h⁻¹(h(I))`, generated without further I/O.
    pub fn iter(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        match self {
            ApproxResult::Exact(r) => Box::new(r.iter()),
            ApproxResult::Hashed(h) => {
                let hash = h.hash;
                let n = h.n;
                Box::new((0..hash.high_parts(n)).flat_map(move |i1| {
                    let mut block: Vec<u64> = h
                        .set
                        .iter()
                        .filter_map(|&s| {
                            let i2 = s ^ hash_g(&hash, i1);
                            let i = if hash.out_bits >= 64 {
                                i2
                            } else {
                                (i1 << hash.out_bits) | i2
                            };
                            (i < n).then_some(i)
                        })
                        .collect();
                    block.sort_unstable();
                    block.into_iter()
                }))
            }
        }
    }

    /// Intersects several approximate results (the paper's d-dimensional
    /// RID-intersection use: "Simply compute the preimage of the
    /// intersection"). Enumerates the candidate stream of the most
    /// selective result and filters through the rest.
    pub fn intersect_all(results: &[&ApproxResult]) -> Vec<u64> {
        assert!(!results.is_empty());
        // Prefer an exact result as the driver; otherwise the hashed
        // result with the largest universe (fewest preimage candidates).
        let driver = results
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| match r {
                ApproxResult::Exact(_) => (0u8, 0u64),
                ApproxResult::Hashed(h) => (1, u64::MAX - h.hash.universe()),
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        results[driver]
            .iter()
            .filter(|&i| {
                results
                    .iter()
                    .enumerate()
                    .all(|(k, r)| k == driver || r.contains(i))
            })
            .collect()
    }
}

fn hash_g(h: &SplitXorHash, i1: u64) -> u64 {
    // g_j(i1) is private to SplitXorHash; recover it through the public
    // hash of the block base: h(i1 << out_bits) = g(i1) ^ 0.
    if h.out_bits >= 64 {
        h.hash(0) // single block: g(0)
    } else {
        h.hash(i1 << h.out_bits)
    }
}

impl psi_api::HasDisk for ApproximateIndex {
    fn disk(&self) -> &Disk {
        self.engine.disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_api::naive_query;

    fn build(n: usize, sigma: u32, seed: u64) -> (Vec<u32>, ApproximateIndex) {
        let symbols = psi_workloads::uniform(n, sigma, seed);
        let idx = ApproximateIndex::build(&symbols, sigma, IoConfig::default(), seed ^ 0xA55A);
        (symbols, idx)
    }

    #[test]
    fn approximate_results_are_supersets() {
        let (symbols, idx) = build(20_000, 128, 3);
        for (lo, hi, eps) in [(5u32, 5u32, 0.01), (10, 20, 0.05), (0, 3, 0.001)] {
            let io = IoSession::new();
            let approx = idx.query_approx(lo, hi, eps, &io);
            let exact = naive_query(&symbols, lo, hi);
            for i in exact.iter() {
                assert!(
                    approx.contains(i),
                    "exact member {i} missing, range [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        // n >= 2^16 so the family's top level has hashed universe 2^16.
        let (symbols, idx) = build(70_000, 256, 5);
        let io = IoSession::untracked();
        let eps = 0.05;
        let approx = idx.query_approx(17, 17, eps, &io);
        assert!(
            !approx.is_exact(),
            "narrow query should take the hashed path"
        );
        let exact: std::collections::HashSet<u64> = naive_query(&symbols, 17, 17).iter().collect();
        let mut fp = 0u64;
        let mut non_members = 0u64;
        for i in 0..symbols.len() as u64 {
            if !exact.contains(&i) {
                non_members += 1;
                if approx.contains(i) {
                    fp += 1;
                }
            }
        }
        let rate = fp as f64 / non_members as f64;
        assert!(rate <= 3.0 * eps, "false positive rate {rate} >> eps {eps}");
    }

    #[test]
    fn preimage_iteration_matches_contains() {
        let (_symbols, idx) = build(5_000, 64, 7);
        let io = IoSession::untracked();
        let approx = idx.query_approx(3, 4, 0.02, &io);
        let via_iter: Vec<u64> = approx.iter().collect();
        assert!(
            via_iter.windows(2).all(|w| w[0] < w[1]),
            "iter must be sorted"
        );
        for &i in via_iter.iter().take(500) {
            assert!(approx.contains(i));
        }
        let member_count = (0..5_000u64).filter(|&i| approx.contains(i)).count();
        assert_eq!(member_count, via_iter.len());
    }

    #[test]
    fn hashed_result_is_smaller_than_exact() {
        // Regime where Theorem 3 predicts a clear win: lg(n/z) ~ 6 bits
        // per position exactly, while z/eps lands just inside the level-4
        // universe (2^16), so hashed gaps are ~4x denser.
        let (_symbols, idx) = build(300_000, 64, 7);
        let io1 = IoSession::new();
        let approx = idx.query_approx(10, 10, 0.1, &io1);
        let io2 = IoSession::new();
        let exact = idx.query(10, 10, &io2);
        assert!(!approx.is_exact());
        assert!(
            approx.size_bits() < exact.size_bits(),
            "hashed {} bits vs exact {} bits",
            approx.size_bits(),
            exact.size_bits()
        );
        assert!(
            io1.stats().bits_read < io2.stats().bits_read,
            "approx read {} bits vs exact {}",
            io1.stats().bits_read,
            io2.stats().bits_read
        );
    }

    #[test]
    fn tiny_epsilon_falls_back_to_exact() {
        let (symbols, idx) = build(2_000, 16, 11);
        let io = IoSession::new();
        // z/eps far beyond 2^{2^k}: must fall back.
        let approx = idx.query_approx(0, 7, 1e-9, &io);
        assert!(approx.is_exact());
        let exact = naive_query(&symbols, 0, 7);
        let got: Vec<u64> = approx.iter().collect();
        assert_eq!(got, exact.to_vec());
    }

    #[test]
    fn intersection_filters_dimensions() {
        // Two independent attributes; intersect approximate results.
        let a = psi_workloads::uniform(10_000, 32, 13);
        let b = psi_workloads::uniform(10_000, 32, 17);
        let ia = ApproximateIndex::build(&a, 32, IoConfig::default(), 1);
        let ib = ApproximateIndex::build(&b, 32, IoConfig::default(), 2);
        let io = IoSession::untracked();
        let ra = ia.query_approx(4, 6, 0.01, &io);
        let rb = ib.query_approx(20, 22, 0.01, &io);
        let got = ApproxResult::intersect_all(&[&ra, &rb]);
        let want: Vec<u64> = (0..10_000u64)
            .filter(|&i| (4..=6).contains(&a[i as usize]) && (20..=22).contains(&b[i as usize]))
            .collect();
        // Every true match survives; false matches are doubly filtered
        // (≈ ε² of non-members).
        for w in &want {
            assert!(got.contains(w));
        }
        let extras = got.len() - want.len();
        assert!(
            (extras as f64) < 0.01 * 10_000.0,
            "{extras} false intersection survivors"
        );
    }

    #[test]
    fn empty_and_full_ranges() {
        let symbols = vec![1u32; 1000];
        let idx = ApproximateIndex::build(&symbols, 4, IoConfig::default(), 3);
        let io = IoSession::untracked();
        let empty = idx.query_approx(2, 3, 0.1, &io);
        assert!(empty.is_exact());
        assert_eq!(empty.iter().count(), 0);
        let full = idx.query_approx(0, 3, 0.1, &io);
        assert_eq!(full.exact_cardinality(), 1000);
    }
}
