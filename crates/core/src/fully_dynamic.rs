//! The fully dynamic secondary index (Theorem 7, §4.3).
//!
//! "All the bitmaps stored at any particular materialized level … can be
//! thought of as representing a bitmap index over an alphabet containing
//! one character corresponding to each node in that level. Thus we can
//! obtain a fully dynamic secondary bitmap index by representing each of
//! the materialized levels as a buffered bitmap index."
//!
//! Structure: a *snapshot* of the weight-balanced tree shape (frozen
//! between epoch rebuilds) whose materialized cuts are each stored as a
//! [`BufferedBitmapIndex`] over that cut's node-alphabet. A
//! `change(i, α)` issues one delete and one insert per materialized cut
//! (`O(lg lg n)` buffered updates of amortized `O(lg n / b)` I/Os each —
//! Theorem 7's `O(lg n lg lg n / b)`); a range query decomposes over the
//! frozen tree and reads each canonical node's frontier as a *range* of
//! consecutive node-characters from the cut's buffered index.
//!
//! Deletions follow §4: "extend the alphabet with a new character ∞ that
//! is never matched by a range query"; a [`crate::DeletedPositionMap`]
//! can translate to compacted position semantics on top.
//!
//! Engineering choices documented in `DESIGN.md`: the tree shape is
//! frozen per epoch (the paper is silent on rebalancing under `change`,
//! which moves weight between characters); a global rebuild runs every
//! `n/4` changes, or immediately when a change introduces a character
//! that the snapshot has no node for.

use psi_api::{check_range, AppendIndex, DynamicIndex, HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_bits::{merge, GapBitmap};
use psi_io::{Disk, IoConfig, IoSession};

use crate::buffered_bitmap::BufferedBitmapIndex;
use crate::wbb::{NodeId, WbbTree};

/// One frozen materialized cut: its node-alphabet is backed by a buffered
/// bitmap index.
#[derive(Debug)]
struct CutIndex {
    /// Tree depth this cut materializes (diagnostics).
    #[allow(dead_code)]
    level: u32,
    bbi: BufferedBitmapIndex,
}

/// Routing entry: the first build-time position of a character piece
/// inside a cut node.
type RouteEntry = (u64, u32);

#[derive(Debug)]
struct Snapshot {
    tree: WbbTree,
    cuts: Vec<CutIndex>,
    /// `node_slot[v] = (cut, node-character within the cut)`.
    node_slot: Vec<Option<(u32, u32)>>,
    /// `route[cut][char]` — sorted `(first_pos, node-character)` pieces.
    route: Vec<Vec<Vec<RouteEntry>>>,
    /// `leaf_route[char]` — sorted `(first_pos, leaf depth)` pieces. A
    /// position is *present* in cut `i` iff its leaf is deeper than the
    /// previous cut's level (`leaf_depth > level[i-1]`); deeper cuts never
    /// see it, so updates must skip them.
    leaf_route: Vec<Vec<(u64, u32)>>,
    /// Cut levels (depths), ascending.
    levels: Vec<u32>,
    /// Build-time length (positions `≥ n0` are pending appends).
    n0: u64,
}

/// Theorem 7's fully dynamic index.
///
/// ```
/// use psi_core::FullyDynamicIndex;
/// use psi_api::{DynamicIndex, SecondaryIndex};
/// use psi_io::{Disk, IoConfig, IoSession};
///
/// let mut idx = FullyDynamicIndex::build(&[0, 1, 2, 1, 0], 3, IoConfig::default());
/// let io = IoSession::new();
/// idx.change(0, 2, &io); // string becomes 2 1 2 1 0
/// assert_eq!(idx.query(2, 2, &io).to_vec(), vec![0, 2]);
/// idx.delete(3, &io); // position 3 stops matching any range
/// assert_eq!(idx.query(1, 1, &io).to_vec(), vec![1]);
/// ```
#[derive(Debug)]
pub struct FullyDynamicIndex {
    config: IoConfig,
    sigma: Symbol,
    /// The current string, including `∞` markers (this mirrors the
    /// *indexed table*, not the index; it is not counted in space).
    string: Vec<Symbol>,
    /// Per-character counts over `[0, σ]` (the last entry counts `∞`),
    /// maintained under every update — the memory-resident analogue of
    /// the engine's array `A`, backing O(σ)-time cardinalities.
    counts: Vec<u64>,
    /// The `∞` character (= `sigma`): "never matched by a range query".
    inf: Symbol,
    snap: Option<Snapshot>,
    /// Symbols appended since the snapshot (folded in at rebuild).
    pending_appends: usize,
    changes_since_rebuild: u64,
    /// Epoch rebuild counter.
    pub global_rebuilds: u64,
    c: u32,
}

impl FullyDynamicIndex {
    /// Builds over `symbols ∈ [0, sigma)ⁿ`.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        assert!(sigma > 0);
        let mut counts = vec![0u64; sigma as usize + 1];
        for &s in symbols {
            counts[s as usize] += 1;
        }
        let mut idx = FullyDynamicIndex {
            config,
            sigma,
            string: symbols.to_vec(),
            counts,
            inf: sigma,
            snap: None,
            pending_appends: 0,
            changes_since_rebuild: 0,
            global_rebuilds: 0,
            c: crate::engine::DEFAULT_C,
        };
        for (i, &s) in symbols.iter().enumerate() {
            assert!(
                s < sigma,
                "symbol {s} at {i} outside alphabet of size {sigma}"
            );
        }
        idx.rebuild();
        idx
    }

    /// Rebuilds the frozen snapshot from the current string.
    fn rebuild(&mut self) {
        self.global_rebuilds += 1;
        self.changes_since_rebuild = 0;
        self.pending_appends = 0;
        let n = self.string.len() as u64;
        if n == 0 {
            self.snap = None;
            return;
        }
        let sigma_all = self.inf + 1;
        let mut counts = vec![0u64; sigma_all as usize];
        let mut lists: Vec<Vec<u64>> = vec![Vec::new(); sigma_all as usize];
        for (i, &s) in self.string.iter().enumerate() {
            counts[s as usize] += 1;
            lists[s as usize].push(i as u64);
        }
        let tree = WbbTree::build(&counts, self.c);
        let h = tree.max_depth();
        // Materialized levels: {1,2,4,…} ∪ {h} (or {0} for one leaf).
        let mut levels = Vec::new();
        if h == 0 {
            levels.push(0);
        } else {
            let mut l = 1;
            while l < h {
                levels.push(l);
                l *= 2;
            }
            levels.push(h);
        }
        let mut prefix = Vec::with_capacity(lists.len() + 1);
        let mut acc = 0u64;
        for l in &lists {
            prefix.push(acc);
            acc += l.len() as u64;
        }
        prefix.push(acc);
        // Gather per-cut node lists (in multiset order) with their
        // position sets and per-character routing pieces.
        let mut node_slot = vec![None; tree.arena_len()];
        let mut per_cut_sets: Vec<Vec<Vec<u64>>> = vec![Vec::new(); levels.len()];
        let mut route: Vec<Vec<Vec<RouteEntry>>> =
            vec![vec![Vec::new(); sigma_all as usize]; levels.len()];
        let mut leaf_route: Vec<Vec<(u64, u32)>> = vec![Vec::new(); sigma_all as usize];
        collect_cut_nodes(
            &tree,
            tree.root(),
            0,
            &levels,
            &lists,
            &prefix,
            &mut node_slot,
            &mut per_cut_sets,
            &mut route,
            &mut leaf_route,
        );
        let cuts = levels
            .iter()
            .zip(per_cut_sets)
            .map(|(&level, sets)| CutIndex {
                level,
                bbi: BufferedBitmapIndex::build_from_lists(
                    if sets.is_empty() {
                        vec![Vec::new()]
                    } else {
                        sets
                    },
                    self.config,
                ),
            })
            .collect();
        self.snap = Some(Snapshot {
            tree,
            cuts,
            node_slot,
            route,
            leaf_route,
            levels,
            n0: n,
        });
    }

    /// Looks up the cut node-character owning `(ch, pos)` in a cut.
    fn route_slot(snap: &Snapshot, cut: usize, ch: Symbol, pos: u64) -> Option<u32> {
        let pieces = &snap.route[cut][ch as usize];
        if pieces.is_empty() {
            return None;
        }
        let i = match pieces.partition_point(|&(fp, _)| fp <= pos) {
            0 => 0, // position precedes the first piece: it still belongs there
            i => i - 1,
        };
        Some(pieces[i].1)
    }

    /// Build-time leaf depth of the piece of `ch` that owns `pos` — the
    /// presence bound: the position exists in cut `i` iff
    /// `levels[i-1] < leaf_depth` (always in cut 0).
    fn leaf_depth(snap: &Snapshot, ch: Symbol, pos: u64) -> u32 {
        let pieces = &snap.leaf_route[ch as usize];
        debug_assert!(!pieces.is_empty(), "char {ch} has no leaves in snapshot");
        let i = match pieces.partition_point(|&(fp, _)| fp <= pos) {
            0 => 0,
            i => i - 1,
        };
        pieces[i].1
    }

    /// Whether positions of leaf depth `d` appear in cut `i`.
    fn present_in_cut(snap: &Snapshot, cut: usize, d: u32) -> bool {
        cut == 0 || snap.levels[cut - 1] < d
    }

    /// Changes position `pos` to `symbol` (Theorem 7's `change(x, i, a)`).
    /// `symbol` may be the `∞` character via [`Self::delete`].
    fn change_internal(&mut self, pos: u64, symbol: Symbol, io: &IoSession) {
        assert!(
            (pos as usize) < self.string.len(),
            "position {pos} out of range"
        );
        let old = self.string[pos as usize];
        if old == symbol {
            return;
        }
        self.counts[old as usize] -= 1;
        self.counts[symbol as usize] += 1;
        self.string[pos as usize] = symbol;
        self.changes_since_rebuild += 1;
        let needs_rebuild = match &self.snap {
            None => true,
            Some(snap) => {
                pos >= snap.n0
                    || self.changes_since_rebuild * 4 > snap.n0
                    || snap.route.iter().any(|r| r[symbol as usize].is_empty())
            }
        };
        if needs_rebuild {
            // Pending-append edits and characters unknown to the snapshot
            // are resolved by re-snapshotting (amortized against the epoch).
            self.rebuild();
            return;
        }
        let snap = self.snap.as_mut().expect("snapshot exists");
        let d_old = Self::leaf_depth(snap, old, pos);
        let d_new = Self::leaf_depth(snap, symbol, pos);
        for cut in 0..snap.cuts.len() {
            if Self::present_in_cut(snap, cut, d_old) {
                let from = Self::route_slot(snap, cut, old, pos).expect("old char routed");
                snap.cuts[cut].bbi.remove(from, pos, io);
            }
            if Self::present_in_cut(snap, cut, d_new) {
                let to = Self::route_slot(snap, cut, symbol, pos).expect("new char routed");
                snap.cuts[cut].bbi.insert(to, pos, io);
            }
        }
    }

    /// Deletes position `pos` (changes it to `∞`, which no range matches).
    pub fn delete(&mut self, pos: u64, io: &IoSession) {
        let inf = self.inf;
        self.change_internal(pos, inf, io);
    }

    /// Canonical decomposition of the character range over the frozen
    /// tree, collecting per-cut consecutive node-character ranges.
    fn canonical_ranges(
        snap: &Snapshot,
        v: NodeId,
        lo: Symbol,
        hi: Symbol,
        out: &mut Vec<(u32, u32, u32)>,
    ) {
        let node = snap.tree.node(v);
        if node.char_lo > hi || node.char_hi < lo {
            return;
        }
        if node.char_lo >= lo && node.char_hi <= hi {
            Self::frontier_ranges(snap, v, out);
            return;
        }
        if node.is_leaf() {
            return; // leaf of a boundary char outside the range
        }
        for &child in &node.children {
            Self::canonical_ranges(snap, child, lo, hi, out);
        }
    }

    /// Collects `(cut, first-slot, last-slot)` ranges reconstructing `v`.
    fn frontier_ranges(snap: &Snapshot, v: NodeId, out: &mut Vec<(u32, u32, u32)>) {
        if let Some((cut, slot)) = snap.node_slot[v as usize] {
            match out.last_mut() {
                Some((c, _, last)) if *c == cut && *last + 1 == slot => *last = slot,
                _ => out.push((cut, slot, slot)),
            }
            return;
        }
        for &child in &snap.tree.node(v).children {
            Self::frontier_ranges(snap, child, out);
        }
    }

    /// Result cardinality from the maintained per-character counts —
    /// `O(hi − lo)` memory-resident reads, no string scan, no I/O.
    pub fn cardinality(&self, lo: Symbol, hi: Symbol) -> u64 {
        check_range(lo, hi, self.sigma);
        self.counts[lo as usize..=hi as usize].iter().sum()
    }
}

/// Recursive walk mirroring the engine's cut assignment, additionally
/// building the per-character routing tables.
#[allow(clippy::too_many_arguments)]
fn collect_cut_nodes(
    tree: &WbbTree,
    v: NodeId,
    start: u64,
    levels: &[u32],
    lists: &[Vec<u64>],
    prefix: &[u64],
    node_slot: &mut [Option<(u32, u32)>],
    per_cut_sets: &mut [Vec<Vec<u64>>],
    route: &mut [Vec<Vec<RouteEntry>>],
    leaf_route: &mut [Vec<(u64, u32)>],
) {
    let node = tree.node(v);
    let end = start + node.weight;
    let cut = if node.is_leaf() {
        Some(match levels.iter().position(|&l| l >= node.depth) {
            Some(i) => i as u32,
            None => (levels.len() - 1) as u32,
        })
    } else {
        levels
            .iter()
            .position(|&l| l == node.depth)
            .map(|i| i as u32)
    };
    if let Some(cut_idx) = cut {
        // Positions and routing pieces for the multiset range [start, end).
        let mut c = match prefix.binary_search(&start) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        while c + 1 < prefix.len() && prefix[c + 1] <= start {
            c += 1;
        }
        let slot = per_cut_sets[cut_idx as usize].len() as u32;
        let mut streams = Vec::new();
        while c < lists.len() && prefix[c] < end {
            let s = start.max(prefix[c]) - prefix[c];
            let e = end.min(prefix[c + 1]) - prefix[c];
            if s < e {
                route[cut_idx as usize][c].push((lists[c][s as usize], slot));
                streams.push(lists[c][s as usize..e as usize].iter().copied());
            }
            c += 1;
        }
        let positions: Vec<u64> = merge::merge_disjoint(streams).collect();
        per_cut_sets[cut_idx as usize].push(positions);
        node_slot[v as usize] = Some((cut_idx, slot));
    }
    if node.is_leaf() {
        let c = node.leaf_char() as usize;
        let s = start - prefix[c];
        leaf_route[c].push((lists[c][s as usize], node.depth));
    }
    let mut off = start;
    for &child in &tree.node(v).children {
        collect_cut_nodes(
            tree,
            child,
            off,
            levels,
            lists,
            prefix,
            node_slot,
            per_cut_sets,
            route,
            leaf_route,
        );
        off += tree.node(child).weight;
    }
}

impl SecondaryIndex for FullyDynamicIndex {
    fn len(&self) -> u64 {
        self.string.len() as u64
    }

    fn sigma(&self) -> Symbol {
        self.sigma
    }

    fn space_bits(&self) -> u64 {
        let snap_bits: u64 = self
            .snap
            .as_ref()
            .map(|s| {
                s.cuts.iter().map(|c| c.bbi.space_bits()).sum::<u64>()
                    + s.tree.live_nodes() as u64 * 128
            })
            .unwrap_or(0);
        snap_bits
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma);
        let n = self.string.len() as u64;
        if n == 0 {
            return RidSet::from_positions(GapBitmap::empty(0));
        }
        let Some(snap) = &self.snap else {
            return RidSet::from_positions(GapBitmap::empty(n));
        };
        let mut ranges = Vec::new();
        Self::canonical_ranges(snap, snap.tree.root(), lo, hi, &mut ranges);
        let mut per_range: Vec<Vec<u64>> = Vec::with_capacity(ranges.len());
        for (cut, first, last) in ranges {
            per_range.push(snap.cuts[cut as usize].bbi.range_positions(first, last, io));
        }
        let streams: Vec<std::vec::IntoIter<u64>> =
            per_range.into_iter().map(|v| v.into_iter()).collect();
        let positions = merge::merge_disjoint(streams);
        // Appends since the snapshot live in the in-memory tail (bounded
        // to a quarter of n by the rebuild policy); their positions all
        // exceed the snapshot's.
        let tail = self.string[snap.n0 as usize..]
            .iter()
            .enumerate()
            .filter(|(_, &s)| (lo..=hi).contains(&s))
            .map(|(i, _)| snap.n0 + i as u64);
        RidSet::from_positions(GapBitmap::from_sorted_iter(positions.chain(tail), n))
    }

    fn cardinality_hint(&self, lo: Symbol, hi: Symbol) -> Option<u64> {
        // Exact, from the maintained per-character counts (no I/O).
        Some(self.cardinality(lo, hi))
    }
}

impl AppendIndex for FullyDynamicIndex {
    fn append(&mut self, symbol: Symbol, io: &IoSession) {
        assert!(symbol < self.sigma);
        let _ = io;
        self.string.push(symbol);
        self.counts[symbol as usize] += 1;
        self.pending_appends += 1;
        // Appends are folded in by re-snapshotting once they accumulate to
        // a constant fraction (the paper's fully dynamic structure fixes
        // n; appends here are a convenience built on global rebuilding).
        let n0 = self.snap.as_ref().map(|s| s.n0).unwrap_or(0);
        if self.pending_appends as u64 * 4 > n0.max(4) {
            self.rebuild();
        }
    }
}

impl DynamicIndex for FullyDynamicIndex {
    fn change(&mut self, pos: u64, symbol: Symbol, io: &IoSession) {
        assert!(symbol < self.sigma, "use delete() for the ∞ character");
        self.change_internal(pos, symbol, io);
    }
}

impl psi_api::ApplyOp for FullyDynamicIndex {
    fn apply_op(&mut self, op: &psi_api::MutOp, io: &IoSession) -> Result<(), psi_api::ApplyError> {
        // Validate before mutating: replay must surface a typed error on a
        // log/checkpoint mismatch, never panic.
        match *op {
            psi_api::MutOp::Append { symbol } => {
                if symbol >= self.sigma {
                    return Err(psi_api::ApplyError {
                        what: format!("append symbol {symbol} outside alphabet {}", self.sigma),
                    });
                }
                self.append(symbol, io);
                Ok(())
            }
            psi_api::MutOp::Change { pos, symbol } => {
                if pos >= self.string.len() as u64 {
                    return Err(psi_api::ApplyError {
                        what: format!("change at {pos} beyond length {}", self.string.len()),
                    });
                }
                if symbol >= self.sigma {
                    return Err(psi_api::ApplyError {
                        what: format!("change symbol {symbol} outside alphabet {}", self.sigma),
                    });
                }
                self.change(pos, symbol, io);
                Ok(())
            }
            psi_api::MutOp::Delete { pos } => {
                if pos >= self.string.len() as u64 {
                    return Err(psi_api::ApplyError {
                        what: format!("delete at {pos} beyond length {}", self.string.len()),
                    });
                }
                self.delete(pos, io);
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl psi_store::PersistIndex for FullyDynamicIndex {
    const TAG: &'static str = "fully_dynamic";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        out.put_u64(self.config.block_bits);
        out.put_opt_u64(self.config.mem_blocks.map(|m| m as u64));
        out.put_u32(self.sigma);
        out.put_vec_u32(&self.string);
        out.put_vec_u64(&self.counts);
        out.put_u32(self.inf);
        out.put_len(self.pending_appends);
        out.put_u64(self.changes_since_rebuild);
        out.put_u64(self.global_rebuilds);
        out.put_u32(self.c);
        match &self.snap {
            None => out.put_bool(false),
            Some(snap) => {
                out.put_bool(true);
                snap.tree.persist_meta(out);
                out.put_vec_u32(&snap.levels);
                out.put_u64(snap.n0);
                out.put_len(snap.node_slot.len());
                for s in &snap.node_slot {
                    match s {
                        Some((cut, slot)) => {
                            out.put_bool(true);
                            out.put_u32(*cut);
                            out.put_u32(*slot);
                        }
                        None => out.put_bool(false),
                    }
                }
                out.put_len(snap.route.len());
                for per_char in &snap.route {
                    out.put_len(per_char.len());
                    for pieces in per_char {
                        out.put_len(pieces.len());
                        for &(pos, slot) in pieces {
                            out.put_u64(pos);
                            out.put_u32(slot);
                        }
                    }
                }
                out.put_len(snap.leaf_route.len());
                for pieces in &snap.leaf_route {
                    out.put_len(pieces.len());
                    for &(pos, depth) in pieces {
                        out.put_u64(pos);
                        out.put_u32(depth);
                    }
                }
                // Each cut's buffered bitmap index follows; its disk is
                // the corresponding volume (in cut order).
                out.put_len(snap.cuts.len());
                for cut in &snap.cuts {
                    out.put_u32(cut.level);
                    cut.bbi.persist_meta(out);
                }
            }
        }
    }

    fn disks(&self) -> Vec<&Disk> {
        match &self.snap {
            None => Vec::new(),
            Some(snap) => snap.cuts.iter().map(|c| c.bbi.disk()).collect(),
        }
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let block_bits = meta.get_u64()?;
        let mem_blocks = meta.get_opt_u64()?.map(|m| m as usize);
        let config = psi_io::IoConfig {
            block_bits,
            mem_blocks,
        };
        let sigma = meta.get_u32()?;
        let string = meta.get_vec_u32()?;
        let counts = meta.get_vec_u64()?;
        let inf = meta.get_u32()?;
        let pending_appends = meta.get_u64()? as usize;
        let changes_since_rebuild = meta.get_u64()?;
        let global_rebuilds = meta.get_u64()?;
        let c = meta.get_u32()?;
        let snap = if meta.get_bool()? {
            let tree = WbbTree::restore_meta(meta)?;
            let levels = meta.get_vec_u32()?;
            let n0 = meta.get_u64()?;
            let slots = meta.get_len(1)?;
            let mut node_slot = Vec::with_capacity(slots);
            for _ in 0..slots {
                node_slot.push(if meta.get_bool()? {
                    Some((meta.get_u32()?, meta.get_u32()?))
                } else {
                    None
                });
            }
            let cuts_n = meta.get_len(8)?;
            let mut route = Vec::with_capacity(cuts_n);
            for _ in 0..cuts_n {
                let chars = meta.get_len(8)?;
                let mut per_char = Vec::with_capacity(chars);
                for _ in 0..chars {
                    let pieces = meta.get_len(12)?;
                    per_char.push(
                        (0..pieces)
                            .map(|_| Ok((meta.get_u64()?, meta.get_u32()?)))
                            .collect::<Result<Vec<RouteEntry>, psi_store::StoreError>>()?,
                    );
                }
                route.push(per_char);
            }
            let chars = meta.get_len(8)?;
            let mut leaf_route = Vec::with_capacity(chars);
            for _ in 0..chars {
                let pieces = meta.get_len(12)?;
                leaf_route.push(
                    (0..pieces)
                        .map(|_| Ok((meta.get_u64()?, meta.get_u32()?)))
                        .collect::<Result<Vec<(u64, u32)>, psi_store::StoreError>>()?,
                );
            }
            let num_cuts = meta.get_len(8)?;
            if num_cuts != disks.len() || num_cuts != route.len() {
                return Err(psi_store::StoreError::Meta {
                    what: format!(
                        "fully dynamic index expects one volume per cut ({} cuts, {} volumes)",
                        num_cuts,
                        disks.len()
                    ),
                });
            }
            for s in node_slot.iter().flatten() {
                if s.0 as usize >= num_cuts {
                    return Err(psi_store::StoreError::Meta {
                        what: format!("snapshot slot pointer cut {} out of range", s.0),
                    });
                }
            }
            if node_slot.len() < tree.arena_len() {
                return Err(psi_store::StoreError::Meta {
                    what: "snapshot node_slot shorter than the tree arena".into(),
                });
            }
            let mut cuts = Vec::with_capacity(num_cuts);
            for disk in disks {
                let level = meta.get_u32()?;
                cuts.push(CutIndex {
                    level,
                    bbi: BufferedBitmapIndex::restore_meta(meta, disk)?,
                });
            }
            Some(Snapshot {
                tree,
                cuts,
                node_slot,
                route,
                leaf_route,
                levels,
                n0,
            })
        } else {
            if !disks.is_empty() {
                return Err(psi_store::StoreError::Meta {
                    what: "fully dynamic index without snapshot expects no volumes".into(),
                });
            }
            None
        };
        Ok(FullyDynamicIndex {
            config,
            sigma,
            string,
            counts,
            inf,
            snap,
            pending_appends,
            changes_since_rebuild,
            global_rebuilds,
            c,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_api::naive_query;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    fn check_all(idx: &FullyDynamicIndex, current: &[Symbol], sigma: Symbol) {
        for lo in 0..sigma {
            for hi in lo..sigma {
                let io = IoSession::new();
                // Positions holding ∞ (encoded as sigma in `current`) never
                // match because naive_query filters on [lo, hi] ⊆ [0, σ).
                assert_eq!(
                    idx.query(lo, hi, &io).to_vec(),
                    naive_query(current, lo, hi).to_vec(),
                    "range [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn changes_match_naive_model() {
        let sigma = 8u32;
        let mut current = psi_workloads::uniform(1200, sigma, 81);
        let mut idx = FullyDynamicIndex::build(&current, sigma, cfg());
        let io = IoSession::untracked();
        let mut rng = StdRng::seed_from_u64(83);
        for _ in 0..300 {
            let pos = rng.gen_range(0..current.len() as u64);
            let sym = rng.gen_range(0..sigma);
            idx.change(pos, sym, &io);
            current[pos as usize] = sym;
        }
        check_all(&idx, &current, sigma);
    }

    #[test]
    fn deletions_stop_matching() {
        let sigma = 6u32;
        let mut current = psi_workloads::uniform(800, sigma, 85);
        let mut idx = FullyDynamicIndex::build(&current, sigma, cfg());
        let io = IoSession::untracked();
        let mut rng = StdRng::seed_from_u64(87);
        for _ in 0..150 {
            let pos = rng.gen_range(0..current.len() as u64);
            idx.delete(pos, &io);
            current[pos as usize] = sigma; // ∞ marker in the naive model
        }
        check_all(&idx, &current, sigma);
        // Deleted positions can be resurrected by a later change.
        idx.change(0, 2, &io);
        current[0] = 2;
        check_all(&idx, &current, sigma);
    }

    #[test]
    fn epoch_rebuilds_trigger_and_preserve() {
        let sigma = 4u32;
        let mut current = psi_workloads::uniform(400, sigma, 89);
        let mut idx = FullyDynamicIndex::build(&current, sigma, cfg());
        let io = IoSession::untracked();
        let before = idx.global_rebuilds;
        let mut rng = StdRng::seed_from_u64(91);
        for _ in 0..400 {
            let pos = rng.gen_range(0..current.len() as u64);
            let sym = rng.gen_range(0..sigma);
            idx.change(pos, sym, &io);
            current[pos as usize] = sym;
        }
        assert!(
            idx.global_rebuilds > before,
            "epoch rebuild expected after n changes"
        );
        check_all(&idx, &current, sigma);
    }

    #[test]
    fn update_cost_is_buffered() {
        let sigma = 32u32;
        let n = 30_000usize;
        let current = psi_workloads::uniform(n, sigma, 93);
        let mut idx = FullyDynamicIndex::build(&current, sigma, IoConfig::default());
        let io = IoSession::new();
        let mut rng = StdRng::seed_from_u64(95);
        let updates = 2000;
        for _ in 0..updates {
            let pos = rng.gen_range(0..n as u64);
            let sym = rng.gen_range(0..sigma);
            idx.change(pos, sym, &io);
        }
        let per_change = io.stats().total() as f64 / f64::from(updates);
        // Theorem 7: amortized O(lg n lg lg n / b) << 1; allow generous
        // implementation constants (leaf rewrites dominate).
        assert!(
            per_change < 20.0,
            "amortized {per_change:.2} I/Os per change"
        );
    }

    #[test]
    fn appends_fold_in_via_rebuild() {
        let sigma = 5u32;
        let mut current = psi_workloads::uniform(200, sigma, 97);
        let mut idx = FullyDynamicIndex::build(&current, sigma, cfg());
        let io = IoSession::untracked();
        for &s in &psi_workloads::uniform(300, sigma, 99) {
            idx.append(s, &io);
            current.push(s);
        }
        check_all(&idx, &current, sigma);
    }

    #[test]
    fn counts_track_every_update_kind() {
        let sigma = 6u32;
        let mut current = psi_workloads::uniform(500, sigma, 101);
        let mut idx = FullyDynamicIndex::build(&current, sigma, cfg());
        let io = IoSession::untracked();
        let mut rng = StdRng::seed_from_u64(103);
        for step in 0..300 {
            match step % 3 {
                0 => {
                    let s = rng.gen_range(0..sigma);
                    idx.append(s, &io);
                    current.push(s);
                }
                1 => {
                    let pos = rng.gen_range(0..current.len() as u64);
                    let s = rng.gen_range(0..sigma);
                    idx.change(pos, s, &io);
                    current[pos as usize] = s;
                }
                _ => {
                    let pos = rng.gen_range(0..current.len() as u64);
                    idx.delete(pos, &io);
                    current[pos as usize] = sigma;
                }
            }
        }
        use psi_api::SecondaryIndex as _;
        for lo in 0..sigma {
            for hi in lo..sigma {
                let naive = current.iter().filter(|&&s| (lo..=hi).contains(&s)).count() as u64;
                assert_eq!(idx.cardinality(lo, hi), naive, "counts for [{lo}, {hi}]");
                assert_eq!(idx.cardinality_hint(lo, hi), Some(naive));
            }
        }
    }

    #[test]
    fn single_character_string() {
        let mut idx = FullyDynamicIndex::build(&[0], 2, cfg());
        let io = IoSession::new();
        idx.change(0, 1, &io);
        assert_eq!(idx.query(1, 1, &io).to_vec(), vec![0]);
        assert!(idx.query(0, 0, &io).is_empty());
    }
}
