//! Alphabet remapping for the heavy-character split (§2.2).
//!
//! "For simplicity we assume that no character has more than n/2
//! occurrences. If this is not the case we may expand the alphabet and
//! substitute half of the occurrences of the most common character with a
//! new character, increasing the 0th order entropy by O(n) bits."
//!
//! A [`Remap`] carries the mapping between the *original* alphabet
//! `[0, σ)` and the *internal* alphabet `[0, σ')` where each original
//! character owns a contiguous range of internal characters (usually one;
//! two or more after splits). Splits assign the first half of a
//! character's occurrences (by position) to the lower internal character,
//! so internal per-character position lists remain sorted and appends land
//! on the last internal character of the range.

use psi_api::Symbol;

/// Original-to-internal alphabet mapping.
#[derive(Debug, Clone)]
pub struct Remap {
    /// `range[c] = (lo, hi)`: internal characters of original `c`.
    range: Vec<(Symbol, Symbol)>,
    /// Internal alphabet size.
    sigma_internal: Symbol,
}

impl Remap {
    /// Builds the mapping and rewrites `symbols` to internal characters in
    /// place, splitting any character with more than `n/2` occurrences.
    pub fn build(symbols: &mut [Symbol], sigma: Symbol) -> Remap {
        assert!(sigma > 0);
        let n = symbols.len() as u64;
        let mut counts = vec![0u64; sigma as usize];
        for &s in symbols.iter() {
            assert!(s < sigma, "symbol {s} outside alphabet of size {sigma}");
            counts[s as usize] += 1;
        }
        // Decide how many internal characters each original one needs: a
        // character with z > n/2 occurrences splits into pieces of at most
        // ⌈n/2⌉ (at most one character can exceed n/2, and two pieces
        // always suffice; the loop form also covers the n ≤ 3 edge cases).
        let half = n.div_ceil(2).max(1);
        let mut pieces = vec![1u32; sigma as usize];
        for (c, &z) in counts.iter().enumerate() {
            if z > half && z >= 2 {
                pieces[c] = z.div_ceil(half) as u32;
            }
        }
        let mut range = Vec::with_capacity(sigma as usize);
        let mut next = 0 as Symbol;
        for &p in &pieces {
            range.push((next, next + p - 1));
            next += p;
        }
        let sigma_internal = next;
        // Rewrite symbols: the k-th occurrence of original c maps to piece
        // k / ceil(z/pieces).
        let mut seen = vec![0u64; sigma as usize];
        for s in symbols.iter_mut() {
            let c = *s as usize;
            let p = u64::from(pieces[c]);
            let piece_size = counts[c].div_ceil(p);
            let piece = (seen[c] / piece_size.max(1)).min(p - 1) as Symbol;
            seen[c] += 1;
            *s = range[c].0 + piece;
        }
        Remap {
            range,
            sigma_internal,
        }
    }

    /// Identity mapping (no split needed): used by structures that manage
    /// their own counts.
    pub fn identity(sigma: Symbol) -> Remap {
        Remap {
            range: (0..sigma).map(|c| (c, c)).collect(),
            sigma_internal: sigma,
        }
    }

    /// Internal alphabet size `σ'`.
    pub fn sigma_internal(&self) -> Symbol {
        self.sigma_internal
    }

    /// Original alphabet size `σ`.
    pub fn sigma(&self) -> Symbol {
        self.range.len() as Symbol
    }

    /// Maps an original query range to the internal range.
    pub fn map_range(&self, lo: Symbol, hi: Symbol) -> (Symbol, Symbol) {
        (self.range[lo as usize].0, self.range[hi as usize].1)
    }

    /// Internal character that receives an *append* of original `c`: the
    /// last of its range (appends extend the tail of the character's
    /// occurrences).
    pub fn map_append(&self, c: Symbol) -> Symbol {
        self.range[c as usize].1
    }

    /// Whether the mapping is the identity.
    pub fn is_identity(&self) -> bool {
        self.sigma_internal == self.range.len() as Symbol
    }

    /// Directory size in bits: two `⌈lg σ'⌉` fields per original character.
    pub fn size_bits(&self) -> u64 {
        2 * psi_io::cost::lg2_ceil(u64::from(self.sigma_internal).max(2)) * self.range.len() as u64
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl Remap {
    /// Serializes the mapping into an index-metadata buffer.
    pub fn persist_meta(&self, out: &mut psi_store::MetaBuf) {
        out.put_u32(self.sigma_internal);
        out.put_len(self.range.len());
        for &(lo, hi) in &self.range {
            out.put_u32(lo);
            out.put_u32(hi);
        }
    }

    /// Rebuilds the mapping from serialized metadata.
    pub fn restore_meta(meta: &mut psi_store::MetaCursor) -> Result<Remap, psi_store::StoreError> {
        let sigma_internal = meta.get_u32()?;
        let len = meta.get_len(8)?;
        let range = (0..len)
            .map(|_| Ok((meta.get_u32()?, meta.get_u32()?)))
            .collect::<Result<Vec<_>, psi_store::StoreError>>()?;
        Ok(Remap {
            range,
            sigma_internal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_string_is_identity() {
        let mut s = vec![0u32, 1, 2, 3, 0, 1, 2, 3];
        let m = Remap::build(&mut s, 4);
        assert!(m.is_identity());
        assert_eq!(m.sigma_internal(), 4);
        assert_eq!(s, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(m.map_range(1, 2), (1, 2));
    }

    #[test]
    fn heavy_character_splits_in_half_by_position() {
        // Character 1 has 6 of 8 occurrences.
        let mut s = vec![1u32, 1, 0, 1, 1, 2, 1, 1];
        let m = Remap::build(&mut s, 3);
        assert!(!m.is_identity());
        assert_eq!(m.sigma_internal(), 4);
        // First 3 occurrences of 1 -> internal 1, last 3 -> internal 2.
        assert_eq!(s, vec![1, 1, 0, 1, 2, 3, 2, 2]);
        // Query [1,1] covers both internal pieces.
        assert_eq!(m.map_range(1, 1), (1, 2));
        assert_eq!(m.map_range(0, 1), (0, 2));
        assert_eq!(m.map_range(2, 2), (3, 3));
        // Appends of 1 go to the tail piece.
        assert_eq!(m.map_append(1), 2);
        assert_eq!(m.map_append(0), 0);
    }

    #[test]
    fn split_pieces_have_at_most_half_the_string() {
        let mut s = vec![5u32; 100];
        s.extend(vec![2u32; 10]);
        let m = Remap::build(&mut s, 8);
        let mut counts = vec![0u64; m.sigma_internal() as usize];
        for &c in &s {
            counts[c as usize] += 1;
        }
        let n = s.len() as u64;
        for (c, &z) in counts.iter().enumerate() {
            assert!(
                2 * z <= n + 1,
                "internal char {c} still has {z} > n/2 occurrences"
            );
        }
    }

    #[test]
    fn all_same_character_still_works() {
        let mut s = vec![0u32; 7];
        let m = Remap::build(&mut s, 1);
        assert_eq!(m.sigma_internal(), 2);
        assert_eq!(m.map_range(0, 0), (0, 1));
        // 7 occurrences split ceil(7/2)=4 and 3.
        assert_eq!(s, vec![0, 0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn singleton_string_does_not_split() {
        let mut s = vec![0u32];
        let m = Remap::build(&mut s, 2);
        assert!(m.is_identity());
    }

    #[test]
    fn empty_string_identity() {
        let mut s: Vec<u32> = vec![];
        let m = Remap::build(&mut s, 3);
        assert!(m.is_identity());
        assert_eq!(m.sigma_internal(), 3);
    }
}
