//! Weight-balanced B-tree over a character multiset (paper §2.2, after
//! Arge & Vitter, ref 4 of the paper).
//!
//! The tree `W` is conceptually built over the **multiset** of the string's
//! characters, "ordered primarily by the order on Σ, secondarily by the
//! ordering of positions", then *pruned*: "remove all the children of an
//! internal node v if all leaves below v contain the same character". We
//! build the pruned tree directly from per-character counts: a node whose
//! multiset range is uniform is a leaf; everything else splits into ~`c`
//! near-equal-weight children. The essential Arge–Vitter property is
//! preserved: a node at level `i` from the bottom has weight `Θ(cⁱ)`
//! (within `[cⁱ/2, 2cⁱ]` between rebuilds), so canonical subtrees of a
//! range query decrease geometrically in weight — the key to the paper's
//! `O(z lg(n/z))`-bit reading bound.
//!
//! This module is the pure in-memory *mirror* of the tree shape: weights,
//! character spans, parent/child links, append paths, balance violations
//! and subtree rebuilds. The on-disk blocked layout and the per-node
//! bitmap storage live in the engine (`crate::engine`), which charges all
//! I/O; the paper likewise keeps the `O(σ lg² n)`-bit tree directory
//! separate from the bitmap payload.

use psi_api::Symbol;

/// Index of a node in the tree arena.
pub type NodeId = u32;

/// One tree node. Leaves (`children.is_empty()`) are *pruned* uniform
/// subtrees: all `weight` multiset entries below them share one character.
#[derive(Debug, Clone)]
pub struct Node {
    /// Parent link (`None` for the root).
    pub parent: Option<NodeId>,
    /// Depth from the root (root = 0).
    pub depth: u32,
    /// Number of multiset entries (string positions) below this node.
    pub weight: u64,
    /// Smallest character below this node.
    pub char_lo: Symbol,
    /// Largest character below this node.
    pub char_hi: Symbol,
    /// Children in left-to-right (multiset) order; empty for leaves.
    pub children: Vec<NodeId>,
    /// Nodes replaced by a rebuild stay in the arena, marked dead.
    pub dead: bool,
}

impl Node {
    /// Whether this is a pruned leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// The single character of a pruned leaf.
    ///
    /// # Panics
    /// Panics if called on an internal node.
    pub fn leaf_char(&self) -> Symbol {
        assert!(self.is_leaf(), "leaf_char on internal node");
        debug_assert_eq!(self.char_lo, self.char_hi);
        self.char_lo
    }
}

/// A `(character, multiplicity)` run of the multiset, the unit of static
/// construction and rebuilds.
pub type CharRun = (Symbol, u64);

/// The pruned weight-balanced tree.
#[derive(Debug, Clone)]
pub struct WbbTree {
    /// Branching parameter `c` (the paper requires a constant `> 4`).
    pub c: u32,
    nodes: Vec<Node>,
    root: NodeId,
    /// `h` such that the root is at level `h` from the bottom: the smallest
    /// `h` with `cʰ ≥ n` at build time. Balance caps are `2c^(h−d)`.
    pub h: u32,
}

impl WbbTree {
    /// Builds the pruned tree from per-character counts.
    ///
    /// # Panics
    /// Panics if `c < 5` (the paper's branching parameter is a constant
    /// `> 4`) or if all counts are zero.
    pub fn build(counts: &[u64], c: u32) -> Self {
        let runs: Vec<CharRun> = counts
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0)
            .map(|(ch, &w)| (ch as Symbol, w))
            .collect();
        Self::build_from_runs(&runs, c)
    }

    /// Builds the pruned tree from explicit character runs (sorted by
    /// character, strictly increasing, positive multiplicities).
    pub fn build_from_runs(runs: &[CharRun], c: u32) -> Self {
        assert!(c >= 5, "branching parameter must be > 4 (got {c})");
        assert!(!runs.is_empty(), "cannot build over an empty multiset");
        debug_assert!(
            runs.windows(2).all(|w| w[0].0 < w[1].0),
            "runs must be sorted by character"
        );
        debug_assert!(runs.iter().all(|&(_, w)| w > 0), "runs must be non-empty");
        let n: u64 = runs.iter().map(|&(_, w)| w).sum();
        let h = height_for(n, c);
        let mut tree = WbbTree {
            c,
            nodes: Vec::new(),
            root: 0,
            h,
        };
        let root = tree.build_rec(runs, 0, None);
        tree.root = root;
        tree
    }

    /// Recursively builds the subtree over `runs` at `depth`, returning its
    /// root id. Runs may carry partial character multiplicities (a
    /// character split across siblings).
    fn build_rec(&mut self, runs: &[CharRun], depth: u32, parent: Option<NodeId>) -> NodeId {
        let weight: u64 = runs.iter().map(|&(_, w)| w).sum();
        let char_lo = runs[0].0;
        let char_hi = runs[runs.len() - 1].0;
        let id = self.push(Node {
            parent,
            depth,
            weight,
            char_lo,
            char_hi,
            children: Vec::new(),
            dead: false,
        });
        if runs.len() == 1 {
            return id; // uniform range: pruned leaf
        }
        // Split into k near-equal parts of ~weight/c each (k capped so each
        // child is non-empty).
        let k = weight
            .div_ceil((weight.div_ceil(u64::from(self.c))).max(1))
            .clamp(2, u64::from(4 * self.c))
            .min(weight) as usize;
        let mut children = Vec::with_capacity(k);
        let mut part: Vec<CharRun> = Vec::new();
        let mut consumed = 0u64; // weight handed to finished parts
        let mut part_idx = 0usize;
        let mut run_iter = runs.iter().copied();
        let mut current: Option<CharRun> = run_iter.next();
        while part_idx < k {
            // Target cumulative weight after this part (balanced rounding).
            let target = weight * (part_idx as u64 + 1) / k as u64;
            let mut have = consumed;
            part.clear();
            while have < target {
                let (ch, avail) = current.expect("ran out of runs before weight");
                let take = avail.min(target - have);
                part.push((ch, take));
                have += take;
                if take == avail {
                    current = run_iter.next();
                } else {
                    current = Some((ch, avail - take));
                }
            }
            consumed = have;
            let part_runs = std::mem::take(&mut part);
            let child = self.build_rec(&part_runs, depth + 1, Some(id));
            children.push(child);
            part_idx += 1;
        }
        debug_assert!(current.is_none(), "unconsumed runs after split");
        self.nodes[id as usize].children = children;
        id
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = u32::try_from(self.nodes.len()).expect("node ids exhausted");
        self.nodes.push(node);
        id
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Mutable node access (used by the engine to maintain bookkeeping).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    /// Number of arena slots (including dead nodes).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Total weight (current `n`).
    pub fn total_weight(&self) -> u64 {
        self.node(self.root).weight
    }

    /// Number of live nodes.
    pub fn live_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| !n.dead).count()
    }

    /// Maximum depth among live nodes.
    pub fn max_depth(&self) -> u32 {
        self.nodes
            .iter()
            .filter(|n| !n.dead)
            .map(|n| n.depth)
            .max()
            .unwrap_or(0)
    }

    /// Iterates live leaves of the subtree under `v`, in multiset order,
    /// as `(leaf id, character, weight)`.
    pub fn leaves_under(&self, v: NodeId) -> Vec<(NodeId, Symbol, u64)> {
        let mut out = Vec::new();
        self.leaves_under_rec(v, &mut out);
        out
    }

    fn leaves_under_rec(&self, v: NodeId, out: &mut Vec<(NodeId, Symbol, u64)>) {
        let node = self.node(v);
        if node.is_leaf() {
            out.push((v, node.leaf_char(), node.weight));
        } else {
            for &ch in &node.children {
                self.leaves_under_rec(ch, out);
            }
        }
    }

    /// Aggregated character runs under `v` (adjacent same-character leaves
    /// merged) — the rebuild input.
    pub fn runs_under(&self, v: NodeId) -> Vec<CharRun> {
        let mut runs: Vec<CharRun> = Vec::new();
        for (_, ch, w) in self.leaves_under(v) {
            match runs.last_mut() {
                Some((last_ch, last_w)) if *last_ch == ch => *last_w += w,
                _ => runs.push((ch, w)),
            }
        }
        runs
    }

    /// The balance cap for a node at `depth`: `2·c^(h−depth)`, clamped at
    /// the bottom. Appends may only violate this upper bound.
    pub fn weight_cap(&self, depth: u32) -> u64 {
        let level = self.h.saturating_sub(depth);
        2u64.saturating_mul(u64::from(self.c).saturating_pow(level))
    }

    /// Descends for an append of character `ch` at the multiset tail of
    /// that character, incrementing weights along the way. Returns the
    /// root-to-leaf path (the leaf last). Creates a new singleton leaf if
    /// the character was previously absent.
    pub fn append_path(&mut self, ch: Symbol) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut v = self.root;
        loop {
            self.nodes[v as usize].weight += 1;
            let node = &mut self.nodes[v as usize];
            node.char_lo = node.char_lo.min(ch);
            node.char_hi = node.char_hi.max(ch);
            path.push(v);
            if self.nodes[v as usize].is_leaf() {
                break;
            }
            // Last child whose span can hold ch (appends go to the tail of
            // the character's occurrences); fall back to the first child.
            let children = self.nodes[v as usize].children.clone();
            let mut next = children[0];
            for &child in &children {
                if self.nodes[child as usize].char_lo <= ch {
                    next = child;
                } else {
                    break;
                }
            }
            v = next;
        }
        let leaf = *path.last().expect("path non-empty");
        if self.nodes[leaf as usize].leaf_is_for(ch) {
            return path;
        }
        // The leaf holds a different character: undo its increment and
        // attach a fresh singleton leaf as its sibling.
        self.nodes[leaf as usize].weight -= 1;
        let old = &self.nodes[leaf as usize];
        let (lo, hi) = (old.char_lo.min(ch), old.char_hi.max(ch));
        // Restore the old leaf's span (the increment loop widened it).
        let old_char = if old.char_lo == ch {
            old.char_hi
        } else {
            old.char_lo
        };
        let before = ch < old_char;
        let depth = old.depth;
        let parent = old.parent;
        self.nodes[leaf as usize].char_lo = old_char;
        self.nodes[leaf as usize].char_hi = old_char;
        let new_leaf = self.push(Node {
            parent,
            depth,
            weight: 1,
            char_lo: ch,
            char_hi: ch,
            children: Vec::new(),
            dead: false,
        });
        match parent {
            Some(p) => {
                let pos = self.nodes[p as usize]
                    .children
                    .iter()
                    .position(|&x| x == leaf)
                    .expect("leaf missing from parent");
                let at = if before { pos } else { pos + 1 };
                self.nodes[p as usize].children.insert(at, new_leaf);
                let _ = (lo, hi);
            }
            None => {
                // Root was a leaf: grow a new root above both leaves.
                let old_weight = self.nodes[leaf as usize].weight;
                let new_root = self.push(Node {
                    parent: None,
                    depth: 0,
                    weight: old_weight + 1,
                    char_lo: lo,
                    char_hi: hi,
                    children: if before {
                        vec![new_leaf, leaf]
                    } else {
                        vec![leaf, new_leaf]
                    },
                    dead: false,
                });
                self.nodes[leaf as usize].parent = Some(new_root);
                self.nodes[leaf as usize].depth = 1;
                self.nodes[new_leaf as usize].parent = Some(new_root);
                self.nodes[new_leaf as usize].depth = 1;
                self.root = new_root;
                path.clear();
                path.push(new_root);
            }
        }
        path.push(new_leaf);
        // Fix the path: replace the old leaf with the new one (weights along
        // the internal path are already incremented).
        let len = path.len();
        if len >= 2 && path[len - 2] == leaf {
            path.remove(len - 2);
        }
        path
    }

    /// Highest node on `path` violating its weight cap, or one whose
    /// degree overflowed `4c`.
    pub fn find_violation(&self, path: &[NodeId]) -> Option<NodeId> {
        path.iter().copied().find(|&v| {
            let node = self.node(v);
            node.weight > self.weight_cap(node.depth) || node.children.len() > 4 * self.c as usize
        })
    }

    /// Rebuilds the subtree rooted at `u` from its current character runs.
    /// All old descendants (excluding `u` itself) are marked dead; returns
    /// the ids of the freshly created descendants (in creation order).
    ///
    /// This is the paper's rebalancing primitive (§4.1): "we re-build the
    /// subtree rooted at u, and recompute the new bitmaps associated with
    /// all the nodes in the subtree".
    pub fn rebuild_subtree(&mut self, u: NodeId) -> Vec<NodeId> {
        let runs = self.runs_under(u);
        // Mark old descendants dead.
        let mut stack: Vec<NodeId> = self.node(u).children.clone();
        while let Some(v) = stack.pop() {
            self.nodes[v as usize].dead = true;
            stack.extend(self.nodes[v as usize].children.iter().copied());
        }
        let first_new = self.nodes.len() as NodeId;
        let depth = self.node(u).depth;
        if runs.len() == 1 {
            // The whole subtree is uniform now: u becomes a leaf.
            self.nodes[u as usize].children = Vec::new();
            let (ch, w) = runs[0];
            let node = &mut self.nodes[u as usize];
            node.char_lo = ch;
            node.char_hi = ch;
            debug_assert_eq!(node.weight, w);
            return Vec::new();
        }
        // Rebuild children in place under u using the static splitter: we
        // temporarily build a fresh root and graft its children.
        let tmp_root = self.build_rec(&runs, depth, self.node(u).parent);
        let children = std::mem::take(&mut self.nodes[tmp_root as usize].children);
        for &ch_id in &children {
            self.nodes[ch_id as usize].parent = Some(u);
        }
        let tmp = &self.nodes[tmp_root as usize];
        let (lo, hi, w) = (tmp.char_lo, tmp.char_hi, tmp.weight);
        self.nodes[tmp_root as usize].dead = true;
        let node = &mut self.nodes[u as usize];
        node.children = children;
        node.char_lo = lo;
        node.char_hi = hi;
        debug_assert_eq!(node.weight, w);
        (first_new..self.nodes.len() as NodeId)
            .filter(|&id| !self.nodes[id as usize].dead)
            .collect()
    }

    /// Checks structural invariants (tests and debug builds).
    pub fn check_invariants(&self) {
        let mut seen_weight = 0u64;
        for (id, node) in self.nodes.iter().enumerate() {
            if node.dead {
                continue;
            }
            let id = id as NodeId;
            if node.is_leaf() {
                assert_eq!(node.char_lo, node.char_hi, "leaf {id} spans multiple chars");
                seen_weight += node.weight;
            } else {
                assert!(
                    node.children.len() >= 2,
                    "internal node {id} has < 2 children"
                );
                let child_sum: u64 = node.children.iter().map(|&c| self.node(c).weight).sum();
                assert_eq!(child_sum, node.weight, "weight mismatch at node {id}");
                for &c in &node.children {
                    assert_eq!(self.node(c).parent, Some(id), "parent link broken at {c}");
                    assert_eq!(self.node(c).depth, node.depth + 1, "depth broken at {c}");
                    assert!(!self.node(c).dead, "live node {id} has dead child {c}");
                }
                // Children are ordered by character span.
                for w in node.children.windows(2) {
                    assert!(
                        self.node(w[0]).char_hi <= self.node(w[1]).char_lo,
                        "children of {id} out of order"
                    );
                }
            }
        }
        assert_eq!(
            seen_weight,
            self.total_weight(),
            "leaf weights do not sum to n"
        );
    }
}

impl Node {
    fn leaf_is_for(&self, ch: Symbol) -> bool {
        self.is_leaf() && self.char_lo == ch && self.char_hi == ch
    }
}

/// Smallest `h` with `cʰ ≥ n`.
pub fn height_for(n: u64, c: u32) -> u32 {
    let mut h = 0u32;
    let mut cap = 1u64;
    while cap < n {
        cap = cap.saturating_mul(u64::from(c));
        h += 1;
    }
    h
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl WbbTree {
    /// Serializes the tree mirror into an index-metadata buffer.
    pub fn persist_meta(&self, out: &mut psi_store::MetaBuf) {
        out.put_u32(self.c);
        out.put_u32(self.h);
        out.put_u32(self.root);
        out.put_len(self.nodes.len());
        for n in &self.nodes {
            out.put_opt_u32(n.parent);
            out.put_u32(n.depth);
            out.put_u64(n.weight);
            out.put_u32(n.char_lo);
            out.put_u32(n.char_hi);
            out.put_vec_u32(&n.children);
            out.put_bool(n.dead);
        }
    }

    /// Rebuilds the tree mirror from serialized metadata.
    pub fn restore_meta(
        meta: &mut psi_store::MetaCursor,
    ) -> Result<WbbTree, psi_store::StoreError> {
        let c = meta.get_u32()?;
        let h = meta.get_u32()?;
        let root = meta.get_u32()?;
        let len = meta.get_len(16)?;
        let mut nodes = Vec::with_capacity(len);
        for _ in 0..len {
            nodes.push(Node {
                parent: meta.get_opt_u32()?,
                depth: meta.get_u32()?,
                weight: meta.get_u64()?,
                char_lo: meta.get_u32()?,
                char_hi: meta.get_u32()?,
                children: meta.get_vec_u32()?,
                dead: meta.get_bool()?,
            });
        }
        let bad_link = |id: NodeId| id as usize >= nodes.len();
        if bad_link(root)
            || nodes.iter().any(|n| {
                n.children.iter().any(|&ch| bad_link(ch)) || n.parent.is_some_and(bad_link)
            })
        {
            return Err(psi_store::StoreError::Meta {
                what: "tree node id out of range".into(),
            });
        }
        Ok(WbbTree { c, nodes, root, h })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_character_tree_is_one_leaf() {
        let t = WbbTree::build(&[0, 42, 0], 8);
        assert_eq!(t.live_nodes(), 1);
        let root = t.node(t.root());
        assert!(root.is_leaf());
        assert_eq!(root.leaf_char(), 1);
        assert_eq!(root.weight, 42);
        t.check_invariants();
    }

    #[test]
    fn uniform_counts_build_balanced_tree() {
        let counts = vec![10u64; 100]; // n = 1000
        let t = WbbTree::build(&counts, 8);
        t.check_invariants();
        // Height ~ log_8(1000) ≈ 3.3.
        assert!(t.max_depth() <= 5, "depth {} too large", t.max_depth());
        assert_eq!(t.total_weight(), 1000);
    }

    #[test]
    fn skewed_counts_prune_heavy_characters_high() {
        // One character holds half the weight: it should appear as leaves
        // near the top of the tree.
        let mut counts = vec![1u64; 64];
        counts[32] = 64;
        let t = WbbTree::build(&counts, 8);
        t.check_invariants();
        let heavy_leaf_depth = t
            .leaves_under(t.root())
            .iter()
            .filter(|&&(_, ch, _)| ch == 32)
            .map(|&(id, _, _)| t.node(id).depth)
            .min()
            .unwrap();
        let light_leaf_depth = t
            .leaves_under(t.root())
            .iter()
            .filter(|&&(_, ch, _)| ch == 0)
            .map(|&(id, _, _)| t.node(id).depth)
            .max()
            .unwrap();
        assert!(heavy_leaf_depth <= light_leaf_depth);
    }

    #[test]
    fn leaves_per_character_per_level_is_bounded() {
        // Paper: "each character appears at most 8c times at each level as
        // a leaf".
        let counts: Vec<u64> = (0..128).map(|i| (i % 13) + 1).collect();
        let c = 8;
        let t = WbbTree::build(&counts, c);
        t.check_invariants();
        let mut by_char_level = std::collections::HashMap::new();
        for (id, ch, _) in t.leaves_under(t.root()) {
            *by_char_level.entry((ch, t.node(id).depth)).or_insert(0u32) += 1;
        }
        for (&(ch, d), &cnt) in &by_char_level {
            assert!(cnt <= 8 * c, "char {ch} has {cnt} leaves at depth {d}");
        }
    }

    #[test]
    fn append_existing_character_increments_weights() {
        let mut t = WbbTree::build(&[5, 5, 5, 5], 8);
        let n0 = t.total_weight();
        let path = t.append_path(2);
        assert_eq!(t.total_weight(), n0 + 1);
        let leaf = *path.last().unwrap();
        assert!(t.node(leaf).is_leaf());
        assert_eq!(t.node(leaf).leaf_char(), 2);
        t.check_invariants();
    }

    #[test]
    fn append_new_character_creates_leaf() {
        let mut t = WbbTree::build(&[10, 0, 10], 8);
        let path = t.append_path(1);
        let leaf = *path.last().unwrap();
        assert_eq!(t.node(leaf).leaf_char(), 1);
        assert_eq!(t.node(leaf).weight, 1);
        assert_eq!(t.total_weight(), 21);
        t.check_invariants();
    }

    #[test]
    fn append_onto_single_leaf_tree_grows_root() {
        let mut t = WbbTree::build(&[7], 8);
        let path = t.append_path(3);
        assert_eq!(t.total_weight(), 8);
        assert_eq!(path.len(), 2);
        assert!(!t.node(t.root()).is_leaf());
        t.check_invariants();
    }

    #[test]
    fn violations_detected_and_repaired_by_rebuild() {
        let mut t = WbbTree::build(&vec![2u64; 32], 5);
        // Hammer one character until some cap breaks.
        let mut violated = None;
        for _ in 0..100_000 {
            let path = t.append_path(7);
            if let Some(v) = t.find_violation(&path) {
                violated = Some(v);
                break;
            }
        }
        let v = violated.expect("expected a violation eventually");
        let u = t.node(v).parent.unwrap_or(v);
        t.rebuild_subtree(u);
        t.check_invariants();
        // After rebuilding at the parent, the subtree splits enough that
        // the old violation is gone.
        let node = t.node(u);
        assert!(
            node.weight <= t.weight_cap(node.depth) || node.parent.is_none(),
            "rebuild did not clear the violation"
        );
    }

    #[test]
    fn rebuild_to_uniform_collapses_to_leaf() {
        let mut t = WbbTree::build(&[8, 8], 8);
        let root = t.root();
        // Overwrite one child's char by simulating: rebuild with runs under
        // root after making it uniform is not directly expressible, so test
        // the simpler path: rebuild a subtree that is already uniform.
        let leaves = t.leaves_under(root);
        let (leaf, _, _) = leaves[0];
        let new_nodes = t.rebuild_subtree(leaf);
        assert!(new_nodes.is_empty());
        t.check_invariants();
    }

    #[test]
    fn runs_under_merges_adjacent_leaves() {
        let counts: Vec<u64> = vec![100, 3, 100];
        let t = WbbTree::build(&counts, 8);
        let runs = t.runs_under(t.root());
        assert_eq!(runs, vec![(0, 100), (1, 3), (2, 100)]);
    }

    #[test]
    fn height_for_matches_log() {
        assert_eq!(height_for(1, 8), 0);
        assert_eq!(height_for(8, 8), 1);
        assert_eq!(height_for(9, 8), 2);
        assert_eq!(height_for(64, 8), 2);
        assert_eq!(height_for(65, 8), 3);
    }

    proptest! {
        #[test]
        fn build_invariants_random_counts(
            counts in proptest::collection::vec(0u64..50, 1..80),
            c in 5u32..12,
        ) {
            prop_assume!(counts.iter().sum::<u64>() > 0);
            let t = WbbTree::build(&counts, c);
            t.check_invariants();
            prop_assert_eq!(t.total_weight(), counts.iter().sum::<u64>());
        }

        #[test]
        fn append_sequences_preserve_invariants(
            initial in proptest::collection::vec(1u64..10, 2..20),
            appends in proptest::collection::vec(0u32..20, 0..200),
        ) {
            let mut t = WbbTree::build(&initial, 5);
            let n0 = t.total_weight();
            for &ch in &appends {
                let path = t.append_path(ch % initial.len().max(1) as u32 + 2);
                if let Some(v) = t.find_violation(&path) {
                    let u = t.node(v).parent.unwrap_or(v);
                    t.rebuild_subtree(u);
                }
            }
            t.check_invariants();
            prop_assert_eq!(t.total_weight(), n0 + appends.len() as u64);
        }
    }
}
