//! The optimal static secondary index (Theorem 2).

use psi_api::{HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_io::{Disk, IoConfig, IoSession};

use crate::cutstream::Slack;
use crate::engine::{Engine, EngineStats, DEFAULT_C};

/// The paper's main result (Theorem 2): a static secondary index using
/// `O(nH₀ + n + σ lg² n)` bits that answers alphabet range queries in
/// `O(z lg(n/z)/B + log_b n + lg lg n)` I/Os — simultaneously
/// space-optimal and query-optimal, with no trade-off.
///
/// Internally this is the [`Engine`]: a pruned weight-balanced tree over
/// the character multiset with compressed bitmaps materialized at cut
/// levels `1, 2, 4, …, h` plus all leaves, zero slot slack (static
/// packing), the `A` prefix-count array, the heavy-character split and
/// §2.1's complement trick for results larger than `n/2`.
///
/// ```
/// use psi_core::OptimalIndex;
/// use psi_api::SecondaryIndex;
/// use psi_io::IoConfig;
///
/// let symbols = vec![3u32, 1, 4, 1, 5, 2, 6, 5];
/// let index = OptimalIndex::build(&symbols, 8, IoConfig::default());
/// let (result, io) = index.query_measured(1, 4);
/// assert_eq!(result.to_vec(), vec![0, 1, 2, 3, 5]);
/// assert!(io.reads > 0);
/// ```
#[derive(Debug)]
pub struct OptimalIndex {
    engine: Engine,
}

impl OptimalIndex {
    /// Builds the index over `symbols ∈ [0, sigma)ⁿ` with the default
    /// branching parameter.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        Self::build_with_branching(symbols, sigma, config, DEFAULT_C)
    }

    /// Builds with an explicit branching parameter `c > 4` (ablations).
    pub fn build_with_branching(
        symbols: &[Symbol],
        sigma: Symbol,
        config: IoConfig,
        c: u32,
    ) -> Self {
        OptimalIndex {
            engine: Engine::build(symbols, sigma, config, c, Slack::None),
        }
    }

    /// The result cardinality `z` without reading any bitmap (from the
    /// memory-resident prefix counts).
    pub fn cardinality(&self, lo: Symbol, hi: Symbol) -> u64 {
        self.engine.query_cardinality(lo, hi)
    }

    /// Compressed payload across all cuts (the `O(nH₀ + n)` part of the
    /// space bound, without directories).
    pub fn payload_bits(&self) -> u64 {
        self.engine.live_payload_bits()
    }

    /// Number of materialized cuts (`O(lg lg n)`).
    pub fn num_cuts(&self) -> usize {
        self.engine.num_cuts()
    }

    /// Engine counters (static builds never rebuild; exposed for symmetry).
    pub fn stats(&self) -> EngineStats {
        self.engine.stats
    }

    /// Consumes the index, returning the engine (approximate layer).
    pub(crate) fn into_engine(self) -> Engine {
        self.engine
    }
}

impl HasDisk for OptimalIndex {
    fn disk(&self) -> &Disk {
        self.engine.disk()
    }
}

impl SecondaryIndex for OptimalIndex {
    fn len(&self) -> u64 {
        self.engine.n()
    }

    fn sigma(&self) -> Symbol {
        self.engine.sigma()
    }

    fn space_bits(&self) -> u64 {
        self.engine.space_bits()
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        self.engine.query(lo, hi, io)
    }

    fn cardinality_hint(&self, lo: Symbol, hi: Symbol) -> Option<u64> {
        // Exact, from the memory-resident prefix counts (the paper's `A`).
        Some(self.engine.query_cardinality(lo, hi))
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl psi_store::PersistIndex for OptimalIndex {
    const TAG: &'static str = "optimal";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        self.engine.persist_meta(out);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![HasDisk::disk(self)]
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let disk = psi_store::single_volume(disks, "optimal")?;
        Ok(OptimalIndex {
            engine: Engine::restore_meta(meta, disk)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_api::naive_query;
    use psi_io::cost;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn matches_naive_on_all_workloads() {
        for (i, symbols) in [
            psi_workloads::uniform(2000, 16, 1),
            psi_workloads::zipf(2000, 16, 1.2, 2),
            psi_workloads::runs(2000, 16, 12.0, 3),
            psi_workloads::sorted(2000, 16),
        ]
        .iter()
        .enumerate()
        {
            let idx = OptimalIndex::build(symbols, 16, cfg());
            for lo in 0..16u32 {
                for hi in lo..16u32 {
                    let io = IoSession::new();
                    let got = idx.query(lo, hi, &io);
                    let want = naive_query(symbols, lo, hi);
                    assert_eq!(
                        got.to_vec(),
                        want.to_vec(),
                        "workload {i} range [{lo}, {hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn query_ios_match_theorem_2_shape() {
        let n = 1usize << 18;
        let sigma = 512u32;
        let symbols = psi_workloads::uniform(n, sigma, 7);
        let idx = OptimalIndex::build(&symbols, sigma, IoConfig::default());
        let b = IoConfig::default().words_per_block(n as u64);
        // Sweep selectivities; measured I/Os should stay within a small
        // constant of the theorem curve.
        for width in [1u32, 4, 16, 64, 200] {
            let (result, stats) = idx.query_measured(10, 10 + width - 1);
            let z = result.cardinality();
            let bound = cost::thm2_query_ios(n as u64, z, 8192, b);
            assert!(
                (stats.reads as f64) <= 12.0 * bound + 16.0,
                "width {width}: {} reads vs bound {bound:.1}",
                stats.reads
            );
        }
    }

    #[test]
    fn space_beats_explicit_representations() {
        let n = 1usize << 16;
        let sigma = 256u32;
        let symbols = psi_workloads::uniform(n, sigma, 9);
        let idx = OptimalIndex::build(&symbols, sigma, IoConfig::default());
        // Theorem 2: O(nH0 + n + σ lg² n). For uniform data H0 = lg σ = 8,
        // so nH0 ≈ 0.5 Mbit; the structure must be within a modest constant
        // of that, and far below the n·σ bits of uncompressed bitmaps.
        let nh0 = psi_bits::entropy::nh0_bits(&symbols, sigma);
        assert!(
            (idx.space_bits() as f64) < 8.0 * nh0,
            "space {} vs nH0 {nh0}",
            idx.space_bits()
        );
        assert!(idx.space_bits() < (n as u64) * u64::from(sigma) / 4);
    }

    #[test]
    fn reading_is_output_sensitive() {
        // §1.3: reading within a constant of the *compressed result* size.
        let n = 1usize << 18;
        let sigma = 1024u32;
        let symbols = psi_workloads::uniform(n, sigma, 11);
        let idx = OptimalIndex::build(&symbols, sigma, IoConfig::default());
        // Full-ish range: z ≈ n/2, output ~ z lg(n/z) bits.
        let (result, stats) = idx.query_measured(0, sigma / 2 - 1);
        let z = result.cardinality();
        let output = cost::output_bits(n as u64, z).max(1.0);
        let ratio = stats.bits_read as f64 / output;
        assert!(ratio < 8.0, "read {:.1}x the compressed output", ratio);
    }
}
