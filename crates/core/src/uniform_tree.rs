//! The warm-up structure (Theorem 1, §2.1): complete binary tree over the
//! alphabet.
//!
//! "Consider the complete binary tree U with σ leaves identified … with
//! the sequence a₁ … a_σ. With the leaf aᵢ we associate the bitmap
//! `I_{aᵢ}(x)`, and with each internal node v … the bitmap of its leaf
//! span." Bitmaps are compressed and stored level by level in left-to-right
//! order; an array `A` of prefix cardinalities drives §2.1's complement
//! trick (`z > n/2` answers the two complementary ranges instead); a query
//! is covered by `O(lg σ)` maximal subtrees whose compressed bitmaps are
//! merged in one pass.
//!
//! Space `O(n lg² σ)` bits, query `O(T/B + lg σ)` I/Os — suboptimal in
//! space (every level repeats the whole multiset), which is exactly what
//! the weight-balanced structure of Theorem 2 fixes.

use psi_api::{check_range, HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_bits::{merge, GapBitmap};
use psi_io::{cost, Disk, IoConfig, IoSession};

use crate::cutstream::{CutStream, Slack};

/// Theorem 1's complete-binary-tree index.
#[derive(Debug)]
pub struct UniformTreeIndex {
    disk: Disk,
    /// `levels[k]` holds the nodes of leaf-span `2ᵏ`, left to right;
    /// `levels[0]` are the per-character bitmaps.
    levels: Vec<CutStream>,
    /// Prefix cardinalities: `A[i]` = occurrences of characters `< i`.
    prefix: Vec<u64>,
    n: u64,
    sigma: Symbol,
}

impl UniformTreeIndex {
    /// Builds the index over `symbols ∈ [0, sigma)ⁿ`.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        assert!(sigma > 0);
        let n = symbols.len() as u64;
        let sigma_pad = u64::from(sigma).next_power_of_two() as Symbol;
        let mut disk = Disk::new(config);
        let io = IoSession::untracked();
        // Per-character position lists (padding chars stay empty).
        let mut lists: Vec<Vec<u64>> = vec![Vec::new(); sigma_pad as usize];
        for (i, &c) in symbols.iter().enumerate() {
            assert!(c < sigma, "symbol {c} outside alphabet of size {sigma}");
            lists[c as usize].push(i as u64);
        }
        let mut prefix = Vec::with_capacity(sigma as usize + 1);
        let mut acc = 0u64;
        for l in lists.iter().take(sigma as usize) {
            prefix.push(acc);
            acc += l.len() as u64;
        }
        prefix.push(acc);
        // Level 0: characters. Level k: pairwise merges of level k-1 —
        // built by merging position lists bottom-up.
        let mut levels = Vec::new();
        let mut current: Vec<Vec<u64>> = lists;
        loop {
            let mut cut = CutStream::new(&mut disk, levels.len() as u32, Slack::None);
            for node in &current {
                cut.push_bitmap(&mut disk, node.iter().copied(), &io);
            }
            levels.push(cut);
            if current.len() == 1 {
                break;
            }
            current = current
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 1 {
                        pair[0].clone()
                    } else {
                        merge::merge_disjoint(vec![
                            pair[0].iter().copied(),
                            pair[1].iter().copied(),
                        ])
                        .collect()
                    }
                })
                .collect();
        }
        UniformTreeIndex {
            disk,
            levels,
            prefix,
            n,
            sigma,
        }
    }

    /// Result cardinality from the `A` array (no I/O).
    pub fn cardinality(&self, lo: Symbol, hi: Symbol) -> u64 {
        check_range(lo, hi, self.sigma);
        self.prefix[hi as usize + 1] - self.prefix[lo as usize]
    }

    /// Number of levels (`lg σ + 1`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Maximal aligned subtrees covering `[lo, hi]` as `(level, index)`
    /// pairs — at most two per level.
    fn canonical_cover(&self, lo: Symbol, hi: Symbol) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        let mut lo = u64::from(lo);
        let mut hi = u64::from(hi);
        let mut level = 0usize;
        while lo <= hi {
            if lo % 2 == 1 {
                out.push((level, lo));
                lo += 1;
            }
            if hi % 2 == 0 {
                out.push((level, hi));
                if hi == 0 {
                    break;
                }
                hi -= 1;
            }
            if lo > hi {
                break;
            }
            lo /= 2;
            hi /= 2;
            level += 1;
            if level >= self.levels.len() {
                break;
            }
        }
        out
    }

    /// Merges the cover's bitmaps into a compressed result. A one-subtree
    /// cover is already stored in the output encoding, so it is returned
    /// as a verbatim word copy instead of decode-merge-reencode; larger
    /// covers go through the density-driven planner (slot counts and the
    /// cover's position span pick linear/heap/bitset before any decode).
    fn merge_cover(&self, cover: &[(usize, u64)], io: &IoSession) -> GapBitmap {
        let cover: Vec<(usize, u64)> = cover
            .iter()
            .copied()
            .filter(|&(level, idx)| self.levels[level].slot(idx as usize).count > 0)
            .collect();
        if cover.is_empty() {
            return GapBitmap::empty(self.n);
        }
        if let [(level, idx)] = cover[..] {
            return self.levels[level].copy_bitmap_auto(&self.disk, idx as usize, io, self.n);
        }
        let (total, span) = merge::cover_stats(cover.iter().map(|&(level, idx)| {
            let s = self.levels[level].slot(idx as usize);
            (
                s.count,
                s.first_pos.expect("non-empty slot"),
                s.last_pos.expect("non-empty slot"),
            )
        }));
        let decoders: Vec<_> = cover
            .iter()
            .map(|&(level, idx)| self.levels[level].decoder(&self.disk, idx as usize, io))
            .collect();
        merge::merge_adaptive(decoders, self.n, total, span)
    }
}

impl HasDisk for UniformTreeIndex {
    fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl SecondaryIndex for UniformTreeIndex {
    fn len(&self) -> u64 {
        self.n
    }

    fn sigma(&self) -> Symbol {
        self.sigma
    }

    fn space_bits(&self) -> u64 {
        // Bitmap payloads plus per-node directory (offset/length/count)
        // plus the A array.
        let lg_n = cost::lg2_ceil(self.n.max(2));
        let payload: u64 = self.levels.iter().map(|l| l.extent_bits(&self.disk)).sum();
        let directory: u64 = self
            .levels
            .iter()
            .map(|l| 3 * lg_n * l.num_slots() as u64)
            .sum();
        payload + directory + (u64::from(self.sigma) + 1) * lg_n
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma);
        if self.n == 0 {
            return RidSet::from_positions(GapBitmap::empty(0));
        }
        let z = self.cardinality(lo, hi);
        if z == 0 {
            return RidSet::from_positions(GapBitmap::empty(self.n));
        }
        if 2 * z > self.n {
            // §2.1: compute the two complementary queries and return their
            // union as a complement.
            let mut cover = Vec::new();
            if lo > 0 {
                cover.extend(self.canonical_cover(0, lo - 1));
            }
            if hi + 1 < self.sigma {
                cover.extend(self.canonical_cover(hi + 1, self.sigma - 1));
            }
            RidSet::from_complement(self.merge_cover(&cover, io))
        } else {
            let cover = self.canonical_cover(lo, hi);
            RidSet::from_positions(self.merge_cover(&cover, io))
        }
    }

    fn cardinality_hint(&self, lo: Symbol, hi: Symbol) -> Option<u64> {
        // Exact, from the memory-resident A array.
        Some(self.cardinality(lo, hi))
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl psi_store::PersistIndex for UniformTreeIndex {
    const TAG: &'static str = "uniform_tree";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        out.put_len(self.levels.len());
        for level in &self.levels {
            level.persist_meta(out);
        }
        out.put_vec_u64(&self.prefix);
        out.put_u64(self.n);
        out.put_u32(self.sigma);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![HasDisk::disk(self)]
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let disk = psi_store::single_volume(disks, "uniform-tree")?;
        let num_levels = meta.get_len(20)?;
        let mut levels = Vec::with_capacity(num_levels);
        for _ in 0..num_levels {
            levels.push(CutStream::restore_meta(meta, &disk)?);
        }
        Ok(UniformTreeIndex {
            disk,
            levels,
            prefix: meta.get_vec_u64()?,
            n: meta.get_u64()?,
            sigma: meta.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_api::naive_query;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn matches_naive_exhaustively() {
        let sigma = 13u32; // non-power-of-two exercises padding
        let symbols = psi_workloads::uniform(1500, sigma, 41);
        let idx = UniformTreeIndex::build(&symbols, sigma, cfg());
        for lo in 0..sigma {
            for hi in lo..sigma {
                let io = IoSession::new();
                assert_eq!(
                    idx.query(lo, hi, &io).to_vec(),
                    naive_query(&symbols, lo, hi).to_vec(),
                    "range [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn cover_has_at_most_two_per_level() {
        let symbols = psi_workloads::uniform(500, 64, 43);
        let idx = UniformTreeIndex::build(&symbols, 64, cfg());
        for (lo, hi) in [(0u32, 63u32), (1, 62), (3, 60), (17, 48), (5, 5)] {
            let cover = idx.canonical_cover(lo, hi);
            for level in 0..idx.num_levels() {
                let count = cover.iter().filter(|&&(l, _)| l == level).count();
                assert!(
                    count <= 2,
                    "level {level} has {count} subtrees for [{lo}, {hi}]"
                );
            }
            // Cover expands exactly to [lo, hi].
            let mut chars: Vec<u64> = cover
                .iter()
                .flat_map(|&(l, i)| (i << l)..((i + 1) << l))
                .collect();
            chars.sort_unstable();
            assert_eq!(chars, (u64::from(lo)..=u64::from(hi)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn complement_trick_for_wide_ranges() {
        let symbols = psi_workloads::uniform(2000, 16, 45);
        let idx = UniformTreeIndex::build(&symbols, 16, cfg());
        let io = IoSession::new();
        let r = idx.query(1, 14, &io);
        assert!(r.is_complemented());
        assert_eq!(r.to_vec(), naive_query(&symbols, 1, 14).to_vec());
    }

    #[test]
    fn space_is_n_lg_squared_sigma() {
        let n = 1u64 << 14;
        let sigma = 64u32;
        let symbols = psi_workloads::uniform(n as usize, sigma, 47);
        let idx = UniformTreeIndex::build(&symbols, sigma, IoConfig::default());
        // lg σ + 1 = 7 levels, each ~n lg(σ/2^k)-ish compressed bits; the
        // total must be well below (lg σ)² n but above n lg σ.
        let lg_sigma = 6u64;
        assert!(idx.space_bits() > n * lg_sigma / 2);
        assert!(idx.space_bits() < 3 * n * lg_sigma * lg_sigma);
    }

    #[test]
    fn query_io_has_additive_lg_sigma_not_output_blowup() {
        let n = 1usize << 16;
        let sigma = 256u32;
        let symbols = psi_workloads::uniform(n, sigma, 49);
        let idx = UniformTreeIndex::build(&symbols, sigma, IoConfig::default());
        let (result, stats) = idx.query_measured(3, 130);
        let t_over_b = result.size_bits() / 8192 + 1;
        assert!(
            stats.reads <= 4 * t_over_b + 2 * 9 + 8,
            "reads {} vs T/B {} + 2 lg sigma",
            stats.reads,
            t_over_b
        );
    }

    #[test]
    fn sigma_one() {
        let symbols = vec![0u32; 300];
        let idx = UniformTreeIndex::build(&symbols, 1, cfg());
        let io = IoSession::new();
        assert_eq!(idx.query(0, 0, &io).cardinality(), 300);
    }
}
