//! Slotted storage for one materialized cut.
//!
//! A materialized cut stores "the bitmaps of all the internal nodes at each
//! materialized level by concatenating them in their left-to-right order"
//! (§2.2). Statically that is a plain concatenation; the dynamic variants
//! (§4.1) additionally need to *append* gamma codes to bitmaps in the
//! middle of the stream, so each bitmap occupies a **slot** with optional
//! tail slack. Slots for rebuilt subtrees are re-allocated at the end of
//! the extent and the old ones tombstoned; when dead bits outweigh live
//! bits the owner compacts the stream (the engine folds this into its
//! rebuild machinery). All reads and writes are charged to the caller's
//! [`IoSession`].
//!
//! Each slot additionally persists a **skip directory** — one
//! `(position, bit offset)` sample per [`SKIP_SAMPLE`] encoded elements —
//! in a side extent, written at build/rebuild time and extended by
//! appends. Directory reads are charged like any other read; they buy
//! directory-assisted seeks ([`CutStream::seek_decoder`] reads only the
//! probed directory blocks plus the stream blocks past the sample) and
//! indexed verbatim copies ([`CutStream::copy_bitmap_indexed`] lifts the
//! samples with the payload so the returned bitmap supports galloping set
//! operations without a decode pass).

use psi_bits::skip::{self, SkipDirectory, SkipEntry};
use psi_bits::{codes, BitBuf, GapBitmap, GapDecoder, SKIP_ENTRY_BITS, SKIP_SAMPLE};
use psi_io::{Disk, DiskReader, ExtentId, IoSession};

/// Allocation policy for slot slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slack {
    /// No slack: slots are exactly their payload (static structures).
    None,
    /// Tail slack proportional to the payload plus a constant, so a slot
    /// absorbs appends until weight-balance rebuilds reach it.
    Proportional,
}

impl Slack {
    fn cap_for(self, len: u64) -> u64 {
        match self {
            Slack::None => len,
            Slack::Proportional => 2 * len + 256,
        }
    }

    /// Reserved directory entries for a slot that starts with `entries`
    /// samples (a little slack absorbs appended samples until the owning
    /// subtree is rebuilt; an exhausted reservation merely truncates the
    /// directory — operations past the last sample decode linearly).
    /// Slots too small to earn a directory reserve nothing.
    fn dir_cap_for(self, entries: u64) -> u64 {
        match (self, entries) {
            (_, 0) => 0,
            (Slack::None, e) => e,
            (Slack::Proportional, e) => e + 2,
        }
    }
}

/// Slot-size floor for persisting directories (the entropy bound
/// `O(nH₀ + n)` must absorb them, so they are charged only where they
/// pay: `≤ 1.25` bits per element on slots of 128+ elements).
pub use psi_bits::skip::DIR_MIN_COUNT;

/// One bitmap slot within the cut stream.
#[derive(Debug, Clone)]
pub struct Slot {
    /// Bit offset of the code stream.
    pub off: u64,
    /// Occupied payload bits.
    pub len: u64,
    /// Reserved bits (`≥ len`).
    pub cap: u64,
    /// Number of encoded positions.
    pub count: u64,
    /// First encoded position (with `last_pos`, the slot's span — the
    /// merge planner reads density off this metadata before any decode).
    pub first_pos: Option<u64>,
    /// Last encoded position (needed to append the next gap code).
    pub last_pos: Option<u64>,
    /// Bit offset of the skip directory in the side extent.
    pub dir_off: u64,
    /// Written directory entries.
    pub dir_entries: u64,
    /// Reserved directory entries (`≥ dir_entries`).
    pub dir_cap: u64,
    /// Whether the last persisted directory entry still carries the
    /// *exact* occupancy word written at build time. Appends extend the
    /// stream past that entry's summarized window, so the first append
    /// zeroes the tail entry's occupancy on disk ("no information") and
    /// clears this flag — at most one extra positioned write over the
    /// slot's whole append lifetime.
    pub dir_tail_exact: bool,
    /// Tombstone flag.
    pub dead: bool,
}

/// A cut's slotted bitmap stream.
#[derive(Debug)]
pub struct CutStream {
    /// Tree depth this cut materializes.
    pub level: u32,
    ext: ExtentId,
    /// Side extent holding every slot's skip directory.
    dir_ext: ExtentId,
    slots: Vec<Slot>,
    dead_bits: u64,
    slack: Slack,
}

impl CutStream {
    /// Creates an empty cut stream at tree depth `level`.
    pub fn new(disk: &mut Disk, level: u32, slack: Slack) -> Self {
        CutStream {
            level,
            ext: disk.alloc(),
            dir_ext: disk.alloc(),
            slots: Vec::new(),
            dead_bits: 0,
            slack,
        }
    }

    /// Number of slots ever allocated (including dead ones).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Slot metadata.
    pub fn slot(&self, idx: usize) -> &Slot {
        &self.slots[idx]
    }

    /// Appends a new bitmap slot holding `positions` (strictly increasing)
    /// at the end of the stream, reserving slack per policy. Returns the
    /// slot index. Writes are charged to `io`.
    pub fn push_bitmap<I: IntoIterator<Item = u64>>(
        &mut self,
        disk: &mut Disk,
        positions: I,
        io: &IoSession,
    ) -> usize {
        let off = disk.extent_bits(self.ext);
        let mut w = disk.writer(self.ext, io);
        let mut count = 0u64;
        let mut first_pos = None;
        let mut last_pos = None;
        let mut samples: Vec<SkipEntry> = Vec::new();
        for p in positions {
            match last_pos {
                None => codes::put_gamma(&mut w, p + 1),
                Some(prev) => {
                    assert!(p > prev, "positions must be strictly increasing");
                    codes::put_gamma(&mut w, p - prev);
                }
            }
            if count.is_multiple_of(u64::from(SKIP_SAMPLE)) {
                samples.push(SkipEntry {
                    pos: p,
                    bit_off: w.pos() - off,
                    occ: SkipEntry::OCC_SELF,
                });
            } else if let Some(last) = samples.last_mut() {
                last.cover(p);
            }
            first_pos.get_or_insert(p);
            last_pos = Some(p);
            count += 1;
        }
        let len = w.pos() - off;
        let cap = self.slack.cap_for(len);
        if cap > len {
            w.write_zeros(cap - len);
        }
        // Persist the skip directory in the side extent, with entry slack
        // mirroring the payload's policy. Tiny slots skip it entirely.
        if count < DIR_MIN_COUNT {
            samples.clear();
        }
        let dir_off = disk.extent_bits(self.dir_ext);
        let dir_entries = samples.len() as u64;
        let dir_cap = self.slack.dir_cap_for(dir_entries);
        let mut dw = disk.writer(self.dir_ext, io);
        for e in &samples {
            e.write_to(&mut dw);
        }
        if dir_cap > dir_entries {
            dw.write_zeros((dir_cap - dir_entries) * SKIP_ENTRY_BITS);
        }
        self.slots.push(Slot {
            off,
            len,
            cap,
            count,
            first_pos,
            last_pos,
            dir_off,
            dir_entries,
            dir_cap,
            dir_tail_exact: dir_entries > 0,
            dead: false,
        });
        self.slots.len() - 1
    }

    /// Appends one position to slot `idx` in place. Returns `false`
    /// (without writing) when the slot's slack cannot hold the gap code —
    /// the signal for the engine to rebuild the owning subtree.
    pub fn append_position(
        &mut self,
        disk: &mut Disk,
        idx: usize,
        pos: u64,
        io: &IoSession,
    ) -> bool {
        let slot = &self.slots[idx];
        assert!(!slot.dead, "append to dead slot");
        let code = match slot.last_pos {
            None => pos + 1,
            Some(prev) => {
                assert!(
                    pos > prev,
                    "appended position {pos} not past slot tail {prev}"
                );
                pos - prev
            }
        };
        let need = codes::gamma_len(code);
        if slot.len + need > slot.cap {
            return false;
        }
        let at = slot.off + slot.len;
        let mut w = disk.writer_at(self.ext, at, io);
        codes::put_gamma(&mut w, code);
        // The appended element's index is the old count; when it lands on
        // a sampling boundary, extend the persisted directory (or let it
        // truncate when the reservation is spent — rebuilds re-sample).
        let sample_due = slot.count.is_multiple_of(u64::from(SKIP_SAMPLE));
        let slot = &mut self.slots[idx];
        slot.len += need;
        slot.count += 1;
        slot.first_pos.get_or_insert(pos);
        slot.last_pos = Some(pos);
        // The appended element may fall inside the window summarized by
        // the build-time tail entry, so its exact occupancy word is no
        // longer trustworthy: demote it to "no information" on disk once.
        if slot.dir_tail_exact {
            slot.dir_tail_exact = false;
            let occ_at =
                slot.dir_off + (slot.dir_entries - 1) * SKIP_ENTRY_BITS + skip::SKIP_OCC_OFF;
            let mut dw = disk.writer_at(self.dir_ext, occ_at, io);
            dw.overwrite_bits(0, 64);
        }
        if sample_due && slot.dir_entries < slot.dir_cap {
            let entry = SkipEntry {
                pos,
                bit_off: slot.len,
                // Later appends land in this entry's window without
                // touching the directory, so it can never claim exact
                // coverage.
                occ: 0,
            };
            let at = slot.dir_off + slot.dir_entries * SKIP_ENTRY_BITS;
            slot.dir_entries += 1;
            let mut dw = disk.writer_at(self.dir_ext, at, io);
            entry.write_to(&mut dw);
        }
        true
    }

    /// Reads slot `idx`'s persisted skip directory (sequential, charged).
    pub fn read_directory(&self, disk: &Disk, idx: usize, io: &IoSession) -> SkipDirectory {
        let slot = &self.slots[idx];
        assert!(!slot.dead, "directory read of dead slot");
        let mut r = disk.reader(self.dir_ext, slot.dir_off, io);
        SkipDirectory::read_from_source(&mut r, SKIP_SAMPLE, slot.dir_entries)
    }

    /// A decoder over slot `idx` fast-forwarded past every sampled element
    /// below `min_pos`: a binary search over the persisted directory
    /// (charging only the probed blocks) re-seats the decoder at the
    /// latest sample with position `< min_pos`, so the skipped prefix of
    /// the stream is never read. Returns the decoder plus the number of
    /// skipped elements; the first up-to-`K − 1` decoded elements may
    /// still be below `min_pos`.
    pub fn seek_decoder<'a>(
        &self,
        disk: &'a Disk,
        idx: usize,
        io: &'a IoSession,
        min_pos: u64,
    ) -> (GapDecoder<DiskReader<'a>>, u64) {
        let slot = &self.slots[idx];
        assert!(!slot.dead, "seek into dead slot");
        let mut r = disk.reader(self.dir_ext, slot.dir_off, io);
        let hit = skip::search_persisted(slot.dir_entries, min_pos, |j| {
            r.skip_to(slot.dir_off + j * SKIP_ENTRY_BITS);
            SkipEntry::read_from(&mut r)
        });
        match hit {
            None => (self.decoder(disk, idx, io), 0),
            Some((j, e)) => {
                let rank = j * u64::from(SKIP_SAMPLE);
                let src = disk.reader(self.ext, slot.off + e.bit_off, io);
                (
                    GapDecoder::resume(src, slot.count - rank - 1, e.pos),
                    rank + 1,
                )
            }
        }
    }

    /// Streaming decoder over slot `idx`, charging `io`.
    pub fn decoder<'a>(
        &self,
        disk: &'a Disk,
        idx: usize,
        io: &'a IoSession,
    ) -> GapDecoder<DiskReader<'a>> {
        let slot = &self.slots[idx];
        assert!(!slot.dead, "decode of dead slot");
        GapDecoder::new(disk.reader(self.ext, slot.off, io), slot.count)
    }

    /// Lifts slot `idx` verbatim into a [`GapBitmap`] over `universe`,
    /// charging `io` for the bits read. A query whose canonical cover is a
    /// single stored bitmap already holds its answer in the exact output
    /// encoding, so this replaces decode-merge-reencode with a word copy.
    pub fn copy_bitmap(&self, disk: &Disk, idx: usize, io: &IoSession, universe: u64) -> GapBitmap {
        let slot = &self.slots[idx];
        assert!(!slot.dead, "copy of dead slot");
        let mut r = disk.reader(self.ext, slot.off, io);
        let mut bits = BitBuf::with_capacity(slot.len);
        bits.extend_from_source(&mut r, slot.len);
        GapBitmap::from_code_bits(bits, slot.count, universe)
    }

    /// [`Self::copy_bitmap`] plus a lift of the persisted skip directory
    /// (charged against the side extent), so the returned bitmap answers
    /// membership/rank/select and gallops in `O(lg(z/K) + K)` without a
    /// decode pass. Payload charges are identical to [`Self::copy_bitmap`];
    /// the directory costs exactly its own blocks on top.
    pub fn copy_bitmap_indexed(
        &self,
        disk: &Disk,
        idx: usize,
        io: &IoSession,
        universe: u64,
    ) -> GapBitmap {
        let slot = &self.slots[idx];
        assert!(!slot.dead, "copy of dead slot");
        let skip = self.read_directory(disk, idx, io);
        let mut r = disk.reader(self.ext, slot.off, io);
        let mut bits = BitBuf::with_capacity(slot.len);
        bits.extend_from_source(&mut r, slot.len);
        GapBitmap::from_code_bits_indexed(bits, slot.count, universe, skip)
    }

    /// [`Self::copy_bitmap_indexed`] when the result is large enough for
    /// galloping to repay the directory blocks
    /// ([`psi_bits::skip::SKIP_LIFT_MIN`]), else the plain verbatim copy.
    pub fn copy_bitmap_auto(
        &self,
        disk: &Disk,
        idx: usize,
        io: &IoSession,
        universe: u64,
    ) -> GapBitmap {
        if self.slots[idx].count >= skip::SKIP_LIFT_MIN {
            self.copy_bitmap_indexed(disk, idx, io, universe)
        } else {
            self.copy_bitmap(disk, idx, io, universe)
        }
    }

    /// Tombstones slot `idx` (its bits become dead space until compaction).
    pub fn kill(&mut self, idx: usize) {
        let slot = &mut self.slots[idx];
        if !slot.dead {
            slot.dead = true;
            self.dead_bits += slot.cap;
        }
    }

    /// Fraction of the extent that is tombstoned.
    pub fn dead_fraction(&self, disk: &Disk) -> f64 {
        let total = disk.extent_bits(self.ext);
        if total == 0 {
            0.0
        } else {
            self.dead_bits as f64 / total as f64
        }
    }

    /// Live payload bits (excluding slack and tombstones).
    pub fn live_bits(&self) -> u64 {
        self.slots.iter().filter(|s| !s.dead).map(|s| s.len).sum()
    }

    /// Total extent bits (live + slack + dead).
    pub fn extent_bits(&self, disk: &Disk) -> u64 {
        disk.extent_bits(self.ext)
    }

    /// Drops all slots and storage (used by engine-level rebuilds, which
    /// recreate cuts from scratch).
    pub fn clear(&mut self, disk: &mut Disk) {
        disk.free(self.ext);
        disk.free(self.dir_ext);
        self.slots.clear();
        self.dead_bits = 0;
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl Slack {
    /// One-byte tag for serialization.
    pub(crate) fn persist_tag(self) -> u8 {
        match self {
            Slack::None => 0,
            Slack::Proportional => 1,
        }
    }

    /// Decodes a serialized tag.
    pub(crate) fn from_persist_tag(tag: u8) -> Result<Slack, psi_store::StoreError> {
        match tag {
            0 => Ok(Slack::None),
            1 => Ok(Slack::Proportional),
            t => Err(psi_store::StoreError::Meta {
                what: format!("slack tag {t}"),
            }),
        }
    }
}

impl CutStream {
    /// Serializes the cut's slot directory (the payload stays on disk).
    pub(crate) fn persist_meta(&self, out: &mut psi_store::MetaBuf) {
        out.put_u32(self.level);
        out.put_u32(self.ext.0);
        out.put_u32(self.dir_ext.0);
        out.put_u64(self.dead_bits);
        out.put_u8(self.slack.persist_tag());
        out.put_len(self.slots.len());
        for s in &self.slots {
            out.put_u64(s.off);
            out.put_u64(s.len);
            out.put_u64(s.cap);
            out.put_u64(s.count);
            out.put_opt_u64(s.first_pos);
            out.put_opt_u64(s.last_pos);
            out.put_u64(s.dir_off);
            out.put_u64(s.dir_entries);
            out.put_u64(s.dir_cap);
            out.put_bool(s.dir_tail_exact);
            out.put_bool(s.dead);
        }
    }

    /// Rebuilds the cut from serialized metadata; extent ids are
    /// validated against the reopened disk.
    pub(crate) fn restore_meta(
        meta: &mut psi_store::MetaCursor,
        disk: &Disk,
    ) -> Result<CutStream, psi_store::StoreError> {
        let level = meta.get_u32()?;
        let ext = psi_store::check_extent(disk, meta.get_u32()?, "cut")?;
        let dir_ext = psi_store::check_extent(disk, meta.get_u32()?, "cut directory")?;
        let dead_bits = meta.get_u64()?;
        let slack = Slack::from_persist_tag(meta.get_u8()?)?;
        // Minimum encoded slot: 7 u64 fields + two absent options + two
        // flags = 60 bytes (an empty slot omits first/last_pos).
        let len = meta.get_len(60)?;
        let mut slots = Vec::with_capacity(len);
        for _ in 0..len {
            slots.push(Slot {
                off: meta.get_u64()?,
                len: meta.get_u64()?,
                cap: meta.get_u64()?,
                count: meta.get_u64()?,
                first_pos: meta.get_opt_u64()?,
                last_pos: meta.get_opt_u64()?,
                dir_off: meta.get_u64()?,
                dir_entries: meta.get_u64()?,
                dir_cap: meta.get_u64()?,
                dir_tail_exact: meta.get_bool()?,
                dead: meta.get_bool()?,
            });
        }
        Ok(CutStream {
            level,
            ext,
            dir_ext,
            slots,
            dead_bits,
            slack,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_io::IoConfig;

    fn setup() -> (Disk, IoSession) {
        (
            Disk::new(IoConfig::with_block_bits(256)),
            IoSession::untracked(),
        )
    }

    #[test]
    fn push_and_decode_roundtrip() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let a = cut.push_bitmap(&mut disk, vec![0u64, 3, 10], &io);
        let b = cut.push_bitmap(&mut disk, vec![5u64], &io);
        assert_eq!(
            cut.decoder(&disk, a, &io).collect::<Vec<_>>(),
            vec![0, 3, 10]
        );
        assert_eq!(cut.decoder(&disk, b, &io).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn slack_none_packs_tightly() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let a = cut.push_bitmap(&mut disk, vec![0u64, 1, 2], &io);
        let slot = cut.slot(a);
        assert_eq!(slot.cap, slot.len);
        // gamma(1) + gamma(1) + gamma(1) = 3 bits.
        assert_eq!(slot.len, 3);
    }

    #[test]
    fn append_within_slack_succeeds() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::Proportional);
        let a = cut.push_bitmap(&mut disk, vec![10u64], &io);
        assert!(cut.append_position(&mut disk, a, 20, &io));
        assert!(cut.append_position(&mut disk, a, 21, &io));
        assert_eq!(
            cut.decoder(&disk, a, &io).collect::<Vec<_>>(),
            vec![10, 20, 21]
        );
        assert_eq!(cut.slot(a).count, 3);
    }

    #[test]
    fn append_to_empty_slot_starts_stream() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 2, Slack::Proportional);
        let a = cut.push_bitmap(&mut disk, Vec::<u64>::new(), &io);
        assert!(cut.append_position(&mut disk, a, 7, &io));
        assert_eq!(cut.decoder(&disk, a, &io).collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn append_overflow_reports_false() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let a = cut.push_bitmap(&mut disk, vec![1u64], &io);
        assert!(!cut.append_position(&mut disk, a, 1000, &io));
        // Slot unchanged.
        assert_eq!(cut.decoder(&disk, a, &io).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn kill_accumulates_dead_bits() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let a = cut.push_bitmap(&mut disk, (0..64u64).map(|i| i * 3), &io);
        let _b = cut.push_bitmap(&mut disk, vec![0u64], &io);
        assert_eq!(cut.dead_fraction(&disk), 0.0);
        cut.kill(a);
        assert!(cut.dead_fraction(&disk) > 0.9);
        cut.kill(a); // idempotent
        assert!(cut.dead_fraction(&disk) <= 1.0);
    }

    #[test]
    fn copy_bitmap_is_verbatim_and_charged_like_decode() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let positions: Vec<u64> = (0..200u64).map(|i| i * 7).collect();
        let a = cut.push_bitmap(&mut disk, positions.iter().copied(), &io);
        let decode_io = IoSession::new();
        let decoded: Vec<u64> = cut.decoder(&disk, a, &decode_io).collect();
        let copy_io = IoSession::new();
        let copied = cut.copy_bitmap(&disk, a, &copy_io, 1400);
        assert_eq!(copied.to_vec(), decoded);
        assert_eq!(copied.count(), 200);
        assert_eq!(copied.universe(), 1400);
        assert_eq!(copied.size_bits(), cut.slot(a).len);
        // The copy reads the same stream, so it charges the same blocks.
        assert_eq!(copy_io.stats().reads, decode_io.stats().reads);
        assert_eq!(copy_io.stats().bits_read, decode_io.stats().bits_read);
    }

    #[test]
    fn copy_bitmap_indexed_charges_payload_parity_plus_directory() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let positions: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        let a = cut.push_bitmap(&mut disk, positions.iter().copied(), &io);
        let plain_io = IoSession::new();
        let plain = cut.copy_bitmap(&disk, a, &plain_io, 1500);
        let indexed_io = IoSession::new();
        let indexed = cut.copy_bitmap_indexed(&disk, a, &indexed_io, 1500);
        assert_eq!(indexed, plain);
        // Payload parity: the extra charges are exactly the directory's
        // blocks and bits, nothing else.
        let slot = cut.slot(a);
        let dir_blocks = {
            let b = 256; // block bits of setup()
            let first = slot.dir_off / b;
            let last = (slot.dir_off + slot.dir_cap * SKIP_ENTRY_BITS - 1) / b;
            last - first + 1
        };
        assert_eq!(
            indexed_io.stats().reads,
            plain_io.stats().reads + dir_blocks
        );
        assert_eq!(
            indexed_io.stats().bits_read,
            plain_io.stats().bits_read + slot.dir_entries * SKIP_ENTRY_BITS
        );
        // The lifted directory gallops without further decoding.
        assert!(indexed.contains(3 * 499) && !indexed.contains(3 * 499 - 1));
        assert_eq!(indexed.rank(750), 250);
        assert_eq!(indexed.select(499), Some(1497));
    }

    #[test]
    fn seek_decoder_reads_strictly_fewer_blocks() {
        let mut disk = Disk::new(IoConfig::with_block_bits(256));
        let io = IoSession::untracked();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let positions: Vec<u64> = (0..4000u64).map(|i| i * 5).collect();
        let a = cut.push_bitmap(&mut disk, positions.iter().copied(), &io);
        // Full decode charges every payload block.
        let full_io = IoSession::new();
        let full: Vec<u64> = cut.decoder(&disk, a, &full_io).collect();
        assert_eq!(full, positions);
        // Directory-assisted seek into the tail: decode only elements
        // ≥ min_pos (after filtering the sample run-in).
        let min_pos = 5 * 3900;
        let seek_io = IoSession::new();
        let (dec, skipped) = cut.seek_decoder(&disk, a, &seek_io, min_pos);
        assert!(skipped >= 3900 - u64::from(SKIP_SAMPLE) && skipped <= 3900);
        let tail: Vec<u64> = dec.filter(|&p| p >= min_pos).collect();
        assert_eq!(tail, positions[3900..]);
        assert!(
            seek_io.stats().reads < full_io.stats().reads,
            "seek {} blocks vs full {}",
            seek_io.stats().reads,
            full_io.stats().reads
        );
        assert!(seek_io.stats().bits_read < full_io.stats().bits_read);
        // Seeking below the first element degenerates to the full stream.
        let (dec, skipped) = cut.seek_decoder(&disk, a, &io, 0);
        assert_eq!(skipped, 0);
        assert_eq!(dec.count(), 4000);
    }

    #[test]
    fn appends_extend_the_persisted_directory() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::Proportional);
        let a = cut.push_bitmap(&mut disk, (0..180u64).map(|i| 2 * i), &io);
        assert_eq!(cut.slot(a).dir_entries, 3); // samples at 0, 64, 128
                                                // Push the count across the next sampling boundary (index 192).
        for p in 0..30u64 {
            assert!(cut.append_position(&mut disk, a, 400 + p, &io));
        }
        let slot = cut.slot(a);
        assert_eq!(slot.count, 210);
        assert_eq!(slot.dir_entries, 4);
        assert_eq!(slot.first_pos, Some(0));
        let dir = cut.read_directory(&disk, a, &io);
        assert_eq!(dir.len(), 4);
        assert_eq!(dir.entries()[3].pos, 400 + 12); // element index 192
                                                    // The lifted directory agrees with the stream.
        let copied = cut.copy_bitmap_indexed(&disk, a, &io, 4096);
        assert_eq!(copied.to_vec().len(), 210);
        assert!(copied.contains(358) && !copied.contains(359)); // pushed evens
        assert!(copied.contains(429) && !copied.contains(430)); // appended run
    }

    #[test]
    fn tiny_slots_persist_no_directory() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::Proportional);
        let a = cut.push_bitmap(&mut disk, 0..(DIR_MIN_COUNT - 1), &io);
        let slot = cut.slot(a);
        assert_eq!((slot.dir_entries, slot.dir_cap), (0, 0));
        // The indexed copy still works: an empty directory means every
        // operation takes the linear path.
        let copied = cut.copy_bitmap_indexed(&disk, a, &io, 1000);
        assert_eq!(copied.count(), DIR_MIN_COUNT - 1);
        assert!(copied.contains(5));
    }

    #[test]
    fn exhausted_directory_slack_truncates_but_stays_correct() {
        // A sparse slot (long codes, few samples) whose payload slack then
        // absorbs a dense run of appends (1-bit codes) out-samples its
        // directory reservation: the directory truncates, correctness
        // survives via the linear tail.
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::Proportional);
        let sparse: Vec<u64> = (0..128u64).map(|i| i * 10_000).collect();
        let a = cut.push_bitmap(&mut disk, sparse.iter().copied(), &io);
        let cap = cut.slot(a).dir_cap;
        assert_eq!(cap, 4); // 2 entries + 2
        let mut next = 128 * 10_000;
        while cut.append_position(&mut disk, a, next, &io) {
            next += 1;
        }
        let slot = cut.slot(a);
        assert!(
            slot.count.div_ceil(u64::from(SKIP_SAMPLE)) > cap,
            "appends must out-sample the reservation (count {})",
            slot.count
        );
        assert_eq!(slot.dir_entries, cap);
        let copied = cut.copy_bitmap_indexed(&disk, a, &io, next + 1);
        assert_eq!(copied.count(), slot.count);
        // Operations past the last sample fall back to linear decode.
        assert_eq!(copied.select(slot.count - 1), Some(next - 1));
        assert!(copied.contains(next - 1) && !copied.contains(next));
    }

    #[test]
    fn writes_are_charged() {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let io = IoSession::new();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        cut.push_bitmap(&mut disk, (0..100u64).map(|i| i * 50), &io);
        assert!(io.stats().writes > 0);
    }
}
