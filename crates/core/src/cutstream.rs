//! Slotted storage for one materialized cut.
//!
//! A materialized cut stores "the bitmaps of all the internal nodes at each
//! materialized level by concatenating them in their left-to-right order"
//! (§2.2). Statically that is a plain concatenation; the dynamic variants
//! (§4.1) additionally need to *append* gamma codes to bitmaps in the
//! middle of the stream, so each bitmap occupies a **slot** with optional
//! tail slack. Slots for rebuilt subtrees are re-allocated at the end of
//! the extent and the old ones tombstoned; when dead bits outweigh live
//! bits the owner compacts the stream (the engine folds this into its
//! rebuild machinery). All reads and writes are charged to the caller's
//! [`IoSession`].

use psi_bits::{codes, BitBuf, GapBitmap, GapDecoder};
use psi_io::{Disk, DiskReader, ExtentId, IoSession};

/// Allocation policy for slot slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slack {
    /// No slack: slots are exactly their payload (static structures).
    None,
    /// Tail slack proportional to the payload plus a constant, so a slot
    /// absorbs appends until weight-balance rebuilds reach it.
    Proportional,
}

impl Slack {
    fn cap_for(self, len: u64) -> u64 {
        match self {
            Slack::None => len,
            Slack::Proportional => 2 * len + 256,
        }
    }
}

/// One bitmap slot within the cut stream.
#[derive(Debug, Clone)]
pub struct Slot {
    /// Bit offset of the code stream.
    pub off: u64,
    /// Occupied payload bits.
    pub len: u64,
    /// Reserved bits (`≥ len`).
    pub cap: u64,
    /// Number of encoded positions.
    pub count: u64,
    /// Last encoded position (needed to append the next gap code).
    pub last_pos: Option<u64>,
    /// Tombstone flag.
    pub dead: bool,
}

/// A cut's slotted bitmap stream.
#[derive(Debug)]
pub struct CutStream {
    /// Tree depth this cut materializes.
    pub level: u32,
    ext: ExtentId,
    slots: Vec<Slot>,
    dead_bits: u64,
    slack: Slack,
}

impl CutStream {
    /// Creates an empty cut stream at tree depth `level`.
    pub fn new(disk: &mut Disk, level: u32, slack: Slack) -> Self {
        CutStream {
            level,
            ext: disk.alloc(),
            slots: Vec::new(),
            dead_bits: 0,
            slack,
        }
    }

    /// Number of slots ever allocated (including dead ones).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Slot metadata.
    pub fn slot(&self, idx: usize) -> &Slot {
        &self.slots[idx]
    }

    /// Appends a new bitmap slot holding `positions` (strictly increasing)
    /// at the end of the stream, reserving slack per policy. Returns the
    /// slot index. Writes are charged to `io`.
    pub fn push_bitmap<I: IntoIterator<Item = u64>>(
        &mut self,
        disk: &mut Disk,
        positions: I,
        io: &IoSession,
    ) -> usize {
        let off = disk.extent_bits(self.ext);
        let mut w = disk.writer(self.ext, io);
        let mut count = 0u64;
        let mut last_pos = None;
        for p in positions {
            match last_pos {
                None => codes::put_gamma(&mut w, p + 1),
                Some(prev) => {
                    assert!(p > prev, "positions must be strictly increasing");
                    codes::put_gamma(&mut w, p - prev);
                }
            }
            last_pos = Some(p);
            count += 1;
        }
        let len = w.pos() - off;
        let cap = self.slack.cap_for(len);
        if cap > len {
            w.write_zeros(cap - len);
        }
        self.slots.push(Slot {
            off,
            len,
            cap,
            count,
            last_pos,
            dead: false,
        });
        self.slots.len() - 1
    }

    /// Appends one position to slot `idx` in place. Returns `false`
    /// (without writing) when the slot's slack cannot hold the gap code —
    /// the signal for the engine to rebuild the owning subtree.
    pub fn append_position(
        &mut self,
        disk: &mut Disk,
        idx: usize,
        pos: u64,
        io: &IoSession,
    ) -> bool {
        let slot = &self.slots[idx];
        assert!(!slot.dead, "append to dead slot");
        let code = match slot.last_pos {
            None => pos + 1,
            Some(prev) => {
                assert!(
                    pos > prev,
                    "appended position {pos} not past slot tail {prev}"
                );
                pos - prev
            }
        };
        let need = codes::gamma_len(code);
        if slot.len + need > slot.cap {
            return false;
        }
        let at = slot.off + slot.len;
        let mut w = disk.writer_at(self.ext, at, io);
        codes::put_gamma(&mut w, code);
        let slot = &mut self.slots[idx];
        slot.len += need;
        slot.count += 1;
        slot.last_pos = Some(pos);
        true
    }

    /// Streaming decoder over slot `idx`, charging `io`.
    pub fn decoder<'a>(
        &self,
        disk: &'a Disk,
        idx: usize,
        io: &'a IoSession,
    ) -> GapDecoder<DiskReader<'a>> {
        let slot = &self.slots[idx];
        assert!(!slot.dead, "decode of dead slot");
        GapDecoder::new(disk.reader(self.ext, slot.off, io), slot.count)
    }

    /// Lifts slot `idx` verbatim into a [`GapBitmap`] over `universe`,
    /// charging `io` for the bits read. A query whose canonical cover is a
    /// single stored bitmap already holds its answer in the exact output
    /// encoding, so this replaces decode-merge-reencode with a word copy.
    pub fn copy_bitmap(&self, disk: &Disk, idx: usize, io: &IoSession, universe: u64) -> GapBitmap {
        let slot = &self.slots[idx];
        assert!(!slot.dead, "copy of dead slot");
        let mut r = disk.reader(self.ext, slot.off, io);
        let mut bits = BitBuf::with_capacity(slot.len);
        bits.extend_from_source(&mut r, slot.len);
        GapBitmap::from_code_bits(bits, slot.count, universe)
    }

    /// Tombstones slot `idx` (its bits become dead space until compaction).
    pub fn kill(&mut self, idx: usize) {
        let slot = &mut self.slots[idx];
        if !slot.dead {
            slot.dead = true;
            self.dead_bits += slot.cap;
        }
    }

    /// Fraction of the extent that is tombstoned.
    pub fn dead_fraction(&self, disk: &Disk) -> f64 {
        let total = disk.extent_bits(self.ext);
        if total == 0 {
            0.0
        } else {
            self.dead_bits as f64 / total as f64
        }
    }

    /// Live payload bits (excluding slack and tombstones).
    pub fn live_bits(&self) -> u64 {
        self.slots.iter().filter(|s| !s.dead).map(|s| s.len).sum()
    }

    /// Total extent bits (live + slack + dead).
    pub fn extent_bits(&self, disk: &Disk) -> u64 {
        disk.extent_bits(self.ext)
    }

    /// Drops all slots and storage (used by engine-level rebuilds, which
    /// recreate cuts from scratch).
    pub fn clear(&mut self, disk: &mut Disk) {
        disk.free(self.ext);
        self.slots.clear();
        self.dead_bits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_io::IoConfig;

    fn setup() -> (Disk, IoSession) {
        (
            Disk::new(IoConfig::with_block_bits(256)),
            IoSession::untracked(),
        )
    }

    #[test]
    fn push_and_decode_roundtrip() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let a = cut.push_bitmap(&mut disk, vec![0u64, 3, 10], &io);
        let b = cut.push_bitmap(&mut disk, vec![5u64], &io);
        assert_eq!(
            cut.decoder(&disk, a, &io).collect::<Vec<_>>(),
            vec![0, 3, 10]
        );
        assert_eq!(cut.decoder(&disk, b, &io).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn slack_none_packs_tightly() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let a = cut.push_bitmap(&mut disk, vec![0u64, 1, 2], &io);
        let slot = cut.slot(a);
        assert_eq!(slot.cap, slot.len);
        // gamma(1) + gamma(1) + gamma(1) = 3 bits.
        assert_eq!(slot.len, 3);
    }

    #[test]
    fn append_within_slack_succeeds() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::Proportional);
        let a = cut.push_bitmap(&mut disk, vec![10u64], &io);
        assert!(cut.append_position(&mut disk, a, 20, &io));
        assert!(cut.append_position(&mut disk, a, 21, &io));
        assert_eq!(
            cut.decoder(&disk, a, &io).collect::<Vec<_>>(),
            vec![10, 20, 21]
        );
        assert_eq!(cut.slot(a).count, 3);
    }

    #[test]
    fn append_to_empty_slot_starts_stream() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 2, Slack::Proportional);
        let a = cut.push_bitmap(&mut disk, Vec::<u64>::new(), &io);
        assert!(cut.append_position(&mut disk, a, 7, &io));
        assert_eq!(cut.decoder(&disk, a, &io).collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn append_overflow_reports_false() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let a = cut.push_bitmap(&mut disk, vec![1u64], &io);
        assert!(!cut.append_position(&mut disk, a, 1000, &io));
        // Slot unchanged.
        assert_eq!(cut.decoder(&disk, a, &io).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn kill_accumulates_dead_bits() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let a = cut.push_bitmap(&mut disk, (0..64u64).map(|i| i * 3), &io);
        let _b = cut.push_bitmap(&mut disk, vec![0u64], &io);
        assert_eq!(cut.dead_fraction(&disk), 0.0);
        cut.kill(a);
        assert!(cut.dead_fraction(&disk) > 0.9);
        cut.kill(a); // idempotent
        assert!(cut.dead_fraction(&disk) <= 1.0);
    }

    #[test]
    fn copy_bitmap_is_verbatim_and_charged_like_decode() {
        let (mut disk, io) = setup();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        let positions: Vec<u64> = (0..200u64).map(|i| i * 7).collect();
        let a = cut.push_bitmap(&mut disk, positions.iter().copied(), &io);
        let decode_io = IoSession::new();
        let decoded: Vec<u64> = cut.decoder(&disk, a, &decode_io).collect();
        let copy_io = IoSession::new();
        let copied = cut.copy_bitmap(&disk, a, &copy_io, 1400);
        assert_eq!(copied.to_vec(), decoded);
        assert_eq!(copied.count(), 200);
        assert_eq!(copied.universe(), 1400);
        assert_eq!(copied.size_bits(), cut.slot(a).len);
        // The copy reads the same stream, so it charges the same blocks.
        assert_eq!(copy_io.stats().reads, decode_io.stats().reads);
        assert_eq!(copy_io.stats().bits_read, decode_io.stats().bits_read);
    }

    #[test]
    fn writes_are_charged() {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let io = IoSession::new();
        let mut cut = CutStream::new(&mut disk, 1, Slack::None);
        cut.push_bitmap(&mut disk, (0..100u64).map(|i| i * 50), &io);
        assert!(io.stats().writes > 0);
    }
}
