//! The buffered semi-dynamic index (Theorem 5, §4.1.1): trading space for
//! faster appends.
//!
//! The paper attaches a `B`-bit buffer to every internal node of `W` and
//! lets appends trickle down in batches, for amortized `O(lg n / b)`
//! appends and `O(z lg(n/z)/B + lg n)` queries (the extra term reads the
//! `O(lg n)` buffers on the query paths). We implement the same
//! buffering *cost structure* with a consolidated **root log** (documented
//! substitution, `DESIGN.md`): appended symbols accumulate in an on-disk
//! log whose tail block is memory-resident ("the buffer of the root …
//! always kept in the internal memory"); when the log reaches `Θ(b lg n)`
//! records it is drained into the underlying [`Engine`] in one batched
//! session, whose block-residency model makes consecutive appends to the
//! same bitmap tails cost `O(1)` blocks per touched slot — the same
//! amortized `O(lg n / b)` per append as the per-node cascade. Queries
//! read the engine plus the log blocks: `O(b lg n · lg n / B) = O(lg n)`
//! extra I/Os, matching the theorem's additive term.

use psi_api::{check_range, AppendIndex, RidSet, SecondaryIndex, Symbol};
use psi_bits::GapBitmap;
use psi_io::{cost, Disk, ExtentId, IoConfig, IoSession};

use crate::cutstream::Slack;
use crate::engine::{Engine, EngineStats, DEFAULT_C};

/// Theorem 5's buffered append-only index.
///
/// ```
/// use psi_core::BufferedIndex;
/// use psi_api::{AppendIndex, SecondaryIndex};
/// use psi_io::{IoConfig, IoSession};
///
/// let mut idx = BufferedIndex::new(4, IoConfig::default());
/// let io = IoSession::new();
/// for &c in &[0u32, 2, 1, 2, 3] {
///     idx.append(c, &io);
/// }
/// assert_eq!(idx.query(1, 2, &io).to_vec(), vec![1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct BufferedIndex {
    engine: Engine,
    /// Pending appended symbols, oldest first (position = engine.n() + i).
    log: Vec<Symbol>,
    /// On-disk image of the log (tail block memory-resident).
    log_ext: ExtentId,
    log_disk: Disk,
    /// Flush threshold in records: `Θ(b · lg n)`.
    capacity: usize,
    /// Bits per log record.
    rec_bits: u32,
}

impl BufferedIndex {
    /// An empty index over `[0, sigma)`.
    pub fn new(sigma: Symbol, config: IoConfig) -> Self {
        Self::build(&[], sigma, config)
    }

    /// Bulk-builds from an initial string.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        let engine = Engine::build(symbols, sigma, config, DEFAULT_C, Slack::Proportional);
        let mut log_disk = Disk::new(config);
        let log_ext = log_disk.alloc();
        let lg_n = 48u32; // generous fixed position width for the log
        let rec_bits = 32 + lg_n;
        let b = config.words_per_block(symbols.len().max(1024) as u64);
        let capacity = (b * cost::lg2_ceil(symbols.len().max(1024) as u64)).max(64) as usize;
        BufferedIndex {
            engine,
            log: Vec::new(),
            log_ext,
            log_disk,
            capacity,
            rec_bits,
        }
    }

    /// Drains the log into the engine in one batched session (block
    /// residency makes consecutive same-slot appends nearly free, which is
    /// exactly the buffer-tree amortization).
    fn drain(&mut self, io: &IoSession) {
        for &ch in &std::mem::take(&mut self.log) {
            self.engine.append(ch, io);
        }
        self.log_disk.free(self.log_ext);
    }

    /// Forces all pending appends into the engine (used before space
    /// audits and by tests).
    pub fn flush(&mut self, io: &IoSession) {
        self.drain(io);
    }

    /// Pending appends not yet applied.
    pub fn pending(&self) -> usize {
        self.log.len()
    }

    /// Engine rebuild counters.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats
    }
}

impl SecondaryIndex for BufferedIndex {
    fn len(&self) -> u64 {
        self.engine.n() + self.log.len() as u64
    }

    fn sigma(&self) -> Symbol {
        self.engine.sigma()
    }

    fn space_bits(&self) -> u64 {
        // Engine plus the log's reserved capacity — the analogue of the
        // paper's O(σ B lg n)-bit buffer overhead.
        self.engine.space_bits() + self.capacity as u64 * u64::from(self.rec_bits)
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        check_range(lo, hi, self.sigma());
        let n_engine = self.engine.n();
        let n_total = self.len();
        let base = self.engine.query(lo, hi, io);
        // Read the log blocks (the paper's "read each of the buffers …
        // that could potentially contain updates", O(lg n) of them).
        let log_blocks =
            (self.log.len() as u64 * u64::from(self.rec_bits)).div_ceil(self.log_disk.block_bits());
        for blk in 0..log_blocks {
            io.charge_read(self.log_ext, blk);
        }
        io.add_bits_read(self.log.len() as u64 * u64::from(self.rec_bits));
        let tail = self
            .log
            .iter()
            .enumerate()
            .filter(|(_, &s)| (lo..=hi).contains(&s))
            .map(|(i, _)| n_engine + i as u64);
        if base.is_complemented() {
            // Complement representation lists non-members; extend it with
            // the log's non-members over the grown universe.
            let non_members: Vec<u64> = base
                .stored()
                .iter()
                .chain(
                    self.log
                        .iter()
                        .enumerate()
                        .filter(|(_, &s)| !(lo..=hi).contains(&s))
                        .map(|(i, _)| n_engine + i as u64),
                )
                .collect();
            RidSet::from_complement(GapBitmap::from_sorted(&non_members, n_total))
        } else {
            let positions: Vec<u64> = base.stored().iter().chain(tail).collect();
            RidSet::from_positions(GapBitmap::from_sorted(&positions, n_total))
        }
    }
}

impl AppendIndex for BufferedIndex {
    fn append(&mut self, symbol: Symbol, io: &IoSession) {
        assert!(symbol < self.sigma(), "symbol {symbol} outside alphabet");
        // Write the record; only crossing a block boundary touches disk
        // (the tail block is memory-resident).
        let bit_pos = self.log.len() as u64 * u64::from(self.rec_bits);
        let block_before = bit_pos / self.log_disk.block_bits();
        let block_after = (bit_pos + u64::from(self.rec_bits)) / self.log_disk.block_bits();
        {
            let untracked = IoSession::untracked();
            let mut w = self.log_disk.writer(self.log_ext, &untracked);
            w.write_bits(u64::from(symbol), 32);
            w.write_bits(self.engine.n() + self.log.len() as u64, self.rec_bits - 32);
        }
        if block_after != block_before {
            io.charge_write(self.log_ext, block_before);
        }
        self.log.push(symbol);
        if self.log.len() >= self.capacity {
            self.drain(io);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_api::naive_query;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn appends_visible_before_and_after_drain() {
        let mut idx = BufferedIndex::new(8, cfg());
        let io = IoSession::untracked();
        let symbols = psi_workloads::uniform(3000, 8, 101);
        for (i, &c) in symbols.iter().enumerate() {
            idx.append(c, &io);
            if i % 977 == 0 {
                // Queries interleaved with pending appends.
                let io2 = IoSession::new();
                let got = idx.query(2, 5, &io2);
                let want = naive_query(&symbols[..=i], 2, 5);
                assert_eq!(got.to_vec(), want.to_vec(), "after {} appends", i + 1);
            }
        }
        for lo in 0..8u32 {
            for hi in lo..8u32 {
                let io2 = IoSession::new();
                assert_eq!(
                    idx.query(lo, hi, &io2).to_vec(),
                    naive_query(&symbols, lo, hi).to_vec(),
                    "range [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn complement_results_with_pending_appends() {
        let mut idx = BufferedIndex::build(&vec![1u32; 2000], 4, cfg());
        let io = IoSession::untracked();
        for &c in &psi_workloads::uniform(100, 4, 103) {
            idx.append(c, &io);
        }
        let io2 = IoSession::new();
        let r = idx.query(0, 2, &io2); // nearly everything
        assert!(r.is_complemented());
        let mut want: Vec<u64> = (0..2000u64).collect();
        let appended = psi_workloads::uniform(100, 4, 103);
        want.extend(
            appended
                .iter()
                .enumerate()
                .filter(|(_, &s)| s <= 2)
                .map(|(i, _)| 2000 + i as u64),
        );
        assert_eq!(r.to_vec(), want);
    }

    #[test]
    fn amortized_append_cost_beats_semi_dynamic() {
        // One session per operation: the I/O model counts distinct blocks
        // per operation, so sharing a session would deduplicate across
        // appends and undercount both structures.
        let n = 30_000;
        let appends = psi_workloads::uniform(n, 32, 105);
        let mut buffered = BufferedIndex::new(32, IoConfig::default());
        let mut total_buf = 0u64;
        for &c in &appends {
            let io = IoSession::new();
            buffered.append(c, &io);
            total_buf += io.stats().total();
        }
        let mut semi = crate::SemiDynamicIndex::new(32, IoConfig::default());
        let mut total_semi = 0u64;
        for &c in &appends {
            let io = IoSession::new();
            psi_api::AppendIndex::append(&mut semi, c, &io);
            total_semi += io.stats().total();
        }
        let per_buf = total_buf as f64 / n as f64;
        let per_semi = total_semi as f64 / n as f64;
        assert!(
            per_buf < per_semi / 2.0,
            "buffered {per_buf:.3} I/Os should be well below semi-dynamic {per_semi:.3}"
        );
        assert!(
            per_buf < 1.0,
            "buffered appends are sub-one-I/O ({per_buf:.3})"
        );
    }

    #[test]
    fn query_pays_additive_log_cost_only() {
        let mut idx = BufferedIndex::build(
            &psi_workloads::uniform(20_000, 64, 107),
            64,
            IoConfig::default(),
        );
        let io = IoSession::untracked();
        for &c in &psi_workloads::uniform(500, 64, 109) {
            idx.append(c, &io);
        }
        assert!(idx.pending() > 0);
        let io2 = IoSession::new();
        let _ = idx.query(5, 5, &io2);
        // Log blocks: 500 * 80 bits / 8192 ≈ 5 extra reads.
        assert!(io2.stats().reads < 60, "{} reads", io2.stats().reads);
    }

    #[test]
    fn flush_empties_pending() {
        let mut idx = BufferedIndex::new(4, cfg());
        let io = IoSession::untracked();
        for &c in &[0u32, 1, 2, 3, 0] {
            idx.append(c, &io);
        }
        assert_eq!(idx.pending(), 5);
        idx.flush(&io);
        assert_eq!(idx.pending(), 0);
        assert_eq!(idx.len(), 5);
        let io2 = IoSession::new();
        assert_eq!(idx.query(0, 0, &io2).to_vec(), vec![0, 4]);
    }
}
