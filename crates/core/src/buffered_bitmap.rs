//! The buffered compressed bitmap index (Theorem 6, §4.2) — "a structure
//! that dynamizes the standard bitmap index while supporting point queries
//! efficiently", and a component "of independent interest".
//!
//! Layout, following the paper:
//!
//! * every character's compressed bitmap is "a list of positions of 1s …
//!   the gaps are encoded using gamma codes", cut into **leaf blocks** of
//!   at most `B/2` payload bits whose *first code is an absolute value* so
//!   each block decodes independently;
//! * a fanout-`c` tree sits above the blocks; "with each internal node …
//!   we associate a buffer of size B bits that stores a set of updates
//!   yet to be performed in one of the leaves below";
//! * an update goes "in the buffer corresponding to the root, which is
//!   always kept in the internal memory" (root-buffer writes are free);
//!   a full buffer moves a constant fraction of its updates to one child;
//!   updates reaching the leaf level are applied by re-encoding the leaf
//!   block (splitting it when it outgrows `B/2` bits);
//! * "each non-leaf block also stores an identifier for the first bitmap
//!   … stored in the subtree, to allow fast navigation" — our nodes key on
//!   `(character, first position)`.
//!
//! Point queries cost `O(T/B + lg n)` I/Os (leaf blocks of the character
//! plus the buffers on the paths covering them); updates cost amortized
//! `O(lg n / b)`. One deviation is documented in `DESIGN.md`: leaf blocks
//! hold a single character each (the paper lets a block span bitmap
//! boundaries), costing at most one extra partially-filled block per
//! character.

use psi_api::{check_range, HasDisk, RidSet, SecondaryIndex, Symbol};
use psi_bits::{codes, GapBitmap};
use psi_io::{cost, Disk, ExtentId, IoConfig, IoSession};

/// A pending update record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Update {
    ch: Symbol,
    pos: u64,
    delete: bool,
}

/// Bits per buffered update record on disk: 1 op + 32 char + 48 pos.
const UPDATE_BITS: u64 = 81;

#[derive(Debug)]
struct Leaf {
    ch: Symbol,
    /// First stored position (part of the routing key).
    first_pos: u64,
    count: u64,
    /// Payload bits used (diagnostics; space accounting reads the disk).
    #[allow(dead_code)]
    bits: u64,
    ext: ExtentId,
}

#[derive(Debug)]
enum Children {
    Internal(Vec<usize>),
    Leaves(Vec<usize>),
}

#[derive(Debug)]
struct BNode {
    children: Children,
    /// Routing key: smallest `(char, pos)` under this node.
    key: (Symbol, u64),
    /// On-disk buffer (one block); mirrored in memory for logic.
    buf_ext: ExtentId,
    buf: Vec<Update>,
}

/// Theorem 6's dynamized compressed bitmap index.
///
/// ```
/// use psi_core::BufferedBitmapIndex;
/// use psi_io::{IoConfig, IoSession};
///
/// let mut idx = BufferedBitmapIndex::new(4, IoConfig::default());
/// let io = IoSession::new();
/// idx.insert(2, 10, &io);
/// idx.insert(2, 30, &io);
/// idx.insert(1, 20, &io);
/// idx.remove(2, 30, &io);
/// assert_eq!(idx.point_query(2, &io), vec![10]);
/// assert_eq!(idx.point_query(1, &io), vec![20]);
/// ```
#[derive(Debug)]
pub struct BufferedBitmapIndex {
    disk: Disk,
    sigma: Symbol,
    /// Universe bound: 1 + the largest position ever inserted.
    universe: u64,
    /// Total live positions.
    total: u64,
    leaves: Vec<Leaf>,
    nodes: Vec<BNode>,
    root: usize,
    /// Fanout parameter `c ≥ 2`.
    c: usize,
    /// Per-character cardinalities (memory directory).
    counts: Vec<u64>,
}

impl BufferedBitmapIndex {
    /// An empty index over alphabet `[0, sigma)`.
    pub fn new(sigma: Symbol, config: IoConfig) -> Self {
        Self::build_from_lists(vec![Vec::new(); sigma as usize], config)
    }

    /// Bulk-builds from a string.
    pub fn build(symbols: &[Symbol], sigma: Symbol, config: IoConfig) -> Self {
        assert!(sigma > 0);
        let mut lists = vec![Vec::new(); sigma as usize];
        for (i, &s) in symbols.iter().enumerate() {
            assert!(s < sigma, "symbol {s} outside alphabet of size {sigma}");
            lists[s as usize].push(i as u64);
        }
        Self::build_from_lists(lists, config)
    }

    /// Bulk-builds from per-character sorted position lists (the
    /// fully-dynamic index feeds cut-node sets through this).
    pub fn build_from_lists(lists: Vec<Vec<u64>>, config: IoConfig) -> Self {
        let sigma = lists.len() as Symbol;
        assert!(sigma > 0);
        let io = IoSession::untracked();
        let disk = Disk::new(config);
        let payload_cap = config.block_bits / 2;
        let mut idx = BufferedBitmapIndex {
            disk,
            sigma,
            universe: 0,
            total: 0,
            leaves: Vec::new(),
            nodes: Vec::new(),
            root: 0,
            c: 8,
            counts: vec![0; sigma as usize],
        };
        // Cut each character's gap stream into <= B/2-bit leaves.
        let mut leaf_ids = Vec::new();
        for (ch, list) in lists.iter().enumerate() {
            idx.counts[ch] = list.len() as u64;
            idx.total += list.len() as u64;
            if let Some(&last) = list.last() {
                idx.universe = idx.universe.max(last + 1);
            }
            let mut chunk: Vec<u64> = Vec::new();
            let mut chunk_bits = 0u64;
            let mut prev: Option<u64> = None;
            for &p in list {
                let code_bits = match prev {
                    None => codes::gamma_len(p + 1),
                    Some(q) => codes::gamma_len(p - q),
                };
                if chunk_bits + code_bits > payload_cap && !chunk.is_empty() {
                    leaf_ids.push(idx.write_leaf(ch as Symbol, &chunk, &io));
                    chunk.clear();
                    // Re-anchor: the first code of a block is absolute.
                    chunk_bits = codes::gamma_len(p + 1);
                } else {
                    chunk_bits += code_bits;
                }
                chunk.push(p);
                prev = Some(p);
            }
            if !chunk.is_empty() {
                leaf_ids.push(idx.write_leaf(ch as Symbol, &chunk, &io));
            }
        }
        idx.rebuild_tree_over(leaf_ids, &io);
        idx
    }

    /// Encodes one leaf block (first code absolute, then gaps).
    fn write_leaf(&mut self, ch: Symbol, positions: &[u64], io: &IoSession) -> usize {
        debug_assert!(!positions.is_empty());
        let ext = self.disk.alloc();
        let mut w = self.disk.writer(ext, io);
        let mut prev = None;
        for &p in positions {
            match prev {
                None => codes::put_gamma(&mut w, p + 1),
                Some(q) => codes::put_gamma(&mut w, p - q),
            }
            prev = Some(p);
        }
        let bits = w.pos();
        self.leaves.push(Leaf {
            ch,
            first_pos: positions[0],
            count: positions.len() as u64,
            bits,
            ext,
        });
        self.leaves.len() - 1
    }

    fn read_leaf(&self, leaf: usize, io: &IoSession) -> Vec<u64> {
        let l = &self.leaves[leaf];
        let mut r = self.disk.reader(l.ext, 0, io);
        let mut out = Vec::with_capacity(l.count as usize);
        let mut prev: Option<u64> = None;
        for _ in 0..l.count {
            let code = codes::get_gamma(&mut r);
            let p = match prev {
                None => code - 1,
                Some(q) => q + code,
            };
            out.push(p);
            prev = Some(p);
        }
        out
    }

    /// Builds a fresh fanout-`c` tree over the given leaves (in key order).
    fn rebuild_tree_over(&mut self, leaf_ids: Vec<usize>, io: &IoSession) {
        self.nodes.clear();
        // Leaf-parent level.
        let mut level: Vec<usize> = leaf_ids
            .chunks(self.c.max(2))
            .map(|chunk| {
                let key = self.leaf_key(chunk[0]);
                self.new_node(Children::Leaves(chunk.to_vec()), key, io)
            })
            .collect();
        if level.is_empty() {
            let key = (0, 0);
            level.push(self.new_node(Children::Leaves(Vec::new()), key, io));
        }
        while level.len() > 1 {
            level = level
                .chunks(self.c.max(2))
                .map(|chunk| {
                    let key = self.nodes[chunk[0]].key;
                    self.new_node(Children::Internal(chunk.to_vec()), key, io)
                })
                .collect();
        }
        self.root = level[0];
    }

    fn new_node(&mut self, children: Children, key: (Symbol, u64), io: &IoSession) -> usize {
        let _ = io;
        let buf_ext = self.disk.alloc();
        self.nodes.push(BNode {
            children,
            key,
            buf_ext,
            buf: Vec::new(),
        });
        self.nodes.len() - 1
    }

    fn leaf_key(&self, leaf: usize) -> (Symbol, u64) {
        (self.leaves[leaf].ch, self.leaves[leaf].first_pos)
    }

    /// Live routing key of a node: the key of its first leaf (stored keys
    /// go stale as leaves split and re-anchor).
    fn node_key(&self, v: usize) -> (Symbol, u64) {
        match &self.nodes[v].children {
            Children::Leaves(ls) => ls
                .first()
                .map(|&l| self.leaf_key(l))
                .unwrap_or(self.nodes[v].key),
            Children::Internal(kids) => kids
                .first()
                .map(|&k| self.node_key(k))
                .unwrap_or(self.nodes[v].key),
        }
    }

    /// Buffer capacity in records (`Θ(b)`).
    fn buf_cap(&self) -> usize {
        (self.disk.block_bits() / UPDATE_BITS).max(4) as usize
    }

    /// Inserts position `pos` for character `ch`.
    pub fn insert(&mut self, ch: Symbol, pos: u64, io: &IoSession) {
        self.update(
            Update {
                ch,
                pos,
                delete: false,
            },
            io,
        );
    }

    /// Deletes position `pos` from character `ch` (must be present once
    /// pending updates are folded in).
    pub fn remove(&mut self, ch: Symbol, pos: u64, io: &IoSession) {
        self.update(
            Update {
                ch,
                pos,
                delete: true,
            },
            io,
        );
    }

    fn update(&mut self, u: Update, io: &IoSession) {
        assert!(
            u.ch < self.sigma,
            "character {} outside alphabet {}",
            u.ch,
            self.sigma
        );
        self.universe = self.universe.max(u.pos + 1);
        if u.delete {
            self.counts[u.ch as usize] -= 1;
            self.total -= 1;
        } else {
            self.counts[u.ch as usize] += 1;
            self.total += 1;
        }
        // "Simply stored in the buffer corresponding to the root, which is
        // always kept in the internal memory" — no I/O for the root push.
        self.nodes[self.root].buf.push(u);
        self.cascade(self.root, io);
    }

    /// Flushes buffers downward while they overflow, stopping at the leaf
    /// level (or after a directory rebuild, which re-homes all buffers).
    fn cascade(&mut self, from: usize, io: &IoSession) {
        let mut v = from;
        while self.nodes[v].buf.len() >= self.buf_cap() {
            match self.flush(v, io) {
                Some(child) => v = child,
                None => break,
            }
        }
    }

    /// Flushes a constant fraction of `v`'s buffer to the child with the
    /// most pending updates; returns that child (so cascading continues
    /// there). Applies updates directly when `v` is a leaf parent and
    /// returns `None` (cascading stops; a directory rebuild may have
    /// re-homed every buffer).
    fn flush(&mut self, v: usize, io: &IoSession) -> Option<usize> {
        match &self.nodes[v].children {
            Children::Internal(kids) => {
                let kids = kids.clone();
                // Partition the buffer by routing target.
                let buf = std::mem::take(&mut self.nodes[v].buf);
                let mut per_kid: Vec<Vec<Update>> = vec![Vec::new(); kids.len()];
                for u in buf {
                    let t = self.route(&kids, u);
                    per_kid[t].push(u);
                }
                // Heaviest child receives its updates; the rest stay.
                let heavy = per_kid
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.len())
                    .map(|(i, _)| i)
                    .expect("non-empty children");
                let moved = std::mem::take(&mut per_kid[heavy]);
                for (i, rest) in per_kid.into_iter().enumerate() {
                    if i != heavy {
                        self.nodes[v].buf.extend(rest);
                    }
                }
                let child = kids[heavy];
                self.nodes[child].buf.extend(moved);
                // Charge: rewrite v's buffer block and append to child's.
                io.charge_write(self.nodes[v].buf_ext, 0);
                io.charge_write(self.nodes[child].buf_ext, 0);
                self.mirror_buffer(v, io);
                self.mirror_buffer(child, io);
                Some(child)
            }
            Children::Leaves(leaf_ids) => {
                let leaf_ids = leaf_ids.clone();
                let buf = std::mem::take(&mut self.nodes[v].buf);
                io.charge_write(self.nodes[v].buf_ext, 0);
                self.apply_to_leaves(v, &leaf_ids, buf, io);
                self.mirror_buffer(v, io);
                // Degree overflow: rebuild the directory wholesale,
                // carrying every pending buffered update over.
                let degree = match &self.nodes[v].children {
                    Children::Leaves(ls) => ls.len(),
                    Children::Internal(_) => 0,
                };
                if degree > 4 * self.c {
                    self.rebuild_directory(io);
                }
                None
            }
        }
    }

    /// Rebuilds the fanout-`c` tree over all live leaves, preserving
    /// pending buffered updates by re-homing them in the new root buffer.
    fn rebuild_directory(&mut self, io: &IoSession) {
        let all = self.collect_leaves(self.root);
        let pending: Vec<Update> = self
            .nodes
            .iter_mut()
            .flat_map(|n| std::mem::take(&mut n.buf))
            .collect();
        self.rebuild_tree_over(all, io);
        self.nodes[self.root].buf = pending;
        self.mirror_buffer(self.root, io);
        self.cascade(self.root, io);
    }

    /// Writes the in-memory buffer mirror to its one-block extent (the
    /// block write was already charged by the caller; this keeps the disk
    /// contents faithful).
    fn mirror_buffer(&mut self, v: usize, _io: &IoSession) {
        let ext = self.nodes[v].buf_ext;
        self.disk.free(ext);
        let io = IoSession::untracked();
        let mut w = self.disk.writer(ext, &io);
        for u in &self.nodes[v].buf {
            w.write_bits(u64::from(u.delete), 1);
            w.write_bits(u64::from(u.ch), 32);
            w.write_bits(u.pos & ((1 << 48) - 1), 48);
        }
    }

    /// Routing: last child whose (live) key is `≤ (ch, pos)`. The strict
    /// B-tree rule keeps inserts and their later deletes on identical
    /// paths; inserts that precede a character's first position simply
    /// create a fresh, correctly-keyed leaf under the routed parent.
    fn route(&self, kids: &[usize], u: Update) -> usize {
        let key = (u.ch, u.pos);
        let mut t = 0;
        for (i, &k) in kids.iter().enumerate() {
            if self.node_key(k) <= key {
                t = i;
            } else {
                break;
            }
        }
        t
    }

    /// Applies a batch of updates at the leaf level of node `v`.
    fn apply_to_leaves(&mut self, v: usize, leaf_ids: &[usize], buf: Vec<Update>, io: &IoSession) {
        if buf.is_empty() {
            return;
        }
        // Group updates per leaf by key routing (including new characters,
        // which get fresh leaves).
        let mut per_leaf: std::collections::BTreeMap<usize, Vec<Update>> =
            std::collections::BTreeMap::new();
        let mut new_groups: std::collections::BTreeMap<Symbol, Vec<Update>> =
            std::collections::BTreeMap::new();
        for u in buf {
            // Strict rule: last leaf with key <= (ch, pos), but only if it
            // holds the same character; otherwise the update starts a new
            // leaf (an insert before the character's first position here,
            // or a character new to this subtree).
            let target = leaf_ids
                .iter()
                .enumerate()
                .filter(|&(_, &l)| self.leaf_key(l) <= (u.ch, u.pos))
                .map(|(i, _)| i)
                .next_back()
                .filter(|&t| self.leaves[leaf_ids[t]].ch == u.ch);
            match target {
                Some(t) => per_leaf.entry(t).or_default().push(u),
                None => new_groups.entry(u.ch).or_default().push(u),
            }
        }
        let mut replacement: Vec<usize> = leaf_ids.to_vec();
        // Apply per leaf, from the right so indices stay stable.
        for (t, ups) in per_leaf.into_iter().rev() {
            let leaf = replacement[t];
            let mut positions = self.read_leaf(leaf, io);
            merge_updates(&mut positions, ups);
            self.disk.free(self.leaves[leaf].ext);
            let new_leaves = self.reencode(self.leaves[leaf].ch, positions, io);
            replacement.splice(t..=t, new_leaves);
        }
        for (ch, ups) in new_groups {
            let mut positions = Vec::new();
            merge_updates(&mut positions, ups);
            let new_leaves = self.reencode(ch, positions, io);
            // Insert in key order (the group precedes every same-character
            // leaf in this subtree, so its first position keys it).
            if let Some(&first) = new_leaves.first() {
                let key = self.leaf_key(first);
                let at = replacement
                    .iter()
                    .position(|&l| self.leaf_key(l) > key)
                    .unwrap_or(replacement.len());
                replacement.splice(at..at, new_leaves);
            }
        }
        self.nodes[v].children = Children::Leaves(replacement.clone());
        if let Some(&first) = replacement.first() {
            self.nodes[v].key = self.leaf_key(first);
        }
        let _ = io;
    }

    /// Splits a position list into fresh `≤ B/2`-bit leaves; writes are
    /// charged.
    fn reencode(&mut self, ch: Symbol, positions: Vec<u64>, io: &IoSession) -> Vec<usize> {
        if positions.is_empty() {
            return Vec::new();
        }
        let payload_cap = self.disk.block_bits() / 2;
        let mut out = Vec::new();
        let mut chunk: Vec<u64> = Vec::new();
        let mut chunk_bits = 0u64;
        let mut prev: Option<u64> = None;
        for p in positions {
            let code_bits = match prev {
                None => codes::gamma_len(p + 1),
                Some(q) => codes::gamma_len(p - q),
            };
            if chunk_bits + code_bits > payload_cap && !chunk.is_empty() {
                out.push(self.write_leaf(ch, &chunk, io));
                chunk.clear();
                chunk_bits = codes::gamma_len(p + 1);
            } else {
                chunk_bits += code_bits;
            }
            chunk.push(p);
            prev = Some(p);
        }
        if !chunk.is_empty() {
            out.push(self.write_leaf(ch, &chunk, io));
        }
        out
    }

    fn collect_leaves(&self, v: usize) -> Vec<usize> {
        match &self.nodes[v].children {
            Children::Leaves(ls) => ls.clone(),
            Children::Internal(kids) => kids.iter().flat_map(|&k| self.collect_leaves(k)).collect(),
        }
    }

    /// The point query of Theorem 6: all positions of `ch`, merged with
    /// pending buffered updates, in `O(T/B + lg n)` I/Os.
    pub fn point_query(&self, ch: Symbol, io: &IoSession) -> Vec<u64> {
        self.range_positions(ch, ch, io)
    }

    /// Positions of all characters in `[lo, hi]` (consecutive leaves; used
    /// as the alphabet range query and by the fully dynamic index).
    pub fn range_positions(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> Vec<u64> {
        check_range(lo, hi, self.sigma);
        let mut leaf_positions: Vec<Vec<u64>> = Vec::new();
        let mut pending: Vec<Update> = Vec::new();
        self.collect_query(
            self.root,
            lo,
            hi,
            io,
            &mut leaf_positions,
            &mut pending,
            true,
        );
        // Per-character concatenation: leaves arrive in (char, first_pos)
        // order, so a k-way merge over characters is a sort by (char,pos);
        // positions across characters overlap, so merge by position.
        let mut all: Vec<u64> = leaf_positions.into_iter().flatten().collect();
        all.sort_unstable();
        let mut relevant: Vec<(u64, i32)> = pending
            .into_iter()
            .filter(|u| (lo..=hi).contains(&u.ch))
            .map(|u| (u.pos, if u.delete { -1 } else { 1 }))
            .collect();
        relevant.sort_unstable_by_key(|&(pos, _)| pos);
        // Fold by *net effect* per position: buffers at different depths
        // hold updates of different ages (parents are newer), so the
        // pending stream is not chronologically ordered — but each (char,
        // position) pair alternates insert/delete, so presence is simply
        // base occurrences plus the signed pending sum.
        let mut out = Vec::with_capacity(all.len());
        let mut pend = relevant.into_iter().peekable();
        let mut base = all.into_iter().peekable();
        while base.peek().is_some() || pend.peek().is_some() {
            let next_pos = match (base.peek(), pend.peek()) {
                (Some(&b), Some(&(p, _))) => b.min(p),
                (Some(&b), None) => b,
                (None, Some(&(p, _))) => p,
                (None, None) => unreachable!(),
            };
            let mut net = 0i64;
            while base.peek() == Some(&next_pos) {
                base.next();
                net += 1;
            }
            while matches!(pend.peek(), Some(&(p, _)) if p == next_pos) {
                let (_, d) = pend.next().expect("peeked");
                net += i64::from(d);
            }
            debug_assert!(
                (0..=1).contains(&net),
                "position {next_pos} has net count {net}"
            );
            if net > 0 {
                out.push(next_pos);
            }
        }
        out
    }

    /// Recursively gathers leaf payloads and buffered updates for a
    /// character range, charging leaf and buffer blocks (the root buffer
    /// is memory-resident and free).
    #[allow(clippy::too_many_arguments)]
    fn collect_query(
        &self,
        v: usize,
        lo: Symbol,
        hi: Symbol,
        io: &IoSession,
        leaf_positions: &mut Vec<Vec<u64>>,
        pending: &mut Vec<Update>,
        is_root: bool,
    ) {
        if !is_root && !self.nodes[v].buf.is_empty() {
            // Charge (and, on an opened store, fault) the buffer block.
            self.disk.charge_read_span(self.nodes[v].buf_ext, 0, 1, io);
            io.add_bits_read(self.nodes[v].buf.len() as u64 * UPDATE_BITS);
        }
        pending.extend(self.nodes[v].buf.iter().copied());
        match &self.nodes[v].children {
            Children::Leaves(ls) => {
                for &l in ls {
                    let leaf = &self.leaves[l];
                    if (lo..=hi).contains(&leaf.ch) {
                        leaf_positions.push(self.read_leaf(l, io));
                    }
                }
            }
            Children::Internal(kids) => {
                for (i, &k) in kids.iter().enumerate() {
                    // Child covers keys [key_i, key_{i+1}); recurse if that
                    // intersects [(lo, 0), (hi, ∞)].
                    let from = self.node_key(k);
                    let to = kids.get(i + 1).map(|&nk| self.node_key(nk));
                    let starts_after = from.0 > hi;
                    let ends_before = to.map(|t| t <= (lo, 0)).unwrap_or(false);
                    if !starts_after && !ends_before {
                        self.collect_query(k, lo, hi, io, leaf_positions, pending, false);
                    }
                }
            }
        }
    }

    /// Cardinality of one character's set (memory directory).
    pub fn cardinality(&self, ch: Symbol) -> u64 {
        self.counts[ch as usize]
    }

    /// Total live positions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of leaf blocks (diagnostics).
    pub fn num_leaf_blocks(&self) -> usize {
        self.leaves.iter().filter(|l| l.count > 0).count()
    }
}

/// Folds updates (already targeted at this list) into a sorted position
/// list.
fn merge_updates(positions: &mut Vec<u64>, ups: Vec<Update>) {
    for u in ups {
        match positions.binary_search(&u.pos) {
            Ok(i) => {
                if u.delete {
                    positions.remove(i);
                }
                // Duplicate insert: idempotent.
            }
            Err(i) => {
                if !u.delete {
                    positions.insert(i, u.pos);
                }
                // Deleting an absent position (it may still be buffered
                // upstream) is resolved by query-time folding; by the time
                // a delete reaches the leaf its insert has too (FIFO per
                // path), so this arm only fires for genuinely absent
                // positions, which is a caller bug in debug builds.
            }
        }
    }
}

impl HasDisk for BufferedBitmapIndex {
    fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl SecondaryIndex for BufferedBitmapIndex {
    fn len(&self) -> u64 {
        self.total
    }

    fn sigma(&self) -> Symbol {
        self.sigma
    }

    fn space_bits(&self) -> u64 {
        // Leaf payloads + buffer blocks + the memory directory (one key
        // and one pointer per leaf/node).
        let field = cost::lg2_ceil(self.universe.max(2)) + 32;
        self.disk.used_bits()
            + (self.leaves.len() as u64 + self.nodes.len() as u64) * 2 * field
            + self.sigma as u64 * cost::lg2_ceil(self.universe.max(2))
    }

    fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
        let positions = self.range_positions(lo, hi, io);
        RidSet::from_positions(GapBitmap::from_sorted_iter(positions, self.universe.max(1)))
    }
}

// ---------------------------------------------------------------------------
// Persistence (psi-store)

impl BufferedBitmapIndex {
    /// Serializes the directory: leaves, tree nodes, buffered updates
    /// (mirrored on disk too, but the in-memory form is authoritative
    /// for logic), counts and parameters.
    pub(crate) fn persist_meta(&self, out: &mut psi_store::MetaBuf) {
        out.put_u32(self.sigma);
        out.put_u64(self.universe);
        out.put_u64(self.total);
        out.put_len(self.root);
        out.put_len(self.c);
        out.put_vec_u64(&self.counts);
        out.put_len(self.leaves.len());
        for l in &self.leaves {
            out.put_u32(l.ch);
            out.put_u64(l.first_pos);
            out.put_u64(l.count);
            out.put_u64(l.bits);
            out.put_u32(l.ext.0);
        }
        out.put_len(self.nodes.len());
        for n in &self.nodes {
            match &n.children {
                Children::Internal(kids) => {
                    out.put_u8(0);
                    out.put_vec_u64(&kids.iter().map(|&k| k as u64).collect::<Vec<_>>());
                }
                Children::Leaves(ls) => {
                    out.put_u8(1);
                    out.put_vec_u64(&ls.iter().map(|&l| l as u64).collect::<Vec<_>>());
                }
            }
            out.put_u32(n.key.0);
            out.put_u64(n.key.1);
            out.put_u32(n.buf_ext.0);
            out.put_len(n.buf.len());
            for u in &n.buf {
                out.put_u32(u.ch);
                out.put_u64(u.pos);
                out.put_bool(u.delete);
            }
        }
    }

    /// Rebuilds the index over a reopened disk.
    pub(crate) fn restore_meta(
        meta: &mut psi_store::MetaCursor,
        disk: Disk,
    ) -> Result<Self, psi_store::StoreError> {
        let check_ext = |id: u32| psi_store::check_extent(&disk, id, "bbi");
        let sigma = meta.get_u32()?;
        let universe = meta.get_u64()?;
        let total = meta.get_u64()?;
        let root = meta.get_u64()? as usize;
        let c = meta.get_u64()? as usize;
        let counts = meta.get_vec_u64()?;
        let num_leaves = meta.get_len(29)?;
        let mut leaves = Vec::with_capacity(num_leaves);
        for _ in 0..num_leaves {
            leaves.push(Leaf {
                ch: meta.get_u32()?,
                first_pos: meta.get_u64()?,
                count: meta.get_u64()?,
                bits: meta.get_u64()?,
                ext: check_ext(meta.get_u32()?)?,
            });
        }
        let num_nodes = meta.get_len(30)?;
        let mut nodes = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let kind = meta.get_u8()?;
            let ids: Vec<usize> = meta
                .get_vec_u64()?
                .into_iter()
                .map(|x| x as usize)
                .collect();
            let children = match kind {
                0 => Children::Internal(ids),
                1 => Children::Leaves(ids),
                t => {
                    return Err(psi_store::StoreError::Meta {
                        what: format!("bbi child tag {t}"),
                    })
                }
            };
            let key = (meta.get_u32()?, meta.get_u64()?);
            let buf_ext = check_ext(meta.get_u32()?)?;
            let buf_len = meta.get_len(13)?;
            let mut buf = Vec::with_capacity(buf_len);
            for _ in 0..buf_len {
                buf.push(Update {
                    ch: meta.get_u32()?,
                    pos: meta.get_u64()?,
                    delete: meta.get_bool()?,
                });
            }
            nodes.push(BNode {
                children,
                key,
                buf_ext,
                buf,
            });
        }
        if root >= nodes.len() {
            return Err(psi_store::StoreError::Meta {
                what: "bbi root out of range".into(),
            });
        }
        Ok(BufferedBitmapIndex {
            disk,
            sigma,
            universe,
            total,
            leaves,
            nodes,
            root,
            c,
            counts,
        })
    }
}

impl psi_store::PersistIndex for BufferedBitmapIndex {
    const TAG: &'static str = "buffered_bitmap";

    fn write_meta(&self, out: &mut psi_store::MetaBuf) {
        self.persist_meta(out);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![HasDisk::disk(self)]
    }

    fn from_parts(
        meta: &mut psi_store::MetaCursor,
        disks: Vec<Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        let disk = psi_store::single_volume(disks, "buffered bitmap")?;
        Self::restore_meta(meta, disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn bulk_build_point_queries() {
        let symbols = psi_workloads::uniform(3000, 16, 51);
        let idx = BufferedBitmapIndex::build(&symbols, 16, cfg());
        let io = IoSession::new();
        for ch in 0..16u32 {
            let want: Vec<u64> = symbols
                .iter()
                .enumerate()
                .filter(|(_, &s)| s == ch)
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(idx.point_query(ch, &io), want, "char {ch}");
            assert_eq!(idx.cardinality(ch) as usize, want.len());
        }
    }

    #[test]
    fn inserts_and_deletes_fold_correctly() {
        let mut idx = BufferedBitmapIndex::new(8, cfg());
        let io = IoSession::untracked();
        let mut truth: Vec<std::collections::BTreeSet<u64>> =
            vec![std::collections::BTreeSet::new(); 8];
        let mut rng = StdRng::seed_from_u64(53);
        for step in 0..5000u64 {
            let ch = rng.gen_range(0..8u32);
            if rng.gen_bool(0.8) || truth[ch as usize].is_empty() {
                let pos = step * 7 + u64::from(ch); // unique positions
                idx.insert(ch, pos, &io);
                truth[ch as usize].insert(pos);
            } else {
                let &pos = truth[ch as usize].iter().next().expect("non-empty");
                idx.remove(ch, pos, &io);
                truth[ch as usize].remove(&pos);
            }
        }
        for ch in 0..8u32 {
            let want: Vec<u64> = truth[ch as usize].iter().copied().collect();
            assert_eq!(idx.point_query(ch, &io), want, "char {ch}");
        }
    }

    #[test]
    fn range_queries_match_naive() {
        let symbols = psi_workloads::zipf(2000, 12, 1.1, 57);
        let mut idx = BufferedBitmapIndex::build(&symbols, 12, cfg());
        let io = IoSession::untracked();
        // A few updates on top of the bulk build.
        idx.insert(3, 50_000, &io);
        idx.remove(symbols[10], 10, &io);
        let mut current = symbols.clone();
        current[10] = u32::MAX; // deleted marker for the naive model
        for (lo, hi) in [(0u32, 11u32), (3, 3), (2, 7)] {
            let want: Vec<u64> = current
                .iter()
                .enumerate()
                .filter(|(_, &s)| s != u32::MAX && (lo..=hi).contains(&s))
                .map(|(i, _)| i as u64)
                .chain(((lo..=hi).contains(&3)).then_some(50_000u64))
                .collect();
            let io2 = IoSession::new();
            assert_eq!(idx.query(lo, hi, &io2).to_vec(), want, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn update_cost_is_sub_one_io_amortized() {
        let mut idx = BufferedBitmapIndex::new(32, IoConfig::default());
        let io = IoSession::new();
        let n = 50_000u64;
        let mut rng = StdRng::seed_from_u64(59);
        for pos in 0..n {
            idx.insert(rng.gen_range(0..32u32), pos, &io);
        }
        let per_update = io.stats().total() as f64 / n as f64;
        // Theorem 6: amortized O(lg n / b) ~ 17/400 << 1.
        assert!(
            per_update < 1.0,
            "amortized {per_update:.3} I/Os per update"
        );
    }

    #[test]
    fn point_query_cost_is_output_sensitive() {
        let symbols = psi_workloads::uniform(1 << 16, 8, 61);
        let idx = BufferedBitmapIndex::build(&symbols, 8, IoConfig::default());
        let io = IoSession::new();
        let result = idx.point_query(3, &io);
        let t_bits = psi_io::cost::output_bits(1 << 16, result.len() as u64);
        let bound = t_bits / 8192.0 + (16 + 8) as f64;
        assert!(
            (io.stats().reads as f64) < 4.0 * bound,
            "{} reads vs T/B + lg n = {bound:.1}",
            io.stats().reads
        );
    }

    #[test]
    fn new_characters_appear_via_updates() {
        let mut idx = BufferedBitmapIndex::new(4, cfg());
        let io = IoSession::untracked();
        for p in 0..500u64 {
            idx.insert((p % 3) as u32, p, &io);
        }
        // Character 3 never seen at build: insert it now.
        idx.insert(3, 1000, &io);
        idx.insert(3, 2000, &io);
        // Force everything down by volume.
        for p in 0..2000u64 {
            idx.insert(0, 10_000 + p, &io);
        }
        assert_eq!(idx.point_query(3, &io), vec![1000, 2000]);
    }

    #[test]
    fn empty_index_queries() {
        let idx = BufferedBitmapIndex::new(4, cfg());
        let io = IoSession::new();
        assert!(idx.point_query(2, &io).is_empty());
        assert_eq!(idx.total(), 0);
    }
}
