//! Deleted-position translation map (paper §4, introduction).
//!
//! "Maintain a B-tree over the deleted positions with subtree sizes
//! maintained in all nodes — this allows translating positions back and
//! forth between the two systems using O(log_b n) I/Os, and space O(n)
//! bits (positions in leaf nodes should be efficiently encoded, e.g.,
//! using gamma-coded differences). If the number of deleted characters
//! exceeds a constant fraction of all characters, global rebuilding is
//! performed to reduce the space."
//!
//! The two "systems" are *original* positions (stable, as stored by the
//! index, where deletion replaces a character with `∞`) and *current*
//! positions (relative to the string with deletions compacted away).

use psi_bits::codes;
use psi_io::{cost, Disk, ExtentId, IoConfig, IoSession};

#[derive(Debug)]
struct DLeaf {
    ext: ExtentId,
    /// First deleted position stored here.
    first: u64,
    count: u64,
}

/// A dynamic map over deleted positions with rank/select translation.
#[derive(Debug)]
pub struct DeletedPositionMap {
    disk: Disk,
    /// Gamma-delta-coded leaves, sorted by `first`; the leaf directory
    /// (`first`, cumulative counts) is memory-resident (`O(n/b · lg n)`
    /// bits, accounted in [`Self::space_bits`]).
    leaves: Vec<DLeaf>,
    /// `prefix[i]` = deleted positions in leaves `< i`.
    prefix: Vec<u64>,
    total: u64,
    /// Leaf capacity in entries (`Θ(b)`).
    cap: usize,
}

impl DeletedPositionMap {
    /// An empty map.
    pub fn new(config: IoConfig) -> Self {
        let cap = (config.block_bits / 16).max(4) as usize;
        DeletedPositionMap {
            disk: Disk::new(config),
            leaves: Vec::new(),
            prefix: vec![0],
            total: 0,
            cap,
        }
    }

    /// Number of deleted positions.
    pub fn total_deleted(&self) -> u64 {
        self.total
    }

    fn rebuild_prefix(&mut self) {
        self.prefix.clear();
        let mut acc = 0;
        for l in &self.leaves {
            self.prefix.push(acc);
            acc += l.count;
        }
        self.prefix.push(acc);
        self.total = acc;
    }

    fn read_leaf(&self, idx: usize, io: &IoSession) -> Vec<u64> {
        let l = &self.leaves[idx];
        let mut r = self.disk.reader(l.ext, 0, io);
        let mut out = Vec::with_capacity(l.count as usize);
        let mut prev = None;
        for _ in 0..l.count {
            let code = codes::get_gamma(&mut r);
            let p = match prev {
                None => code - 1,
                Some(q) => q + code,
            };
            out.push(p);
            prev = Some(p);
        }
        out
    }

    fn write_leaf_at(&mut self, idx: usize, positions: &[u64], io: &IoSession) {
        debug_assert!(!positions.is_empty());
        let ext = self.disk.alloc();
        let mut w = self.disk.writer(ext, io);
        let mut prev = None;
        for &p in positions {
            match prev {
                None => codes::put_gamma(&mut w, p + 1),
                Some(q) => codes::put_gamma(&mut w, p - q),
            }
            prev = Some(p);
        }
        self.leaves.insert(
            idx,
            DLeaf {
                ext,
                first: positions[0],
                count: positions.len() as u64,
            },
        );
    }

    /// Records position `pos` as deleted. Amortized `O(1)` leaf rewrites;
    /// charged to `io`.
    ///
    /// # Panics
    /// Panics if `pos` is already deleted.
    pub fn insert(&mut self, pos: u64, io: &IoSession) {
        // Locate the leaf by the memory directory.
        let idx = match self.leaves.partition_point(|l| l.first <= pos) {
            0 => 0,
            i => i - 1,
        };
        if self.leaves.is_empty() {
            self.write_leaf_at(0, &[pos], io);
            self.rebuild_prefix();
            return;
        }
        let mut positions = self.read_leaf(idx, io);
        let at = positions
            .binary_search(&pos)
            .expect_err("position deleted twice");
        positions.insert(at, pos);
        self.disk.free(self.leaves[idx].ext);
        self.leaves.remove(idx);
        if positions.len() > self.cap {
            let mid = positions.len() / 2;
            self.write_leaf_at(idx, &positions[mid..], io);
            self.write_leaf_at(idx, &positions[..mid], io);
        } else {
            self.write_leaf_at(idx, &positions, io);
        }
        self.rebuild_prefix();
    }

    /// Number of deleted positions `≤ pos` (rank). One leaf read.
    pub fn rank(&self, pos: u64, io: &IoSession) -> u64 {
        let idx = match self.leaves.partition_point(|l| l.first <= pos) {
            0 => return 0,
            i => i - 1,
        };
        let in_leaf = self.read_leaf(idx, io).partition_point(|&d| d <= pos) as u64;
        self.prefix[idx] + in_leaf
    }

    /// Whether `pos` is deleted. One leaf read.
    pub fn is_deleted(&self, pos: u64, io: &IoSession) -> bool {
        let idx = match self.leaves.partition_point(|l| l.first <= pos) {
            0 => return false,
            i => i - 1,
        };
        self.read_leaf(idx, io).binary_search(&pos).is_ok()
    }

    /// Translates an original position to the current (compacted) system;
    /// `None` if the position is deleted.
    pub fn original_to_current(&self, pos: u64, io: &IoSession) -> Option<u64> {
        if self.is_deleted(pos, io) {
            return None;
        }
        Some(pos - self.rank(pos, io))
    }

    /// Translates a current (compacted) position back to the original
    /// system: the unique non-deleted original `x` with
    /// `x − rank(x) = cur`, i.e. `x = cur + k` for the smallest `k` with
    /// `d_{k+1} > cur + k` (where `d_1 < d_2 < …` are the deleted
    /// positions). `d_{k+1} − k` is strictly increasing, so the flip leaf
    /// is located in the memory directory and the scan touches O(1)
    /// leaves except for runs of consecutive deletions.
    pub fn current_to_original(&self, cur: u64, io: &IoSession) -> u64 {
        // Last leaf whose first element is still "small" at its own k.
        let mut li = None;
        for (i, l) in self.leaves.iter().enumerate() {
            if l.first <= cur + self.prefix[i] {
                li = Some(i);
            } else {
                break;
            }
        }
        let Some(mut i) = li else {
            return cur; // k = 0: no deletion precedes the answer
        };
        let mut k = self.prefix[i];
        loop {
            for &d in &self.read_leaf(i, io) {
                if d <= cur + k {
                    k += 1;
                } else {
                    return cur + k;
                }
            }
            i += 1;
            if i >= self.leaves.len() || self.leaves[i].first > cur + k {
                return cur + k;
            }
        }
    }

    /// Space in bits: leaf payloads plus the memory directory.
    pub fn space_bits(&self) -> u64 {
        let field = cost::lg2_ceil(self.leaves.last().map(|l| l.first + 1).unwrap_or(2).max(2));
        self.disk.used_bits() + self.leaves.len() as u64 * 2 * field
    }

    /// Rebuilds into tightly packed leaves (the paper's global rebuild
    /// when deletions exceed a constant fraction; exposed so the owning
    /// index can fold it into its own epoch rebuilds).
    pub fn compact(&mut self, io: &IoSession) {
        let all: Vec<u64> = (0..self.leaves.len())
            .flat_map(|i| self.read_leaf(i, io))
            .collect();
        for l in &self.leaves {
            // Free old storage.
            let _ = l;
        }
        let mut disk = Disk::new(*self.disk.config());
        std::mem::swap(&mut self.disk, &mut disk);
        self.leaves.clear();
        for chunk in all.chunks(self.cap.max(1)) {
            let at = self.leaves.len();
            self.write_leaf_at(at, chunk, io);
        }
        self.rebuild_prefix();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn cfg() -> IoConfig {
        IoConfig::with_block_bits(512)
    }

    #[test]
    fn rank_and_membership() {
        let mut m = DeletedPositionMap::new(cfg());
        let io = IoSession::untracked();
        for p in [10u64, 20, 30, 5] {
            m.insert(p, &io);
        }
        assert_eq!(m.total_deleted(), 4);
        assert_eq!(m.rank(4, &io), 0);
        assert_eq!(m.rank(5, &io), 1);
        assert_eq!(m.rank(25, &io), 3);
        assert_eq!(m.rank(1000, &io), 4);
        assert!(m.is_deleted(20, &io));
        assert!(!m.is_deleted(21, &io));
    }

    #[test]
    fn translation_roundtrip_small() {
        let mut m = DeletedPositionMap::new(cfg());
        let io = IoSession::untracked();
        // Delete 2, 3, 7 out of 0..10: current = [0,1,4,5,6,8,9].
        for p in [2u64, 3, 7] {
            m.insert(p, &io);
        }
        let expected = [0u64, 1, 4, 5, 6, 8, 9];
        for (cur, &orig) in expected.iter().enumerate() {
            assert_eq!(
                m.original_to_current(orig, &io),
                Some(cur as u64),
                "orig {orig}"
            );
            assert_eq!(m.current_to_original(cur as u64, &io), orig, "cur {cur}");
        }
        for p in [2u64, 3, 7] {
            assert_eq!(m.original_to_current(p, &io), None);
        }
    }

    #[test]
    fn translation_roundtrip_random() {
        let n = 5000u64;
        let mut rng = StdRng::seed_from_u64(71);
        let mut deleted: Vec<u64> = (0..n).filter(|_| rng.gen_bool(0.3)).collect();
        deleted.shuffle(&mut rng);
        let mut m = DeletedPositionMap::new(cfg());
        let io = IoSession::untracked();
        for &p in &deleted {
            m.insert(p, &io);
        }
        let dset: std::collections::BTreeSet<u64> = deleted.iter().copied().collect();
        let alive: Vec<u64> = (0..n).filter(|p| !dset.contains(p)).collect();
        for (cur, &orig) in alive.iter().enumerate().step_by(97) {
            assert_eq!(m.original_to_current(orig, &io), Some(cur as u64));
            assert_eq!(m.current_to_original(cur as u64, &io), orig);
        }
    }

    #[test]
    fn consecutive_deletions_translate() {
        let mut m = DeletedPositionMap::new(cfg());
        let io = IoSession::untracked();
        for p in 0..100u64 {
            m.insert(p, &io);
        }
        // Current position 0 is original 100.
        assert_eq!(m.current_to_original(0, &io), 100);
        assert_eq!(m.current_to_original(5, &io), 105);
        assert_eq!(m.original_to_current(100, &io), Some(0));
    }

    #[test]
    fn translation_costs_few_ios() {
        let mut m = DeletedPositionMap::new(IoConfig::default());
        let io = IoSession::untracked();
        let mut rng = StdRng::seed_from_u64(73);
        for _ in 0..20_000 {
            let p = rng.gen_range(0..1_000_000u64);
            if !m.is_deleted(p, &io) {
                m.insert(p, &io);
            }
        }
        let io = IoSession::new();
        m.original_to_current(500_000, &io);
        assert!(
            io.stats().reads <= 4,
            "{} reads for a translation",
            io.stats().reads
        );
    }

    #[test]
    fn compact_preserves_content() {
        let mut m = DeletedPositionMap::new(cfg());
        let io = IoSession::untracked();
        for p in (0..1000u64).step_by(3) {
            m.insert(p, &io);
        }
        let before = m.space_bits();
        m.compact(&io);
        assert!(m.space_bits() <= before);
        assert_eq!(m.rank(999, &io), 334);
        assert!(m.is_deleted(999, &io));
        assert!(!m.is_deleted(998, &io));
    }

    #[test]
    fn space_is_linear_not_loglinear() {
        // Dense deletions: gamma gaps of 1 bit each -> O(n) bits total.
        let mut m = DeletedPositionMap::new(cfg());
        let io = IoSession::untracked();
        let n = 10_000u64;
        for p in 0..n {
            m.insert(p, &io);
        }
        assert!(m.space_bits() < 16 * n, "space {} not O(n)", m.space_bits());
    }
}
