//! The io-model's always-on instruments, resolved once from the global
//! [`psi_obs::Registry`].
//!
//! One static handle set for the whole crate: the buffer pool, the
//! retry loop, and the scrubber record into these. Granularity is
//! per *event* (a pin, a backend fetch, a scrub probe) — never per
//! decoded word; the per-query hot loops stay on the non-atomic
//! [`crate::IoSession`] counters by design (see the session module's
//! note on the 15–30% cost of atomics there).

use std::sync::{Arc, OnceLock};

use psi_obs::{Counter, Histogram, Registry};

/// Shared instrument handles for the io-model layer.
#[derive(Debug)]
pub struct IoMetrics {
    /// `pool/hits` — block requests served from a resident frame.
    pub pool_hits: Arc<Counter>,
    /// `pool/misses` — block requests that fetched from the backend.
    pub pool_misses: Arc<Counter>,
    /// `pool/evictions` — frames reclaimed by the clock sweep.
    pub pool_evictions: Arc<Counter>,
    /// `pool/grown` — frames allocated past a shard's capacity share
    /// because every frame was pinned.
    pub pool_grown: Arc<Counter>,
    /// `pool/fetch_ns` — wall-clock latency of successful backend
    /// fetches (the *real* read, not the simulated charge).
    pub pool_fetch_ns: Arc<Histogram>,
    /// `pool/verify_failures` — fetches whose integrity trailer did not
    /// check out (class `Corrupt`).
    pub pool_verify_failures: Arc<Counter>,
    /// `io/retries_transient` — extra pin attempts after a transient
    /// failure (mirrors the per-session `IoStats::retries` total).
    pub retries_transient: Arc<Counter>,
    /// `io/errors_permanent` — pins abandoned on a permanent failure.
    pub errors_permanent: Arc<Counter>,
    /// `scrub/blocks_scanned` — blocks verified by scrubber ticks.
    pub scrub_scanned: Arc<Counter>,
    /// `scrub/errors` — corrupt or unreadable blocks found by the
    /// scrubber.
    pub scrub_errors: Arc<Counter>,
}

/// The crate's instrument handles, resolved once per process.
pub fn io_metrics() -> &'static IoMetrics {
    static METRICS: OnceLock<IoMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        IoMetrics {
            pool_hits: r.counter("pool/hits"),
            pool_misses: r.counter("pool/misses"),
            pool_evictions: r.counter("pool/evictions"),
            pool_grown: r.counter("pool/grown"),
            pool_fetch_ns: r.histogram("pool/fetch_ns"),
            pool_verify_failures: r.counter("pool/verify_failures"),
            retries_transient: r.counter("io/retries_transient"),
            errors_permanent: r.counter("io/errors_permanent"),
            scrub_scanned: r.counter("scrub/blocks_scanned"),
            scrub_errors: r.counter("scrub/errors"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global instruments are shared by every test in this binary, so
    // assertions are on deltas and monotonicity, never absolute values.
    #[test]
    fn handles_are_stable_and_shared() {
        let a = io_metrics();
        let b = io_metrics();
        assert!(std::ptr::eq(a, b));
        let before = a.pool_hits.get();
        b.pool_hits.inc();
        assert!(a.pool_hits.get() > before);
        assert!(Arc::ptr_eq(
            &a.pool_fetch_ns,
            &Registry::global().histogram("pool/fetch_ns")
        ));
    }
}
