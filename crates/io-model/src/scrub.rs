//! Online scrubbing: background integrity verification of a live,
//! pooled [`Disk`] at a bounded blocks-per-tick rate.
//!
//! The offline `psi-store` scrub verifies a closed file in one pass; a
//! production store cannot afford that — it is serving queries. The
//! [`Scrubber`] walks the same pages *through the live store* instead: a
//! resumable cursor over every non-resident extent's blocks, verifying a
//! bounded number per [`Scrubber::tick`] so the scan's cost is an
//! operator-tunable trickle. Reads go to the pool's backend directly
//! (verified, never through the frame cache): a warm frame would mask
//! on-disk rot, and scrubbing must not evict the query working set.
//!
//! Corrupt blocks surface as [`ReadError`]s with class
//! [`crate::ErrorClass::Corrupt`]; callers feed them into the extent
//! quarantine that degraded planning consults.

use crate::disk::{Disk, ExtentId};
use crate::error::ReadError;
use crate::metrics::io_metrics;

/// Outcome of one bounded scrub tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Blocks verified during this tick (≤ the tick's budget).
    pub scanned: u64,
    /// Typed failures found, in scan order. Corrupt pages keep the scan
    /// going — one bad block must not hide the next.
    pub errors: Vec<ReadError>,
    /// Whether the cursor reached the end of the disk.
    pub done: bool,
}

/// A resumable, rate-bounded integrity scan over a pooled [`Disk`].
///
/// Holds only the scan cursor, so one scrubber can outlive many ticks
/// (and be stored next to the opened index it patrols). Extents that
/// are memory-resident or freed are skipped: their authoritative bytes
/// are in RAM, not on the backend.
#[derive(Debug, Clone, Default)]
pub struct Scrubber {
    next_ext: u32,
    next_block: u64,
    done: bool,
}

impl Scrubber {
    /// A scrubber positioned at the first block of the first extent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a previous tick exhausted the disk.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Rewinds the cursor for another full pass.
    pub fn reset(&mut self) {
        *self = Scrubber::default();
    }

    /// Verifies up to `budget` blocks of `disk`, resuming where the last
    /// tick stopped.
    ///
    /// # Panics
    /// Panics if `disk` has no buffer pool (a fully resident disk has no
    /// backend pages to scrub) or `budget` is zero.
    pub fn tick(&mut self, disk: &Disk, budget: usize) -> ScrubReport {
        assert!(budget > 0, "scrub tick needs a positive block budget");
        let pool = disk.pool().expect("scrubbing needs a pooled disk");
        let store = pool.store();
        let block_words = (disk.block_bits() / 64) as usize;
        let mut buf = vec![0u64; block_words];
        let mut report = ScrubReport {
            scanned: 0,
            errors: Vec::new(),
            done: false,
        };
        if self.done {
            report.done = true;
            return report;
        }
        while (self.next_ext as usize) < disk.num_extents() {
            let ext = ExtentId(self.next_ext);
            let blocks = if disk.is_resident(ext) || disk.is_freed(ext) {
                0
            } else {
                disk.extent_blocks(ext)
            };
            while self.next_block < blocks {
                if report.scanned as usize >= budget {
                    return report;
                }
                let blk = self.next_block;
                self.next_block += 1;
                report.scanned += 1;
                // Scrub progress and findings are visible in the metrics
                // registry (they bypass the pool, so `PoolStats` can
                // never account for them).
                io_metrics().scrub_scanned.inc();
                if let Err(e) = store.read_block_verified(ext, blk, &mut buf) {
                    io_metrics().scrub_errors.inc();
                    report.errors.push(ReadError {
                        class: e.class,
                        extent: ext,
                        block: blk,
                        message: e.message,
                    });
                }
            }
            self.next_ext += 1;
            self.next_block = 0;
        }
        self.done = true;
        report.done = true;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use crate::backend::{BlockStore, BlockStoreError, MemStore};
    use crate::pool::BufferPool;
    use crate::{ErrorClass, IoConfig, IoSession, StoredExtent};

    /// A store whose verified reads report corruption for one scripted
    /// block address.
    #[derive(Debug)]
    struct OneBadBlock {
        inner: MemStore,
        bad: (ExtentId, u64),
    }

    impl BlockStore for OneBadBlock {
        fn read_block(
            &self,
            ext: ExtentId,
            block: u64,
            out: &mut [u64],
        ) -> Result<(), BlockStoreError> {
            self.inner.read_block(ext, block, out)
        }
        fn read_block_verified(
            &self,
            ext: ExtentId,
            block: u64,
            out: &mut [u64],
        ) -> Result<(), BlockStoreError> {
            if (ext, block) == self.bad {
                return Err(BlockStoreError::corrupt("scripted trailer mismatch"));
            }
            self.inner.read_block(ext, block, out)
        }
        fn fetches(&self) -> u64 {
            self.inner.fetches()
        }
        fn kind(&self) -> &'static str {
            "one-bad-block"
        }
    }

    /// Two extents of 4 blocks each (128-bit blocks), opened pooled.
    fn pooled_disk(bad: (ExtentId, u64)) -> Disk {
        let cfg = IoConfig::with_block_bits(128);
        let mut built = Disk::new(cfg);
        let io = IoSession::untracked();
        for _ in 0..2 {
            let ext = built.alloc();
            let mut w = built.writer(ext, &io);
            for j in 0..8u64 {
                w.write_bits(j + 1, 64);
            }
        }
        let store = Arc::new(OneBadBlock {
            inner: MemStore::from_disk(&built),
            bad,
        });
        let stored: Vec<StoredExtent> = (0..2)
            .map(|i| StoredExtent {
                bit_len: built.extent_bits(ExtentId(i)),
                freed: false,
            })
            .collect();
        let pool = Arc::new(BufferPool::new(store, 16, 128));
        Disk::from_stored(cfg, &stored, pool)
    }

    #[test]
    fn scrub_finds_the_corrupt_block_and_respects_the_budget() {
        let disk = pooled_disk((ExtentId(1), 2));
        let mut scrubber = Scrubber::new();
        let mut errors = Vec::new();
        let mut ticks = 0;
        let mut scanned = 0;
        loop {
            let report = scrubber.tick(&disk, 3);
            assert!(report.scanned <= 3, "budget respected");
            scanned += report.scanned;
            errors.extend(report.errors);
            ticks += 1;
            if report.done {
                break;
            }
        }
        // 8 blocks at ≤3 per tick: the full pass is rate-bounded.
        assert_eq!(scanned, 8);
        assert!(ticks >= 3);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].class, ErrorClass::Corrupt);
        assert_eq!((errors[0].extent, errors[0].block), (ExtentId(1), 2));
        assert!(scrubber.is_done());
        // A done scrubber idles until reset.
        assert_eq!(scrubber.tick(&disk, 3).scanned, 0);
        scrubber.reset();
        assert_eq!(scrubber.tick(&disk, 3).scanned, 3);
    }

    #[test]
    fn scrub_does_not_disturb_the_pool_or_count_as_query_io() {
        let disk = pooled_disk((ExtentId(0), 3));
        let pool = disk.pool().expect("pooled").clone();
        // Warm one block via a query-path read.
        let io = IoSession::new();
        let mut r = disk.reader(ExtentId(1), 0, &io);
        let first = r.read_bits(64);
        drop(r);
        let stats_before = pool.stats();
        let mut scrubber = Scrubber::new();
        while !scrubber.tick(&disk, 4).done {}
        // The scrub bypassed the frame cache entirely.
        assert_eq!(pool.stats(), stats_before);
        // And the warm block still serves hits.
        let io2 = IoSession::new();
        let mut r = disk.reader(ExtentId(1), 0, &io2);
        assert_eq!(r.read_bits(64), first);
        drop(r);
        assert_eq!(pool.stats().hits, stats_before.hits + 1);
    }
}
