//! Simulated [Aggarwal–Vitter I/O model] used throughout the `psi` workspace.
//!
//! Pagh & Rao (PODS 2009) analyze secondary indexes in the I/O model where
//! the cost measure is the number of memory **blocks** read and written, with
//! the block size `B` measured in *bits* (paper §1.4). This crate provides
//! the substrate that makes those costs measurable rather than merely
//! derivable:
//!
//! * [`Disk`] — an in-RAM block device. Every persistent structure in the
//!   workspace lays its bits out in [`ExtentId`]-addressed *extents*, each of
//!   which occupies its own whole blocks of `B` bits.
//! * [`IoSession`] — an accounting scope for a single logical operation
//!   (one query, one update). It counts **distinct blocks touched**, which
//!   models the paper's assumption that internal memory holds
//!   `M = B(σ lg n)^Ω(1)` bits, so within one operation a block is only
//!   fetched once. A bounded-memory mode is available for ablations.
//! * [`DiskReader`] / [`DiskWriter`] — bit-granular cursors that charge the
//!   session lazily as they cross block boundaries, so partially-read blocks
//!   are charged exactly once, and unread suffixes are never charged.
//! * [`cost`] — closed-form cost expressions from the paper
//!   (`lg_b n`, `z lg(n/z)/B`, …) used by the experiment harnesses to
//!   overlay theory curves on measurements.
//!
//! The substitution "real disk → counted in-RAM blocks" is documented in
//! `DESIGN.md`; it preserves the quantity the paper's theorems bound.
//!
//! [Aggarwal–Vitter I/O model]: https://doi.org/10.1145/48529.48535

#![warn(missing_docs)]

mod backend;
pub mod cost;
mod disk;
mod error;
pub mod fault;
pub mod metrics;
mod pool;
mod scrub;
mod session;

pub use backend::{classify_io, BlockStore, BlockStoreError, ErrorClass, MemStore};
pub use disk::{Disk, DiskReader, DiskWriter, DiskWriterAt, ExtentId, StoredExtent};
pub use error::{abort_read, catch_read, pin_retrying, ReadError};
pub use fault::{
    retry_transient, retry_transient_with, Fault, FaultyStore, RetryPolicy, RetryStore,
};
pub use metrics::{io_metrics, IoMetrics};
pub use pool::{
    BufferPool, PinnedBlock, PoolError, PoolStats, DEFAULT_POOL_SHARDS, GROWTH_CEILING,
};
pub use scrub::{ScrubReport, Scrubber};
pub use session::{IoSession, IoStats};

// The concurrent read path rests on these bounds: a shared `Arc<Disk>`
// (hence `BufferPool` and every `BlockStore`) must be usable from any
// query thread. Compile-time proof, so a stray `Rc`/`RefCell` can never
// silently sneak back into the shared layers. `IoSession` is the one
// deliberate exception: per-query state, `Send` (created wherever, run
// by the worker that owns the query) but not `Sync` — its per-code
// counters are too hot for atomics (see `session.rs`).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Disk>();
    assert_send_sync::<BufferPool>();
    assert_send_sync::<MemStore>();
    assert_send_sync::<FaultyStore<MemStore>>();
    assert_send_sync::<RetryStore<MemStore>>();
    assert_send_sync::<IoStats>();
    assert_send_sync::<PoolStats>();
    assert_send_sync::<PinnedBlock>();
    assert_send_sync::<ReadError>();
    assert_send_sync::<Scrubber>();
    assert_send::<IoSession>();
};

/// Default block size in bits: 8192 bits = 1 KiB blocks.
///
/// With `n = 2^20` this gives `b = B / lg n = 8192/20 ≈ 409` "words" per
/// block, comfortably satisfying the paper's standing assumptions
/// `B ≥ lg n` and `b ≥ 2` (§1.4).
pub const DEFAULT_BLOCK_BITS: u64 = 8192;

/// Configuration of the simulated I/O model.
///
/// `block_bits` is the paper's `B` (block size in bits). `mem_blocks`
/// bounds how many distinct blocks a single [`IoSession`] remembers before
/// it starts re-charging evicted blocks; `None` models the paper's
/// `M = B(σ lg n)^Ω(1)` assumption (every block is charged at most once per
/// operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoConfig {
    /// Block size `B` in bits. Must be a positive multiple of 64.
    pub block_bits: u64,
    /// Internal-memory capacity in blocks (`M / B`); `None` = unbounded.
    pub mem_blocks: Option<usize>,
}

impl Default for IoConfig {
    fn default() -> Self {
        Self {
            block_bits: DEFAULT_BLOCK_BITS,
            mem_blocks: None,
        }
    }
}

impl IoConfig {
    /// Creates a configuration with the given block size (in bits) and
    /// unbounded internal memory.
    ///
    /// # Panics
    /// Panics if `block_bits` is zero or not a multiple of 64 (the disk
    /// stores words of 64 bits and requires blocks to be word-aligned).
    pub fn with_block_bits(block_bits: u64) -> Self {
        assert!(
            block_bits > 0 && block_bits.is_multiple_of(64),
            "block_bits must be a positive multiple of 64"
        );
        Self {
            block_bits,
            mem_blocks: None,
        }
    }

    /// The paper's `b = Θ(B / lg n)`: the block size in "words" of `lg n`
    /// bits, clamped to the standing assumption `b ≥ 2`.
    pub fn words_per_block(&self, n: u64) -> u64 {
        let lg_n = cost::lg2_ceil(n.max(2));
        (self.block_bits / lg_n.max(1)).max(2)
    }

    /// Number of blocks needed to hold `bits` bits.
    pub fn blocks_for_bits(&self, bits: u64) -> u64 {
        bits.div_ceil(self.block_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_word_aligned() {
        let c = IoConfig::default();
        assert_eq!(c.block_bits % 64, 0);
        assert!(c.mem_blocks.is_none());
    }

    #[test]
    fn words_per_block_matches_paper_b() {
        let c = IoConfig::with_block_bits(8192);
        // lg(2^20) = 20, so b = 8192/20 = 409.
        assert_eq!(c.words_per_block(1 << 20), 409);
        // b is clamped to >= 2 even for absurdly small blocks.
        let tiny = IoConfig::with_block_bits(64);
        assert_eq!(tiny.words_per_block(u64::MAX), 2);
    }

    #[test]
    fn blocks_for_bits_rounds_up() {
        let c = IoConfig::with_block_bits(128);
        assert_eq!(c.blocks_for_bits(0), 0);
        assert_eq!(c.blocks_for_bits(1), 1);
        assert_eq!(c.blocks_for_bits(128), 1);
        assert_eq!(c.blocks_for_bits(129), 2);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn misaligned_block_size_rejected() {
        let _ = IoConfig::with_block_bits(100);
    }
}
