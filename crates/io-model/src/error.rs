//! Typed read failures and the structured abort that carries them out of
//! infallible decode paths.
//!
//! The read path's hot loops — bit cursors, gap decoders, k-way merges —
//! are deliberately infallible: threading `Result` through every
//! `read_bits` call would cost branches in code that runs per decoded
//! code. Instead, the crate uses a *structured abort*, the same
//! architecture Postgres uses for elog(ERROR): when a pooled fetch fails
//! for good, the failure is recorded as a [`ReadError`] in the
//! [`IoSession`] and the stack unwinds with a zero-sized marker payload.
//! [`catch_read`] is the matching catch frame: it converts the marker
//! back into `Err(ReadError)` and lets every other panic keep going.
//!
//! The contract:
//!
//! * aborts only happen under an active [`catch_read`] frame (tracked by
//!   a thread-local depth counter) — outside one, a failed fetch panics
//!   with the full error message exactly like the pre-fallible API did;
//! * the marker never crosses a `catch_read` boundary, so callers of
//!   `try_query` cannot observe a panic;
//! * a process-wide panic-hook shim suppresses the default "thread
//!   panicked" printout for the marker alone (it is control flow, not a
//!   crash), delegating every other payload to the previous hook.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Once;

use crate::backend::ErrorClass;
use crate::disk::ExtentId;
use crate::metrics::io_metrics;
use crate::pool::{BufferPool, PinnedBlock, PoolError};
use crate::session::IoSession;

/// A typed failure of the fallible read path: which block could not be
/// served, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// Taxonomy class — drives the remedy (retry / give up / quarantine).
    pub class: ErrorClass,
    /// Extent whose block failed.
    pub extent: ExtentId,
    /// Block index within the extent.
    pub block: u64,
    /// Human-readable cause, from the failing layer.
    pub message: String,
}

impl ReadError {
    /// Converts a pool failure at a known block address.
    pub fn from_pool(extent: ExtentId, block: u64, err: PoolError) -> Self {
        let class = match &err {
            PoolError::Fetch { source } => source.class,
            // Frames may free up once other queries unpin; worth a retry.
            PoolError::Exhausted { .. } => ErrorClass::Transient,
            PoolError::Poisoned { .. } => ErrorClass::Permanent,
        };
        ReadError {
            class,
            extent,
            block,
            message: err.to_string(),
        }
    }
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "read of extent {} block {} failed ({:?}): {}",
            self.extent.0, self.block, self.class, self.message
        )
    }
}

impl std::error::Error for ReadError {}

/// Zero-sized unwind payload of a structured read abort. Never escapes
/// [`catch_read`].
struct ReadAbort;

thread_local! {
    /// How many [`catch_read`] frames are active on this thread.
    static CATCH_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Installs (once, process-wide) a panic-hook shim that silences the
/// default report for [`ReadAbort`] payloads only.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ReadAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Decrements the catch depth even when unwinding past the frame.
struct DepthGuard;

impl Drop for DepthGuard {
    fn drop(&mut self) {
        CATCH_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Runs `f`, converting a structured read abort raised against `io`
/// (by [`abort_read`]) into `Err(ReadError)`.
///
/// Unrelated panics resume unwinding untouched. This is the only place
/// a read abort stops; nesting is fine (the innermost frame wins).
pub fn catch_read<T>(io: &IoSession, f: impl FnOnce() -> T) -> Result<T, ReadError> {
    install_quiet_hook();
    CATCH_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = DepthGuard;
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            if payload.downcast_ref::<ReadAbort>().is_some() {
                Err(io.take_fault().unwrap_or_else(|| ReadError {
                    class: ErrorClass::Permanent,
                    extent: ExtentId(u32::MAX),
                    block: u64::MAX,
                    message: "read abort with no recorded fault".into(),
                }))
            } else {
                resume_unwind(payload)
            }
        }
    }
}

/// Raises a structured read abort carrying `err`.
///
/// Under an active [`catch_read`] frame this unwinds with the silent
/// marker; outside one it panics with the full message — the behaviour
/// the infallible API always had, now with a classified cause.
pub fn abort_read(io: &IoSession, err: ReadError) -> ! {
    if CATCH_DEPTH.with(|d| d.get()) > 0 {
        io.set_fault(err);
        std::panic::panic_any(ReadAbort);
    }
    panic!("{err}");
}

/// Pins `(ext, block)` through `pool`, re-attempting transient failures
/// under the session's armed [`crate::RetryPolicy`] budget (immediately,
/// no backoff — store-level wrappers own the clock) and counting each
/// extra attempt into [`crate::IoStats::retries`].
pub fn pin_retrying(
    pool: &BufferPool,
    ext: ExtentId,
    block: u64,
    io: &IoSession,
) -> Result<PinnedBlock, ReadError> {
    let attempts = io
        .retry_policy()
        .map(|p| p.max_attempts.max(1))
        .unwrap_or(1);
    let mut last = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            io.add_retries(1);
            io_metrics().retries_transient.inc();
        }
        match pool.try_pin(ext, block) {
            Ok(pin) => return Ok(pin),
            Err(e) => {
                let err = ReadError::from_pool(ext, block, e);
                if err.class != ErrorClass::Transient {
                    if err.class == ErrorClass::Permanent {
                        io_metrics().errors_permanent.inc();
                    }
                    return Err(err);
                }
                last = Some(err);
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_read_converts_abort_into_typed_error() {
        let io = IoSession::new();
        let err = ReadError {
            class: ErrorClass::Corrupt,
            extent: ExtentId(3),
            block: 7,
            message: "checksum mismatch".into(),
        };
        let got = catch_read(&io, || -> u32 { abort_read(&io, err.clone()) });
        assert_eq!(got, Err(err));
        // The fault slot is consumed.
        assert!(io.take_fault().is_none());
    }

    #[test]
    fn catch_read_passes_values_through() {
        let io = IoSession::new();
        assert_eq!(catch_read(&io, || 41 + 1), Ok(42));
    }

    #[test]
    fn unrelated_panics_resume_unwinding() {
        let io = IoSession::new();
        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
            catch_read(&io, || -> u32 { panic!("not a read abort") })
        }));
        let payload = out.expect_err("panic must escape catch_read");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("not a read abort")
        );
    }

    #[test]
    fn nested_frames_catch_at_the_innermost() {
        let io = IoSession::new();
        let outer = catch_read(&io, || {
            let inner = catch_read(&io, || -> u32 {
                abort_read(
                    &io,
                    ReadError {
                        class: ErrorClass::Transient,
                        extent: ExtentId(0),
                        block: 0,
                        message: "flake".into(),
                    },
                )
            });
            assert!(inner.is_err());
            5u32
        });
        assert_eq!(outer, Ok(5));
    }

    #[test]
    fn abort_outside_catch_panics_with_message() {
        let io = IoSession::new();
        let err = ReadError {
            class: ErrorClass::Permanent,
            extent: ExtentId(1),
            block: 2,
            message: "gone".into(),
        };
        let out = std::panic::catch_unwind(AssertUnwindSafe(|| abort_read(&io, err)));
        let payload = out.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("formatted message");
        assert!(msg.contains("extent 1 block 2"), "got: {msg}");
    }
}
