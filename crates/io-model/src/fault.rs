//! Fault injection and retry for the real-read backends.
//!
//! Robustness is proven, not claimed: [`FaultyStore`] wraps any
//! [`BlockStore`] with a *deterministic* error schedule — the n-th fetch
//! fails transiently, permanently, or returns a short (torn) read — so
//! the durability suite can script exact failure interleavings around a
//! real `FileStore`. [`RetryStore`] is the production-shaped response: it
//! retries [`ErrorClass::Transient`] failures with exponential backoff
//! and surfaces [`ErrorClass::Permanent`] ones unchanged, so a flaky
//! read never reaches the buffer pool but a corrupt page always does.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::backend::{BlockStore, BlockStoreError, ErrorClass};
use crate::disk::ExtentId;

/// One scripted failure in a [`FaultyStore`] schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail with a transient error (retry would succeed).
    Transient,
    /// Fail with a permanent error (retry cannot help).
    Permanent,
    /// Return success but only fill the first `words` output words,
    /// leaving the rest stale — a torn read. The checksum layer above
    /// (`VolumeStore`) must catch this and report it as permanent.
    ShortRead {
        /// How many leading words the torn read delivers.
        words: usize,
    },
}

/// Deterministic fault-injecting wrapper around any [`BlockStore`].
///
/// The schedule maps *global fetch ordinals* (0-based, counted across
/// all extents) to faults; fetches not in the schedule pass through.
/// Determinism makes failures reproducible: the same schedule against
/// the same access sequence fails the same reads.
#[derive(Debug)]
pub struct FaultyStore<S> {
    inner: S,
    schedule: Mutex<HashMap<u64, Fault>>,
    attempts: AtomicU64,
    injected: AtomicU64,
}

impl<S: BlockStore> FaultyStore<S> {
    /// Wraps `inner` with a fault schedule keyed by fetch ordinal.
    pub fn new(inner: S, schedule: impl IntoIterator<Item = (u64, Fault)>) -> Self {
        FaultyStore {
            inner,
            schedule: Mutex::new(schedule.into_iter().collect()),
            attempts: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Total fetch attempts seen (including the failed ones).
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// How many faults fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: BlockStore> FaultyStore<S> {
    /// Consults (and consumes) the schedule for the next fetch ordinal.
    fn next_fault(&self) -> (u64, Option<Fault>) {
        let ordinal = self.attempts.fetch_add(1, Ordering::SeqCst);
        let fault = self.schedule.lock().unwrap().remove(&ordinal);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        (ordinal, fault)
    }
}

impl<S: BlockStore> BlockStore for FaultyStore<S> {
    fn read_block(
        &self,
        ext: ExtentId,
        block: u64,
        out: &mut [u64],
    ) -> Result<(), BlockStoreError> {
        let (ordinal, fault) = self.next_fault();
        match fault {
            None => self.inner.read_block(ext, block, out),
            Some(Fault::Transient) => Err(BlockStoreError::transient(format!(
                "injected transient fault at fetch {ordinal} (extent {}, block {block})",
                ext.0
            ))),
            Some(Fault::Permanent) => Err(BlockStoreError::permanent(format!(
                "injected permanent fault at fetch {ordinal} (extent {}, block {block})",
                ext.0
            ))),
            Some(Fault::ShortRead { words }) => {
                self.inner.read_block(ext, block, out)?;
                // Corrupt the tail the way a torn positioned read would:
                // the delivered prefix is real, the rest is garbage.
                for slot in out.iter_mut().skip(words) {
                    *slot = !*slot;
                }
                Ok(())
            }
        }
    }

    fn read_block_verified(
        &self,
        ext: ExtentId,
        block: u64,
        out: &mut [u64],
    ) -> Result<(), BlockStoreError> {
        let (ordinal, fault) = self.next_fault();
        match fault {
            None => self.inner.read_block_verified(ext, block, out),
            Some(Fault::Transient) => Err(BlockStoreError::transient(format!(
                "injected transient fault at fetch {ordinal} (extent {}, block {block})",
                ext.0
            ))),
            Some(Fault::Permanent) => Err(BlockStoreError::permanent(format!(
                "injected permanent fault at fetch {ordinal} (extent {}, block {block})",
                ext.0
            ))),
            // On the verified path a torn read *is caught* by the layer
            // this method models — surface it as corruption rather than
            // silently delivering a mangled page.
            Some(Fault::ShortRead { words }) => Err(BlockStoreError::corrupt(format!(
                "injected torn read ({words} good words) at fetch {ordinal} \
                 (extent {}, block {block})",
                ext.0
            ))),
        }
    }

    fn fetches(&self) -> u64 {
        self.inner.fetches()
    }

    fn kind(&self) -> &'static str {
        "faulty"
    }
}

/// How many times to retry a transient failure, and how long to back off.
///
/// Backoff is exponential from `base_delay` (attempt k sleeps
/// `base_delay * 2^k`); tests use a zero base so injected flakes retry
/// instantly.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts including the first (must be ≥ 1).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each further retry.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
        }
    }
}

/// Runs `op` under `policy`: transient failures retry with exponential
/// backoff until the attempt budget runs out; permanent and corrupt
/// failures (and the last transient one) surface unchanged.
///
/// Shared by [`RetryStore`] (read path) and the WAL writer (append
/// path), so both sides of the durable write path classify and retry
/// identically. Backoff sleeps on the real clock; tests that need
/// determinism inject a recording sleeper via [`retry_transient_with`].
pub fn retry_transient<T, E>(
    policy: RetryPolicy,
    classify: impl Fn(&E) -> ErrorClass,
    op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    retry_transient_with(policy, classify, std::thread::sleep, op)
}

/// [`retry_transient`] with an injectable backoff sleeper.
///
/// The sleeper receives each computed backoff delay (`base_delay * 2^k`)
/// *instead of* the wall clock being consulted, so tests can script and
/// assert the exact backoff sequence without ever sleeping.
pub fn retry_transient_with<T, E>(
    policy: RetryPolicy,
    classify: impl Fn(&E) -> ErrorClass,
    mut sleep: impl FnMut(Duration),
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let attempts = policy.max_attempts.max(1);
    let mut delay = policy.base_delay;
    let mut last = None;
    for attempt in 0..attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                // Only transient failures are worth another attempt;
                // permanent *and corrupt* ones surface immediately.
                if classify(&e) != ErrorClass::Transient {
                    return Err(e);
                }
                last = Some(e);
                if attempt + 1 < attempts && !delay.is_zero() {
                    sleep(delay);
                    delay = delay.saturating_mul(2);
                }
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

/// How a [`RetryStore`] spends its backoff delays.
type Sleeper = Box<dyn Fn(Duration) + Send + Sync>;

/// Retry-with-backoff wrapper around any [`BlockStore`].
///
/// Transient fetch failures are retried per [`RetryPolicy`]; permanent
/// and corrupt ones pass through immediately. [`Self::retries`] counts
/// the extra attempts, so tests can assert a scripted flake cost exactly
/// the expected number of re-reads. The backoff sleeper is injectable
/// ([`Self::with_sleeper`]) so tests never touch the wall clock.
pub struct RetryStore<S> {
    inner: S,
    policy: RetryPolicy,
    retries: AtomicU64,
    sleeper: Sleeper,
}

impl<S: std::fmt::Debug> std::fmt::Debug for RetryStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryStore")
            .field("inner", &self.inner)
            .field("policy", &self.policy)
            .field("retries", &self.retries)
            .finish_non_exhaustive()
    }
}

impl<S: BlockStore> RetryStore<S> {
    /// Wraps `inner` with `policy`, backing off on the real clock.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        Self::with_sleeper(inner, policy, Box::new(std::thread::sleep))
    }

    /// Wraps `inner` with `policy` and a custom backoff sleeper.
    ///
    /// Tests pass a recording closure (no wall-clock sleeps, scripted
    /// delays become assertable data); production uses [`Self::new`].
    pub fn with_sleeper(inner: S, policy: RetryPolicy, sleeper: Sleeper) -> Self {
        RetryStore {
            inner,
            policy,
            retries: AtomicU64::new(0),
            sleeper,
        }
    }

    /// Extra attempts spent recovering from transient failures.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn run_with_retry(
        &self,
        mut op: impl FnMut() -> Result<(), BlockStoreError>,
    ) -> Result<(), BlockStoreError> {
        let mut first = true;
        retry_transient_with(
            self.policy,
            |e: &BlockStoreError| e.class,
            |d| (self.sleeper)(d),
            || {
                if !first {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                }
                first = false;
                op()
            },
        )
    }
}

impl<S: BlockStore> BlockStore for RetryStore<S> {
    fn read_block(
        &self,
        ext: ExtentId,
        block: u64,
        out: &mut [u64],
    ) -> Result<(), BlockStoreError> {
        self.run_with_retry(|| self.inner.read_block(ext, block, out))
    }

    fn read_block_verified(
        &self,
        ext: ExtentId,
        block: u64,
        out: &mut [u64],
    ) -> Result<(), BlockStoreError> {
        self.run_with_retry(|| self.inner.read_block_verified(ext, block, out))
    }

    fn fetches(&self) -> u64 {
        self.inner.fetches()
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStore;
    use crate::{Disk, IoConfig, IoSession};

    fn store_with_one_extent() -> MemStore {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let ext = disk.alloc();
        let io = IoSession::untracked();
        {
            let mut w = disk.writer(ext, &io);
            for i in 0..4u64 {
                w.write_bits(i + 1, 64);
            }
        }
        MemStore::from_disk(&disk)
    }

    #[test]
    fn transient_faults_are_retried_away() {
        let faulty = FaultyStore::new(
            store_with_one_extent(),
            [(0, Fault::Transient), (1, Fault::Transient)],
        );
        let retry = RetryStore::new(
            faulty,
            RetryPolicy {
                max_attempts: 4,
                base_delay: Duration::ZERO,
            },
        );
        let mut buf = vec![0u64; 2];
        retry.read_block(ExtentId(0), 0, &mut buf).unwrap();
        assert_eq!(buf, vec![1, 2]);
        assert_eq!(retry.retries(), 2);
        assert_eq!(retry.inner().injected(), 2);
    }

    #[test]
    fn permanent_fault_surfaces_immediately() {
        let faulty = FaultyStore::new(store_with_one_extent(), [(0, Fault::Permanent)]);
        let retry = RetryStore::new(
            faulty,
            RetryPolicy {
                max_attempts: 8,
                base_delay: Duration::ZERO,
            },
        );
        let mut buf = vec![0u64; 2];
        let err = retry.read_block(ExtentId(0), 0, &mut buf).unwrap_err();
        assert_eq!(err.class, ErrorClass::Permanent);
        assert_eq!(retry.retries(), 0, "permanent errors are not retried");
    }

    #[test]
    fn transient_budget_exhaustion_surfaces_last_error() {
        let faulty = FaultyStore::new(
            store_with_one_extent(),
            (0..5).map(|i| (i, Fault::Transient)),
        );
        let retry = RetryStore::new(
            faulty,
            RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::ZERO,
            },
        );
        let mut buf = vec![0u64; 2];
        let err = retry.read_block(ExtentId(0), 0, &mut buf).unwrap_err();
        assert_eq!(err.class, ErrorClass::Transient);
        assert_eq!(retry.retries(), 2);
    }

    #[test]
    fn short_read_corrupts_tail_words() {
        let faulty = FaultyStore::new(
            store_with_one_extent(),
            [(0, Fault::ShortRead { words: 1 })],
        );
        let mut buf = vec![0u64; 2];
        faulty.read_block(ExtentId(0), 0, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "delivered prefix is real");
        assert_ne!(buf[1], 2, "torn tail is garbage");
    }

    #[test]
    fn classify_io_kinds() {
        use std::io::ErrorKind as K;
        assert_eq!(crate::classify_io(K::Interrupted), ErrorClass::Transient);
        assert_eq!(crate::classify_io(K::TimedOut), ErrorClass::Transient);
        assert_eq!(crate::classify_io(K::NotFound), ErrorClass::Permanent);
        assert_eq!(crate::classify_io(K::UnexpectedEof), ErrorClass::Permanent);
    }

    #[test]
    fn injected_sleeper_records_exponential_backoff_without_sleeping() {
        // Three consecutive transient faults under a 4-attempt budget:
        // the injected sleeper sees the exact doubling sequence and no
        // wall-clock time passes.
        let faulty = FaultyStore::new(
            store_with_one_extent(),
            (0..3).map(|i| (i, Fault::Transient)),
        );
        let slept = std::sync::Arc::new(Mutex::new(Vec::new()));
        let recorder = std::sync::Arc::clone(&slept);
        let retry = RetryStore::with_sleeper(
            faulty,
            RetryPolicy {
                max_attempts: 4,
                base_delay: Duration::from_millis(10),
            },
            Box::new(move |d| recorder.lock().unwrap().push(d)),
        );
        let started = std::time::Instant::now();
        let mut buf = vec![0u64; 2];
        retry.read_block(ExtentId(0), 0, &mut buf).unwrap();
        assert_eq!(buf, vec![1, 2]);
        assert_eq!(retry.retries(), 3);
        assert_eq!(
            *slept.lock().unwrap(),
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40)
            ]
        );
        assert!(
            started.elapsed() < Duration::from_millis(10),
            "no wall-clock sleeps"
        );
    }

    #[test]
    fn corrupt_errors_are_not_retried() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::ZERO,
        };
        let mut calls = 0;
        let out: Result<(), BlockStoreError> = retry_transient(
            policy,
            |e: &BlockStoreError| e.class,
            || {
                calls += 1;
                Err(BlockStoreError::corrupt("trailer mismatch"))
            },
        );
        assert_eq!(out.unwrap_err().class, ErrorClass::Corrupt);
        assert_eq!(calls, 1, "corruption is quarantined, not retried");
    }

    #[test]
    fn verified_reads_pass_through_schedule_and_report_torn_reads_corrupt() {
        let faulty = FaultyStore::new(
            store_with_one_extent(),
            [(0, Fault::ShortRead { words: 1 })],
        );
        let mut buf = vec![0u64; 2];
        let err = faulty
            .read_block_verified(ExtentId(0), 0, &mut buf)
            .unwrap_err();
        assert_eq!(err.class, ErrorClass::Corrupt);
        // Schedule spent: the next verified read is clean.
        faulty
            .read_block_verified(ExtentId(0), 0, &mut buf)
            .unwrap();
        assert_eq!(buf, vec![1, 2]);
    }

    #[test]
    fn retry_helper_counts_attempts() {
        let mut calls = 0;
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::ZERO,
        };
        let out: Result<u32, &str> = retry_transient(
            policy,
            |_| ErrorClass::Transient,
            || {
                calls += 1;
                if calls < 3 {
                    Err("flake")
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 3);
    }
}
