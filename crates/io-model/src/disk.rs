//! The simulated block device.

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use crate::pool::{BufferPool, PinnedBlock};
use crate::session::IoSession;
use crate::IoConfig;

/// Handle to an extent on a [`Disk`].
///
/// An extent is a growable bit stream that occupies its own whole blocks;
/// distinct extents never share a block (the paper's structures concatenate
/// many bitmaps *within* one stream precisely so that they share blocks —
/// such a concatenation is one extent here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExtentId(pub u32);

/// Extent metadata recorded in a store file: enough to recreate the
/// extent table of a [`Disk`] without loading any payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredExtent {
    /// Valid bits in the extent.
    pub bit_len: u64,
    /// Whether the extent had been freed when saved.
    pub freed: bool,
}

#[derive(Debug)]
struct Extent {
    /// Bit storage, MSB-first within each word. Authoritative only while
    /// `resident`; non-resident extents are fetched block by block from
    /// the disk's buffer pool.
    words: Vec<u64>,
    /// Number of valid bits.
    bit_len: u64,
    /// Freed extents keep their id but release their storage.
    freed: bool,
    /// Whether `words` holds the extent (the default for built disks).
    /// Opened, file-backed disks start non-resident and read through the
    /// buffer pool; writers promote an extent back to residency.
    resident: bool,
}

impl Default for Extent {
    fn default() -> Self {
        Extent {
            words: Vec::new(),
            bit_len: 0,
            freed: false,
            resident: true,
        }
    }
}

/// An in-RAM simulated block device with bit-granular extents.
///
/// All persistent data of every index structure lives on a `Disk`; all
/// access goes through [`DiskReader`]/[`DiskWriter`] cursors which charge an
/// [`IoSession`] for each distinct block touched. The number of blocks an
/// extent occupies is `ceil(bit_len / B)`, so partially-filled tail blocks
/// are visible both in space accounting and in I/O accounting, exactly as in
/// the paper's model ("the minimum amount of data read is 1 block", §1.2).
///
/// A `Disk` is `Sync`: the read path (`reader`, `charge_read_span`) takes
/// `&self`, so one disk behind an `Arc` serves any number of query
/// threads, each with its own per-query [`IoSession`]. Mutation (`alloc`,
/// `writer`, `promote`, …) still requires `&mut self` — exclusive by
/// construction.
#[derive(Debug)]
pub struct Disk {
    config: IoConfig,
    extents: Vec<Extent>,
    /// Buffer pool fronting a real backend; `None` for the fully
    /// resident, in-RAM disk (the default).
    pool: Option<Arc<BufferPool>>,
    /// Extents mutated since the last [`Disk::clear_dirty`] — the
    /// incremental-checkpoint cursor. Behind a mutex so checkpointing,
    /// which reaches disks through `&Disk` (the `PersistIndex::disks`
    /// surface), can clear it without a `&mut` threading change through
    /// every index family.
    dirty: Mutex<HashSet<u32>>,
}

impl Disk {
    /// Creates an empty disk with the given model configuration.
    pub fn new(config: IoConfig) -> Self {
        Disk {
            config,
            extents: Vec::new(),
            pool: None,
            dirty: Mutex::new(HashSet::new()),
        }
    }

    /// Reconstructs a disk from stored extent metadata, reading payload
    /// on demand through `pool`. Extents are recreated with the same ids
    /// (indices) they were saved with; none of them is resident until a
    /// writer promotes it.
    pub fn from_stored(config: IoConfig, extents: &[StoredExtent], pool: Arc<BufferPool>) -> Self {
        Disk {
            config,
            extents: extents
                .iter()
                .map(|e| Extent {
                    words: Vec::new(),
                    bit_len: e.bit_len,
                    freed: e.freed,
                    resident: e.freed || e.bit_len == 0,
                })
                .collect(),
            pool: Some(pool),
            // An opened disk starts clean: its file image is the
            // checkpoint baseline.
            dirty: Mutex::new(HashSet::new()),
        }
    }

    /// Marks an extent dirty (mutated since the last checkpoint).
    ///
    /// Takes `&self`: recovery replay and the save path reach disks
    /// through shared references.
    pub fn mark_dirty(&self, ext: ExtentId) {
        self.dirty.lock().unwrap().insert(ext.0);
    }

    /// Whether an extent was mutated since the last [`Disk::clear_dirty`].
    pub fn is_dirty(&self, ext: ExtentId) -> bool {
        self.dirty.lock().unwrap().contains(&ext.0)
    }

    /// Extents mutated since the last [`Disk::clear_dirty`], ascending.
    /// This is what an incremental checkpoint flushes; everything else
    /// is byte-identical to the previous checkpoint.
    pub fn dirty_extents(&self) -> Vec<ExtentId> {
        let mut ids: Vec<u32> = self.dirty.lock().unwrap().iter().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(ExtentId).collect()
    }

    /// Resets the dirty set — called after a checkpoint has durably
    /// written every dirty extent.
    pub fn clear_dirty(&self) {
        self.dirty.lock().unwrap().clear();
    }

    /// The buffer pool, when this disk reads through one.
    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// Number of extents ever allocated (live and freed).
    pub fn num_extents(&self) -> usize {
        self.extents.len()
    }

    /// Whether an extent's words are memory-resident.
    pub fn is_resident(&self, ext: ExtentId) -> bool {
        self.extents[ext.0 as usize].resident
    }

    /// Whether an extent has been freed.
    pub fn is_freed(&self, ext: ExtentId) -> bool {
        self.extents[ext.0 as usize].freed
    }

    /// The resident word image of an extent (save paths).
    ///
    /// # Panics
    /// Panics when the extent is non-resident; promote it first.
    pub fn extent_words(&self, ext: ExtentId) -> &[u64] {
        let e = &self.extents[ext.0 as usize];
        assert!(
            e.resident,
            "extent {} is not resident; promote before snapshotting",
            ext.0
        );
        &e.words
    }

    /// Loads a non-resident extent's blocks from the backend into RAM,
    /// making `words` authoritative again (writers call this; reads of a
    /// resident extent no longer consult the pool). Each loaded block
    /// counts as a real fetch.
    ///
    /// # Panics
    /// Panics when a block fetch fails — mutating a store whose pages
    /// cannot be read is not recoverable in place. Fallible callers
    /// (scrub/repair paths) use [`Self::try_promote`].
    pub fn promote(&mut self, ext: ExtentId) {
        if let Err(err) = self.try_promote(ext) {
            panic!("promoting extent {}: {err}", ext.0);
        }
    }

    /// Fallible [`Self::promote`]: on a failed fetch the extent stays
    /// non-resident (no partial promotion) and the typed failure names
    /// the block that could not be read.
    pub fn try_promote(&mut self, ext: ExtentId) -> Result<(), crate::ReadError> {
        let e = &mut self.extents[ext.0 as usize];
        if e.resident {
            return Ok(());
        }
        let pool = self
            .pool
            .as_ref()
            .expect("non-resident extent needs a pool");
        let block_words = (self.config.block_bits / 64) as usize;
        let blocks = self.config.blocks_for_bits(e.bit_len);
        let mut words = vec![0u64; (e.bit_len as usize).div_ceil(64)];
        let mut buf = vec![0u64; block_words];
        for blk in 0..blocks {
            pool.store()
                .read_block(ext, blk, &mut buf)
                .map_err(|err| crate::ReadError {
                    class: err.class,
                    extent: ext,
                    block: blk,
                    message: err.message,
                })?;
            let start = blk as usize * block_words;
            let end = (start + block_words).min(words.len());
            words[start..end].copy_from_slice(&buf[..end - start]);
        }
        pool.forget_extent(ext);
        e.words = words;
        e.resident = true;
        Ok(())
    }

    /// Promotes every extent (a full load; used before re-saving an
    /// opened disk).
    pub fn promote_all(&mut self) {
        for i in 0..self.extents.len() {
            self.promote(ExtentId(i as u32));
        }
    }

    /// Charges the blocks covering `[bit_off, bit_off + bit_len)` of
    /// `ext` as reads, and — on a pooled disk — faults each of them, so
    /// directory-record charges drive real fetches exactly like payload
    /// reads do. Zero-length spans charge their single containing block,
    /// matching a one-record read.
    pub fn charge_read_span(&self, ext: ExtentId, bit_off: u64, bit_len: u64, io: &IoSession) {
        let b = self.config.block_bits;
        let first = bit_off / b;
        let last = (bit_off + bit_len.max(1) - 1) / b;
        let e = &self.extents[ext.0 as usize];
        // Blocks that exist on the backend (a span may legitimately end
        // inside slack that was never written; those blocks are charged
        // but have nothing to fetch).
        let stored = self.config.blocks_for_bits(e.bit_len);
        for blk in first..=last {
            io.charge_read(ext, blk);
            if !e.resident && blk < stored {
                let pool = self
                    .pool
                    .as_ref()
                    .expect("non-resident extent needs a pool");
                // Retry transients under the session budget; a fetch
                // that still fails raises a structured read abort
                // (typed error under `catch_read`, panic outside it).
                match crate::error::pin_retrying(pool, ext, blk, io) {
                    Ok(pinned) => pool.unpin(pinned),
                    Err(e) => crate::error::abort_read(io, e),
                }
            }
        }
    }

    /// The model configuration (block size, memory bound).
    pub fn config(&self) -> &IoConfig {
        &self.config
    }

    /// Block size `B` in bits.
    pub fn block_bits(&self) -> u64 {
        self.config.block_bits
    }

    /// Allocates a new, empty extent.
    pub fn alloc(&mut self) -> ExtentId {
        let id = ExtentId(u32::try_from(self.extents.len()).expect("extent ids exhausted"));
        self.extents.push(Extent::default());
        self.mark_dirty(id);
        id
    }

    /// Releases an extent's storage. The id remains valid but empty.
    pub fn free(&mut self, ext: ExtentId) {
        self.mark_dirty(ext);
        let e = &mut self.extents[ext.0 as usize];
        e.words = Vec::new();
        e.bit_len = 0;
        e.freed = true;
        // An empty extent needs no backend: it is trivially resident.
        if !e.resident {
            e.resident = true;
            if let Some(pool) = &self.pool {
                pool.forget_extent(ext);
            }
        }
    }

    /// Length of an extent in bits.
    pub fn extent_bits(&self, ext: ExtentId) -> u64 {
        self.extents[ext.0 as usize].bit_len
    }

    /// Number of blocks an extent occupies (`ceil(bits / B)`).
    pub fn extent_blocks(&self, ext: ExtentId) -> u64 {
        self.config.blocks_for_bits(self.extent_bits(ext))
    }

    /// Total bits stored across all live extents (space accounting).
    pub fn used_bits(&self) -> u64 {
        self.extents
            .iter()
            .filter(|e| !e.freed)
            .map(|e| e.bit_len)
            .sum()
    }

    /// Total blocks occupied across all live extents, i.e. space in the
    /// block-granular sense (includes tail-block fragmentation).
    pub fn used_blocks(&self) -> u64 {
        self.extents
            .iter()
            .filter(|e| !e.freed)
            .map(|e| self.config.blocks_for_bits(e.bit_len))
            .sum()
    }

    /// Truncates an extent to `bit_len` bits (must not exceed current).
    pub fn truncate(&mut self, ext: ExtentId, bit_len: u64) {
        self.mark_dirty(ext);
        self.promote(ext);
        let e = &mut self.extents[ext.0 as usize];
        assert!(bit_len <= e.bit_len, "truncate beyond extent length");
        e.bit_len = bit_len;
        let words = (bit_len as usize).div_ceil(64);
        e.words.truncate(words);
        // Clear any stale bits after the new end so appends find zeroes.
        if !bit_len.is_multiple_of(64) {
            if let Some(last) = e.words.last_mut() {
                let keep = bit_len % 64;
                *last &= !0u64 << (64 - keep);
            }
        }
    }

    /// A reading cursor positioned at `bit_off` within `ext`, charging
    /// `session` for each distinct block it touches. Multiple readers over
    /// the same disk and session may coexist (k-way merges).
    ///
    /// # Panics
    /// Panics if `bit_off` exceeds the extent length.
    pub fn reader<'a>(
        &'a self,
        ext: ExtentId,
        bit_off: u64,
        session: &'a IoSession,
    ) -> DiskReader<'a> {
        let e = &self.extents[ext.0 as usize];
        assert!(
            bit_off <= e.bit_len,
            "reader offset {bit_off} beyond extent length {}",
            e.bit_len
        );
        let pool = if e.resident {
            None
        } else {
            Some(
                &**self
                    .pool
                    .as_ref()
                    .expect("non-resident extent needs a pool"),
            )
        };
        DiskReader {
            words: &e.words,
            pool,
            pinned: RefCell::new(None),
            bit_len: e.bit_len,
            ext,
            pos: bit_off,
            session,
            block_bits: self.config.block_bits,
            last_block: u64::MAX,
        }
    }

    /// An appending cursor positioned at the end of `ext`. On a pooled
    /// disk the extent is promoted to a resident RAM image first (writes
    /// on opened stores are in-memory overlays; the file is immutable
    /// until the index is saved again).
    pub fn writer<'a>(&'a mut self, ext: ExtentId, session: &'a IoSession) -> DiskWriter<'a> {
        self.mark_dirty(ext);
        self.promote(ext);
        let block_bits = self.config.block_bits;
        let e = &mut self.extents[ext.0 as usize];
        e.freed = false;
        DiskWriter {
            extent: e,
            ext,
            session,
            block_bits,
            last_block: u64::MAX,
        }
    }

    /// A positioned cursor that writes (ORs) bits starting at `bit_off`,
    /// extending the extent if it writes past the current end. The target
    /// region must hold zero bits (freshly reserved slack); this is how
    /// dynamic structures fill pre-allocated slots in place.
    pub fn writer_at<'a>(
        &'a mut self,
        ext: ExtentId,
        bit_off: u64,
        session: &'a IoSession,
    ) -> DiskWriterAt<'a> {
        self.mark_dirty(ext);
        self.promote(ext);
        let block_bits = self.config.block_bits;
        let e = &mut self.extents[ext.0 as usize];
        assert!(
            bit_off <= e.bit_len,
            "writer_at offset {bit_off} beyond extent length {}",
            e.bit_len
        );
        e.freed = false;
        DiskWriterAt {
            extent: e,
            ext,
            session,
            block_bits,
            last_block: u64::MAX,
            pos: bit_off,
        }
    }
}

/// A bit-granular reading cursor over one extent.
///
/// Bits are MSB-first within 64-bit words. Each word access charges the
/// block containing it to the session (deduplicated against the previously
/// charged block, and again inside the session's residency set).
///
/// Over a resident extent the cursor reads the RAM image directly. Over a
/// non-resident extent (an opened store) every word access goes through
/// the disk's [`BufferPool`]: the cursor keeps its current block **pinned**
/// (so concurrent cursors — on this thread or any other — cannot evict it
/// mid-decode), moving the pin as it crosses block boundaries and
/// releasing it on drop. Word reads of the pinned block go straight
/// through the [`PinnedBlock`] handle without taking any pool lock. The
/// charges are identical in both modes; only the pooled mode turns them
/// into real fetches.
#[derive(Debug)]
pub struct DiskReader<'a> {
    words: &'a [u64],
    pool: Option<&'a BufferPool>,
    /// Pooled mode: the currently pinned block and its frame handle.
    pinned: RefCell<Option<(u64, PinnedBlock)>>,
    bit_len: u64,
    ext: ExtentId,
    pos: u64,
    session: &'a IoSession,
    block_bits: u64,
    last_block: u64,
}

impl Drop for DiskReader<'_> {
    fn drop(&mut self) {
        if let Some(pool) = self.pool {
            if let Some((_, pinned)) = self.pinned.get_mut().take() {
                pool.unpin(pinned);
            }
        }
    }
}

impl<'a> DiskReader<'a> {
    #[inline]
    fn charge_word(&mut self, word_idx: u64) {
        // block_bits is a multiple of 64, so a word lies in exactly one block.
        let block = word_idx * 64 / self.block_bits;
        if block != self.last_block {
            self.session.charge_read(self.ext, block);
            self.last_block = block;
        }
    }

    /// Reads word `word_idx` of the extent: directly from the RAM image
    /// (the slice access *is* the dispatch — pooled readers hold an empty
    /// slice, so they fall through to the cold pooled path), or through
    /// the pool with a moving pin for non-resident extents.
    #[inline]
    fn word(&self, word_idx: u64) -> u64 {
        match self.words.get(word_idx as usize) {
            Some(&w) => w,
            None => self.pooled_word(word_idx),
        }
    }

    /// The non-resident path of [`Self::word`]: reads through the buffer
    /// pool, keeping the current block pinned and moving the pin as the
    /// cursor crosses block boundaries.
    ///
    /// A fetch that fails after the session's transient-retry budget
    /// raises a structured read abort: under a [`crate::catch_read`]
    /// frame it becomes `Err(ReadError)` at the `try_query` boundary;
    /// outside one it panics with the full message (the historical
    /// behaviour of the infallible API).
    #[cold]
    fn pooled_word(&self, word_idx: u64) -> u64 {
        let pool = self
            .pool
            .expect("word index out of bounds on resident extent");
        let block = word_idx * 64 / self.block_bits;
        let word_in_block = (word_idx - block * (self.block_bits / 64)) as usize;
        let mut pinned = self.pinned.borrow_mut();
        match pinned.as_ref() {
            Some((b, handle)) if *b == block => handle.word(word_in_block),
            _ => {
                if let Some((_, old)) = pinned.take() {
                    pool.unpin(old);
                }
                let handle = match crate::error::pin_retrying(pool, self.ext, block, self.session) {
                    Ok(handle) => handle,
                    Err(e) => {
                        // Release the borrow before unwinding: the
                        // reader's Drop re-borrows `pinned` to unpin.
                        drop(pinned);
                        crate::error::abort_read(self.session, e)
                    }
                };
                let word = handle.word(word_in_block);
                *pinned = Some((block, handle));
                word
            }
        }
    }

    /// Current bit position.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Bits remaining until the end of the extent.
    pub fn remaining(&self) -> u64 {
        self.bit_len - self.pos
    }

    /// Reads a single bit.
    ///
    /// # Panics
    /// Panics when reading past the end of the extent.
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        assert!(self.pos < self.bit_len, "read past end of extent");
        let w = self.pos / 64;
        self.charge_word(w);
        let bit = (self.word(w) >> (63 - (self.pos % 64))) & 1;
        self.pos += 1;
        self.session.add_bits_read(1);
        bit == 1
    }

    /// Reads `k ≤ 64` bits as the low bits of a `u64` (MSB of the field
    /// first).
    #[inline]
    pub fn read_bits(&mut self, k: u32) -> u64 {
        debug_assert!(k <= 64);
        if k == 0 {
            return 0;
        }
        assert!(
            self.pos + u64::from(k) <= self.bit_len,
            "read past end of extent"
        );
        let w = self.pos / 64;
        let off = (self.pos % 64) as u32;
        self.charge_word(w);
        let avail = 64 - off;
        let value = if k <= avail {
            // Entirely within one word.
            (self.word(w) << off) >> (64 - k)
        } else {
            self.charge_word(w + 1);
            let hi = self.word(w) << off >> (64 - k); // top `avail` bits in place
            let lo = self.word(w + 1) >> (64 - (k - avail));
            hi | lo
        };
        self.pos += u64::from(k);
        self.session.add_bits_read(u64::from(k));
        value
    }

    /// Peeks at the next up-to-64 bits without consuming or charging:
    /// `(word, valid)` with the bits MSB-aligned and everything past
    /// `valid` zero. Pair with [`Self::consume_bits`], which performs the
    /// charging for whatever the caller actually consumed — so lookahead
    /// that is not consumed is never billed, keeping the I/O accounting
    /// identical to the cursor path.
    #[inline]
    pub fn peek_word(&self) -> (u64, u32) {
        let remaining = self.bit_len - self.pos;
        if remaining == 0 {
            return (0, 0);
        }
        // One load: only the current word's tail. Codes that straddle into
        // the next word take the decoder's fallback path — rarer than the
        // second load is expensive. Bits past `bit_len` are zero (writes
        // OR into zeroed words; truncation clears the tail), so no
        // masking is needed.
        //
        // Pooled (non-resident) readers hold an empty slice and land in
        // the `None` arm: they advertise no lookahead, because a peek
        // must not charge the session, yet a pooled access performs a
        // real fetch — and a fetch without a charge would break the
        // cold-cache invariant "real reads == charged reads". An empty
        // window sends codecs down the cursor path, whose charges are
        // identical to the peek/consume path by construction.
        let off = (self.pos % 64) as u32;
        match self.words.get((self.pos / 64) as usize) {
            Some(&w) => (w << off, remaining.min(u64::from(64 - off)) as u32),
            None => (0, 0),
        }
    }

    /// Consumes `k ≤ 64` bits previously examined via [`Self::peek_word`],
    /// charging the block(s) they lie in and counting them as read —
    /// exactly what [`Self::read_bits`] would have charged.
    #[inline]
    pub fn consume_bits(&mut self, k: u32) {
        debug_assert!(k <= 64);
        if k == 0 {
            return;
        }
        assert!(
            self.pos + u64::from(k) <= self.bit_len,
            "consume past end of extent"
        );
        let w = self.pos / 64;
        self.charge_word(w);
        let last = (self.pos + u64::from(k) - 1) / 64;
        if last != w {
            self.charge_word(last);
        }
        if self.pool.is_some() {
            // Pooled mode: every charge must drive a fetch, even though
            // the consumed bits were never peeked (defensive — pooled
            // peeks return an empty window, so this path is cold).
            let _ = self.word(w);
            let _ = self.word(last);
        }
        self.pos += u64::from(k);
        self.session.add_bits_read(u64::from(k));
    }

    /// Advances the cursor without reading (the skipped blocks are *not*
    /// charged; used to jump between concatenated bitmaps).
    pub fn skip_to(&mut self, bit_pos: u64) {
        assert!(bit_pos <= self.bit_len, "skip past end of extent");
        self.pos = bit_pos;
        // Force re-charging at the new position even if it is in the same
        // block: the residency set still deduplicates, this only resets the
        // cheap local cache.
        self.last_block = u64::MAX;
    }

    /// Number of unary zeros before the next 1 bit, consuming the 1 too.
    /// This is the first half of gamma decoding; provided here so decoding
    /// can run word-at-a-time against the disk.
    #[inline]
    pub fn read_unary(&mut self) -> u32 {
        let mut zeros = 0u32;
        loop {
            assert!(self.pos < self.bit_len, "unary code ran past end of extent");
            let w = self.pos / 64;
            let off = (self.pos % 64) as u32;
            self.charge_word(w);
            let chunk = self.word(w) << off;
            let avail = (64 - off).min((self.bit_len - self.pos) as u32);
            let lz = chunk.leading_zeros().min(avail);
            if lz < avail {
                // Found the terminating 1 within this word.
                self.pos += u64::from(lz) + 1;
                self.session.add_bits_read(u64::from(lz) + 1);
                return zeros + lz;
            }
            zeros += avail;
            self.pos += u64::from(avail);
            self.session.add_bits_read(u64::from(avail));
        }
    }
}

/// An appending bit cursor over one extent.
#[derive(Debug)]
pub struct DiskWriter<'a> {
    extent: &'a mut Extent,
    ext: ExtentId,
    session: &'a IoSession,
    block_bits: u64,
    last_block: u64,
}

impl<'a> DiskWriter<'a> {
    #[inline]
    fn charge_word(&mut self, word_idx: u64) {
        let block = word_idx * 64 / self.block_bits;
        if block != self.last_block {
            self.session.charge_write(self.ext, block);
            self.last_block = block;
        }
    }

    /// Current length of the extent in bits (== append position).
    pub fn pos(&self) -> u64 {
        self.extent.bit_len
    }

    /// Appends the low `k ≤ 64` bits of `value`, MSB of the field first.
    #[inline]
    pub fn write_bits(&mut self, value: u64, k: u32) {
        debug_assert!(k <= 64);
        if k == 0 {
            return;
        }
        debug_assert!(k == 64 || value < (1u64 << k), "value wider than k bits");
        let pos = self.extent.bit_len;
        let end_word = ((pos + u64::from(k) - 1) / 64) as usize;
        if end_word >= self.extent.words.len() {
            self.extent.words.resize(end_word + 1, 0);
        }
        let w = (pos / 64) as usize;
        let off = (pos % 64) as u32;
        self.charge_word(w as u64);
        let avail = 64 - off;
        if k <= avail {
            self.extent.words[w] |= value << (avail - k);
        } else {
            self.charge_word(w as u64 + 1);
            self.extent.words[w] |= value >> (k - avail);
            self.extent.words[w + 1] |= value << (64 - (k - avail));
        }
        self.extent.bit_len += u64::from(k);
        self.session.add_bits_written(u64::from(k));
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u64::from(bit), 1);
    }

    /// Appends `count` zero bits (used for padding/alignment).
    pub fn write_zeros(&mut self, mut count: u64) {
        while count > 0 {
            let k = count.min(64) as u32;
            self.write_bits(0, k);
            count -= u64::from(k);
        }
    }

    /// Appends `bit_len` bits stored MSB-first in `words` (bits of the
    /// final word beyond `bit_len` must be zero). When the extent length
    /// is 64-bit aligned this is a whole-word copy; the charged blocks and
    /// counted bits are the same as the equivalent `write_bits` loop.
    pub fn write_bulk(&mut self, words: &[u64], bit_len: u64) {
        if bit_len == 0 {
            return;
        }
        let nwords = (bit_len as usize).div_ceil(64);
        debug_assert!(nwords <= words.len(), "word slice shorter than bit_len");
        let pos = self.extent.bit_len;
        if pos.is_multiple_of(64) {
            debug_assert_eq!(self.extent.words.len() as u64, pos / 64);
            self.extent.words.extend_from_slice(&words[..nwords]);
            let first_word = pos / 64;
            let last_word = first_word + nwords as u64 - 1;
            for blk in (first_word * 64 / self.block_bits)..=(last_word * 64 / self.block_bits) {
                if blk != self.last_block {
                    self.session.charge_write(self.ext, blk);
                    self.last_block = blk;
                }
            }
            self.extent.bit_len += bit_len;
            self.session.add_bits_written(bit_len);
        } else {
            let full = (bit_len / 64) as usize;
            for &w in &words[..full] {
                self.write_bits(w, 64);
            }
            let tail = (bit_len % 64) as u32;
            if tail > 0 {
                self.write_bits(words[full] >> (64 - tail), tail);
            }
        }
    }
}

/// A positioned overwriting cursor (see [`Disk::writer_at`]).
#[derive(Debug)]
pub struct DiskWriterAt<'a> {
    extent: &'a mut Extent,
    ext: ExtentId,
    session: &'a IoSession,
    block_bits: u64,
    last_block: u64,
    pos: u64,
}

impl<'a> DiskWriterAt<'a> {
    #[inline]
    fn charge_word(&mut self, word_idx: u64) {
        let block = word_idx * 64 / self.block_bits;
        if block != self.last_block {
            self.session.charge_write(self.ext, block);
            self.last_block = block;
        }
    }

    /// Current bit position.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// ORs the low `k ≤ 64` bits of `value` into the stream at the cursor.
    /// The target bits must currently be zero.
    #[inline]
    pub fn write_bits(&mut self, value: u64, k: u32) {
        debug_assert!(k <= 64);
        if k == 0 {
            return;
        }
        debug_assert!(k == 64 || value < (1u64 << k), "value wider than k bits");
        let pos = self.pos;
        let end_word = ((pos + u64::from(k) - 1) / 64) as usize;
        if end_word >= self.extent.words.len() {
            self.extent.words.resize(end_word + 1, 0);
        }
        let w = (pos / 64) as usize;
        let off = (pos % 64) as u32;
        self.charge_word(w as u64);
        let avail = 64 - off;
        if k <= avail {
            debug_assert_eq!(
                self.extent.words[w] & (value << (avail - k)),
                0,
                "overwriting non-zero bits"
            );
            self.extent.words[w] |= value << (avail - k);
        } else {
            self.charge_word(w as u64 + 1);
            self.extent.words[w] |= value >> (k - avail);
            self.extent.words[w + 1] |= value << (64 - (k - avail));
        }
        self.pos += u64::from(k);
        if self.pos > self.extent.bit_len {
            self.extent.bit_len = self.pos;
        }
        self.session.add_bits_written(u64::from(k));
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u64::from(bit), 1);
    }

    /// Overwrites the `k ≤ 64` bits at the cursor with the low `k` bits
    /// of `value`, clearing whatever was there first — the positioned
    /// in-place update used to demote persisted fields (e.g. a skip
    /// entry's occupancy word). Charged exactly like [`Self::write_bits`].
    pub fn overwrite_bits(&mut self, value: u64, k: u32) {
        debug_assert!(k <= 64);
        if k == 0 {
            return;
        }
        debug_assert!(k == 64 || value < (1u64 << k), "value wider than k bits");
        let pos = self.pos;
        let end_word = ((pos + u64::from(k) - 1) / 64) as usize;
        if end_word >= self.extent.words.len() {
            self.extent.words.resize(end_word + 1, 0);
        }
        let w = (pos / 64) as usize;
        let off = (pos % 64) as u32;
        self.charge_word(w as u64);
        let avail = 64 - off;
        if k <= avail {
            let field = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
            let mask = field << (avail - k);
            self.extent.words[w] = (self.extent.words[w] & !mask) | (value << (avail - k));
        } else {
            // Straddles: the low `avail` bits of word `w`, the top
            // `k − avail` bits of word `w + 1`.
            self.charge_word(w as u64 + 1);
            let hi_mask = (1u64 << avail) - 1;
            self.extent.words[w] = (self.extent.words[w] & !hi_mask) | (value >> (k - avail));
            let lo = k - avail;
            let lo_mask = !(u64::MAX >> lo);
            self.extent.words[w + 1] = (self.extent.words[w + 1] & !lo_mask) | (value << (64 - lo));
        }
        self.pos += u64::from(k);
        if self.pos > self.extent.bit_len {
            self.extent.bit_len = self.pos;
        }
        self.session.add_bits_written(u64::from(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_disk() -> Disk {
        Disk::new(IoConfig::with_block_bits(128))
    }

    #[test]
    fn roundtrip_bits() {
        let mut disk = small_disk();
        let ext = disk.alloc();
        let s = IoSession::untracked();
        {
            let mut w = disk.writer(ext, &s);
            w.write_bits(0b1011, 4);
            w.write_bits(0xDEADBEEF, 32);
            w.write_bit(true);
            w.write_bits(u64::MAX, 64);
        }
        assert_eq!(disk.extent_bits(ext), 4 + 32 + 1 + 64);
        let s2 = IoSession::new();
        let mut r = disk.reader(ext, 0, &s2);
        assert_eq!(r.read_bits(4), 0b1011);
        assert_eq!(r.read_bits(32), 0xDEADBEEF);
        assert!(r.read_bit());
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn overwrite_bits_clears_then_sets_in_place() {
        let mut disk = small_disk();
        let ext = disk.alloc();
        let s = IoSession::untracked();
        {
            let mut w = disk.writer(ext, &s);
            for _ in 0..3 {
                w.write_bits(u64::MAX, 64);
            }
        }
        // Aligned full-word overwrite, a sub-word field, and a field
        // straddling a word boundary.
        {
            let mut w = disk.writer_at(ext, 0, &s);
            w.overwrite_bits(0xABCD, 64);
        }
        {
            let mut w = disk.writer_at(ext, 70, &s);
            w.overwrite_bits(0b1010, 4);
        }
        {
            let mut w = disk.writer_at(ext, 120, &s);
            w.overwrite_bits(0x5A5A, 16);
        }
        let s2 = IoSession::new();
        let mut r = disk.reader(ext, 0, &s2);
        assert_eq!(r.read_bits(64), 0xABCD);
        assert_eq!(r.read_bits(6), 0b111111);
        assert_eq!(r.read_bits(4), 0b1010);
        assert_eq!(r.read_bits(46), (1 << 46) - 1);
        assert_eq!(r.read_bits(16), 0x5A5A);
        assert_eq!(r.read_bits(56), (1 << 56) - 1);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reads_charge_distinct_blocks() {
        let mut disk = small_disk(); // 128-bit blocks = 2 words
        let ext = disk.alloc();
        let s = IoSession::untracked();
        {
            let mut w = disk.writer(ext, &s);
            for i in 0..8u64 {
                w.write_bits(i, 64); // 512 bits = 4 blocks
            }
        }
        assert_eq!(disk.extent_blocks(ext), 4);
        let s = IoSession::new();
        let mut r = disk.reader(ext, 0, &s);
        for _ in 0..8 {
            r.read_bits(64);
        }
        assert_eq!(s.stats().reads, 4);
        assert_eq!(s.stats().bits_read, 512);
    }

    #[test]
    fn partial_read_charges_only_touched_blocks() {
        let mut disk = small_disk();
        let ext = disk.alloc();
        let s = IoSession::untracked();
        disk.writer(ext, &s).write_zeros(512); // 4 blocks
        let s = IoSession::new();
        let mut r = disk.reader(ext, 0, &s);
        r.read_bits(10); // only block 0
        assert_eq!(s.stats().reads, 1);
    }

    #[test]
    fn skip_to_does_not_charge_skipped_blocks() {
        let mut disk = small_disk();
        let ext = disk.alloc();
        let s = IoSession::untracked();
        disk.writer(ext, &s).write_zeros(512);
        let s = IoSession::new();
        let mut r = disk.reader(ext, 0, &s);
        r.read_bit(); // block 0
        r.skip_to(300); // into block 2
        r.read_bit(); // block 2
        assert_eq!(s.stats().reads, 2);
    }

    #[test]
    fn straddling_read_charges_both_blocks() {
        let mut disk = small_disk();
        let ext = disk.alloc();
        let s = IoSession::untracked();
        disk.writer(ext, &s).write_zeros(256);
        let s = IoSession::new();
        let mut r = disk.reader(ext, 120, &s);
        r.read_bits(16); // bits 120..136 straddle the 128-bit boundary
        assert_eq!(s.stats().reads, 2);
    }

    #[test]
    fn unary_decoding_across_words() {
        let mut disk = small_disk();
        let ext = disk.alloc();
        let s = IoSession::untracked();
        {
            let mut w = disk.writer(ext, &s);
            w.write_zeros(100);
            w.write_bit(true);
            w.write_bit(true);
            w.write_zeros(3);
            w.write_bit(true);
        }
        let s = IoSession::new();
        let mut r = disk.reader(ext, 0, &s);
        assert_eq!(r.read_unary(), 100);
        assert_eq!(r.read_unary(), 0);
        assert_eq!(r.read_unary(), 3);
        assert_eq!(r.pos(), 106);
    }

    #[test]
    fn peek_and_consume_charge_like_read_bits() {
        let mut disk = small_disk(); // 128-bit blocks
        let ext = disk.alloc();
        let s = IoSession::untracked();
        {
            let mut w = disk.writer(ext, &s);
            for i in 0..8u64 {
                w.write_bits(i | 1 << 60, 64);
            }
        }
        // Cursor path.
        let s_cursor = IoSession::new();
        let mut r = disk.reader(ext, 120, &s_cursor);
        let want = r.read_bits(16); // straddles blocks 0 and 1
                                    // Peek/consume path at the same offset.
        let s_fast = IoSession::new();
        let mut r = disk.reader(ext, 120, &s_fast);
        let (word, valid) = r.peek_word();
        assert_eq!(valid, 8, "peek stops at the word boundary");
        assert_eq!(s_fast.stats().reads, 0, "peeking must not charge");
        r.consume_bits(8);
        let (word2, _) = r.peek_word();
        assert_eq!((word >> 56) << 8 | word2 >> 56, want);
        r.consume_bits(8);
        assert_eq!(s_fast.stats().reads, s_cursor.stats().reads);
        assert_eq!(s_fast.stats().bits_read, s_cursor.stats().bits_read);
    }

    #[test]
    fn write_bulk_matches_write_bits_charges() {
        let words: Vec<u64> = (0..5).map(|i| i * 0x0101_0101_0101_0101).collect();
        let bit_len = 4 * 64 + 17;
        // Aligned bulk append vs bit-cursor append: same bits, same charges.
        let run = |bulk: bool, prefix: u32| {
            let mut disk = small_disk();
            let ext = disk.alloc();
            let setup = IoSession::untracked();
            if prefix > 0 {
                disk.writer(ext, &setup).write_bits(1, prefix);
            }
            let s = IoSession::new();
            let mut w = disk.writer(ext, &s);
            if bulk {
                w.write_bulk(&words, bit_len);
            } else {
                for &word in &words[..4] {
                    w.write_bits(word, 64);
                }
                w.write_bits(words[4] >> (64 - 17), 17);
            }
            let check = IoSession::untracked();
            let mut r = disk.reader(ext, u64::from(prefix), &check);
            for &word in &words[..4] {
                assert_eq!(r.read_bits(64), word);
            }
            assert_eq!(r.read_bits(17), words[4] >> (64 - 17));
            (s.stats().writes, s.stats().bits_written)
        };
        assert_eq!(run(true, 0), run(false, 0), "aligned");
        assert_eq!(run(true, 13), run(false, 13), "unaligned");
    }

    #[test]
    fn writer_charges_written_blocks() {
        let mut disk = small_disk();
        let ext = disk.alloc();
        let s = IoSession::new();
        disk.writer(ext, &s).write_zeros(200); // blocks 0 and 1
        assert_eq!(s.stats().writes, 2);
        assert_eq!(s.stats().bits_written, 200);
    }

    #[test]
    fn append_after_reopen_continues_at_end() {
        let mut disk = small_disk();
        let ext = disk.alloc();
        let s = IoSession::untracked();
        disk.writer(ext, &s).write_bits(0b101, 3);
        disk.writer(ext, &s).write_bits(0b01, 2);
        let s2 = IoSession::untracked();
        let mut r = disk.reader(ext, 0, &s2);
        assert_eq!(r.read_bits(5), 0b10101);
    }

    #[test]
    fn free_releases_space() {
        let mut disk = small_disk();
        let ext = disk.alloc();
        let s = IoSession::untracked();
        disk.writer(ext, &s).write_zeros(1000);
        assert!(disk.used_bits() >= 1000);
        disk.free(ext);
        assert_eq!(disk.used_bits(), 0);
        assert_eq!(disk.used_blocks(), 0);
    }

    #[test]
    fn truncate_clears_tail_bits() {
        let mut disk = small_disk();
        let ext = disk.alloc();
        let s = IoSession::untracked();
        disk.writer(ext, &s).write_bits(u64::MAX, 64);
        disk.truncate(ext, 3);
        assert_eq!(disk.extent_bits(ext), 3);
        // Appending after truncation must not see stale one-bits.
        disk.writer(ext, &s).write_bits(0, 5);
        let mut r = disk.reader(ext, 0, &s);
        assert_eq!(r.read_bits(8), 0b1110_0000);
    }

    #[test]
    fn used_blocks_counts_tail_fragmentation() {
        let mut disk = small_disk();
        let a = disk.alloc();
        let b = disk.alloc();
        let s = IoSession::untracked();
        disk.writer(a, &s).write_bits(1, 1);
        disk.writer(b, &s).write_bits(1, 1);
        // Two one-bit extents still occupy one block each.
        assert_eq!(disk.used_blocks(), 2);
        assert_eq!(disk.used_bits(), 2);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn reading_past_end_panics() {
        let mut disk = small_disk();
        let ext = disk.alloc();
        let s = IoSession::untracked();
        disk.writer(ext, &s).write_bits(0, 8);
        let mut r = disk.reader(ext, 0, &s);
        r.read_bits(9);
    }
}
