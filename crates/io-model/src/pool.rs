//! The pinning, **sharded** buffer pool between [`IoSession`] charging
//! and a real [`BlockStore`] backend.
//!
//! A pool caches up to `capacity` model blocks in fixed-size frames,
//! spread over `shards` independently locked shards keyed by a hash of
//! `(extent, block)`. Readers **pin** the frame they are currently
//! decoding from (one pin per cursor, moved as the cursor crosses block
//! boundaries, released on drop), so concurrent cursors — within one
//! k-way merge or across query threads — can never have their working
//! block evicted under them. Eviction is the classic clock
//! (second-chance) sweep over the unpinned frames of one shard.
//!
//! Concurrency model: each shard is a `Mutex` around its frame table, so
//! cold fetches on blocks that hash to different shards proceed fully in
//! parallel (the backend fetch happens while holding only that shard's
//! lock). A pinned frame's payload is handed out as an `Arc<[u64]>`
//! inside the [`PinnedBlock`] handle, so the per-word read path of a
//! cursor touches **no lock at all** — the pin count guarantees the
//! frame is neither evicted nor rewritten while the handle lives.
//!
//! Invariants (asserted in tests, documented in `DESIGN.md`):
//!
//! * a pinned frame is never evicted or reused — an all-pinned shard
//!   grows past its capacity share rather than evict, drawing on a
//!   **pool-wide** frame budget ([`BufferPool::hard_cap`]) beyond which
//!   pinning fails with the typed [`PoolError::Exhausted`] (the budget
//!   is global, so exhaustion reflects actual memory use, never which
//!   shard a block hashes to);
//! * every miss performs exactly one backend fetch; hits perform none —
//!   so on a cold pool large enough to hold an operation's working set,
//!   real fetches equal the operation's distinct-block charge (at any
//!   thread count: the first thread to want a block fetches it under the
//!   shard lock, every later one hits), and on a warm pool they are at
//!   most that charge;
//! * frame contents are immutable while resident: the pool fronts
//!   read-only opened stores (writers promote extents to RAM instead).
//!
//! [`IoSession`]: crate::IoSession

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::backend::BlockStore;
use crate::disk::ExtentId;
use crate::metrics::io_metrics;

/// Default number of shards (rounded down to the pool capacity when the
/// pool is smaller than this).
pub const DEFAULT_POOL_SHARDS: usize = 8;

/// Default hard-ceiling multiplier: a pool may grow to at most
/// `GROWTH_CEILING ×` its capacity when every frame is pinned.
pub const GROWTH_CEILING: usize = 4;

/// Minimum pinned-growth headroom (frames past capacity) granted by
/// [`BufferPool::new`] regardless of how small the pool is: a wide
/// k-way merge legitimately holds one pinned cursor block per input
/// stream, and a tiny pool must absorb that without tripping the
/// ceiling (1024 frames of 1 KiB blocks is 1 MiB — negligible next to
/// the leak the ceiling guards against).
pub const MIN_GROWTH_HEADROOM: usize = 1024;

/// Aggregate pool counters (see [`BufferPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Block requests served from a resident frame.
    pub hits: u64,
    /// Block requests that required a backend fetch.
    pub misses: u64,
    /// Frames evicted by the clock sweep.
    pub evictions: u64,
    /// Frames allocated past the capacity target because every frame of
    /// the shard was pinned (growth is bounded by the hard ceiling).
    pub grown: u64,
}

impl PoolStats {
    /// Component-wise sum (used to aggregate per-shard and per-volume
    /// counters).
    pub fn merged(&self, other: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            grown: self.grown + other.grown,
        }
    }
}

/// Typed failure of [`BufferPool::try_pin`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Every frame of the target shard is pinned and the pool has
    /// already allocated its hard ceiling of frames globally: admitting
    /// one more pin would let pinned memory grow without bound.
    Exhausted {
        /// Shard that could not admit the block.
        shard: usize,
        /// Frames currently allocated across the whole pool.
        frames: usize,
        /// The pool-wide hard frame ceiling.
        hard_frames: usize,
    },
    /// The backend fetch for a missed block failed. The frame is left
    /// empty and evictable; [`crate::BlockStoreError::class`] on the
    /// source says whether retrying the same pin can succeed (transient
    /// OS flake), cannot (the file vanished after open), or found
    /// corruption (verified fetch caught a bad page trailer).
    Fetch {
        /// The backend's error, with its retry classification.
        source: crate::BlockStoreError,
    },
    /// The target shard's lock is poisoned: a thread panicked while
    /// mutating that shard's frame table, so its state cannot be
    /// trusted. Surfaced as a typed error so one crashed query degrades
    /// service instead of cascading panics through every later pin.
    Poisoned {
        /// Shard whose lock is poisoned.
        shard: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Exhausted {
                shard,
                frames,
                hard_frames,
            } => write!(
                f,
                "buffer pool exhausted: every frame of shard {shard} is pinned \
                 and the hard ceiling of {hard_frames} frames is reached \
                 ({frames} allocated)"
            ),
            PoolError::Fetch { source } => write!(f, "block fetch failed after open: {source}"),
            PoolError::Poisoned { shard } => write!(
                f,
                "buffer pool shard {shard} is poisoned (a thread panicked \
                 while updating its frame table)"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

/// A pinned block: the frame's payload plus enough addressing to release
/// the pin. Reading through [`Self::word`] touches no lock — the pin
/// keeps the frame resident and its contents immutable.
///
/// Obtain via [`BufferPool::pin`]/[`BufferPool::try_pin`]; release via
/// [`BufferPool::unpin`]. A handle that is dropped without `unpin` leaks
/// its pin (the frame stays unevictable), so owners hold it in a guard
/// like `DiskReader` that unpins on drop.
#[derive(Debug)]
pub struct PinnedBlock {
    shard: u32,
    frame: u32,
    data: Arc<[u64]>,
}

impl PinnedBlock {
    /// Reads word `word_in_block` of the pinned frame.
    #[inline]
    pub fn word(&self, word_in_block: usize) -> u64 {
        self.data[word_in_block]
    }
}

#[derive(Debug)]
struct Frame {
    key: (ExtentId, u64),
    data: Arc<[u64]>,
    pins: u32,
    referenced: bool,
}

/// Sentinel key for an unkeyed (reusable) frame.
const NO_KEY: (ExtentId, u64) = (ExtentId(u32::MAX), u64::MAX);

#[derive(Debug, Default)]
struct Shard {
    frames: Vec<Frame>,
    map: HashMap<(ExtentId, u64), u32>,
    hand: usize,
    stats: PoolStats,
}

/// A clock-eviction, pin-counting, sharded block cache over a
/// [`BlockStore`].
pub struct BufferPool {
    store: Arc<dyn BlockStore>,
    capacity: usize,
    hard_cap: usize,
    block_words: usize,
    shards: Box<[Mutex<Shard>]>,
    /// Capacity target per shard (`ceil(capacity / shards)`).
    cap_per_shard: usize,
    /// Frames allocated across all shards — the global count the hard
    /// ceiling is enforced against. Grows on allocation; shrinks when
    /// `unpin` releases trailing over-target frames back to the budget.
    frames_total: AtomicUsize,
    /// When set, misses fetch via [`BlockStore::read_block_verified`]
    /// so each faulted-in page passes its integrity trailer. Warm hits
    /// never re-verify — they never reach the backend at all.
    verify: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("backend", &self.store.kind())
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("resident", &self.resident())
            .field("stats", &self.stats())
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool of at most `capacity` blocks (frames of
    /// `block_bits / 64` words each) over `store`, sharded
    /// [`DEFAULT_POOL_SHARDS`] ways (fewer for tiny pools) with a hard
    /// growth ceiling of max([`GROWTH_CEILING`]` × capacity`,
    /// `capacity + `[`MIN_GROWTH_HEADROOM`]) frames — the headroom floor
    /// keeps legitimate transient pinning (one pinned cursor per stream
    /// of a wide k-way merge) working on tiny pools; the ceiling exists
    /// to stop unbounded pin leaks, not to constrain real queries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or `block_bits` is not a positive
    /// multiple of 64.
    pub fn new(store: Arc<dyn BlockStore>, capacity: usize, block_bits: u64) -> Self {
        // Largest power of two ≤ min(DEFAULT_POOL_SHARDS, capacity), so a
        // tiny pool is not split into shards with zero capacity share.
        let want = DEFAULT_POOL_SHARDS.min(capacity.max(1));
        let shards = 1usize << (usize::BITS - 1 - want.leading_zeros());
        Self::with_shards(
            store,
            capacity,
            capacity
                .saturating_mul(GROWTH_CEILING)
                .max(capacity.saturating_add(MIN_GROWTH_HEADROOM)),
            shards,
            block_bits,
        )
    }

    /// [`Self::new`] with explicit shard count (a power of two) and hard
    /// frame ceiling (`≥ capacity`). A single shard gives the exact
    /// global clock order of the pre-sharded pool — tests use it for
    /// deterministic eviction sequences.
    ///
    /// The capacity target is split per shard (`ceil(capacity /
    /// shards)` each, so [`Self::capacity`] reports the rounded-up
    /// steady-state total); the hard ceiling is enforced **globally**
    /// via an atomic frame count, so exhaustion depends on actual
    /// memory use, never on which shard a block hashes to.
    ///
    /// # Panics
    /// Panics if `capacity` is zero, `shards` is not a power of two,
    /// `hard_cap < capacity`, or `block_bits` is not a positive multiple
    /// of 64.
    pub fn with_shards(
        store: Arc<dyn BlockStore>,
        capacity: usize,
        hard_cap: usize,
        shards: usize,
        block_bits: u64,
    ) -> Self {
        assert!(capacity > 0, "pool needs at least one frame");
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        assert!(hard_cap >= capacity, "hard ceiling below capacity");
        assert!(
            block_bits > 0 && block_bits.is_multiple_of(64),
            "block_bits must be a positive multiple of 64"
        );
        let cap_per_shard = capacity.div_ceil(shards);
        BufferPool {
            store,
            capacity: cap_per_shard * shards,
            // The rounded capacity is reachable by per-shard growth, so
            // the global ceiling can never sit below it.
            hard_cap: hard_cap.max(cap_per_shard * shards),
            block_words: (block_bits / 64) as usize,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            cap_per_shard,
            frames_total: AtomicUsize::new(0),
            verify: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Turns verified fetches on or off: with `on`, every miss fetches
    /// through [`BlockStore::read_block_verified`], so pages are
    /// integrity-checked exactly once — on fault-in, never on warm hits.
    pub fn set_verify(&self, on: bool) {
        self.verify.store(on, Ordering::Relaxed);
    }

    /// Whether misses use verified fetches.
    pub fn verify(&self) -> bool {
        self.verify.load(Ordering::Relaxed)
    }

    /// The backend this pool fetches from.
    pub fn store(&self) -> &Arc<dyn BlockStore> {
        &self.store
    }

    /// Target number of frames (the requested capacity rounded up to a
    /// per-shard multiple — the steady-state total the clock sweeps
    /// keep the pool at).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hard frame ceiling: the pool never allocates more than this many
    /// frames in total, and refuses pins that would require it.
    pub fn hard_cap(&self) -> usize {
        self.hard_cap
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of currently allocated frames across all shards.
    ///
    /// Diagnostics stay available on a poisoned shard (its counters are
    /// plain data — the panic cannot have left them torn mid-word).
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).frames.len())
            .sum()
    }

    /// Hit/miss/eviction/growth counters, summed over shards (poison
    /// tolerant, like [`Self::resident`]).
    pub fn stats(&self) -> PoolStats {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).stats)
            .fold(PoolStats::default(), |acc, s| acc.merged(&s))
    }

    /// Real fetches performed by the backend on this pool's behalf.
    pub fn fetches(&self) -> u64 {
        self.store.fetches()
    }

    #[inline]
    fn shard_of(&self, ext: ExtentId, block: u64) -> usize {
        // Fibonacci multiplicative hash over the block address; the high
        // bits select the shard (the low bits of `block` alone would put
        // every extent's block 0 in one shard).
        let h = ((u64::from(ext.0) << 40) ^ block).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 48) as usize & (self.shards.len() - 1)
    }

    /// Pins block `block` of extent `ext`, fetching it on miss. The
    /// returned handle reads without locking and keeps the frame
    /// unevictable until [`Self::unpin`].
    ///
    /// # Panics
    /// Panics with the [`PoolError`] message when every frame of the
    /// target shard is pinned and the pool-wide frame budget is spent
    /// (cursor paths cannot propagate errors; use [`Self::try_pin`] to
    /// handle it).
    pub fn pin(&self, ext: ExtentId, block: u64) -> PinnedBlock {
        self.try_pin(ext, block)
            .unwrap_or_else(|e| panic!("pin({}, {block}): {e}", ext.0))
    }

    /// Fallible [`Self::pin`].
    pub fn try_pin(&self, ext: ExtentId, block: u64) -> Result<PinnedBlock, PoolError> {
        let key = (ext, block);
        let si = self.shard_of(ext, block);
        // A poisoned shard (a thread panicked mid-mutation) surfaces as
        // a typed error: its frame table may be inconsistent, and a
        // cascade of panics from every later query helps nobody.
        let mut shard = self.shards[si]
            .lock()
            .map_err(|_| PoolError::Poisoned { shard: si })?;
        if let Some(&idx) = shard.map.get(&key) {
            let f = &mut shard.frames[idx as usize];
            f.pins += 1;
            f.referenced = true;
            let data = Arc::clone(&f.data);
            shard.stats.hits += 1;
            io_metrics().pool_hits.inc();
            return Ok(PinnedBlock {
                shard: si as u32,
                frame: idx,
                data,
            });
        }
        let idx = self.acquire_frame(si, &mut shard)?;
        // The fetch happens under this shard's lock only: a racing thread
        // wanting the same block waits and then hits; threads on other
        // shards are unaffected. An evicted victim's buffer is refilled
        // in place when no stale handle still holds a clone of it.
        let f = &mut shard.frames[idx as usize];
        let mut data = std::mem::replace(&mut f.data, Arc::from(Vec::new()));
        match Arc::get_mut(&mut data) {
            Some(buf) if buf.len() == self.block_words => {}
            _ => data = vec![0u64; self.block_words].into(),
        }
        let buf = Arc::get_mut(&mut data).expect("uniquely owned buffer");
        // `Instant::now` only when recording is on, so the stripped
        // baseline (obs disabled) pays neither the clock read nor the
        // histogram write on its miss path.
        let fetch_start = psi_obs::enabled().then(std::time::Instant::now);
        let fetched = if self.verify() {
            self.store.read_block_verified(ext, block, buf)
        } else {
            self.store.read_block(ext, block, buf)
        };
        if let Err(e) = fetched {
            if e.class == crate::ErrorClass::Corrupt {
                io_metrics().pool_verify_failures.inc();
            }
            // The file was validated at open; a failing fetch afterwards
            // means it changed or rotted underneath us — or the OS flaked.
            // Leave the frame empty and evictable; the caller classifies
            // the error (retry transient, surface permanent).
            let f = &mut shard.frames[idx as usize];
            f.key = NO_KEY;
            f.data = Arc::from(Vec::new());
            f.pins = 0;
            f.referenced = false;
            return Err(PoolError::Fetch { source: e });
        }
        // Counted only after the fetch succeeds: a rejected or failed pin
        // is not a miss, keeping `misses == fetches` exact across both
        // exhaustion and fetch-failure events.
        shard.stats.misses += 1;
        let m = io_metrics();
        m.pool_misses.inc();
        if let Some(start) = fetch_start {
            m.pool_fetch_ns.record_since(start);
        }
        let f = &mut shard.frames[idx as usize];
        f.key = key;
        f.data = Arc::clone(&data);
        f.pins = 1;
        f.referenced = true;
        shard.map.insert(key, idx);
        Ok(PinnedBlock {
            shard: si as u32,
            frame: idx,
            data,
        })
    }

    /// Releases the pin held by `block`, making its frame evictable once
    /// no other pins remain. Trailing unpinned frames beyond the shard's
    /// capacity share are released back to the pool-wide budget — a
    /// still-pinned frame above them retains them (as usable cache)
    /// until it releases, so over-target budget is held only while some
    /// pin of the spike that grew the shard is live; once the spike's
    /// pins drain, the shard is back at its capacity share and the
    /// budget fully returned. Pins are scoped to cursors (released on
    /// `DiskReader` drop), so a spike can never *permanently* starve
    /// other shards.
    pub fn unpin(&self, block: PinnedBlock) {
        // Poison tolerant: unpin runs from reader drops, often *during*
        // an unwind — panicking here would escalate to an abort. The pin
        // decrement is safe on a poisoned shard (plain counter).
        let mut shard = self.shards[block.shard as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let f = &mut shard.frames[block.frame as usize];
        debug_assert!(f.pins > 0, "unpin of unpinned frame");
        f.pins -= 1;
        while shard.frames.len() > self.cap_per_shard
            && shard.frames.last().expect("non-empty").pins == 0
        {
            let victim = shard.frames.pop().expect("non-empty");
            shard.map.remove(&victim.key);
            self.frames_total.fetch_sub(1, Ordering::Relaxed);
            if shard.hand >= shard.frames.len() {
                shard.hand = 0;
            }
        }
    }

    /// Ensures block `block` of `ext` is resident (fetching on miss)
    /// without holding a pin — used when a *charge* must drive a fetch
    /// even though no payload word is read (directory-record charges).
    ///
    /// # Panics
    /// Panics like [`Self::pin`] on failure; fallible callers use
    /// [`Self::try_touch`].
    pub fn touch(&self, ext: ExtentId, block: u64) {
        let pinned = self.pin(ext, block);
        self.unpin(pinned);
    }

    /// Fallible [`Self::touch`].
    pub fn try_touch(&self, ext: ExtentId, block: u64) -> Result<(), PoolError> {
        let pinned = self.try_pin(ext, block)?;
        self.unpin(pinned);
        Ok(())
    }

    /// Drops any frames belonging to `ext` (called when the owning disk
    /// promotes the extent to a resident RAM image, making pooled copies
    /// stale).
    ///
    /// # Panics
    /// Panics if one of those frames is still pinned by a live reader.
    pub fn forget_extent(&self, ext: ExtentId) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            let stale: Vec<(ExtentId, u64)> = shard
                .map
                .keys()
                .filter(|(e, _)| *e == ext)
                .copied()
                .collect();
            for key in stale {
                let idx = shard.map.remove(&key).expect("key just listed");
                let f = &mut shard.frames[idx as usize];
                assert!(f.pins == 0, "promoting an extent with pinned blocks");
                // Leave the frame allocated but unkeyed so the clock
                // reuses it; drop the payload now.
                f.key = NO_KEY;
                f.data = Arc::from(Vec::new());
                f.referenced = false;
            }
        }
    }

    /// Finds a free frame slot in shard `si`: grows up to the shard's
    /// capacity share, then clock-evicts an unpinned frame, then (all
    /// pinned) grows toward the hard ceiling, then fails.
    fn acquire_frame(
        &self,
        si: usize,
        shard: &mut MutexGuard<'_, Shard>,
    ) -> Result<u32, PoolError> {
        let fresh = || Frame {
            key: NO_KEY,
            data: Arc::from(Vec::new()),
            pins: 0,
            referenced: false,
        };
        // Grow toward this shard's capacity share (budget permitting —
        // pinned growth elsewhere may already have spent it).
        if shard.frames.len() < self.cap_per_shard && self.try_reserve_frame() {
            shard.frames.push(fresh());
            return Ok((shard.frames.len() - 1) as u32);
        }
        // Clock sweep: two full revolutions guarantee a victim unless
        // every frame is pinned.
        for _ in 0..2 * shard.frames.len() {
            let idx = shard.hand;
            shard.hand = (shard.hand + 1) % shard.frames.len();
            let f = &mut shard.frames[idx];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            let key = f.key;
            if shard.map.remove(&key).is_some() {
                shard.stats.evictions += 1;
                io_metrics().pool_evictions.inc();
            }
            // The victim's buffer stays in the frame: the caller refills
            // it in place (no per-miss allocation) unless a stale handle
            // still holds a clone.
            return Ok(idx as u32);
        }
        // Every frame pinned: grow past the target rather than evict a
        // pinned frame (the invariant readers rely on) — but only while
        // the *global* frame budget lasts, so exhaustion reflects actual
        // memory use, never which shard the block hashed to.
        if self.try_reserve_frame() {
            shard.stats.grown += 1;
            io_metrics().pool_grown.inc();
            shard.frames.push(fresh());
            return Ok((shard.frames.len() - 1) as u32);
        }
        Err(PoolError::Exhausted {
            shard: si,
            frames: self.frames_total.load(Ordering::Relaxed),
            hard_frames: self.hard_cap,
        })
    }

    /// Claims one frame from the pool-wide budget; `false` when the
    /// hard ceiling is reached. `unpin` returns over-target frames to
    /// the budget as their pins release.
    fn try_reserve_frame(&self) -> bool {
        let mut total = self.frames_total.load(Ordering::Relaxed);
        loop {
            if total >= self.hard_cap {
                return false;
            }
            match self.frames_total.compare_exchange_weak(
                total,
                total + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => total = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStore;
    use crate::{Disk, IoConfig, IoSession};

    fn store_with_blocks(blocks: u64) -> Arc<dyn BlockStore> {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let ext = disk.alloc();
        let io = IoSession::untracked();
        let mut w = disk.writer(ext, &io);
        for i in 0..blocks * 2 {
            w.write_bits(i + 1, 64);
        }
        Arc::new(MemStore::from_disk(&disk))
    }

    /// A single-shard pool: deterministic global clock order.
    fn pool1(blocks: u64, capacity: usize) -> BufferPool {
        BufferPool::with_shards(store_with_blocks(blocks), capacity, 4 * capacity, 1, 128)
    }

    const EXT: ExtentId = ExtentId(0);

    #[test]
    fn hits_do_not_refetch() {
        let pool = pool1(4, 4);
        let a = pool.pin(EXT, 0);
        pool.unpin(a);
        let b = pool.pin(EXT, 0);
        assert_eq!(b.word(0), 1);
        pool.unpin(b);
        assert_eq!(pool.fetches(), 1);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn failed_fetch_is_typed_and_frame_is_reusable() {
        // Fetch 0 fails permanently, fetch 1 (the retry) succeeds: the
        // error is typed (not a panic), carries the backend's class, and
        // the frame it briefly held is reusable afterwards.
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let ext = disk.alloc();
        let io = IoSession::untracked();
        disk.writer(ext, &io).write_bits(7, 64);
        let faulty =
            crate::FaultyStore::new(MemStore::from_disk(&disk), [(0, crate::Fault::Permanent)]);
        let pool = BufferPool::with_shards(Arc::new(faulty), 4, 16, 1, 128);
        let err = pool.try_pin(EXT, 0).expect_err("injected fault");
        match &err {
            PoolError::Fetch { source } => {
                assert_eq!(source.class, crate::ErrorClass::Permanent);
            }
            other => panic!("expected Fetch, got {other}"),
        }
        // A failed pin is not a miss and leaves no pinned frame behind.
        assert_eq!(pool.stats().misses, 0);
        // The schedule is spent: the same pin now succeeds.
        let b = pool.try_pin(EXT, 0).expect("fault schedule spent");
        assert_eq!(b.word(0), 7);
        pool.unpin(b);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn clock_evicts_unpinned_in_order() {
        let pool = pool1(8, 2);
        for blk in 0..4 {
            let f = pool.pin(EXT, blk);
            pool.unpin(f);
        }
        // Capacity 2: blocks 2 and 3 resident, 0 and 1 evicted.
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.stats().evictions, 2);
        let f = pool.pin(EXT, 0); // re-fetch
        pool.unpin(f);
        assert_eq!(pool.fetches(), 5);
    }

    #[test]
    fn pinned_frames_survive_pressure() {
        let pool = pool1(8, 2);
        let pinned = pool.pin(EXT, 0);
        for blk in 1..6 {
            let f = pool.pin(EXT, blk);
            pool.unpin(f);
        }
        // The pinned frame still holds block 0's data.
        assert_eq!(pinned.word(0), 1);
        let again = pool.pin(EXT, 0);
        assert_eq!(again.word(0), 1, "pinned block must hit its own frame");
        assert_eq!(
            pool.fetches(),
            6,
            "block 0 fetched once despite eviction pressure"
        );
        pool.unpin(again);
        pool.unpin(pinned);
    }

    #[test]
    fn all_pinned_grows_past_capacity_and_counts_it() {
        let pool = pool1(8, 2);
        let f0 = pool.pin(EXT, 0);
        let f1 = pool.pin(EXT, 1);
        let f2 = pool.pin(EXT, 2); // both frames pinned: pool must grow
        assert_eq!(pool.resident(), 3);
        assert!(pool.resident() > pool.capacity());
        assert_eq!(pool.stats().grown, 1);
        for f in [f0, f1, f2] {
            pool.unpin(f);
        }
    }

    #[test]
    fn hard_ceiling_is_global_not_per_shard() {
        // 4 shards, capacity 4, ceiling 8: eight pinned blocks must be
        // admitted *wherever they hash* — the budget is pool-wide — and
        // the ninth must fail typed, deterministically.
        let pool = BufferPool::with_shards(store_with_blocks(16), 4, 8, 4, 128);
        let held: Vec<PinnedBlock> = (0..8).map(|b| pool.pin(EXT, b)).collect();
        assert_eq!(pool.resident(), 8);
        let err = pool.try_pin(EXT, 8).expect_err("global ceiling");
        match err {
            PoolError::Exhausted {
                frames,
                hard_frames,
                ..
            } => {
                assert_eq!((frames, hard_frames), (8, 8));
            }
            other => panic!("expected Exhausted, got {other}"),
        }
        for f in held {
            pool.unpin(f);
        }
        // With pins released the same request succeeds by eviction.
        let f = pool.try_pin(EXT, 8).expect("evictable");
        pool.unpin(f);
        assert!(pool.resident() <= pool.hard_cap());
    }

    #[test]
    fn hard_ceiling_fails_typed_when_all_pinned() {
        let pool = BufferPool::with_shards(store_with_blocks(8), 2, 3, 1, 128);
        let held: Vec<PinnedBlock> = (0..3).map(|b| pool.pin(EXT, b)).collect();
        assert_eq!(pool.resident(), 3);
        let err = pool.try_pin(EXT, 3).expect_err("ceiling must refuse");
        assert_eq!(
            err,
            PoolError::Exhausted {
                shard: 0,
                frames: 3,
                hard_frames: 3
            }
        );
        assert!(err.to_string().contains("hard ceiling"));
        // A rejected pin is not a miss: no fetch happened for it.
        assert_eq!(pool.stats().misses, pool.fetches());
        // Releasing a pin pops the over-target frame, returning its
        // budget — the same request then succeeds by regrowth.
        let mut held = held;
        pool.unpin(held.pop().expect("held pin"));
        assert_eq!(pool.resident(), 2, "over-target frame released");
        let f = pool.try_pin(EXT, 3).expect("budget returned");
        pool.unpin(f);
        for f in held {
            pool.unpin(f);
        }
    }

    #[test]
    fn released_budget_cannot_starve_other_shards() {
        // Spend the whole budget growing whichever shards the first
        // eight blocks hash to, release every pin, then touch *every*
        // block of a larger range: each shard — including any that held
        // zero frames during the spike — must be servable again because
        // unpin returned the over-target frames to the global budget.
        let pool = BufferPool::with_shards(store_with_blocks(64), 4, 8, 4, 128);
        let held: Vec<PinnedBlock> = (0..8).map(|b| pool.pin(EXT, b)).collect();
        for f in held {
            pool.unpin(f);
        }
        assert!(pool.resident() <= pool.capacity());
        for blk in 0..64 {
            let f = pool.try_pin(EXT, blk).expect("no shard is starved");
            pool.unpin(f);
        }
    }

    #[test]
    fn touch_fetches_without_leaving_a_pin() {
        let pool = pool1(4, 2);
        pool.touch(EXT, 1);
        assert_eq!(pool.fetches(), 1);
        pool.touch(EXT, 1);
        assert_eq!(pool.fetches(), 1, "second touch hits");
        // No pins left: the frame is evictable.
        pool.touch(EXT, 2);
        pool.touch(EXT, 3);
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn forget_extent_drops_frames() {
        let pool = pool1(4, 4);
        pool.touch(EXT, 0);
        pool.touch(EXT, 1);
        pool.forget_extent(EXT);
        // Both frames are reusable; repinning refetches.
        pool.touch(EXT, 0);
        assert_eq!(pool.fetches(), 3);
    }

    #[test]
    fn shards_spread_blocks_and_isolate_eviction() {
        let pool = BufferPool::with_shards(store_with_blocks(64), 16, 64, 4, 128);
        for blk in 0..32 {
            pool.touch(EXT, blk);
        }
        assert_eq!(pool.num_shards(), 4);
        assert_eq!(pool.stats().misses, 32);
        // Each shard holds at most its share.
        assert!(pool.resident() <= 16);
        // Re-touching everything refetches only what was evicted.
        let before = pool.fetches();
        for blk in 0..32 {
            pool.touch(EXT, blk);
        }
        assert!(pool.fetches() > before, "capacity 16 < 32 working set");
        assert!(pool.fetches() <= before + 32);
    }

    #[test]
    fn poisoned_shard_is_a_typed_error_not_a_cascade_panic() {
        let pool = pool1(4, 4);
        let held = pool.pin(EXT, 0);
        // Poison the single shard: panic while holding its lock.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = pool.shards[0].lock().unwrap();
            panic!("simulated crash while mutating the shard");
        }));
        assert!(poison.is_err());
        // Pins fail typed, not by panicking.
        assert_eq!(
            pool.try_pin(EXT, 1).expect_err("poisoned shard"),
            PoolError::Poisoned { shard: 0 }
        );
        // Diagnostics and unpin still work (unpin often runs mid-unwind).
        assert_eq!(pool.resident(), 1);
        assert_eq!(pool.stats().misses, 1);
        pool.unpin(held);
    }

    #[test]
    fn verify_mode_uses_verified_fetches_on_miss_only() {
        // A store whose verified path always reports corruption: with
        // verify off the pin succeeds; with verify on the *miss* fails
        // Corrupt, while an already-warm block keeps hitting.
        #[derive(Debug)]
        struct AlwaysCorrupt(MemStore);
        impl BlockStore for AlwaysCorrupt {
            fn read_block(
                &self,
                ext: ExtentId,
                block: u64,
                out: &mut [u64],
            ) -> Result<(), crate::BlockStoreError> {
                self.0.read_block(ext, block, out)
            }
            fn read_block_verified(
                &self,
                _ext: ExtentId,
                _block: u64,
                _out: &mut [u64],
            ) -> Result<(), crate::BlockStoreError> {
                Err(crate::BlockStoreError::corrupt("trailer mismatch"))
            }
            fn fetches(&self) -> u64 {
                self.0.fetches()
            }
            fn kind(&self) -> &'static str {
                "always-corrupt"
            }
        }
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let ext = disk.alloc();
        let io = IoSession::untracked();
        disk.writer(ext, &io).write_bits(9, 64);
        let store = Arc::new(AlwaysCorrupt(MemStore::from_disk(&disk)));
        let pool = BufferPool::with_shards(store, 4, 16, 1, 128);

        // Unverified miss: block 0 faults in fine.
        let warm = pool.pin(EXT, 0);
        pool.set_verify(true);
        // Warm hit under verify: served from the frame, no verification,
        // no fetch.
        let again = pool.pin(EXT, 0);
        assert_eq!(again.word(0), 9);
        pool.unpin(again);
        assert_eq!(pool.fetches(), 1);
        // Cold miss under verify: the corrupt trailer surfaces typed.
        match pool.try_pin(EXT, 1) {
            Err(PoolError::Fetch { source }) => {
                assert_eq!(source.class, crate::ErrorClass::Corrupt);
            }
            other => panic!("expected corrupt fetch, got {other:?}"),
        }
        pool.unpin(warm);
    }

    #[test]
    fn default_shard_count_scales_down_for_tiny_pools() {
        assert_eq!(
            BufferPool::new(store_with_blocks(4), 1, 128).num_shards(),
            1
        );
        assert_eq!(
            BufferPool::new(store_with_blocks(4), 3, 128).num_shards(),
            2
        );
        assert_eq!(
            BufferPool::new(store_with_blocks(4), 1024, 128).num_shards(),
            DEFAULT_POOL_SHARDS
        );
    }
}
