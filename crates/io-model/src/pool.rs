//! The pinning buffer pool between [`IoSession`] charging and a real
//! [`BlockStore`] backend.
//!
//! A pool caches up to `capacity` model blocks in fixed-size frames.
//! Readers **pin** the frame they are currently decoding from (one pin
//! per cursor, moved as the cursor crosses block boundaries, released on
//! drop), so concurrent cursors in a k-way merge can never have their
//! working block evicted under them. Eviction is the classic clock
//! (second-chance) sweep over unpinned frames.
//!
//! Invariants (asserted in tests, documented in `DESIGN.md`):
//!
//! * a pinned frame is never evicted or reused — the pool grows past its
//!   capacity target rather than evict a pinned frame;
//! * every miss performs exactly one backend fetch; hits perform none —
//!   so on a cold pool large enough to hold an operation's working set,
//!   real fetches equal the operation's distinct-block charge, and on a
//!   warm pool they are at most that charge;
//! * frame contents are immutable while resident: the pool fronts
//!   read-only opened stores (writers promote extents to RAM instead).
//!
//! [`IoSession`]: crate::IoSession

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::backend::BlockStore;
use crate::disk::ExtentId;

/// Aggregate pool counters (see [`BufferPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Block requests served from a resident frame.
    pub hits: u64,
    /// Block requests that required a backend fetch.
    pub misses: u64,
    /// Frames evicted by the clock sweep.
    pub evictions: u64,
}

#[derive(Debug)]
struct Frame {
    key: (ExtentId, u64),
    data: Box<[u64]>,
    pins: u32,
    referenced: bool,
}

#[derive(Debug, Default)]
struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<(ExtentId, u64), u32>,
    hand: usize,
    stats: PoolStats,
}

/// A clock-eviction, pin-counting block cache over a [`BlockStore`].
pub struct BufferPool {
    store: Rc<dyn BlockStore>,
    capacity: usize,
    block_words: usize,
    inner: RefCell<PoolInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("BufferPool")
            .field("backend", &self.store.kind())
            .field("capacity", &self.capacity)
            .field("resident", &inner.frames.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool of at most `capacity` blocks (frames of
    /// `block_bits / 64` words each) over `store`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or `block_bits` is not a positive
    /// multiple of 64.
    pub fn new(store: Rc<dyn BlockStore>, capacity: usize, block_bits: u64) -> Self {
        assert!(capacity > 0, "pool needs at least one frame");
        assert!(
            block_bits > 0 && block_bits.is_multiple_of(64),
            "block_bits must be a positive multiple of 64"
        );
        BufferPool {
            store,
            capacity,
            block_words: (block_bits / 64) as usize,
            inner: RefCell::new(PoolInner::default()),
        }
    }

    /// The backend this pool fetches from.
    pub fn store(&self) -> &Rc<dyn BlockStore> {
        &self.store
    }

    /// Target number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident frames.
    pub fn resident(&self) -> usize {
        self.inner.borrow().frames.len()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.borrow().stats
    }

    /// Real fetches performed by the backend on this pool's behalf.
    pub fn fetches(&self) -> u64 {
        self.store.fetches()
    }

    /// Pins block `block` of extent `ext`, fetching it on miss. Returns
    /// the frame index, stable until the matching [`Self::unpin_frame`].
    pub fn pin(&self, ext: ExtentId, block: u64) -> u32 {
        let key = (ext, block);
        let mut inner = self.inner.borrow_mut();
        if let Some(&idx) = inner.map.get(&key) {
            let f = &mut inner.frames[idx as usize];
            f.pins += 1;
            f.referenced = true;
            inner.stats.hits += 1;
            return idx;
        }
        inner.stats.misses += 1;
        let idx = self.acquire_frame(&mut inner);
        let frame = &mut inner.frames[idx as usize];
        frame.key = key;
        frame.pins = 1;
        frame.referenced = true;
        if let Err(e) = self.store.read_block(ext, block, &mut frame.data) {
            // The file was validated at open; a failing fetch afterwards
            // means it changed or rotted underneath us.
            panic!("block fetch failed after open: {e}");
        }
        inner.map.insert(key, idx);
        idx
    }

    /// Releases one pin on frame `idx`.
    pub fn unpin_frame(&self, idx: u32) {
        let mut inner = self.inner.borrow_mut();
        let f = &mut inner.frames[idx as usize];
        debug_assert!(f.pins > 0, "unpin of unpinned frame");
        f.pins -= 1;
    }

    /// Reads word `word_in_block` of a pinned frame.
    #[inline]
    pub fn frame_word(&self, idx: u32, word_in_block: usize) -> u64 {
        let inner = self.inner.borrow();
        let f = &inner.frames[idx as usize];
        debug_assert!(f.pins > 0, "reading an unpinned frame");
        f.data[word_in_block]
    }

    /// Ensures block `block` of `ext` is resident (fetching on miss)
    /// without holding a pin — used when a *charge* must drive a fetch
    /// even though no payload word is read (directory-record charges).
    pub fn touch(&self, ext: ExtentId, block: u64) {
        let idx = self.pin(ext, block);
        self.unpin_frame(idx);
    }

    /// Drops any frames belonging to `ext` (called when the owning disk
    /// promotes the extent to a resident RAM image, making pooled copies
    /// stale).
    ///
    /// # Panics
    /// Panics if one of those frames is still pinned by a live reader.
    pub fn forget_extent(&self, ext: ExtentId) {
        let mut inner = self.inner.borrow_mut();
        let stale: Vec<(ExtentId, u64)> = inner
            .map
            .keys()
            .filter(|(e, _)| *e == ext)
            .copied()
            .collect();
        for key in stale {
            let idx = inner.map.remove(&key).expect("key just listed");
            let f = &mut inner.frames[idx as usize];
            assert!(f.pins == 0, "promoting an extent with pinned blocks");
            // Leave the frame allocated but unkeyed: key it to an
            // impossible address so the clock reuses it.
            f.key = (ExtentId(u32::MAX), u64::MAX);
            f.referenced = false;
        }
    }

    /// Finds a free frame slot: grows up to capacity, then clock-evicts
    /// an unpinned frame, then (all pinned) grows past capacity.
    fn acquire_frame(&self, inner: &mut PoolInner) -> u32 {
        if inner.frames.len() < self.capacity {
            inner.frames.push(Frame {
                key: (ExtentId(u32::MAX), u64::MAX),
                data: vec![0u64; self.block_words].into_boxed_slice(),
                pins: 0,
                referenced: false,
            });
            return (inner.frames.len() - 1) as u32;
        }
        // Clock sweep: two full revolutions guarantee a victim unless
        // every frame is pinned.
        for _ in 0..2 * inner.frames.len() {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % inner.frames.len();
            let f = &mut inner.frames[idx];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            let key = f.key;
            if inner.map.remove(&key).is_some() {
                inner.stats.evictions += 1;
            }
            return idx as u32;
        }
        // Every frame pinned: grow past the target rather than evict a
        // pinned frame (the invariant readers rely on).
        inner.frames.push(Frame {
            key: (ExtentId(u32::MAX), u64::MAX),
            data: vec![0u64; self.block_words].into_boxed_slice(),
            pins: 0,
            referenced: false,
        });
        (inner.frames.len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStore;
    use crate::{Disk, IoConfig, IoSession};

    fn store_with_blocks(blocks: u64) -> Rc<dyn BlockStore> {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let ext = disk.alloc();
        let io = IoSession::untracked();
        let mut w = disk.writer(ext, &io);
        for i in 0..blocks * 2 {
            w.write_bits(i + 1, 64);
        }
        Rc::new(MemStore::from_disk(&disk))
    }

    const EXT: ExtentId = ExtentId(0);

    #[test]
    fn hits_do_not_refetch() {
        let pool = BufferPool::new(store_with_blocks(4), 4, 128);
        let a = pool.pin(EXT, 0);
        pool.unpin_frame(a);
        let b = pool.pin(EXT, 0);
        assert_eq!(pool.frame_word(b, 0), 1);
        pool.unpin_frame(b);
        assert_eq!(pool.fetches(), 1);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn clock_evicts_unpinned_in_order() {
        let pool = BufferPool::new(store_with_blocks(8), 2, 128);
        for blk in 0..4 {
            let f = pool.pin(EXT, blk);
            pool.unpin_frame(f);
        }
        // Capacity 2: blocks 2 and 3 resident, 0 and 1 evicted.
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.stats().evictions, 2);
        let f = pool.pin(EXT, 0); // re-fetch
        pool.unpin_frame(f);
        assert_eq!(pool.fetches(), 5);
    }

    #[test]
    fn pinned_frames_survive_pressure() {
        let pool = BufferPool::new(store_with_blocks(8), 2, 128);
        let pinned = pool.pin(EXT, 0);
        for blk in 1..6 {
            let f = pool.pin(EXT, blk);
            pool.unpin_frame(f);
        }
        // The pinned frame still holds block 0's data.
        assert_eq!(pool.frame_word(pinned, 0), 1);
        let again = pool.pin(EXT, 0);
        assert_eq!(again, pinned, "pinned block must hit its own frame");
        assert_eq!(
            pool.fetches(),
            6,
            "block 0 fetched once despite eviction pressure"
        );
        pool.unpin_frame(again);
        pool.unpin_frame(pinned);
    }

    #[test]
    fn all_pinned_grows_past_capacity() {
        let pool = BufferPool::new(store_with_blocks(8), 2, 128);
        let f0 = pool.pin(EXT, 0);
        let f1 = pool.pin(EXT, 1);
        let f2 = pool.pin(EXT, 2); // both frames pinned: pool must grow
        assert_eq!(pool.resident(), 3);
        assert!(pool.resident() > pool.capacity());
        for f in [f0, f1, f2] {
            pool.unpin_frame(f);
        }
    }

    #[test]
    fn touch_fetches_without_leaving_a_pin() {
        let pool = BufferPool::new(store_with_blocks(4), 2, 128);
        pool.touch(EXT, 1);
        assert_eq!(pool.fetches(), 1);
        pool.touch(EXT, 1);
        assert_eq!(pool.fetches(), 1, "second touch hits");
        // No pins left: the frame is evictable.
        pool.touch(EXT, 2);
        pool.touch(EXT, 3);
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn forget_extent_drops_frames() {
        let pool = BufferPool::new(store_with_blocks(4), 4, 128);
        pool.touch(EXT, 0);
        pool.touch(EXT, 1);
        pool.forget_extent(EXT);
        // Both frames are reusable; repinning refetches.
        pool.touch(EXT, 0);
        assert_eq!(pool.fetches(), 3);
    }
}
