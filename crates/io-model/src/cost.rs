//! Closed-form cost expressions from Pagh & Rao (PODS 2009).
//!
//! The experiment harnesses overlay these theory curves on measured I/O
//! counts. All logarithms are base 2 (`lg`, as in the paper).

/// `⌈lg x⌉` for `x ≥ 1` (and 0 for `x ∈ {0, 1}`).
pub fn lg2_ceil(x: u64) -> u64 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros() as u64
    }
}

/// `⌊lg x⌋` for `x ≥ 1`.
///
/// # Panics
/// Panics if `x == 0`.
pub fn lg2_floor(x: u64) -> u64 {
    assert!(x > 0, "lg of zero");
    63 - x.leading_zeros() as u64
}

/// `lg x` as a float, with `lg 0 := 0` for convenience in sums.
pub fn lg2(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x.log2()
    }
}

/// The information-theoretic size of a `z`-subset of `[n]` in bits:
/// `lg C(n, z) ≈ z lg(n/z) + Θ(z)` (paper §1.2). Computed exactly via
/// `ln Γ` to avoid overflow.
pub fn lg_binomial(n: u64, z: u64) -> f64 {
    if z == 0 || z >= n {
        return 0.0;
    }
    let n = n as f64;
    let z = z as f64;
    (ln_gamma(n + 1.0) - ln_gamma(z + 1.0) - ln_gamma(n - z + 1.0)) / std::f64::consts::LN_2
}

/// The paper's shorthand output bound `z lg(n/z)` (0 when `z == 0`).
pub fn output_bits(n: u64, z: u64) -> f64 {
    if z == 0 {
        0.0
    } else {
        z as f64 * lg2(n as f64 / z as f64)
    }
}

/// `log_b n` — the additive B-tree-descent term, where `b = Θ(B / lg n)` is
/// the block size in words (paper §1.4).
pub fn log_b(n: u64, b: u64) -> f64 {
    let b = b.max(2) as f64;
    lg2(n as f64) / lg2(b)
}

/// `lg lg n` — the additive term of Theorem 2 (0 for `n < 4`).
pub fn lg_lg(n: u64) -> f64 {
    if n < 4 {
        0.0
    } else {
        lg2(lg2(n as f64))
    }
}

/// 0th-order empirical entropy `H₀` in bits per symbol, given character
/// counts: `H₀ = Σ (zₐ/n) lg(n/zₐ)`.
pub fn h0_from_counts(counts: &[u64]) -> f64 {
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| (c as f64 / nf) * lg2(nf / c as f64))
        .sum()
}

/// Theorem 2's query bound in I/Os, with unit constants:
/// `z lg(n/z)/B + log_b n + lg lg n`.
pub fn thm2_query_ios(n: u64, z: u64, block_bits: u64, b: u64) -> f64 {
    output_bits(n, z) / block_bits as f64 + log_b(n, b) + lg_lg(n)
}

/// Theorem 3's approximate-query bound in I/Os, with unit constants:
/// `z lg(1/ε)/B + log_b n + lg lg n`.
pub fn thm3_query_ios(n: u64, z: u64, epsilon: f64, block_bits: u64, b: u64) -> f64 {
    z as f64 * lg2(1.0 / epsilon) / block_bits as f64 + log_b(n, b) + lg_lg(n)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (few ulp accuracy, ample
/// for cost curves).
fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lg2_ceil_and_floor_agree_on_powers_of_two() {
        for k in 0..63 {
            let x = 1u64 << k;
            assert_eq!(lg2_ceil(x), k);
            assert_eq!(lg2_floor(x), k);
        }
        assert_eq!(lg2_ceil(5), 3);
        assert_eq!(lg2_floor(5), 2);
    }

    #[test]
    fn lg_binomial_matches_small_cases() {
        // C(10, 3) = 120, lg 120 ≈ 6.9069.
        assert!((lg_binomial(10, 3) - 120f64.log2()).abs() < 1e-9);
        // C(52, 5) = 2_598_960.
        assert!((lg_binomial(52, 5) - 2_598_960f64.log2()).abs() < 1e-9);
        assert_eq!(lg_binomial(10, 0), 0.0);
        assert_eq!(lg_binomial(10, 10), 0.0);
    }

    #[test]
    fn lg_binomial_close_to_output_bits_for_sparse_sets() {
        // lg C(n,z) = z lg(n/z) + Θ(z); check the ratio for a sparse set.
        let (n, z) = (1u64 << 20, 1u64 << 8);
        let exact = lg_binomial(n, z);
        let approx = output_bits(n, z);
        assert!(exact >= approx, "lg C(n,z) >= z lg(n/z)");
        assert!(exact <= approx + 2.0 * z as f64, "within Θ(z) slack");
    }

    #[test]
    fn entropy_of_uniform_distribution_is_lg_sigma() {
        let counts = vec![8u64; 32]; // 32 chars, uniform
        assert!((h0_from_counts(&counts) - 5.0).abs() < 1e-9);
        // Degenerate distribution has zero entropy.
        assert_eq!(h0_from_counts(&[100]), 0.0);
        assert_eq!(h0_from_counts(&[]), 0.0);
    }

    #[test]
    fn theory_bounds_are_monotone_in_z() {
        let n = 1 << 20;
        let b = 400;
        let big = thm2_query_ios(n, 100_000, 8192, b);
        let small = thm2_query_ios(n, 100, 8192, b);
        assert!(big > small);
        // Approximation pays off exactly when lg(1/ε) < lg(n/z): here
        // lg(n/z) ≈ 13.4 while lg(1/0.01) ≈ 6.6.
        let z = 10_000;
        let approx = thm3_query_ios(n, z, 0.01, 8192, b);
        let exact = thm2_query_ios(n, z, 8192, b);
        assert!(
            approx < exact,
            "approximate queries read less when lg(1/eps) < lg(n/z)"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for (x, f) in [(1u64, 1f64), (2, 1.0), (5, 24.0), (10, 362_880.0)] {
            assert!((ln_gamma(x as f64) - f.ln()).abs() < 1e-9, "Γ({x})");
        }
    }
}
