//! I/O accounting sessions.

use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};

use crate::disk::ExtentId;

/// Aggregate I/O counters produced by an [`IoSession`].
///
/// `reads`/`writes` count **block** I/Os (the paper's cost measure);
/// `bits_read`/`bits_written` record the useful payload, which the
/// experiment harnesses use to compare against output-size lower bounds
/// such as `z lg(n/z)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Distinct blocks read during the session.
    pub reads: u64,
    /// Distinct blocks written during the session.
    pub writes: u64,
    /// Total bits consumed by readers.
    pub bits_read: u64,
    /// Total bits produced by writers.
    pub bits_written: u64,
    /// Pooled fetches re-attempted after a transient fault, under the
    /// session's [`crate::RetryPolicy`] budget. Zero on a healthy store;
    /// benches report this as retries/query.
    pub retries: u64,
}

impl IoStats {
    /// Total block I/Os (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise sum of two stat records.
    pub fn merged(&self, other: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            bits_read: self.bits_read + other.bits_read,
            bits_written: self.bits_written + other.bits_written,
            retries: self.retries + other.retries,
        }
    }
}

/// A globally unique block address: extent plus block index within it.
type BlockAddr = (ExtentId, u64);

#[derive(Debug, Default)]
struct SessionInner {
    stats: IoStats,
    /// Blocks currently "in memory": charged once, not re-charged.
    resident: HashSet<BlockAddr>,
    /// FIFO eviction order when `mem_blocks` is bounded.
    fifo: VecDeque<BlockAddr>,
    mem_blocks: Option<usize>,
    tracking: bool,
    /// Retry budget for transient pooled-fetch faults (None = no retry).
    retry: Option<crate::RetryPolicy>,
    /// The typed read failure recorded by an in-flight structured abort
    /// (see [`crate::catch_read`]); taken by the catch frame.
    fault: Option<crate::ReadError>,
}

/// An I/O accounting scope for one logical operation.
///
/// A session counts *distinct* blocks read and written, modelling the
/// paper's internal memory `M`: once a block has been fetched it stays
/// resident for the remainder of the operation (unless a bounded memory is
/// configured, in which case blocks are evicted FIFO and re-fetching them
/// is charged again).
///
/// Sessions use interior mutability so that several [`DiskReader`]s can
/// charge the same session concurrently during k-way merges.
///
/// # Concurrency model
///
/// A session is **per-query state**: the thread that runs a query
/// creates one next to the shared `Arc<Disk>`, drives the whole query
/// under it, and reads the stats — sessions are deliberately never
/// shared *between* threads, which is why the hot counters can stay
/// plain `RefCell` instead of atomics (the per-decoded-code
/// `add_bits_read` call is too hot to pay an atomic RMW on). The type
/// is `Send` (move it to the thread that runs the query) but not
/// `Sync`; everything that *is* shared between query threads — the
/// `Disk`, the sharded `BufferPool`, the backends — is `Sync`, enforced
/// by compile-time asserts in this crate's root.
///
/// [`DiskReader`]: crate::DiskReader
#[derive(Debug)]
pub struct IoSession {
    inner: RefCell<SessionInner>,
}

impl Default for IoSession {
    fn default() -> Self {
        Self::new()
    }
}

impl IoSession {
    /// A tracking session with unbounded internal memory.
    pub fn new() -> Self {
        IoSession {
            inner: RefCell::new(SessionInner {
                tracking: true,
                ..Default::default()
            }),
        }
    }

    /// A tracking session whose internal memory holds at most `mem_blocks`
    /// blocks (FIFO eviction). Use for memory-pressure ablations.
    pub fn with_memory_blocks(mem_blocks: usize) -> Self {
        assert!(mem_blocks > 0, "memory must hold at least one block");
        IoSession {
            inner: RefCell::new(SessionInner {
                tracking: true,
                mem_blocks: Some(mem_blocks),
                ..Default::default()
            }),
        }
    }

    /// A session that performs no accounting. Used for bulk builds, whose
    /// cost the experiments report separately (or not at all, for static
    /// structures).
    pub fn untracked() -> Self {
        IoSession {
            inner: RefCell::new(SessionInner {
                tracking: false,
                ..Default::default()
            }),
        }
    }

    fn touch(&self, addr: BlockAddr, write: bool) {
        let mut inner = self.inner.borrow_mut();
        if !inner.tracking {
            return;
        }
        if inner.resident.contains(&addr) {
            return;
        }
        if write {
            inner.stats.writes += 1;
        } else {
            inner.stats.reads += 1;
        }
        inner.resident.insert(addr);
        if let Some(cap) = inner.mem_blocks {
            inner.fifo.push_back(addr);
            if inner.fifo.len() > cap {
                let evicted = inner.fifo.pop_front().expect("fifo non-empty");
                inner.resident.remove(&evicted);
            }
        }
    }

    /// Charges a block read. Idempotent while the block remains resident.
    pub fn charge_read(&self, extent: ExtentId, block: u64) {
        self.touch((extent, block), false);
    }

    /// Charges a block write. Idempotent while the block remains resident.
    pub fn charge_write(&self, extent: ExtentId, block: u64) {
        self.touch((extent, block), true);
    }

    /// Records `bits` of useful payload consumed by a reader.
    pub fn add_bits_read(&self, bits: u64) {
        let mut inner = self.inner.borrow_mut();
        if inner.tracking {
            inner.stats.bits_read += bits;
        }
    }

    /// Records `bits` of useful payload produced by a writer.
    pub fn add_bits_written(&self, bits: u64) {
        let mut inner = self.inner.borrow_mut();
        if inner.tracking {
            inner.stats.bits_written += bits;
        }
    }

    /// Snapshot of the counters so far.
    pub fn stats(&self) -> IoStats {
        self.inner.borrow().stats
    }

    /// Resets counters **and** residency, starting a fresh operation scope.
    pub fn reset(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.stats = IoStats::default();
        inner.resident.clear();
        inner.fifo.clear();
        inner.fault = None;
    }

    /// Returns the counters and resets the session (convenience for
    /// per-operation measurement loops).
    pub fn take_stats(&self) -> IoStats {
        let stats = self.stats();
        self.reset();
        stats
    }

    /// Whether this session is recording I/Os.
    pub fn is_tracking(&self) -> bool {
        self.inner.borrow().tracking
    }

    /// Arms a per-session retry budget: pooled fetches that fail
    /// transiently during queries under this session are re-pinned up to
    /// `policy.max_attempts` times (immediately — backoff belongs to the
    /// store-level [`crate::RetryStore`]) before the failure surfaces as
    /// a [`crate::ReadError`]. Returns `self` for builder-style use.
    pub fn with_retry(self, policy: crate::RetryPolicy) -> Self {
        self.inner.borrow_mut().retry = Some(policy);
        self
    }

    /// The armed per-session retry budget, if any.
    pub fn retry_policy(&self) -> Option<crate::RetryPolicy> {
        self.inner.borrow().retry
    }

    /// Counts `n` transient-fault retries into [`IoStats::retries`].
    /// Counted even on untracked sessions: a retry is an operational
    /// event, not a cost-model charge.
    pub fn add_retries(&self, n: u64) {
        self.inner.borrow_mut().stats.retries += n;
    }

    /// Records the typed failure a structured read abort is about to
    /// unwind with. The matching [`crate::catch_read`] frame takes it.
    pub(crate) fn set_fault(&self, err: crate::ReadError) {
        self.inner.borrow_mut().fault = Some(err);
    }

    /// Takes the recorded read failure, if any.
    pub(crate) fn take_fault(&self) -> Option<crate::ReadError> {
        self.inner.borrow_mut().fault.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXT: ExtentId = ExtentId(7);
    const EXT2: ExtentId = ExtentId(9);

    #[test]
    fn distinct_blocks_counted_once() {
        let s = IoSession::new();
        s.charge_read(EXT, 0);
        s.charge_read(EXT, 0);
        s.charge_read(EXT, 1);
        s.charge_read(EXT2, 0); // same index, different extent
        assert_eq!(s.stats().reads, 3);
    }

    #[test]
    fn reads_and_writes_tracked_separately() {
        let s = IoSession::new();
        s.charge_read(EXT, 0);
        s.charge_write(EXT, 1);
        let st = s.stats();
        assert_eq!((st.reads, st.writes), (1, 1));
        assert_eq!(st.total(), 2);
    }

    #[test]
    fn block_written_then_read_counts_once() {
        // A block that is written stays resident, so reading it back within
        // the same operation is free (it is in internal memory).
        let s = IoSession::new();
        s.charge_write(EXT, 0);
        s.charge_read(EXT, 0);
        let st = s.stats();
        assert_eq!((st.reads, st.writes), (0, 1));
    }

    #[test]
    fn bounded_memory_evicts_fifo() {
        let s = IoSession::with_memory_blocks(2);
        s.charge_read(EXT, 0);
        s.charge_read(EXT, 1);
        s.charge_read(EXT, 2); // evicts block 0
        s.charge_read(EXT, 0); // re-charged
        assert_eq!(s.stats().reads, 4);
        // Block 2 is still resident.
        s.charge_read(EXT, 2);
        assert_eq!(s.stats().reads, 4);
    }

    #[test]
    fn untracked_session_counts_nothing() {
        let s = IoSession::untracked();
        s.charge_read(EXT, 0);
        s.charge_write(EXT, 1);
        s.add_bits_read(100);
        assert_eq!(s.stats(), IoStats::default());
        assert!(!s.is_tracking());
    }

    #[test]
    fn reset_clears_residency() {
        let s = IoSession::new();
        s.charge_read(EXT, 0);
        assert_eq!(s.take_stats().reads, 1);
        s.charge_read(EXT, 0); // no longer resident after reset
        assert_eq!(s.stats().reads, 1);
    }

    #[test]
    fn sessions_move_to_the_thread_that_runs_the_query() {
        // Per-query sessions are `Send`: created wherever, driven by the
        // worker thread that owns the query.
        let s = IoSession::new();
        let s = std::thread::spawn(move || {
            s.charge_read(EXT, 0);
            s.add_bits_read(64);
            s
        })
        .join()
        .expect("worker");
        assert_eq!(s.stats().reads, 1);
        assert_eq!(s.stats().bits_read, 64);
    }

    #[test]
    fn merged_stats_add_componentwise() {
        let a = IoStats {
            reads: 1,
            writes: 2,
            bits_read: 3,
            bits_written: 4,
            retries: 5,
        };
        let b = IoStats {
            reads: 10,
            writes: 20,
            bits_read: 30,
            bits_written: 40,
            retries: 50,
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            IoStats {
                reads: 11,
                writes: 22,
                bits_read: 33,
                bits_written: 44,
                retries: 55,
            }
        );
    }
}
