//! Real-read backends behind the simulated block device.
//!
//! The paper's cost model counts *distinct blocks touched*; a [`crate::Disk`]
//! whose extents are fully memory-resident only ever simulates those
//! touches. A `BlockStore` is where simulated charges become **real
//! reads**: it fetches one model block (`B` bits) of one extent into a
//! caller-provided word buffer, counting every fetch it performs. Three
//! backends exist:
//!
//! * the resident RAM image itself (the default `Disk`, no indirection —
//!   [`MemStore`] is its trait-shaped twin, used by pool tests);
//! * a file-backed store doing positioned reads of checksummed pages
//!   (`psi-store`'s `FileStore`);
//! * an mmap-backed store copying out of a shared mapping (`psi-store`'s
//!   `MmapStore`).
//!
//! A [`crate::BufferPool`] sits between [`crate::IoSession`] charging and
//! the backend, so a charge drives a real fetch on miss and a free hit
//! while the block stays pooled.

use crate::disk::ExtentId;

/// Whether an I/O failure is worth retrying.
///
/// The taxonomy every layer above the backends shares: the retry policy
/// in [`crate::fault`] retries [`ErrorClass::Transient`] failures with
/// backoff and surfaces [`ErrorClass::Permanent`] ones immediately as
/// typed errors (mirroring the `PoolError::Exhausted` precedent of
/// structured, matchable failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The same operation may succeed if repeated (interrupted syscall,
    /// momentary resource pressure, injected flake).
    Transient,
    /// Retrying cannot help (missing extent, bad length, lost file).
    Permanent,
    /// The bytes came back but fail their integrity check (FNV-1a page
    /// trailer mismatch, torn read). Not retryable either, but kept
    /// distinct from [`ErrorClass::Permanent`] because the *remedy*
    /// differs: corrupt extents are quarantined and rebuilt from source
    /// data, while permanent failures indicate the store itself is gone.
    Corrupt,
}

/// Maps an OS error kind onto the retry taxonomy.
///
/// `Interrupted` (EINTR), `WouldBlock`, and `TimedOut` are the kinds a
/// repeat of the same positioned read can cure; everything else —
/// `NotFound`, `PermissionDenied`, `UnexpectedEof`, … — is permanent.
pub fn classify_io(kind: std::io::ErrorKind) -> ErrorClass {
    use std::io::ErrorKind as K;
    match kind {
        K::Interrupted | K::WouldBlock | K::TimedOut => ErrorClass::Transient,
        _ => ErrorClass::Permanent,
    }
}

/// Error surfaced by a backend fetch (corrupt page, short read).
///
/// Open-time validation in `psi-store` returns typed errors; a fetch
/// failure *during* an operation means the file changed or rotted after
/// open (permanent), or the OS flaked on a read (transient). The buffer
/// pool retries nothing itself — it surfaces the error through
/// `PoolError::Fetch` and lets [`crate::fault::RetryStore`] or the
/// caller decide, guided by [`BlockStoreError::class`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockStoreError {
    /// Human-readable description (extent, block, cause).
    pub message: String,
    /// Retryability of this failure.
    pub class: ErrorClass,
}

impl BlockStoreError {
    /// A failure that retrying cannot cure.
    pub fn permanent(message: impl Into<String>) -> Self {
        BlockStoreError {
            message: message.into(),
            class: ErrorClass::Permanent,
        }
    }

    /// A failure worth retrying.
    pub fn transient(message: impl Into<String>) -> Self {
        BlockStoreError {
            message: message.into(),
            class: ErrorClass::Transient,
        }
    }

    /// An integrity-check failure: the read succeeded but the bytes are
    /// wrong. Quarantine-and-rebuild territory, not retry territory.
    pub fn corrupt(message: impl Into<String>) -> Self {
        BlockStoreError {
            message: message.into(),
            class: ErrorClass::Corrupt,
        }
    }
}

impl std::fmt::Display for BlockStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for BlockStoreError {}

/// A source of real block reads for one volume of extents.
///
/// Implementations count every fetch they perform ([`Self::fetches`]);
/// the experiment harnesses compare that count against the simulated
/// [`crate::IoStats`] charge (equal on a cold pool, `≤` on a warm one).
///
/// Backends are `Send + Sync`: the sharded [`crate::BufferPool`] calls
/// `read_block` from whichever query thread takes the miss, so fetch
/// counters must be atomic and the byte source shareable.
pub trait BlockStore: std::fmt::Debug + Send + Sync {
    /// Reads block `block` of extent `ext` into `out` (exactly
    /// `block_bits / 64` words, MSB-first bit order within each word).
    /// Words past the extent's last valid bit must be zero-filled.
    fn read_block(&self, ext: ExtentId, block: u64, out: &mut [u64])
        -> Result<(), BlockStoreError>;

    /// Like [`Self::read_block`], but additionally verifies whatever
    /// end-to-end integrity check the backend carries (psi-store's
    /// FNV-1a page trailer), reporting a mismatch as
    /// [`ErrorClass::Corrupt`].
    ///
    /// The default delegates to `read_block`: backends without a
    /// integrity trailer (RAM snapshots) have nothing extra to check.
    /// Wrapper stores must forward this method so verification reaches
    /// the volume layer; the [`crate::BufferPool`] calls it on fault-in
    /// when its verify mode is on — never on warm hits.
    fn read_block_verified(
        &self,
        ext: ExtentId,
        block: u64,
        out: &mut [u64],
    ) -> Result<(), BlockStoreError> {
        self.read_block(ext, block, out)
    }

    /// Number of real block fetches performed so far.
    fn fetches(&self) -> u64;

    /// Backend name for diagnostics (`"mem"`, `"file"`, `"mmap"`).
    fn kind(&self) -> &'static str;
}

/// Shared handles are stores too: lets a test hold onto a fault
/// injector while the layer above (retry wrapper, buffer pool) owns the
/// same store through an `Arc`. Forwards both read paths so a verified
/// fetch still reaches the inner backend's trailer check.
impl<S: BlockStore + ?Sized> BlockStore for std::sync::Arc<S> {
    fn read_block(
        &self,
        ext: ExtentId,
        block: u64,
        out: &mut [u64],
    ) -> Result<(), BlockStoreError> {
        (**self).read_block(ext, block, out)
    }

    fn read_block_verified(
        &self,
        ext: ExtentId,
        block: u64,
        out: &mut [u64],
    ) -> Result<(), BlockStoreError> {
        (**self).read_block_verified(ext, block, out)
    }

    fn fetches(&self) -> u64 {
        (**self).fetches()
    }

    fn kind(&self) -> &'static str {
        (**self).kind()
    }
}

/// The in-RAM backend: a frozen snapshot of a resident [`crate::Disk`]'s
/// extents, served block by block. This is the degenerate member of the
/// backend family — it exists so the buffer pool and its accounting can
/// be exercised (and differentially tested) without touching the
/// filesystem.
#[derive(Debug)]
pub struct MemStore {
    extents: Vec<Vec<u64>>,
    block_words: usize,
    fetches: std::sync::atomic::AtomicU64,
}

impl MemStore {
    /// Snapshots every extent of a resident disk.
    ///
    /// # Panics
    /// Panics if any extent is non-resident (file-backed disks must be
    /// promoted first).
    pub fn from_disk(disk: &crate::Disk) -> Self {
        let extents = (0..disk.num_extents())
            .map(|i| disk.extent_words(ExtentId(i as u32)).to_vec())
            .collect();
        MemStore {
            extents,
            block_words: (disk.block_bits() / 64) as usize,
            fetches: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl BlockStore for MemStore {
    fn read_block(
        &self,
        ext: ExtentId,
        block: u64,
        out: &mut [u64],
    ) -> Result<(), BlockStoreError> {
        let words = self.extents.get(ext.0 as usize).ok_or_else(|| {
            BlockStoreError::permanent(format!("mem store has no extent {}", ext.0))
        })?;
        let start = block as usize * self.block_words;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = words.get(start + i).copied().unwrap_or(0);
        }
        self.fetches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    fn fetches(&self) -> u64 {
        self.fetches.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn kind(&self) -> &'static str {
        "mem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Disk, IoConfig, IoSession};

    #[test]
    fn mem_store_serves_disk_blocks() {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let ext = disk.alloc();
        let io = IoSession::untracked();
        {
            let mut w = disk.writer(ext, &io);
            for i in 0..4u64 {
                w.write_bits(i + 1, 64);
            }
        }
        let store = MemStore::from_disk(&disk);
        let mut buf = vec![0u64; 2];
        store.read_block(ext, 1, &mut buf).unwrap();
        assert_eq!(buf, vec![3, 4]);
        // Partial tail block zero-fills.
        store.read_block(ext, 5, &mut buf).unwrap();
        assert_eq!(buf, vec![0, 0]);
        assert_eq!(store.fetches(), 2);
        assert_eq!(store.kind(), "mem");
    }

    #[test]
    fn unknown_extent_is_an_error() {
        let disk = Disk::new(IoConfig::with_block_bits(128));
        let store = MemStore::from_disk(&disk);
        let mut buf = vec![0u64; 2];
        assert!(store.read_block(ExtentId(3), 0, &mut buf).is_err());
    }
}
