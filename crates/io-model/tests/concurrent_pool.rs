//! Multi-thread stress tests for the sharded buffer pool.
//!
//! The pool's per-shard invariants (pinned-never-evicted, miss == one
//! fetch, immutable frames) are easy to hold single-threaded; these tests
//! hammer them from 8 threads at once. Debug builds run a reduced
//! iteration count; the CI concurrency job runs the full load under
//! `cargo test --release`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use psi_io::{BlockStore, BufferPool, Disk, ExtentId, IoConfig, IoSession, MemStore, PinnedBlock};

const THREADS: usize = 8;

fn ops_per_thread() -> usize {
    if cfg!(debug_assertions) {
        2_000
    } else {
        10_000
    }
}

/// A disk whose block contents are a known function of their address, so
/// any torn/evicted-under-pin read is detected by value.
fn patterned_store(extents: u32, blocks_per_extent: u64) -> Arc<dyn BlockStore> {
    let mut disk = Disk::new(IoConfig::with_block_bits(128)); // 2 words/block
    let io = IoSession::untracked();
    for e in 0..extents {
        let ext = disk.alloc();
        let mut w = disk.writer(ext, &io);
        for blk in 0..blocks_per_extent {
            w.write_bits(expected_word(e, blk, 0), 64);
            w.write_bits(expected_word(e, blk, 1), 64);
        }
    }
    Arc::new(MemStore::from_disk(&disk))
}

fn expected_word(ext: u32, block: u64, word: u64) -> u64 {
    (u64::from(ext) << 32) ^ (block << 8) ^ word ^ 0x5050_5050_5050_5050
}

/// Tiny deterministic xorshift so the stress mix needs no external RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn stress_pin_evict_promote_races() {
    const EXTENTS: u32 = 4;
    const BLOCKS: u64 = 64;
    let store = patterned_store(EXTENTS, BLOCKS);
    // A pool far smaller than the 256-block working set: every thread
    // constantly evicts the others' unpinned frames, and pinned frames
    // must survive (their word reads stay value-correct throughout).
    // The (global) hard ceiling is unreachable by construction: pinned
    // growth only happens while a shard is fully pinned, which at most
    // 24 live pins can sustain only until each shard holds ~25 frames —
    // far below 2048 — so exhaustion cannot fire spuriously.
    let pool = BufferPool::with_shards(store, 16, 2048, 4, 128);
    let verified = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let pool = &pool;
            let verified = &verified;
            scope.spawn(move || {
                let mut rng = Rng(0x9E37_79B9 ^ (t as u64 + 1));
                // Up to two long-lived pins per thread, repeatedly moved:
                // the promote/evict pressure pattern of real cursors in a
                // k-way merge.
                let mut held: Vec<(u32, u64, PinnedBlock)> = Vec::new();
                let mut checked = 0u64;
                for _ in 0..ops_per_thread() {
                    let r = rng.next();
                    let ext = (r >> 32) as u32 % EXTENTS;
                    let blk = r % BLOCKS;
                    match r % 7 {
                        // Transient access: pin, verify both words, unpin.
                        0..=2 => {
                            let p = pool.pin(ExtentId(ext), blk);
                            assert_eq!(p.word(0), expected_word(ext, blk, 0));
                            assert_eq!(p.word(1), expected_word(ext, blk, 1));
                            checked += 1;
                            pool.unpin(p);
                        }
                        // Fetch-without-pin (directory-record charges).
                        3 | 4 => pool.touch(ExtentId(ext), blk),
                        // Acquire a long-lived pin.
                        5 => {
                            if held.len() < 2 {
                                let p = pool.pin(ExtentId(ext), blk);
                                held.push((ext, blk, p));
                            } else {
                                // Re-verify a held pin under pressure: its
                                // frame must still hold the right block.
                                let (e, b, p) = &held[(r >> 16) as usize % held.len()];
                                assert_eq!(p.word(0), expected_word(*e, *b, 0));
                                checked += 1;
                            }
                        }
                        // Release the oldest held pin.
                        _ => {
                            if !held.is_empty() {
                                let (e, b, p) = held.remove(0);
                                assert_eq!(p.word(1), expected_word(e, b, 1));
                                pool.unpin(p);
                            }
                        }
                    }
                }
                for (e, b, p) in held {
                    assert_eq!(p.word(0), expected_word(e, b, 0));
                    pool.unpin(p);
                }
                verified.fetch_add(checked, Ordering::Relaxed);
            });
        }
    });
    let stats = pool.stats();
    assert!(verified.load(Ordering::Relaxed) > 0);
    // Conservation: every request either hit or missed, every miss is
    // exactly one backend fetch, and the pool never exceeded its ceiling.
    assert_eq!(stats.misses, pool.fetches());
    assert!(stats.misses >= 256, "working set must cycle through");
    assert!(stats.evictions > 0, "capacity 16 must evict under pressure");
    assert!(pool.resident() <= pool.hard_cap());
    // All pins released: the whole pool is reclaimable again.
    for blk in 0..BLOCKS {
        pool.touch(ExtentId(0), blk);
    }
}

#[test]
fn concurrent_cold_readers_fetch_each_block_once() {
    // 8 threads scan 8 disjoint extents through one shared pooled Disk,
    // each under its own session: the per-thread charge must equal the
    // per-extent block count, and the pool must fetch every block exactly
    // once — the cold-cache identity the experiments rely on, here at
    // full concurrency.
    const BLOCKS: u64 = 32;
    let cfg = IoConfig::with_block_bits(128);
    let mut build = Disk::new(cfg);
    let io = IoSession::untracked();
    for e in 0..THREADS as u32 {
        let ext = build.alloc();
        let mut w = build.writer(ext, &io);
        for blk in 0..BLOCKS {
            w.write_bits(expected_word(e, blk, 0), 64);
            w.write_bits(expected_word(e, blk, 1), 64);
        }
    }
    let stored: Vec<_> = (0..build.num_extents())
        .map(|i| psi_io::StoredExtent {
            bit_len: build.extent_bits(ExtentId(i as u32)),
            freed: false,
        })
        .collect();
    let pool = Arc::new(BufferPool::new(
        Arc::new(MemStore::from_disk(&build)),
        1024,
        128,
    ));
    let disk = Arc::new(Disk::from_stored(cfg, &stored, Arc::clone(&pool)));
    std::thread::scope(|scope| {
        for t in 0..THREADS as u32 {
            let disk = Arc::clone(&disk);
            scope.spawn(move || {
                let session = IoSession::new();
                let mut r = disk.reader(ExtentId(t), 0, &session);
                for blk in 0..BLOCKS {
                    assert_eq!(r.read_bits(64), expected_word(t, blk, 0));
                    assert_eq!(r.read_bits(64), expected_word(t, blk, 1));
                }
                assert_eq!(session.stats().reads, BLOCKS);
            });
        }
    });
    assert_eq!(pool.fetches(), THREADS as u64 * BLOCKS);
    assert_eq!(pool.stats().misses, THREADS as u64 * BLOCKS);
    assert_eq!(pool.stats().evictions, 0, "pool holds the working set");
}

#[test]
fn racing_threads_on_the_same_blocks_fetch_once_and_charge_alike() {
    // All 8 threads scan the *same* extent cold: each session charges the
    // full block count (sessions are per-query state), while the pool
    // fetches each block exactly once — whichever thread misses first
    // fetches under the shard lock, everyone else hits.
    const BLOCKS: u64 = 64;
    let cfg = IoConfig::with_block_bits(128);
    let mut build = Disk::new(cfg);
    let io = IoSession::untracked();
    let ext = build.alloc();
    {
        let mut w = build.writer(ext, &io);
        for blk in 0..BLOCKS {
            w.write_bits(expected_word(0, blk, 0), 64);
            w.write_bits(expected_word(0, blk, 1), 64);
        }
    }
    let stored = [psi_io::StoredExtent {
        bit_len: build.extent_bits(ext),
        freed: false,
    }];
    let pool = Arc::new(BufferPool::new(
        Arc::new(MemStore::from_disk(&build)),
        256,
        128,
    ));
    let disk = Arc::new(Disk::from_stored(cfg, &stored, Arc::clone(&pool)));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let disk = Arc::clone(&disk);
            scope.spawn(move || {
                let session = IoSession::new();
                let mut r = disk.reader(ext, 0, &session);
                for blk in 0..BLOCKS {
                    assert_eq!(r.read_bits(64), expected_word(0, blk, 0));
                    assert_eq!(r.read_bits(64), expected_word(0, blk, 1));
                }
                // Charge parity: losing the fetch race must not change
                // what a thread is charged.
                assert_eq!(session.stats().reads, BLOCKS);
                assert_eq!(session.stats().bits_read, BLOCKS * 128);
            });
        }
    });
    assert_eq!(pool.fetches(), BLOCKS, "each block fetched exactly once");
    let stats = pool.stats();
    assert_eq!(stats.misses, BLOCKS);
    assert_eq!(stats.hits + stats.misses, THREADS as u64 * BLOCKS);
}
