//! In-memory bit buffer.

use crate::{BitSink, BitSource};

/// A growable in-memory bit buffer, MSB-first within 64-bit words.
///
/// `BitBuf` mirrors the on-disk bit layout of [`psi_io::Disk`] extents so
/// that structures can be staged in memory and flushed verbatim.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitBuf {
    words: Vec<u64>,
    bit_len: u64,
}

impl BitBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with room for `bits` bits.
    pub fn with_capacity(bits: u64) -> Self {
        BitBuf {
            words: Vec::with_capacity((bits as usize).div_ceil(64)),
            bit_len: 0,
        }
    }

    /// Length in bits.
    pub fn len(&self) -> u64 {
        self.bit_len
    }

    /// Reserved capacity in bits (whole words). Encoders that pre-reserve
    /// from size hints assert against this in debug builds.
    pub fn capacity_bits(&self) -> u64 {
        64 * self.words.capacity() as u64
    }

    /// Whether the buffer contains no bits.
    pub fn is_empty(&self) -> bool {
        self.bit_len == 0
    }

    /// The underlying words (last word zero-padded).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Appends the low `k ≤ 64` bits of `value`.
    #[inline]
    pub fn push_bits(&mut self, value: u64, k: u32) {
        debug_assert!(k <= 64);
        if k == 0 {
            return;
        }
        debug_assert!(k == 64 || value < (1u64 << k), "value wider than k bits");
        let pos = self.bit_len;
        let end_word = ((pos + u64::from(k) - 1) / 64) as usize;
        if end_word >= self.words.len() {
            self.words.resize(end_word + 1, 0);
        }
        let w = (pos / 64) as usize;
        let off = (pos % 64) as u32;
        let avail = 64 - off;
        if k <= avail {
            self.words[w] |= value << (avail - k);
        } else {
            self.words[w] |= value >> (k - avail);
            self.words[w + 1] |= value << (64 - (k - avail));
        }
        self.bit_len += u64::from(k);
    }

    /// Appends one bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        self.push_bits(u64::from(bit), 1);
    }

    /// Reads `k ≤ 64` bits starting at `pos` without a cursor.
    #[inline]
    pub fn get_bits_at(&self, pos: u64, k: u32) -> u64 {
        debug_assert!(k <= 64);
        if k == 0 {
            return 0;
        }
        assert!(
            pos + u64::from(k) <= self.bit_len,
            "read past end of BitBuf"
        );
        let w = (pos / 64) as usize;
        let off = (pos % 64) as u32;
        let avail = 64 - off;
        if k <= avail {
            (self.words[w] << off) >> (64 - k)
        } else {
            let hi = self.words[w] << off >> (64 - k);
            let lo = self.words[w + 1] >> (64 - (k - avail));
            hi | lo
        }
    }

    /// Reads bit `pos`.
    #[inline]
    pub fn get_bit(&self, pos: u64) -> bool {
        assert!(pos < self.bit_len, "read past end of BitBuf");
        (self.words[(pos / 64) as usize] >> (63 - (pos % 64))) & 1 == 1
    }

    /// Appends the entire contents of `other`.
    ///
    /// When this buffer's length is 64-bit aligned the append is a plain
    /// word copy; otherwise the source words are re-shifted one word at a
    /// time (still far cheaper than per-chunk cursor reads).
    pub fn extend_from(&mut self, other: &BitBuf) {
        self.extend_from_words(&other.words, other.bit_len);
    }

    /// Appends `bit_len` bits stored MSB-first in `words` (bits of the
    /// final word beyond `bit_len` must be zero).
    pub fn extend_from_words(&mut self, words: &[u64], bit_len: u64) {
        if bit_len == 0 {
            return;
        }
        let nwords = (bit_len as usize).div_ceil(64);
        debug_assert!(nwords <= words.len(), "word slice shorter than bit_len");
        if self.bit_len.is_multiple_of(64) {
            // Aligned destination: whole-word copy, no shifting.
            debug_assert_eq!(self.words.len() as u64, self.bit_len / 64);
            self.words.extend_from_slice(&words[..nwords]);
            self.bit_len += bit_len;
        } else {
            crate::copy_words_chunked(self, words, bit_len);
        }
    }

    /// Appends `bits` bits drained from `src` (used to lift disk-resident
    /// code streams into memory; the source is charged as it is read).
    pub fn extend_from_source<S: BitSource>(&mut self, src: &mut S, bits: u64) {
        let mut remaining = bits;
        while remaining > 0 {
            let k = remaining.min(64) as u32;
            self.push_bits(src.get_bits(k), k);
            remaining -= u64::from(k);
        }
    }

    /// Clears the buffer, retaining capacity.
    pub fn clear(&mut self) {
        self.words.clear();
        self.bit_len = 0;
    }

    /// A reading cursor from the start.
    pub fn reader(&self) -> BitBufReader<'_> {
        BitBufReader { buf: self, pos: 0 }
    }

    /// A reading cursor from bit `pos`.
    pub fn reader_at(&self, pos: u64) -> BitBufReader<'_> {
        assert!(pos <= self.bit_len);
        BitBufReader { buf: self, pos }
    }
}

impl BitSink for BitBuf {
    fn put_bits(&mut self, value: u64, k: u32) {
        self.push_bits(value, k);
    }

    fn put_bits_bulk(&mut self, words: &[u64], bit_len: u64) {
        self.extend_from_words(words, bit_len);
    }

    fn bit_pos(&self) -> u64 {
        self.bit_len
    }
}

/// A word-accumulating append cursor over a [`BitBuf`] — the bulk encode
/// path.
///
/// [`BitBuf::push_bits`] pays a resize check, a word-index division and a
/// two-word split on every call; a gamma encoder calling it per element
/// spends more time in that bookkeeping than in the code arithmetic. The
/// writer instead packs bits into a 64-bit register and touches the
/// buffer's word vector once per *word*: `put_bits` is an or-shift into
/// the register plus an occasional whole-word push. Dropping the writer
/// (or calling [`Self::finish`]) flushes the partial register word, so
/// the buffer is valid again afterwards; while the writer is live it
/// holds the buffer mutably, so no reader can observe the detached tail.
#[derive(Debug)]
pub struct BitWriter<'a> {
    buf: &'a mut BitBuf,
    /// Pending bits, MSB-aligned: the top `fill` bits are valid, the rest
    /// are zero. Invariant: `fill < 64` between calls.
    acc: u64,
    fill: u32,
}

impl<'a> BitWriter<'a> {
    /// Opens a writer appending at the end of `buf`. A partial final word
    /// is lifted into the accumulator so unaligned tails keep working.
    pub fn new(buf: &'a mut BitBuf) -> Self {
        let fill = (buf.bit_len % 64) as u32;
        let acc = if fill == 0 {
            0
        } else {
            buf.bit_len -= u64::from(fill);
            buf.words.pop().expect("partial bits imply a final word")
        };
        BitWriter { buf, acc, fill }
    }

    /// Appends the low `k ≤ 64` bits of `value`.
    #[inline]
    pub fn push_bits(&mut self, value: u64, k: u32) {
        debug_assert!(k <= 64);
        if k == 0 {
            return;
        }
        debug_assert!(k == 64 || value < (1u64 << k), "value wider than k bits");
        let space = 64 - self.fill; // ≥ 1 by the fill invariant
        if k < space {
            self.acc |= value << (space - k);
            self.fill += k;
        } else {
            // Fills the register exactly or spills: flush one word.
            let word = self.acc | (value >> (k - space));
            self.buf.words.push(word);
            self.buf.bit_len += 64;
            self.fill = k - space;
            self.acc = if self.fill == 0 {
                0
            } else {
                value << (64 - self.fill)
            };
        }
    }

    /// The logical bit length of the buffer, accumulator included.
    #[inline]
    pub fn len(&self) -> u64 {
        self.buf.bit_len + u64::from(self.fill)
    }

    /// Whether nothing has been written (buffer and accumulator empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes the partial word back into the buffer. Equivalent to
    /// dropping the writer; provided for call sites that want the flush
    /// point explicit.
    pub fn finish(self) {}
}

impl Drop for BitWriter<'_> {
    fn drop(&mut self) {
        if self.fill > 0 {
            self.buf.words.push(self.acc);
            self.buf.bit_len += u64::from(self.fill);
            self.fill = 0;
        }
    }
}

impl BitSink for BitWriter<'_> {
    #[inline]
    fn put_bits(&mut self, value: u64, k: u32) {
        self.push_bits(value, k);
    }

    fn put_bits_bulk(&mut self, words: &[u64], bit_len: u64) {
        if self.fill == 0 {
            // Aligned: whole-word copy, then re-lift any partial tail so
            // the accumulator invariant (buffer word-aligned) holds.
            self.buf.extend_from_words(words, bit_len);
            let tail = (self.buf.bit_len % 64) as u32;
            if tail != 0 {
                self.fill = tail;
                self.buf.bit_len -= u64::from(tail);
                self.acc = self
                    .buf
                    .words
                    .pop()
                    .expect("partial bits imply a final word");
            }
        } else {
            let mut remaining = bit_len;
            for &w in words {
                let k = remaining.min(64) as u32;
                if k == 0 {
                    break;
                }
                self.push_bits(w >> (64 - k), k);
                remaining -= u64::from(k);
            }
        }
    }

    #[inline]
    fn bit_pos(&self) -> u64 {
        self.len()
    }
}

/// A reading cursor over a [`BitBuf`].
#[derive(Debug, Clone)]
pub struct BitBufReader<'a> {
    buf: &'a BitBuf,
    pos: u64,
}

impl<'a> BitBufReader<'a> {
    /// Bits remaining.
    pub fn remaining(&self) -> u64 {
        self.buf.bit_len - self.pos
    }
}

impl BitSource for BitBufReader<'_> {
    fn get_bits(&mut self, k: u32) -> u64 {
        let v = self.buf.get_bits_at(self.pos, k);
        self.pos += u64::from(k);
        v
    }

    fn get_unary(&mut self) -> u32 {
        // Word-at-a-time scan, mirroring DiskReader::read_unary.
        let mut zeros = 0u32;
        loop {
            assert!(
                self.pos < self.buf.bit_len,
                "unary code ran past end of BitBuf"
            );
            let w = (self.pos / 64) as usize;
            let off = (self.pos % 64) as u32;
            let chunk = self.buf.words[w] << off;
            let avail = (64 - off).min((self.buf.bit_len - self.pos) as u32);
            let lz = chunk.leading_zeros().min(avail);
            if lz < avail {
                self.pos += u64::from(lz) + 1;
                return zeros + lz;
            }
            zeros += avail;
            self.pos += u64::from(avail);
        }
    }

    #[inline]
    fn peek_word(&self) -> (u64, u32) {
        let remaining = self.buf.bit_len - self.pos;
        if remaining == 0 {
            return (0, 0);
        }
        // One load: only the current word's tail. Codes that straddle into
        // the next word take the decoder's fallback path — rarer than the
        // second load is expensive. Bits past `bit_len` are zero by
        // construction (push only ORs into zeroed words), so no masking.
        let off = (self.pos % 64) as u32;
        let word = self.buf.words[(self.pos / 64) as usize] << off;
        (word, remaining.min(u64::from(64 - off)) as u32)
    }

    #[inline]
    fn skip_bits(&mut self, k: u32) {
        debug_assert!(self.pos + u64::from(k) <= self.buf.bit_len);
        self.pos += u64::from(k);
    }

    fn bit_pos(&self) -> u64 {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut b = BitBuf::new();
        b.push_bits(0b101, 3);
        b.push_bits(0xFFFF, 16);
        b.push_bit(false);
        b.push_bits(u64::MAX, 64);
        assert_eq!(b.len(), 84);
        assert_eq!(b.get_bits_at(0, 3), 0b101);
        assert_eq!(b.get_bits_at(3, 16), 0xFFFF);
        assert!(!b.get_bit(19));
        assert_eq!(b.get_bits_at(20, 64), u64::MAX);
    }

    #[test]
    fn reader_traverses_sequentially() {
        let mut b = BitBuf::new();
        for i in 0..100u64 {
            b.push_bits(i % 16, 4);
        }
        let mut r = b.reader();
        for i in 0..100u64 {
            assert_eq!(r.get_bits(4), i % 16);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn unary_in_buffer() {
        let mut b = BitBuf::new();
        b.push_bits(0, 64);
        b.push_bits(0, 6);
        b.push_bit(true);
        let mut r = b.reader();
        assert_eq!(r.get_unary(), 70);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = BitBuf::new();
        a.push_bits(0b11, 2);
        let mut b = BitBuf::new();
        b.push_bits(0b001, 3);
        a.extend_from(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.get_bits_at(0, 5), 0b11001);
    }

    #[test]
    fn extend_from_word_aligned_is_verbatim() {
        let mut a = BitBuf::new();
        a.push_bits(u64::MAX, 64);
        a.push_bits(0, 64); // aligned destination
        let mut b = BitBuf::new();
        b.push_bits(0xDEAD_BEEF, 33);
        a.extend_from(&b);
        assert_eq!(a.len(), 161);
        assert_eq!(a.get_bits_at(128, 33), 0xDEAD_BEEF);
        // And further appends continue where the copy ended.
        a.push_bit(true);
        assert!(a.get_bit(161));
    }

    #[test]
    fn peek_word_exposes_upcoming_bits_without_consuming() {
        let mut b = BitBuf::new();
        b.push_bits(0b1011, 4);
        b.push_bits(u64::MAX, 64);
        let mut r = b.reader();
        let (word, valid) = r.peek_word();
        assert_eq!(valid, 64);
        assert_eq!(word >> 60, 0b1011);
        assert_eq!(r.bit_pos(), 0, "peek must not consume");
        r.skip_bits(4);
        let (word, valid) = r.peek_word();
        assert_eq!(word, u64::MAX << 4);
        assert_eq!(valid, 60, "one-word lookahead ends at the word boundary");
        r.skip_bits(60);
        let (word, valid) = r.peek_word();
        assert_eq!((word >> 60, valid), (0xF, 4));
        r.skip_bits(4);
        assert_eq!(r.peek_word(), (0, 0), "exhausted reader peeks empty");
    }

    #[test]
    fn zero_width_operations_are_noops() {
        let mut b = BitBuf::new();
        b.push_bits(0, 0);
        assert!(b.is_empty());
        assert_eq!(b.get_bits_at(0, 0), 0);
    }
}
