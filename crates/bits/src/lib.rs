//! Bit-level substrate for the `psi` workspace.
//!
//! Pagh & Rao's structures are built almost entirely out of one primitive:
//! sparse sets of positions stored as **run-length/gap codes with Elias
//! gamma encoding** (paper §1.2, citing Elias, ref 12). This crate provides:
//!
//! * [`BitBuf`] — an in-memory, MSB-first bit buffer with a matching
//!   [`BitBufReader`];
//! * [`BitSink`] / [`BitSource`] — traits abstracting over in-memory buffers
//!   and [`psi_io`] disk cursors, so the same codecs drive both;
//! * [`codes`] — Elias gamma and delta codes;
//! * [`GapBitmap`] — a compressed bitmap: the positions of its 1s encoded
//!   as gamma-coded gaps, within a constant factor of the
//!   information-theoretic minimum `lg C(n, z)` bits (§1.2);
//! * streaming [`GapEncoder`]/[`GapDecoder`] for encoding to and decoding
//!   from disk without materializing;
//! * [`PlainBitmap`] — an uncompressed bitmap with broadword rank/select
//!   (the baseline bitmap-index representation);
//! * [`merge`] — k-way merges over position streams (the paper's
//!   "compute the compressed bitmap of their union by merging", §2.1);
//! * [`entropy`] — empirical 0th-order entropy of symbol strings.

#![warn(missing_docs)]

mod buf;
pub mod codes;
pub mod entropy;
mod gap;
pub mod merge;
mod plain;

pub use buf::{BitBuf, BitBufReader};
pub use gap::{GapBitmap, GapDecoder, GapEncoder};
pub use plain::{PlainBitmap, RankDirectory};

/// A destination for bits (in-memory buffer or disk writer).
pub trait BitSink {
    /// Appends the low `k ≤ 64` bits of `value`, MSB of the field first.
    fn put_bits(&mut self, value: u64, k: u32);

    /// Appends one bit.
    fn put_bit(&mut self, bit: bool) {
        self.put_bits(u64::from(bit), 1);
    }

    /// Current length of the destination in bits.
    fn bit_pos(&self) -> u64;
}

/// A source of bits (in-memory reader or disk reader).
pub trait BitSource {
    /// Reads `k ≤ 64` bits as the low bits of a `u64`.
    fn get_bits(&mut self, k: u32) -> u64;

    /// Reads one bit.
    fn get_bit(&mut self) -> bool {
        self.get_bits(1) == 1
    }

    /// Reads a unary code: the number of 0s before the next 1, consuming
    /// the terminating 1.
    fn get_unary(&mut self) -> u32 {
        let mut zeros = 0;
        while !self.get_bit() {
            zeros += 1;
        }
        zeros
    }

    /// Current position in bits.
    fn bit_pos(&self) -> u64;
}

impl BitSink for psi_io::DiskWriter<'_> {
    fn put_bits(&mut self, value: u64, k: u32) {
        self.write_bits(value, k);
    }

    fn bit_pos(&self) -> u64 {
        self.pos()
    }
}

impl BitSink for psi_io::DiskWriterAt<'_> {
    fn put_bits(&mut self, value: u64, k: u32) {
        self.write_bits(value, k);
    }

    fn bit_pos(&self) -> u64 {
        self.pos()
    }
}

impl BitSource for psi_io::DiskReader<'_> {
    fn get_bits(&mut self, k: u32) -> u64 {
        self.read_bits(k)
    }

    fn get_bit(&mut self) -> bool {
        self.read_bit()
    }

    fn get_unary(&mut self) -> u32 {
        self.read_unary()
    }

    fn bit_pos(&self) -> u64 {
        self.pos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_io::{Disk, IoConfig, IoSession};

    #[test]
    fn disk_cursors_implement_bit_traits() {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let ext = disk.alloc();
        let session = IoSession::untracked();
        {
            let mut w = disk.writer(ext, &session);
            codes::put_gamma(&mut w, 42);
            codes::put_delta(&mut w, 1_000_000);
        }
        let mut r = disk.reader(ext, 0, &session);
        assert_eq!(codes::get_gamma(&mut r), 42);
        assert_eq!(codes::get_delta(&mut r), 1_000_000);
    }
}
