//! Bit-level substrate for the `psi` workspace.
//!
//! Pagh & Rao's structures are built almost entirely out of one primitive:
//! sparse sets of positions stored as **run-length/gap codes with Elias
//! gamma encoding** (paper §1.2, citing Elias, ref 12). This crate provides:
//!
//! * [`BitBuf`] — an in-memory, MSB-first bit buffer with a matching
//!   [`BitBufReader`];
//! * [`BitSink`] / [`BitSource`] — traits abstracting over in-memory buffers
//!   and [`psi_io`] disk cursors, so the same codecs drive both;
//! * [`codes`] — Elias gamma and delta codes;
//! * [`GapBitmap`] — a compressed bitmap: the positions of its 1s encoded
//!   as gamma-coded gaps, within a constant factor of the
//!   information-theoretic minimum `lg C(n, z)` bits (§1.2);
//! * streaming [`GapEncoder`]/[`GapDecoder`] for encoding to and decoding
//!   from disk without materializing;
//! * [`PlainBitmap`] — an uncompressed bitmap with broadword rank/select
//!   (the baseline bitmap-index representation);
//! * [`merge`] — k-way merges over position streams (the paper's
//!   "compute the compressed bitmap of their union by merging", §2.1),
//!   including the density-driven planner ([`merge::plan`]) and its
//!   bitset-accumulate path for dense covers;
//! * [`skip`] — skip directories: sampled `(position, bit offset,
//!   occupancy word)` entries that make gap streams seekable, powering
//!   galloping set operations, occupancy block-skipping and
//!   directory-assisted decoder seeks;
//! * [`kernel`] — kernel-path counters and switches (which decode /
//!   intersect implementation actually ran);
//! * [`entropy`] — empirical 0th-order entropy of symbol strings.
//!
//! The `simd` cargo feature adds `lzcnt`/BMI-compiled clones of the
//! batch-decode kernel, selected by runtime CPU detection; the stable
//! SWAR code is always compiled and remains the fallback.

#![warn(missing_docs)]

mod buf;
pub mod codes;
pub mod entropy;
mod gap;
pub mod kernel;
pub mod merge;
mod plain;
pub mod skip;
mod swar;

pub use buf::{BitBuf, BitBufReader, BitWriter};
pub use gap::{GapBitmap, GapCursor, GapDecoder, GapEncoder};
pub use plain::{PlainBitmap, RankDirectory};
pub use skip::{SkipDirectory, SkipEntry, SKIP_ENTRY_BITS, SKIP_SAMPLE};

/// A destination for bits (in-memory buffer or disk writer).
pub trait BitSink {
    /// Appends the low `k ≤ 64` bits of `value`, MSB of the field first.
    fn put_bits(&mut self, value: u64, k: u32);

    /// Appends one bit.
    fn put_bit(&mut self, bit: bool) {
        self.put_bits(u64::from(bit), 1);
    }

    /// Appends `bit_len` bits stored MSB-first in `words`.
    ///
    /// Bits of the final word beyond `bit_len` must be zero (the layout
    /// [`BitBuf`] and disk extents maintain). The default chunks through
    /// [`Self::put_bits`]; sinks with word-addressable storage override
    /// this with a whole-word copy when their write head is 64-bit
    /// aligned.
    fn put_bits_bulk(&mut self, words: &[u64], bit_len: u64) {
        copy_words_chunked(self, words, bit_len);
    }

    /// Current length of the destination in bits.
    fn bit_pos(&self) -> u64;
}

/// The shared per-word fallback for bulk appends to an unaligned sink:
/// full 64-bit words, then the tail field shifted down to the low bits.
/// (`psi_io::DiskWriter::write_bulk` keeps its own copy of this loop —
/// `psi-io` sits below this crate in the dependency order.)
fn copy_words_chunked<S: BitSink + ?Sized>(sink: &mut S, words: &[u64], bit_len: u64) {
    let full = (bit_len / 64) as usize;
    for &w in &words[..full] {
        sink.put_bits(w, 64);
    }
    let tail = (bit_len % 64) as u32;
    if tail > 0 {
        sink.put_bits(words[full] >> (64 - tail), tail);
    }
}

/// A source of bits (in-memory reader or disk reader).
pub trait BitSource {
    /// Reads `k ≤ 64` bits as the low bits of a `u64`.
    fn get_bits(&mut self, k: u32) -> u64;

    /// Reads one bit.
    fn get_bit(&mut self) -> bool {
        self.get_bits(1) == 1
    }

    /// Reads a unary code: the number of 0s before the next 1, consuming
    /// the terminating 1.
    fn get_unary(&mut self) -> u32 {
        let mut zeros = 0;
        while !self.get_bit() {
            zeros += 1;
        }
        zeros
    }

    /// Peeks at the next up-to-64 bits without consuming them.
    ///
    /// Returns `(word, valid)`: the upcoming bits MSB-aligned in `word`,
    /// with `valid ≤ 64` of them meaningful and everything past `valid`
    /// zero. This is the lookahead that lets [`codes::get_gamma`] extract
    /// a whole codeword with one `leading_zeros` + shift instead of a
    /// bit cursor loop. The default returns `(0, 0)` — "no lookahead" —
    /// which makes every decoder fall back to its cursor path, so
    /// third-party sources keep working unmodified.
    fn peek_word(&self) -> (u64, u32) {
        (0, 0)
    }

    /// Consumes `k ≤ 64` bits previously examined via [`Self::peek_word`]
    /// (counted as read, exactly as if they had been fetched with
    /// [`Self::get_bits`]).
    fn skip_bits(&mut self, k: u32) {
        let _ = self.get_bits(k);
    }

    /// Current position in bits.
    fn bit_pos(&self) -> u64;
}

impl BitSink for psi_io::DiskWriter<'_> {
    fn put_bits(&mut self, value: u64, k: u32) {
        self.write_bits(value, k);
    }

    fn put_bits_bulk(&mut self, words: &[u64], bit_len: u64) {
        self.write_bulk(words, bit_len);
    }

    fn bit_pos(&self) -> u64 {
        self.pos()
    }
}

impl BitSink for psi_io::DiskWriterAt<'_> {
    fn put_bits(&mut self, value: u64, k: u32) {
        self.write_bits(value, k);
    }

    fn bit_pos(&self) -> u64 {
        self.pos()
    }
}

impl BitSource for psi_io::DiskReader<'_> {
    fn get_bits(&mut self, k: u32) -> u64 {
        self.read_bits(k)
    }

    fn get_bit(&mut self) -> bool {
        self.read_bit()
    }

    fn get_unary(&mut self) -> u32 {
        self.read_unary()
    }

    fn peek_word(&self) -> (u64, u32) {
        self.peek_word()
    }

    fn skip_bits(&mut self, k: u32) {
        self.consume_bits(k);
    }

    fn bit_pos(&self) -> u64 {
        self.pos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_io::{Disk, IoConfig, IoSession};

    #[test]
    fn disk_cursors_implement_bit_traits() {
        let mut disk = Disk::new(IoConfig::with_block_bits(128));
        let ext = disk.alloc();
        let session = IoSession::untracked();
        {
            let mut w = disk.writer(ext, &session);
            codes::put_gamma(&mut w, 42);
            codes::put_delta(&mut w, 1_000_000);
        }
        let mut r = disk.reader(ext, 0, &session);
        assert_eq!(codes::get_gamma(&mut r), 42);
        assert_eq!(codes::get_delta(&mut r), 1_000_000);
    }
}
