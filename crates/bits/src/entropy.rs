//! Empirical 0th-order entropy of symbol strings.
//!
//! The paper's optimal structure uses space `O(nH₀ + n + σ lg² n)` bits
//! where `H₀ = Σₐ (zₐ/n) lg(n/zₐ)` is the 0th-order entropy of the indexed
//! string (§2.2). These helpers compute `H₀` and the per-character counts
//! used throughout the tree constructions.

/// Per-character occurrence counts of `symbols` over alphabet `[0, sigma)`.
///
/// # Panics
/// Panics if any symbol is `≥ sigma`.
pub fn char_counts(symbols: &[u32], sigma: u32) -> Vec<u64> {
    let mut counts = vec![0u64; sigma as usize];
    for &s in symbols {
        assert!(s < sigma, "symbol {s} outside alphabet of size {sigma}");
        counts[s as usize] += 1;
    }
    counts
}

/// 0th-order entropy in bits per symbol.
pub fn h0(symbols: &[u32], sigma: u32) -> f64 {
    psi_io::cost::h0_from_counts(&char_counts(symbols, sigma))
}

/// Total entropy `n · H₀` in bits — the leading term of Theorem 2's space
/// bound.
pub fn nh0_bits(symbols: &[u32], sigma: u32) -> f64 {
    symbols.len() as f64 * h0(symbols, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact() {
        let s = [0u32, 1, 1, 2, 2, 2];
        assert_eq!(char_counts(&s, 4), vec![1, 2, 3, 0]);
    }

    #[test]
    fn uniform_string_has_lg_sigma_entropy() {
        let s: Vec<u32> = (0..256u32).map(|i| i % 16).collect();
        assert!((h0(&s, 16) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn constant_string_has_zero_entropy() {
        let s = vec![7u32; 100];
        assert_eq!(h0(&s, 8), 0.0);
        assert_eq!(nh0_bits(&s, 8), 0.0);
    }

    #[test]
    fn skew_reduces_entropy() {
        let uniform: Vec<u32> = (0..1000u32).map(|i| i % 10).collect();
        let skewed: Vec<u32> = (0..1000u32)
            .map(|i| if i % 100 == 0 { i % 10 } else { 0 })
            .collect();
        assert!(h0(&skewed, 10) < h0(&uniform, 10));
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn out_of_alphabet_symbol_rejected() {
        let _ = char_counts(&[5], 5);
    }
}
