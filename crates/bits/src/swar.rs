//! SWAR multi-codeword gamma decoding.
//!
//! The batch decode kernel behind [`crate::GapBitmap::decode_all`]. The
//! stream is processed through a 64-bit register window: one (pair of)
//! word loads per window, then every gamma codeword that lies entirely
//! inside the register is decoded with a shift, a `leading_zeros` and a
//! shift-extract — no cursor, no per-code memory traffic, and runs of
//! unit gaps (leading 1-bits) burst-emitted as whole slices. Codes wider
//! than the window (gaps ≥ 2³², > 64 code bits) take a word-scan unary
//! fallback and re-synchronize the window.
//!
//! Gamma codes chain serially — each codeword's start depends on the
//! previous one's length — so a single decode loop is bound by its
//! `leading_zeros` → shift dependency chain, not by issue width. When
//! the bitmap carries a skip directory, its entries record exact
//! `(element, bit offset)` resume points, which lets the decoder split
//! the stream in two and run **two independent chains interleaved** in
//! one loop: the out-of-order core overlaps them for close to twice the
//! throughput on one thread.
//!
//! Two bodies of the same `#[inline(always)]` core are compiled: the
//! stable SWAR path (baseline x86-64 lowers `leading_zeros` to
//! `bsr`+`cmov`), and — behind the `simd` cargo feature — an
//! `lzcnt`/BMI-enabled clone selected once per process by runtime CPU
//! detection. Both are differentially tested against the bit-by-bit
//! reference decoders in `tests/differential.rs`.

use crate::kernel;
use crate::skip::SkipDirectory;

/// Streams shorter than this decode single-chain even when a directory
/// is available: the dual-chain setup is not worth it under a few
/// hundred codes.
const DUAL_MIN_COUNT: u64 = 512;

/// Streams at least this long split four ways instead of two — but only
/// when the codes are wide (see [`QUAD_MIN_BITS_PER_CODE`]).
const QUAD_MIN_COUNT: u64 = 8192;

/// Four-way splitting needs wide codes to pay off: with few codes per
/// 64-bit window the per-window overhead dominates and overlaps across
/// chains, while for narrow codes the extra chain state costs more in
/// register pressure than the added overlap returns.
const QUAD_MIN_BITS_PER_CODE: u64 = 16;

/// Streams whose mean code is at least this wide decode with the
/// run-of-ones burst test compiled out of the fast drain: runs of unit
/// gaps need ~1 bit/code to arise, so past a few bits/code the per-code
/// test never fires and only costs issue slots.
const BURST_MAX_BITS_PER_CODE: u64 = 6;

/// Decodes `count` gamma gap codes (`bit_len` valid bits of `words`,
/// MSB-first; first code is `gamma(p₀ + 1)`, the rest gaps) into `out`,
/// which is cleared first. `dir`, when present, must be the stream's own
/// skip directory; it enables the dual-chain split (only its exact
/// `pos`/`bit_off` fields are used, never the occupancy words).
///
/// # Panics
/// Panics if the stream holds more or fewer codes than `count`, or does
/// not end exactly at `bit_len`.
pub(crate) fn decode_gaps(
    words: &[u64],
    bit_len: u64,
    count: u64,
    dir: Option<&SkipDirectory>,
    out: &mut Vec<u64>,
) {
    out.clear();
    if count == 0 {
        assert_eq!(bit_len, 0, "gap stream holds more codes than its count");
        return;
    }
    out.reserve(count as usize);
    let (plan, n) = dir.map_or(([(0usize, 0u64, 0u64); 3], 0), |d| {
        split_points(d, bit_len, count)
    });
    let splits = &plan[..n];
    // Unit-gap run bursts only pay when the mean code is short enough
    // for runs to show up at all; wider streams compile the run test out
    // of the hot drain (see `Chain::step` — a unit gap still decodes
    // correctly through the plain gamma path, the burst is only ever an
    // optimization).
    let burst = bit_len / count < BURST_MAX_BITS_PER_CODE;
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if lzcnt_available() {
        // SAFETY: `lzcnt`, `bmi1` and `bmi2` were runtime-detected above.
        let pos = unsafe {
            if burst {
                decode_core_accel::<true>(words, bit_len, out, count as usize, splits)
            } else {
                decode_core_accel::<false>(words, bit_len, out, count as usize, splits)
            }
        };
        kernel::DECODE_SIMD.add(1);
        check_count(out, count, bit_len, pos);
        return;
    }
    let pos = if burst {
        decode_core::<true>(words, bit_len, out, count as usize, splits)
    } else {
        decode_core::<false>(words, bit_len, out, count as usize, splits)
    };
    kernel::DECODE_SWAR.add(1);
    check_count(out, count, bit_len, pos);
}

/// Picks the directory entry nearest one bit-offset `target` of the
/// stream (balancing decode work, not element counts), returning the
/// resuming chain's `(element index, value, resume bit offset)`. `min_j`
/// keeps successive split entries strictly increasing.
fn split_at(
    dir: &SkipDirectory,
    bit_len: u64,
    count: u64,
    target: u64,
    min_j: usize,
) -> Option<(usize, (usize, u64, u64))> {
    let entries = dir.entries();
    let j = entries.partition_point(|e| e.bit_off < target);
    // Entry 0 is the first element (offset past its code ≈ 0 bits in):
    // splitting there degenerates the leading chain.
    if j <= min_j || j >= entries.len() {
        return None;
    }
    let e = &entries[j];
    let idx = j as u64 * u64::from(dir.k());
    if idx >= count || e.bit_off > bit_len {
        // A directory that disagrees with the count is not split on; the
        // count checks still police the result.
        return None;
    }
    Some((j, (idx as usize, e.pos, e.bit_off)))
}

/// Plans the chain splits for one decode: three quarter-point splits
/// (four chains) for long streams, one midpoint split (two chains) for
/// medium ones, none for short ones — returned as a fixed array plus
/// the number of valid entries.
fn split_points(dir: &SkipDirectory, bit_len: u64, count: u64) -> ([(usize, u64, u64); 3], usize) {
    let mut splits = [(0usize, 0u64, 0u64); 3];
    if count < DUAL_MIN_COUNT {
        return (splits, 0);
    }
    if count >= QUAD_MIN_COUNT && bit_len / count >= QUAD_MIN_BITS_PER_CODE {
        let mut j = 0usize;
        let mut n = 0usize;
        for t in 1..4u64 {
            match split_at(dir, bit_len, count, bit_len / 4 * t, j) {
                Some((nj, s)) => {
                    splits[n] = s;
                    n += 1;
                    j = nj;
                }
                None => break,
            }
        }
        if n == 3 {
            return (splits, 3);
        }
        // Couldn't cut clean quarters — fall through to one midpoint cut.
    }
    match split_at(dir, bit_len, count, bit_len / 2, 0) {
        Some((_, s)) => {
            splits[0] = s;
            (splits, 1)
        }
        None => (splits, 0),
    }
}

/// The post-decode count check shared by both dispatch arms: `pos` is
/// where decoding stopped — short of `bit_len` only when an output
/// bound was hit with stream left over.
fn check_count(out: &[u64], count: u64, bit_len: u64, pos: u64) {
    assert!(pos >= bit_len, "gap stream holds more codes than its count");
    assert!(
        out.len() as u64 == count,
        "gap stream ended early: {} of {count} codes in {bit_len} bits",
        out.len()
    );
}

/// Whether the accelerated clone may run, detected once per process.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn lzcnt_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::arch::is_x86_feature_detected!("lzcnt")
            && std::arch::is_x86_feature_detected!("bmi1")
            && std::arch::is_x86_feature_detected!("bmi2")
    })
}

/// The lzcnt/BMI clone of [`decode_body`]. `leading_zeros` lowers to one
/// `lzcnt`, variable shifts to `shlx`/`shrx` — same source, shorter
/// dependency chain per codeword.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "lzcnt,bmi1,bmi2")]
unsafe fn decode_core_accel<const BURST: bool>(
    words: &[u64],
    bit_len: u64,
    out: &mut Vec<u64>,
    cap: usize,
    splits: &[(usize, u64, u64)],
) -> u64 {
    decode_body::<BURST>(words, bit_len, out, cap, splits)
}

/// The stable-Rust SWAR entry point.
fn decode_core<const BURST: bool>(
    words: &[u64],
    bit_len: u64,
    out: &mut Vec<u64>,
    cap: usize,
    splits: &[(usize, u64, u64)],
) -> u64 {
    decode_body::<BURST>(words, bit_len, out, cap, splits)
}

/// One decode chain: an independent cursor over a half-open bit range of
/// the stream, emitting into its own half-open slot range of the output.
struct Chain {
    /// Next bit to decode.
    pos: u64,
    /// End of this chain's bit range.
    end: u64,
    /// Next output slot.
    idx: usize,
    /// End of this chain's slot range.
    lim: usize,
    /// Running position sum (`u64::MAX` seeds the first chain, since the
    /// stream opens with `gamma(p₀ + 1)`).
    prev: u64,
}

impl Chain {
    #[inline(always)]
    fn live(&self) -> bool {
        self.pos < self.end && self.idx < self.lim
    }

    /// Decodes every codeword inside one 64-bit window at `self.pos`.
    ///
    /// # Safety
    /// `base` must point at storage with at least `self.lim` writable
    /// slots.
    #[inline(always)]
    unsafe fn step<const BURST: bool>(&mut self, words: &[u64], base: *mut u64) {
        let pos = self.pos;
        let end = self.end;
        let lim = self.lim;
        // Load a 64-bit window at `pos`, then drain every codeword that
        // lies entirely inside it. The drain keeps the *residual* window
        // as its loop state (`rest <<= len`), so the per-code dependency
        // chain is one count-leading-zeros plus one shift.
        let w = (pos >> 6) as usize;
        let off = (pos & 63) as u32;
        let lo = words.get(w + 1).copied().unwrap_or(0);
        // `(lo >> 1) >> (63 − off)` is `lo >> (64 − off)` without the
        // undefined 64-bit shift at off = 0.
        let window = (words[w] << off) | ((lo >> 1) >> (63 - off));
        let valid = (end - pos).min(64) as u32;
        let mut rest = window;
        let mut used = 0u32;
        let mut idx = self.idx;
        let mut prev = self.prev;
        if valid == 64 && lim - idx >= 64 {
            // Fast drain: a full window emits at most 64 elements (every
            // code is ≥ 1 bit), so `lim - idx ≥ 64` clears every output
            // bound up front and the per-code loop carries no capacity
            // checks. The `used ≥ 64` test is only needed after a burst:
            // on the gamma path a fully-consumed `rest` is all zero
            // (`<<=` drained it), the next `lz` reads 64, and the length
            // test breaks — one spare iteration instead of a per-code
            // compare.
            loop {
                let lz = rest.leading_zeros();
                // The run-of-ones burst is an optimization, never a
                // requirement: with `BURST` off a unit gap decodes
                // through the gamma path below (`lz = 0` → `len = 1`,
                // mantissa the 1-bit itself), and the per-code test
                // disappears from streams whose mean code is too wide
                // for runs to matter.
                if BURST && lz == 0 {
                    // Shifted-in zeros cap the run at `64 - used` — no
                    // clamp needed.
                    let ones = (!rest).leading_zeros();
                    for d in 0..u64::from(ones) {
                        // SAFETY: `idx + ones ≤ idx + 64 ≤ lim`.
                        unsafe { base.add(idx + d as usize).write(prev.wrapping_add(d + 1)) };
                    }
                    idx += ones as usize;
                    prev = prev.wrapping_add(u64::from(ones));
                    used += ones;
                    if used >= 64 {
                        break;
                    }
                    rest = window << used;
                    continue;
                }
                let len = 2 * lz + 1;
                if used + len > 64 {
                    break;
                }
                prev = prev.wrapping_add(rest >> (63 - 2 * lz));
                // SAFETY: `idx < idx₀ + 64 ≤ lim` — at most 64 emits per
                // window.
                unsafe { base.add(idx).write(prev) };
                idx += 1;
                used += len;
                rest <<= len;
            }
        } else {
            loop {
                let lz = rest.leading_zeros();
                if lz == 0 {
                    // A leading 1 codes gap 1, and a run of k ones is k
                    // consecutive positions — the dense-bitmap case, emitted
                    // as one burst with no per-element decode at all.
                    let ones = (!rest)
                        .leading_zeros()
                        .min(valid - used)
                        .min((lim - idx) as u32);
                    for d in 0..u64::from(ones) {
                        // SAFETY: `idx + ones ≤ lim` by the clamp above.
                        unsafe { base.add(idx + d as usize).write(prev.wrapping_add(d + 1)) };
                    }
                    idx += ones as usize;
                    prev = prev.wrapping_add(u64::from(ones));
                    used += ones;
                    if used >= valid || idx >= lim {
                        break;
                    }
                    rest = window << used;
                    continue;
                }
                // A whole gamma code is 2·lz + 1 ≤ 63 bits when it fits the
                // window (lz ≥ 32 forces the fallback below), so the shifts
                // stay in range.
                let len = 2 * lz + 1;
                if used + len > valid {
                    break;
                }
                // Top `lz` bits of `rest` are zero, so no mask is needed.
                prev = prev.wrapping_add(rest >> (63 - 2 * lz));
                // SAFETY: `idx < lim` is a loop invariant (checked on entry
                // and after every emit).
                unsafe { base.add(idx).write(prev) };
                idx += 1;
                used += len;
                if used >= valid || idx >= lim {
                    break;
                }
                rest <<= len;
            }
        }
        if used == 0 {
            if idx >= lim {
                self.idx = idx;
                self.prev = prev;
                return;
            }
            // Codeword longer than the window (gap ≥ 2³²): word-scan the
            // unary prefix, extract the mantissa, re-synchronize.
            let n = unary_at(words, end, pos);
            let tail = pos + u64::from(n) + 1;
            prev = prev.wrapping_add((1u64 << n) | bits_at(words, tail, n));
            // SAFETY: `idx < lim` checked just above.
            unsafe { base.add(idx).write(prev) };
            idx += 1;
            self.pos = tail + u64::from(n);
        } else {
            self.pos = pos + u64::from(used);
        }
        self.idx = idx;
        self.prev = prev;
    }
}

/// Whether chain `c` finished exactly at a split boundary: it emitted
/// its whole slot range, and the residue of its bit range is exactly the
/// split element's own codeword (whose gamma length follows from the gap
/// to the chain's last emitted value).
#[inline(always)]
fn boundary_ok(c: &Chain, split_pos: u64, split_off: u64) -> bool {
    let gap = split_pos.wrapping_sub(c.prev);
    c.idx == c.lim && gap != 0 && c.pos + u64::from(2 * (63 - gap.leading_zeros()) + 1) == split_off
}

/// Builds the chain that resumes at split `s` and runs to the next
/// boundary `(end, lim)`.
#[inline(always)]
fn resume(s: (usize, u64, u64), end: u64, lim: usize) -> Chain {
    Chain {
        pos: s.2,
        end,
        idx: s.0 + 1,
        lim,
        prev: s.1,
    }
}

/// The decode loop shared by both compilations. Emits through a raw
/// pointer bounded by each chain's slot range (≤ the reserved capacity)
/// — `Vec::push` would reload and store the length through memory on
/// every element, which costs more than the decode itself. `splits`
/// holds zero, one or three directory resume points, giving one, two or
/// four interleaved chains. Returns the bit position where decoding
/// stopped (short of `bit_len` only if an output bound was hit first,
/// i.e. the stream holds more codes than its count).
#[inline(always)]
fn decode_body<const BURST: bool>(
    words: &[u64],
    bit_len: u64,
    out: &mut Vec<u64>,
    cap: usize,
    splits: &[(usize, u64, u64)],
) -> u64 {
    debug_assert!(out.is_empty() && out.capacity() >= cap);
    let base = out.as_mut_ptr();
    let mut a = Chain {
        pos: 0,
        end: bit_len,
        idx: 0,
        lim: cap,
        prev: u64::MAX,
    };
    let (pos, len) = match *splits {
        // Each split element's value is recorded in the directory — it is
        // written to its slot directly; the next chain resumes decoding
        // just past its codeword. The interleaved hot loops run one
        // window per chain per iteration with no dependency between
        // them, so the out-of-order core overlaps the decode chains.
        [s1, s2, s3] if s3.0 < cap => {
            // SAFETY: `s1.0 < s2.0 < s3.0 < cap` (split indices are
            // strictly increasing directory samples).
            unsafe {
                base.add(s1.0).write(s1.1);
                base.add(s2.0).write(s2.1);
                base.add(s3.0).write(s3.1);
            }
            a.end = s1.2;
            a.lim = s1.0;
            let mut b = resume(s1, s2.2, s2.0);
            let mut c = resume(s2, s3.2, s3.0);
            let mut d = resume(s3, bit_len, cap);
            while a.live() && b.live() && c.live() && d.live() {
                // SAFETY: each chain stays inside its own slot range.
                unsafe {
                    a.step::<BURST>(words, base);
                    b.step::<BURST>(words, base);
                    c.step::<BURST>(words, base);
                    d.step::<BURST>(words, base);
                }
            }
            // Tail drains: with quarter-point splits the chains finish
            // near-together, so these are short.
            for ch in [&mut a, &mut b, &mut c, &mut d] {
                while ch.live() {
                    // SAFETY: as above.
                    unsafe { ch.step::<BURST>(words, base) };
                }
            }
            // Validate every boundary front to back so a failure reports
            // the first disagreeing chain's cursor (its slot prefix is
            // the initialized one) and the count checks fire.
            if !boundary_ok(&a, s1.1, s1.2) {
                (a.pos.min(s1.2.saturating_sub(1)), a.idx)
            } else if !boundary_ok(&b, s2.1, s2.2) {
                (b.pos.min(s2.2.saturating_sub(1)), b.idx)
            } else if !boundary_ok(&c, s3.1, s3.2) {
                (c.pos.min(s3.2.saturating_sub(1)), c.idx)
            } else {
                (d.pos, d.idx)
            }
        }
        [s1] if s1.0 < cap => {
            // SAFETY: `s1.0 < cap`.
            unsafe { base.add(s1.0).write(s1.1) };
            a.end = s1.2;
            a.lim = s1.0;
            let mut b = resume(s1, bit_len, cap);
            while a.live() && b.live() {
                // SAFETY: each chain stays inside its own slot range.
                unsafe {
                    a.step::<BURST>(words, base);
                    b.step::<BURST>(words, base);
                }
            }
            while a.live() {
                // SAFETY: as above.
                unsafe { a.step::<BURST>(words, base) };
            }
            while b.live() {
                // SAFETY: as above.
                unsafe { b.step::<BURST>(words, base) };
            }
            if boundary_ok(&a, s1.1, s1.2) {
                (b.pos, b.idx)
            } else {
                // Chain A's region disagrees with the directory: report
                // its cursor so the count checks fire.
                (a.pos.min(s1.2.saturating_sub(1)), a.idx)
            }
        }
        _ => {
            while a.live() {
                // SAFETY: the single chain owns slots `0..cap`.
                unsafe { a.step::<BURST>(words, base) };
            }
            (a.pos, a.idx)
        }
    };
    // SAFETY: slots `0..len` were written by the chains above (`len`
    // falls back to the first disagreeing chain's cursor on any early
    // stop, so the exposed prefix is always initialized).
    unsafe { out.set_len(len) };
    pos
}

/// Zeros before the next 1-bit at `pos` (the unary prefix), scanning
/// whole words.
#[inline(always)]
fn unary_at(words: &[u64], bit_len: u64, mut pos: u64) -> u32 {
    let mut zeros = 0u32;
    loop {
        assert!(pos < bit_len, "unary code ran past end of stream");
        let w = (pos >> 6) as usize;
        let off = (pos & 63) as u32;
        let chunk = words[w] << off;
        let avail = (64 - off).min((bit_len - pos) as u32);
        let lz = chunk.leading_zeros().min(avail);
        if lz < avail {
            return zeros + lz;
        }
        zeros += avail;
        pos += u64::from(avail);
    }
}

/// Reads `k ≤ 64` bits at `pos` (MSB-first, may straddle two words).
#[inline(always)]
fn bits_at(words: &[u64], pos: u64, k: u32) -> u64 {
    if k == 0 {
        return 0;
    }
    let w = (pos >> 6) as usize;
    let off = (pos & 63) as u32;
    let avail = 64 - off;
    if k <= avail {
        (words[w] << off) >> (64 - k)
    } else {
        let hi = words[w] << off >> (64 - k);
        let lo = words[w + 1] >> (64 - (k - avail));
        hi | lo
    }
}
