//! Uncompressed bitmaps with rank/select support.
//!
//! This is the representation behind the classical (uncompressed) bitmap
//! index of §1.2: one `n`-bit vector per character, where a range query
//! simply reads and ORs `ℓ` bitmaps. Positions are LSB-first within words
//! (the natural order for broadword popcount arithmetic); this layout is
//! private to the type.

/// An uncompressed fixed-universe bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlainBitmap {
    universe: u64,
    words: Vec<u64>,
    ones: u64,
}

impl PlainBitmap {
    /// An all-zeros bitmap over `[0, universe)`.
    pub fn new(universe: u64) -> Self {
        PlainBitmap {
            universe,
            words: vec![0; (universe as usize).div_ceil(64)],
            ones: 0,
        }
    }

    /// Builds from an iterator of (not necessarily sorted) positions.
    pub fn from_positions<I: IntoIterator<Item = u64>>(positions: I, universe: u64) -> Self {
        let mut b = Self::new(universe);
        for p in positions {
            b.set(p);
        }
        b
    }

    /// The universe size `n`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Storage size in bits (the paper charges `n` bits per uncompressed
    /// bitmap regardless of content).
    pub fn size_bits(&self) -> u64 {
        64 * self.words.len() as u64
    }

    /// Number of 1s.
    pub fn count_ones(&self) -> u64 {
        self.ones
    }

    /// Sets bit `pos` (idempotent).
    pub fn set(&mut self, pos: u64) {
        assert!(
            pos < self.universe,
            "position {pos} outside universe {}",
            self.universe
        );
        let w = (pos / 64) as usize;
        let mask = 1u64 << (pos % 64);
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.ones += 1;
        }
    }

    /// Clears bit `pos` (idempotent).
    pub fn clear(&mut self, pos: u64) {
        assert!(
            pos < self.universe,
            "position {pos} outside universe {}",
            self.universe
        );
        let w = (pos / 64) as usize;
        let mask = 1u64 << (pos % 64);
        if self.words[w] & mask != 0 {
            self.words[w] &= !mask;
            self.ones -= 1;
        }
    }

    /// Tests bit `pos`.
    pub fn get(&self, pos: u64) -> bool {
        assert!(
            pos < self.universe,
            "position {pos} outside universe {}",
            self.universe
        );
        self.words[(pos / 64) as usize] >> (pos % 64) & 1 == 1
    }

    /// The backing words (LSB-first bit order; tail bits zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Wraps an existing LSB-first word array (bits at or beyond
    /// `universe` must be zero) — the hand-off from word-level set
    /// algebra (bitmap-index accumulators, the dense merge path) into a
    /// bitmap without a per-element rebuild.
    pub fn from_raw_words(words: Vec<u64>, universe: u64) -> Self {
        assert!(
            words.len() == (universe as usize).div_ceil(64),
            "word array does not match universe"
        );
        let ones = words.iter().map(|w| u64::from(w.count_ones())).sum();
        PlainBitmap {
            universe,
            words,
            ones,
        }
    }

    /// Re-encodes into a gap-compressed bitmap with one `trailing_zeros`
    /// word scan (see [`crate::GapBitmap::from_words`]).
    pub fn to_gap(&self) -> crate::GapBitmap {
        crate::GapBitmap::from_words(&self.words, self.universe)
    }

    /// ORs `other` into `self` (used by bitmap-index range scans).
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn or_assign(&mut self, other: &PlainBitmap) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut ones = 0;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
            ones += a.count_ones() as u64;
        }
        self.ones = ones;
    }

    /// ANDs `other` into `self` (RID intersection).
    pub fn and_assign(&mut self, other: &PlainBitmap) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut ones = 0;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
            ones += a.count_ones() as u64;
        }
        self.ones = ones;
    }

    /// Number of 1s strictly before `pos` (`rank₁`). O(pos/64) scan; use
    /// [`RankDirectory`] for repeated queries.
    pub fn rank1(&self, pos: u64) -> u64 {
        assert!(pos <= self.universe);
        let full_words = (pos / 64) as usize;
        let mut r: u64 = self.words[..full_words]
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum();
        let rem = pos % 64;
        if rem > 0 {
            r += u64::from((self.words[full_words] & ((1u64 << rem) - 1)).count_ones());
        }
        r
    }

    /// Position of the `k`-th one (0-indexed), or `None` if `k ≥ ones`.
    pub fn select1(&self, k: u64) -> Option<u64> {
        if k >= self.ones {
            return None;
        }
        let mut remaining = k;
        for (i, &w) in self.words.iter().enumerate() {
            let c = u64::from(w.count_ones());
            if remaining < c {
                return Some(64 * i as u64 + u64::from(select_in_word(w, remaining as u32)));
            }
            remaining -= c;
        }
        unreachable!("k < ones guarantees a hit");
    }

    /// Iterates the 1-positions in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let base = 64 * i as u64;
            std::iter::successors(if w == 0 { None } else { Some(w) }, |&w| {
                let w = w & (w - 1);
                if w == 0 {
                    None
                } else {
                    Some(w)
                }
            })
            .map(move |w| base + u64::from(w.trailing_zeros()))
        })
    }
}

/// Position (0..64) of the `k`-th set bit of `w`; `k` must be less than
/// `w.count_ones()`.
fn select_in_word(mut w: u64, k: u32) -> u32 {
    for _ in 0..k {
        w &= w - 1;
    }
    w.trailing_zeros()
}

/// An O(1)-rank directory over a frozen [`PlainBitmap`].
///
/// Superblocks of 512 bits (8 words) store cumulative ranks; rank within a
/// superblock is by popcount, select by binary search on superblocks. This
/// is the standard textbook o(n)-overhead design, sufficient for the
/// experiment harnesses.
#[derive(Debug, Clone)]
pub struct RankDirectory {
    /// Cumulative ones before each superblock of 8 words.
    super_ranks: Vec<u64>,
}

const WORDS_PER_SUPER: usize = 8;

impl RankDirectory {
    /// Builds the directory for `bitmap`.
    pub fn build(bitmap: &PlainBitmap) -> Self {
        let mut super_ranks = Vec::with_capacity(bitmap.words.len() / WORDS_PER_SUPER + 1);
        let mut acc = 0u64;
        for (i, w) in bitmap.words.iter().enumerate() {
            if i % WORDS_PER_SUPER == 0 {
                super_ranks.push(acc);
            }
            acc += u64::from(w.count_ones());
        }
        super_ranks.push(acc);
        RankDirectory { super_ranks }
    }

    /// Directory overhead in bits.
    pub fn size_bits(&self) -> u64 {
        64 * self.super_ranks.len() as u64
    }

    /// `rank₁(pos)` using the directory (popcounts at most 8 words).
    pub fn rank1(&self, bitmap: &PlainBitmap, pos: u64) -> u64 {
        assert!(pos <= bitmap.universe);
        let word = (pos / 64) as usize;
        let sb = word / WORDS_PER_SUPER;
        let mut r = self.super_ranks[sb];
        for w in &bitmap.words[sb * WORDS_PER_SUPER..word] {
            r += u64::from(w.count_ones());
        }
        let rem = pos % 64;
        if rem > 0 {
            r += u64::from((bitmap.words[word] & ((1u64 << rem) - 1)).count_ones());
        }
        r
    }

    /// `select₁(k)` via binary search over superblocks.
    pub fn select1(&self, bitmap: &PlainBitmap, k: u64) -> Option<u64> {
        if k >= bitmap.ones {
            return None;
        }
        // Last superblock whose cumulative rank is <= k.
        let sb = self.super_ranks.partition_point(|&r| r <= k) - 1;
        let mut remaining = k - self.super_ranks[sb];
        for (i, &w) in bitmap.words[sb * WORDS_PER_SUPER..].iter().enumerate() {
            let c = u64::from(w.count_ones());
            if remaining < c {
                let word_idx = sb * WORDS_PER_SUPER + i;
                return Some(64 * word_idx as u64 + u64::from(select_in_word(w, remaining as u32)));
            }
            remaining -= c;
        }
        unreachable!("k < ones guarantees a hit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_clear() {
        let mut b = PlainBitmap::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
        b.set(64); // idempotent
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn rank_select_naive() {
        let b = PlainBitmap::from_positions([3, 10, 64, 65, 127], 128);
        assert_eq!(b.rank1(0), 0);
        assert_eq!(b.rank1(4), 1);
        assert_eq!(b.rank1(128), 5);
        assert_eq!(b.select1(0), Some(3));
        assert_eq!(b.select1(3), Some(65));
        assert_eq!(b.select1(4), Some(127));
        assert_eq!(b.select1(5), None);
    }

    #[test]
    fn iter_ones_matches_positions() {
        let pos = vec![0u64, 7, 63, 64, 100, 511];
        let b = PlainBitmap::from_positions(pos.iter().copied(), 512);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), pos);
    }

    #[test]
    fn boolean_ops_track_counts() {
        let mut a = PlainBitmap::from_positions([1, 2, 3], 64);
        let b = PlainBitmap::from_positions([3, 4], 64);
        a.or_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(a.count_ones(), 4);
        let mut c = PlainBitmap::from_positions([1, 2, 3], 64);
        c.and_assign(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![3]);
        assert_eq!(c.count_ones(), 1);
    }

    #[test]
    fn directory_on_empty_and_full() {
        let empty = PlainBitmap::new(1000);
        let dir = RankDirectory::build(&empty);
        assert_eq!(dir.rank1(&empty, 1000), 0);
        assert_eq!(dir.select1(&empty, 0), None);
        let full = PlainBitmap::from_positions(0..1000, 1000);
        let dir = RankDirectory::build(&full);
        assert_eq!(dir.rank1(&full, 777), 777);
        assert_eq!(dir.select1(&full, 777), Some(777));
    }

    proptest! {
        #[test]
        fn directory_matches_naive(pos in proptest::collection::btree_set(0u64..2048, 0..300)) {
            let b = PlainBitmap::from_positions(pos.iter().copied(), 2048);
            let dir = RankDirectory::build(&b);
            for q in (0..=2048).step_by(37) {
                prop_assert_eq!(dir.rank1(&b, q), b.rank1(q));
            }
            for k in 0..b.count_ones() {
                prop_assert_eq!(dir.select1(&b, k), b.select1(k));
            }
            // select is the inverse of rank on the 1-positions.
            for (k, p) in b.iter_ones().enumerate() {
                prop_assert_eq!(b.rank1(p), k as u64);
            }
        }
    }
}
