//! Skip directories over gap-coded streams.
//!
//! Gamma codes are not addressable: finding one element of a
//! [`GapBitmap`](crate::GapBitmap) means decoding everything before it.
//! A **skip directory** samples every `K`-th decoded element, recording
//! its value and the bit offset just past its codeword, so membership,
//! rank and select restart decoding at the nearest sample — `O(lg(z/K))`
//! for the probe plus at most `K − 1` codes of linear decode, instead of
//! `O(z)`. This is the classical skip-pointer design of inverted indexes
//! (cf. the perlin posting layout), applied to Pagh & Rao's cut streams:
//! the directory lives *beside* the code stream (a side extent on disk,
//! a small vector in memory) and never changes the stream encoding, so
//! every existing bound on the payload is untouched.

/// Sampling interval: one directory entry per `SKIP_SAMPLE` elements.
///
/// 64 keeps the directory at `z/64` entries (`≈ 80·z/64 = 1.25` bits per
/// element persisted, `< 2` words per element in memory) while bounding
/// every directory-assisted operation's linear tail at 63 codes.
pub const SKIP_SAMPLE: u32 = 64;

/// Width of a persisted directory entry: 48-bit position + 32-bit offset.
///
/// Matches the engine's 48-bit node-weight fields; slot code streams are
/// far below `2³²` bits.
pub const SKIP_ENTRY_BITS: u64 = 80;

/// One sample: the `(j·K)`-th decoded element (0-indexed) of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipEntry {
    /// The element's value (its position in the encoded set).
    pub pos: u64,
    /// Bit offset just past the element's codeword, relative to the
    /// stream start — decoding resumes here with `prev = pos`.
    pub bit_off: u64,
}

impl SkipEntry {
    /// Writes the fixed-width persisted form (48-bit position, 32-bit
    /// offset — matching the engine's 48-bit weight fields; slot streams
    /// are far below 2³² bits).
    pub fn write_to<S: crate::BitSink>(&self, sink: &mut S) {
        debug_assert!(self.pos < 1 << 48, "sample position exceeds 48 bits");
        debug_assert!(self.bit_off < 1 << 32, "sample offset exceeds 32 bits");
        sink.put_bits(self.pos, 48);
        sink.put_bits(self.bit_off, 32);
    }

    /// Reads the persisted form.
    pub fn read_from<S: crate::BitSource>(src: &mut S) -> SkipEntry {
        SkipEntry {
            pos: src.get_bits(48),
            bit_off: src.get_bits(32),
        }
    }
}

/// Latest persisted entry with `pos < min_pos` — the restart point for a
/// directory-assisted seek — found by binary search through
/// `read_entry(index)` (each probe charges only the blocks it touches).
/// Returns `(entry_index, entry)`; `None` when decoding must start at
/// the stream head. Shared by every layer that persists fixed-width
/// entry arrays, so the off-by-one rank arithmetic lives in one place.
pub fn search_persisted<F: FnMut(u64) -> SkipEntry>(
    entries: u64,
    min_pos: u64,
    mut read_entry: F,
) -> Option<(u64, SkipEntry)> {
    let (mut lo, mut hi) = (0u64, entries);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if read_entry(mid).pos < min_pos {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let j = lo.checked_sub(1)?;
    Some((j, read_entry(j)))
}

/// Streams below this element count persist no skip directory: galloping
/// over fewer than two sampling intervals is linear decode anyway, and
/// the [`SKIP_ENTRY_BITS`]-wide entries would otherwise dominate the
/// space of small stored bitmaps. Shared policy of every storage layer
/// that persists directories.
pub const DIR_MIN_COUNT: u64 = 2 * SKIP_SAMPLE as u64;

/// Minimum single-cover result size at which storage layers lift the
/// persisted skip directory alongside a verbatim copy. Below this,
/// galloping over the result saves less than the directory's own block
/// reads cost; above it, the directory is a rounding error next to the
/// payload and turns every subsequent membership/rank/select on the
/// result into `O(lg(z/K) + K)` work with no decode pass.
pub const SKIP_LIFT_MIN: u64 = 4096;

/// A sampled directory over one gap stream.
///
/// Entry `j` describes element index `j · k`. The directory may be
/// *truncated* (fewer entries than `count/k`, e.g. when a persisted
/// slot's reserved directory slack filled up): operations past the last
/// sample simply decode linearly from there, so truncation affects speed,
/// never correctness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SkipDirectory {
    k: u32,
    entries: Vec<SkipEntry>,
}

impl SkipDirectory {
    /// An empty directory sampling every `k` elements.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: u32) -> Self {
        assert!(k > 0, "sampling interval must be positive");
        SkipDirectory {
            k,
            entries: Vec::new(),
        }
    }

    /// Wraps pre-read entries (the persisted-directory lift).
    pub fn from_entries(k: u32, entries: Vec<SkipEntry>) -> Self {
        assert!(k > 0, "sampling interval must be positive");
        debug_assert!(
            entries.windows(2).all(|w| w[0].pos < w[1].pos),
            "directory positions must be strictly increasing"
        );
        SkipDirectory { k, entries }
    }

    /// Reads `entries` consecutive persisted entries from `src` (the
    /// storage layers' sequential directory lift).
    pub fn read_from_source<S: crate::BitSource>(src: &mut S, k: u32, entries: u64) -> Self {
        Self::from_entries(k, (0..entries).map(|_| SkipEntry::read_from(src)).collect())
    }

    /// The sampling interval `K`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory holds no samples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw samples (entry `j` = element index `j·k`).
    pub fn entries(&self) -> &[SkipEntry] {
        &self.entries
    }

    /// In-memory footprint in bits (two words per entry).
    pub fn size_bits(&self) -> u64 {
        128 * self.entries.len() as u64
    }

    /// Feeds one decoded/encoded element; call in index order. Records a
    /// sample when `index` is a multiple of `k`.
    #[inline]
    pub fn observe(&mut self, index: u64, pos: u64, bit_off: u64) {
        if index.is_multiple_of(u64::from(self.k)) {
            debug_assert_eq!(index / u64::from(self.k), self.entries.len() as u64);
            self.entries.push(SkipEntry { pos, bit_off });
        }
    }

    /// The latest sample with `pos ≤ target`, as `(rank, entry)` where
    /// `rank` is the sampled element's index. `None` when the stream is
    /// empty or its first element exceeds `target`.
    pub fn seek(&self, target: u64) -> Option<(u64, SkipEntry)> {
        let j = self.entries.partition_point(|e| e.pos <= target);
        let j = j.checked_sub(1)?;
        Some((j as u64 * u64::from(self.k), self.entries[j]))
    }

    /// The latest sample at element index `≤ rank`, as `(sample_rank,
    /// entry)` — the restart point for `select(rank)`.
    pub fn seek_rank(&self, rank: u64) -> Option<(u64, SkipEntry)> {
        if self.entries.is_empty() {
            return None;
        }
        let j = (rank / u64::from(self.k)).min(self.entries.len() as u64 - 1);
        Some((j * u64::from(self.k), self.entries[j as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(k: u32, samples: &[(u64, u64)]) -> SkipDirectory {
        let mut d = SkipDirectory::new(k);
        for (j, &(pos, off)) in samples.iter().enumerate() {
            d.observe(j as u64 * u64::from(k), pos, off);
        }
        d
    }

    #[test]
    fn observe_samples_every_kth() {
        let mut d = SkipDirectory::new(4);
        for i in 0..10u64 {
            d.observe(i, 10 * i, 3 * i);
        }
        assert_eq!(d.len(), 3); // indices 0, 4, 8
        assert_eq!(
            d.entries()[1],
            SkipEntry {
                pos: 40,
                bit_off: 12
            }
        );
        assert_eq!(d.size_bits(), 3 * 128);
    }

    #[test]
    fn seek_finds_latest_entry_at_or_before() {
        let d = dir(4, &[(5, 3), (20, 19), (100, 44)]);
        assert_eq!(d.seek(4), None);
        assert_eq!(d.seek(5), Some((0, SkipEntry { pos: 5, bit_off: 3 })));
        assert_eq!(d.seek(19), Some((0, SkipEntry { pos: 5, bit_off: 3 })));
        assert_eq!(
            d.seek(20),
            Some((
                4,
                SkipEntry {
                    pos: 20,
                    bit_off: 19
                }
            ))
        );
        assert_eq!(
            d.seek(u64::MAX),
            Some((
                8,
                SkipEntry {
                    pos: 100,
                    bit_off: 44
                }
            ))
        );
    }

    #[test]
    fn seek_rank_clamps_to_truncated_directory() {
        let d = dir(4, &[(5, 3), (20, 19)]);
        assert_eq!(d.seek_rank(0).unwrap().0, 0);
        assert_eq!(d.seek_rank(6).unwrap().0, 4);
        // Rank 40 would live at sample 10, but the directory is truncated:
        // fall back to the last available restart point.
        assert_eq!(d.seek_rank(40).unwrap().0, 4);
        assert_eq!(SkipDirectory::new(4).seek_rank(0), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = SkipDirectory::new(0);
    }
}
