//! Skip directories over gap-coded streams.
//!
//! Gamma codes are not addressable: finding one element of a
//! [`GapBitmap`](crate::GapBitmap) means decoding everything before it.
//! A **skip directory** samples every `K`-th decoded element, recording
//! its value and the bit offset just past its codeword, so membership,
//! rank and select restart decoding at the nearest sample — `O(lg(z/K))`
//! for the probe plus at most `K − 1` codes of linear decode, instead of
//! `O(z)`. This is the classical skip-pointer design of inverted indexes
//! (cf. the perlin posting layout), applied to Pagh & Rao's cut streams:
//! the directory lives *beside* the code stream (a side extent on disk,
//! a small vector in memory) and never changes the stream encoding, so
//! every existing bound on the payload is untouched.

/// Sampling interval: one directory entry per `SKIP_SAMPLE` elements.
///
/// 64 keeps the directory at `z/64` entries (`≈ 144·z/64 = 2.25` bits per
/// element persisted, 3 words per element in memory) while bounding
/// every directory-assisted operation's linear tail at 63 codes.
pub const SKIP_SAMPLE: u32 = 64;

/// Width of a persisted directory entry: 48-bit position + 32-bit offset
/// + 64-bit occupancy word.
///
/// The position matches the engine's 48-bit node-weight fields; slot code
/// streams are far below `2³²` bits.
pub const SKIP_ENTRY_BITS: u64 = 144;

/// Bit offset of the occupancy word within a persisted entry (past the
/// position and offset fields) — append paths overwrite just this field
/// to demote a stale exact summary to "no information".
pub const SKIP_OCC_OFF: u64 = 80;

/// One sample: the `(j·K)`-th decoded element (0-indexed) of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipEntry {
    /// The element's value (its position in the encoded set).
    pub pos: u64,
    /// Bit offset just past the element's codeword, relative to the
    /// stream start — decoding resumes here with `prev = pos`.
    pub bit_off: u64,
    /// Occupancy summary of this entry's sample block, LSB-first over the
    /// 64 universe-aligned 64-position buckets starting at the entry's
    /// own bucket: bit `d` set ⟺ some element observed for this entry
    /// lies in positions `[64·(pos/64 + d), 64·(pos/64 + d + 1))`. Block
    /// elements more than 64 buckets past the sample are unsummarized
    /// (they cannot clear lower bits, so the word stays sound). `0` means
    /// *no information* — an exact summary always has bit 0 set (the
    /// sampled element itself) — which is how append paths persist
    /// entries whose blocks may still grow. Intersection and membership
    /// kernels AND/test these words to rule out whole buckets without
    /// decoding any codes.
    pub occ: u64,
}

impl SkipEntry {
    /// Exact occupancy seed for a freshly sampled element: its own bucket.
    pub const OCC_SELF: u64 = 1;

    /// Writes the fixed-width persisted form (48-bit position, 32-bit
    /// offset, 64-bit occupancy word).
    pub fn write_to<S: crate::BitSink>(&self, sink: &mut S) {
        debug_assert!(self.pos < 1 << 48, "sample position exceeds 48 bits");
        debug_assert!(self.bit_off < 1 << 32, "sample offset exceeds 32 bits");
        sink.put_bits(self.pos, 48);
        sink.put_bits(self.bit_off, 32);
        sink.put_bits(self.occ, 64);
    }

    /// Reads the persisted form.
    pub fn read_from<S: crate::BitSource>(src: &mut S) -> SkipEntry {
        SkipEntry {
            pos: src.get_bits(48),
            bit_off: src.get_bits(32),
            occ: src.get_bits(64),
        }
    }

    /// Folds a later element of this entry's block into the occupancy
    /// word (no-op for elements past the 64-bucket window, which the
    /// summary cannot describe).
    #[inline]
    pub fn cover(&mut self, pos: u64) {
        let d = (pos >> 6) - (self.pos >> 6);
        if d < 64 {
            self.occ |= 1 << d;
        }
    }

    /// Whether this entry's occupancy word proves `target` (which must
    /// satisfy `self.pos ≤ target`) is absent from the elements this
    /// entry summarizes. Callers must separately ensure every stream
    /// element `≤ target` was observed by this entry (see
    /// [`SkipDirectory::rules_out`]).
    #[inline]
    pub fn occ_rules_out(&self, target: u64) -> bool {
        if self.occ == 0 {
            return false; // conservative entry: no information
        }
        let d = (target >> 6) - (self.pos >> 6);
        d < 64 && (self.occ >> d) & 1 == 0
    }
}

/// Latest persisted entry with `pos < min_pos` — the restart point for a
/// directory-assisted seek — found by binary search through
/// `read_entry(index)` (each probe charges only the blocks it touches).
/// Returns `(entry_index, entry)`; `None` when decoding must start at
/// the stream head. Shared by every layer that persists fixed-width
/// entry arrays, so the off-by-one rank arithmetic lives in one place.
pub fn search_persisted<F: FnMut(u64) -> SkipEntry>(
    entries: u64,
    min_pos: u64,
    mut read_entry: F,
) -> Option<(u64, SkipEntry)> {
    let (mut lo, mut hi) = (0u64, entries);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if read_entry(mid).pos < min_pos {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let j = lo.checked_sub(1)?;
    Some((j, read_entry(j)))
}

/// Streams below this element count persist no skip directory: galloping
/// over fewer than two sampling intervals is linear decode anyway, and
/// the [`SKIP_ENTRY_BITS`]-wide entries would otherwise dominate the
/// space of small stored bitmaps. Shared policy of every storage layer
/// that persists directories.
pub const DIR_MIN_COUNT: u64 = 2 * SKIP_SAMPLE as u64;

/// Minimum single-cover result size at which storage layers lift the
/// persisted skip directory alongside a verbatim copy. Below this,
/// galloping over the result saves less than the directory's own block
/// reads cost; above it, the directory is a rounding error next to the
/// payload and turns every subsequent membership/rank/select on the
/// result into `O(lg(z/K) + K)` work with no decode pass.
pub const SKIP_LIFT_MIN: u64 = 4096;

/// A sampled directory over one gap stream.
///
/// Entry `j` describes element index `j · k`. The directory may be
/// *truncated* (fewer entries than `count/k`, e.g. when a persisted
/// slot's reserved directory slack filled up): operations past the last
/// sample simply decode linearly from there, so truncation affects speed,
/// never correctness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SkipDirectory {
    k: u32,
    entries: Vec<SkipEntry>,
}

impl SkipDirectory {
    /// An empty directory sampling every `k` elements.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: u32) -> Self {
        assert!(k > 0, "sampling interval must be positive");
        SkipDirectory {
            k,
            entries: Vec::new(),
        }
    }

    /// Wraps pre-read entries (the persisted-directory lift).
    pub fn from_entries(k: u32, entries: Vec<SkipEntry>) -> Self {
        assert!(k > 0, "sampling interval must be positive");
        debug_assert!(
            entries.windows(2).all(|w| w[0].pos < w[1].pos),
            "directory positions must be strictly increasing"
        );
        SkipDirectory { k, entries }
    }

    /// Reads `entries` consecutive persisted entries from `src` (the
    /// storage layers' sequential directory lift).
    pub fn read_from_source<S: crate::BitSource>(src: &mut S, k: u32, entries: u64) -> Self {
        Self::from_entries(k, (0..entries).map(|_| SkipEntry::read_from(src)).collect())
    }

    /// The sampling interval `K`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory holds no samples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw samples (entry `j` = element index `j·k`).
    pub fn entries(&self) -> &[SkipEntry] {
        &self.entries
    }

    /// In-memory footprint in bits (three words per entry).
    pub fn size_bits(&self) -> u64 {
        192 * self.entries.len() as u64
    }

    /// Feeds one decoded/encoded element; call in index order. Records a
    /// sample when `index` is a multiple of `k`, and folds every other
    /// element into the latest sample's occupancy word, so directories
    /// built by the encode and decode passes carry exact summaries.
    #[inline]
    pub fn observe(&mut self, index: u64, pos: u64, bit_off: u64) {
        if index.is_multiple_of(u64::from(self.k)) {
            debug_assert_eq!(index / u64::from(self.k), self.entries.len() as u64);
            self.entries.push(SkipEntry {
                pos,
                bit_off,
                occ: SkipEntry::OCC_SELF,
            });
        } else if let Some(last) = self.entries.last_mut() {
            last.cover(pos);
        }
    }

    /// Folds a position into the latest sample's occupancy word without
    /// recording anything else — for bulk paths (whole-word run appends)
    /// that bypass per-element [`Self::observe`] calls.
    #[inline]
    pub fn cover(&mut self, pos: u64) {
        if let Some(last) = self.entries.last_mut() {
            last.cover(pos);
        }
    }

    /// Whether the directory *proves* `target` is not in the stream, by
    /// the occupancy word of the sample block that would contain it — no
    /// codes decoded. `false` means "unknown": the caller decodes as
    /// usual.
    ///
    /// Sound for every construction path: a nonempty directory's first
    /// entry is the stream's first element, so anything below it is
    /// absent; an interior block is fully summarized by its entry (later
    /// blocks start above `target`, earlier ones end below its bucket);
    /// and the *last* entry is never consulted, because a truncated or
    /// append-grown tail block may hold elements its persisted word never
    /// observed.
    pub fn rules_out(&self, target: u64) -> bool {
        let j = self.entries.partition_point(|e| e.pos <= target);
        if j == 0 {
            // Entry 0 is element 0: a nonempty directory proves absence
            // of every position below it.
            return !self.entries.is_empty();
        }
        if j >= self.entries.len() {
            return false; // tail block: may have grown past its summary
        }
        self.entries[j - 1].occ_rules_out(target)
    }

    /// The latest sample with `pos ≤ target`, as `(rank, entry)` where
    /// `rank` is the sampled element's index. `None` when the stream is
    /// empty or its first element exceeds `target`.
    pub fn seek(&self, target: u64) -> Option<(u64, SkipEntry)> {
        let j = self.entries.partition_point(|e| e.pos <= target);
        let j = j.checked_sub(1)?;
        Some((j as u64 * u64::from(self.k), self.entries[j]))
    }

    /// The latest sample at element index `≤ rank`, as `(sample_rank,
    /// entry)` — the restart point for `select(rank)`.
    pub fn seek_rank(&self, rank: u64) -> Option<(u64, SkipEntry)> {
        if self.entries.is_empty() {
            return None;
        }
        let j = (rank / u64::from(self.k)).min(self.entries.len() as u64 - 1);
        Some((j * u64::from(self.k), self.entries[j as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(k: u32, samples: &[(u64, u64)]) -> SkipDirectory {
        let mut d = SkipDirectory::new(k);
        for (j, &(pos, off)) in samples.iter().enumerate() {
            d.observe(j as u64 * u64::from(k), pos, off);
        }
        d
    }

    #[test]
    fn observe_samples_every_kth() {
        let mut d = SkipDirectory::new(4);
        for i in 0..10u64 {
            d.observe(i, 10 * i, 3 * i);
        }
        assert_eq!(d.len(), 3); // indices 0, 4, 8
                                // Entry 1 samples pos 40 (bucket 0) and covers 50, 60 (bucket 0)
                                // and 70 (bucket 1): occupancy 0b11.
        assert_eq!(
            d.entries()[1],
            SkipEntry {
                pos: 40,
                bit_off: 12,
                occ: 0b11,
            }
        );
        assert_eq!(d.size_bits(), 3 * 192);
    }

    #[test]
    fn seek_finds_latest_entry_at_or_before() {
        let d = dir(4, &[(5, 3), (20, 19), (100, 44)]);
        let e = |pos, bit_off| SkipEntry {
            pos,
            bit_off,
            occ: SkipEntry::OCC_SELF,
        };
        assert_eq!(d.seek(4), None);
        assert_eq!(d.seek(5), Some((0, e(5, 3))));
        assert_eq!(d.seek(19), Some((0, e(5, 3))));
        assert_eq!(d.seek(20), Some((4, e(20, 19))));
        assert_eq!(d.seek(u64::MAX), Some((8, e(100, 44))));
    }

    #[test]
    fn occupancy_rules_out_only_provable_absences() {
        // Elements 0..32 step 10 over buckets 0..5, k = 8: entries at
        // indices 0, 8, 16, 24 — positions 0, 80, 160, 240.
        let mut d = SkipDirectory::new(8);
        for i in 0..32u64 {
            d.observe(i, 10 * i, i);
        }
        // Bucket 64..128 holds elements 70..120: block 0 covers 70 only
        // (bucket 1, bit 1); probing 65 (same bucket, present elements
        // 70) cannot be ruled out, but 130's bucket is summarized by
        // entry at pos 80 whose block holds 90..150, bucket 2 = 128..191
        // → bit set, not ruled out. A bucket with no elements at all:
        // none here (10-stride fills every bucket), so check below the
        // first element and a sparse stream instead.
        assert!(!d.rules_out(65));
        let mut sparse = SkipDirectory::new(4);
        for (i, &p) in [5u64, 200, 210, 220, 1000, 2000, 3000, 4000, 9000]
            .iter()
            .enumerate()
        {
            sparse.observe(i as u64, p, i as u64);
        }
        // Entries at indices 0 (pos 5), 4 (pos 1000), 8 (pos 9000).
        assert!(sparse.rules_out(3), "below the first element");
        assert!(
            sparse.rules_out(100),
            "bucket 1 of block 0 is provably empty"
        );
        assert!(!sparse.rules_out(201), "bucket of 200 has elements");
        assert!(!sparse.rules_out(205), "present-bucket probes never skip");
        assert!(
            !sparse.rules_out(9500),
            "tail block is never consulted (may be truncated)"
        );
        // Conservative entries (occ = 0) rule nothing out.
        let blind = SkipDirectory::from_entries(
            4,
            vec![
                SkipEntry {
                    pos: 5,
                    bit_off: 0,
                    occ: 0,
                },
                SkipEntry {
                    pos: 1000,
                    bit_off: 10,
                    occ: 0,
                },
            ],
        );
        assert!(!blind.rules_out(100));
        assert!(blind.rules_out(3), "first-element bound needs no occ");
    }

    #[test]
    fn seek_rank_clamps_to_truncated_directory() {
        let d = dir(4, &[(5, 3), (20, 19)]);
        assert_eq!(d.seek_rank(0).unwrap().0, 0);
        assert_eq!(d.seek_rank(6).unwrap().0, 4);
        // Rank 40 would live at sample 10, but the directory is truncated:
        // fall back to the last available restart point.
        assert_eq!(d.seek_rank(40).unwrap().0, 4);
        assert_eq!(SkipDirectory::new(4).seek_rank(0), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = SkipDirectory::new(0);
    }
}
