//! K-way merges over sorted position streams.
//!
//! Range queries in every structure of the paper end by "merging the
//! bitmaps" of the canonical subtrees (§2.1, §2.2). The inputs are sorted
//! position streams decoded from disjoint sets (each position carries
//! exactly one character), so the common case is a disjoint merge; hashed
//! sets in the approximate index (§3) may collide, so a deduplicating
//! union is also provided.

use std::cmp::Reverse;
use std::collections::binary_heap::PeekMut;
use std::collections::BinaryHeap;

use crate::GapBitmap;

/// K-way merge of sorted streams into one sorted stream, assuming global
/// distinctness (disjoint inputs). Duplicates are passed through unchanged;
/// use [`union_dedup`] when inputs may overlap.
pub fn merge_disjoint<I>(inputs: Vec<I>) -> KWayMerge<I>
where
    I: Iterator<Item = u64>,
{
    KWayMerge::new(inputs)
}

/// K-way union of sorted streams with duplicate removal.
pub fn union_dedup<I>(inputs: Vec<I>) -> impl Iterator<Item = u64>
where
    I: Iterator<Item = u64>,
{
    let mut last: Option<u64> = None;
    KWayMerge::new(inputs).filter(move |&p| {
        if last == Some(p) {
            false
        } else {
            last = Some(p);
            true
        }
    })
}

/// Merges sorted streams directly into a [`GapBitmap`] over `universe`.
pub fn merge_into_gap<I>(inputs: Vec<I>, universe: u64) -> GapBitmap
where
    I: Iterator<Item = u64>,
{
    GapBitmap::from_sorted_iter(merge_disjoint(inputs), universe)
}

/// How a k-way union is executed (chosen by [`plan`] from metadata known
/// *before* any stream is decoded: fan-in, summed element counts, and the
/// position span of the cover).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeStrategy {
    /// No inputs: the empty bitmap.
    Empty,
    /// One input: encode straight through (callers with stored streams
    /// short-circuit earlier to a verbatim copy).
    Passthrough,
    /// Two inputs: branch-per-element linear merge.
    Linear,
    /// Three or more sparse inputs: min-heap merge.
    Heap,
    /// Three or more inputs whose union is dense in its span: set bits in
    /// an LSB-first word array (no comparisons, no heap), then re-encode
    /// once with a `trailing_zeros` word scan
    /// ([`GapBitmap::from_words_span`]). Exactly where the complement
    /// trick makes results dense, this turns `O(z lg k)` heap traffic
    /// into straight-line word operations.
    Bitset,
}

/// Average gap (span/total) at or below which the bitset path wins: one
/// element per word on average, so the accumulate-and-scan pass touches
/// no more words than the union has elements.
pub const BITSET_MAX_AVG_GAP: u64 = 64;

/// Minimum union size for the bitset path (below this the word array's
/// allocation dominates any heap savings).
pub const BITSET_MIN_TOTAL: u64 = 128;

/// Folds a cover's per-member metadata `(count, first_pos, last_pos)` —
/// non-empty members only — into the planner inputs `(total, span)`.
/// Shared by every index that feeds slot/entry directories to
/// [`merge_adaptive`].
pub fn cover_stats<I: IntoIterator<Item = (u64, u64, u64)>>(
    members: I,
) -> (u64, Option<(u64, u64)>) {
    let mut total = 0u64;
    let (mut lo, mut hi) = (u64::MAX, 0u64);
    for (count, first, last) in members {
        debug_assert!(count > 0, "cover members must be non-empty");
        total += count;
        lo = lo.min(first);
        hi = hi.max(last);
    }
    (total, (total > 0).then_some((lo, hi)))
}

/// Picks the strategy for `streams` inputs totalling `total` elements
/// within the inclusive position span `span` (when known).
pub fn plan(streams: usize, total: u64, span: Option<(u64, u64)>) -> MergeStrategy {
    match streams {
        0 => MergeStrategy::Empty,
        1 => MergeStrategy::Passthrough,
        2 => MergeStrategy::Linear,
        _ => match span {
            Some((lo, hi))
                if total >= BITSET_MIN_TOTAL
                    && (hi - lo).saturating_add(1) <= total.saturating_mul(BITSET_MAX_AVG_GAP) =>
            {
                MergeStrategy::Bitset
            }
            _ => MergeStrategy::Heap,
        },
    }
}

/// Merges disjoint sorted streams into a [`GapBitmap`] under the planned
/// strategy. `total` is the summed element count (known from slot/entry
/// metadata); `span` bounds every element inclusively. Every strategy
/// consumes each input exactly once in order, so the I/O charged to any
/// underlying reader is identical across strategies by construction.
pub fn merge_adaptive<I>(
    inputs: Vec<I>,
    universe: u64,
    total: u64,
    span: Option<(u64, u64)>,
) -> GapBitmap
where
    I: Iterator<Item = u64>,
{
    let strategy = plan(inputs.len(), total, span);
    merge_with_strategy(inputs, universe, total, span, strategy)
}

/// [`merge_adaptive`] with the strategy forced — the differential-testing
/// and benchmarking hook that pins every branch against the heap merge.
pub fn merge_with_strategy<I>(
    inputs: Vec<I>,
    universe: u64,
    total: u64,
    span: Option<(u64, u64)>,
    strategy: MergeStrategy,
) -> GapBitmap
where
    I: Iterator<Item = u64>,
{
    match strategy {
        MergeStrategy::Empty => GapBitmap::empty(universe),
        MergeStrategy::Bitset => {
            let (lo, hi) = span.expect("bitset strategy requires a span");
            let base = lo & !63;
            let words = ((hi - base) / 64 + 1) as usize;
            let mut acc = vec![0u64; words];
            for input in inputs {
                for p in input {
                    debug_assert!(
                        (lo..=hi).contains(&p),
                        "element {p} outside declared span [{lo}, {hi}]"
                    );
                    acc[((p - base) / 64) as usize] |= 1u64 << ((p - base) % 64);
                }
            }
            GapBitmap::from_words_span(&acc, base, universe)
        }
        _ => GapBitmap::from_sorted_iter_sized(merge_disjoint(inputs), universe, total),
    }
}

/// A k-way merge iterator.
///
/// Fan-in 1 is a passthrough and fan-in 2 a branch-per-element linear
/// merge (the overwhelmingly common shapes in the canonical
/// decompositions, which produce `O(lg n)` streams but usually one or
/// two). Larger fan-ins use a min-heap advanced via
/// [`BinaryHeap::peek_mut`]: replacing the head sifts it in place, one
/// `O(lg k)` walk per element instead of the pop-then-push pair.
#[derive(Debug)]
pub struct KWayMerge<I: Iterator<Item = u64>> {
    inner: Inner<I>,
}

#[derive(Debug)]
enum Inner<I: Iterator<Item = u64>> {
    One(Option<I>),
    Two {
        a: I,
        b: I,
        a_head: Option<u64>,
        b_head: Option<u64>,
    },
    Heap {
        heap: BinaryHeap<Reverse<(u64, usize)>>,
        inputs: Vec<I>,
    },
}

impl<I: Iterator<Item = u64>> KWayMerge<I> {
    fn new(mut inputs: Vec<I>) -> Self {
        let inner = match inputs.len() {
            0 => Inner::One(None),
            1 => Inner::One(inputs.pop()),
            2 => {
                let mut b = inputs.pop().expect("two inputs");
                let mut a = inputs.pop().expect("two inputs");
                let (a_head, b_head) = (a.next(), b.next());
                Inner::Two {
                    a,
                    b,
                    a_head,
                    b_head,
                }
            }
            _ => {
                let mut heap = BinaryHeap::with_capacity(inputs.len());
                for (idx, it) in inputs.iter_mut().enumerate() {
                    if let Some(first) = it.next() {
                        heap.push(Reverse((first, idx)));
                    }
                }
                Inner::Heap { heap, inputs }
            }
        };
        KWayMerge { inner }
    }
}

impl<I: Iterator<Item = u64>> Iterator for KWayMerge<I> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        match &mut self.inner {
            Inner::One(input) => input.as_mut()?.next(),
            Inner::Two {
                a,
                b,
                a_head,
                b_head,
            } => match (*a_head, *b_head) {
                (Some(x), Some(y)) => {
                    if x <= y {
                        *a_head = a.next();
                        Some(x)
                    } else {
                        *b_head = b.next();
                        Some(y)
                    }
                }
                (Some(x), None) => {
                    *a_head = a.next();
                    Some(x)
                }
                (None, Some(y)) => {
                    *b_head = b.next();
                    Some(y)
                }
                (None, None) => None,
            },
            Inner::Heap { heap, inputs } => {
                let mut top = heap.peek_mut()?;
                let Reverse((pos, idx)) = *top;
                match inputs[idx].next() {
                    Some(next) => {
                        debug_assert!(next > pos, "input stream {idx} not strictly increasing");
                        // Sifts the replaced head in place when `top` drops.
                        *top = Reverse((next, idx));
                    }
                    None => {
                        PeekMut::pop(top);
                    }
                }
                Some(pos)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            Inner::One(None) => (0, Some(0)),
            Inner::One(Some(input)) => input.size_hint(),
            _ => (0, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn merge_of_disjoint_streams() {
        let a = vec![1u64, 4, 7];
        let b = vec![2u64, 5];
        let c = vec![0u64, 3, 6, 8];
        let merged: Vec<u64> =
            merge_disjoint(vec![a.into_iter(), b.into_iter(), c.into_iter()]).collect();
        assert_eq!(merged, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn merge_of_empty_inputs() {
        let empty: Vec<std::vec::IntoIter<u64>> = vec![];
        assert_eq!(merge_disjoint(empty).count(), 0);
        let some_empty = vec![
            vec![].into_iter(),
            vec![5u64].into_iter(),
            vec![].into_iter(),
        ];
        assert_eq!(merge_disjoint(some_empty).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn union_removes_duplicates() {
        let a = vec![1u64, 3, 5];
        let b = vec![1u64, 2, 5, 6];
        let u: Vec<u64> = union_dedup(vec![a.into_iter(), b.into_iter()]).collect();
        assert_eq!(u, vec![1, 2, 3, 5, 6]);
    }

    #[test]
    fn merge_into_gap_builds_bitmap() {
        let a = vec![10u64, 30];
        let b = vec![20u64];
        let g = merge_into_gap(vec![a.into_iter(), b.into_iter()], 100);
        assert_eq!(g.to_vec(), vec![10, 20, 30]);
        assert_eq!(g.universe(), 100);
    }

    #[test]
    fn plan_picks_by_fanin_and_density() {
        assert_eq!(plan(0, 0, None), MergeStrategy::Empty);
        assert_eq!(plan(1, 10, None), MergeStrategy::Passthrough);
        assert_eq!(plan(2, 10_000, Some((0, 10_000))), MergeStrategy::Linear);
        // Dense: 8 streams, 10k elements across a 20k span.
        assert_eq!(plan(8, 10_000, Some((0, 19_999))), MergeStrategy::Bitset);
        // Sparse: same elements across a 10M span.
        assert_eq!(plan(8, 10_000, Some((0, 9_999_999))), MergeStrategy::Heap);
        // No span known: cannot size a word array.
        assert_eq!(plan(8, 10_000, None), MergeStrategy::Heap);
        // Tiny unions never pay for the allocation.
        assert_eq!(plan(8, 64, Some((0, 63))), MergeStrategy::Heap);
    }

    fn strided(streams: u64, per: u64, stride: u64, offset: u64) -> Vec<Vec<u64>> {
        (0..streams)
            .map(|k| {
                (0..per)
                    .map(|i| offset + i * stride * streams + k * stride)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn bitset_path_matches_heap_on_dense_cover() {
        // 8 disjoint dense streams with a word-unaligned span start.
        let streams = strided(8, 1000, 1, 37);
        let universe = 37 + 8 * 1000 + 1;
        let total = 8 * 1000;
        let span = Some((37, 37 + 8 * 1000 - 1));
        let mk = || {
            streams
                .iter()
                .map(|s| s.iter().copied())
                .collect::<Vec<_>>()
        };
        let heap = merge_with_strategy(mk(), universe, total, span, MergeStrategy::Heap);
        let bitset = merge_with_strategy(mk(), universe, total, span, MergeStrategy::Bitset);
        assert_eq!(plan(8, total, span), MergeStrategy::Bitset);
        assert_eq!(bitset, heap);
        assert_eq!(bitset.count(), total);
    }

    proptest! {
        #[test]
        fn adaptive_matches_heap_on_every_branch(
            parts in proptest::collection::vec(
                proptest::collection::btree_set(0u64..5_000, 0..400), 1..6),
            dense in any::<bool>(),
        ) {
            // Disjoint by stride-tagging; `dense` narrows the value range
            // so both planner outcomes are exercised.
            let stride = if dense { 1 } else { 97 };
            let k = parts.len() as u64;
            let streams: Vec<Vec<u64>> = parts
                .iter()
                .enumerate()
                .map(|(i, s)| s.iter().map(|&x| (x * k + i as u64) * stride).collect())
                .collect();
            let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
            let lo = streams.iter().filter_map(|s| s.first()).min().copied();
            let hi = streams.iter().filter_map(|s| s.last()).max().copied();
            let span = lo.zip(hi);
            let universe = hi.map_or(1, |h| h + 1);
            let mk = || streams.iter().map(|s| s.iter().copied()).collect::<Vec<_>>();
            let reference = merge_with_strategy(
                mk(), universe, total, span, MergeStrategy::Heap);
            let adaptive = merge_adaptive(mk(), universe, total, span);
            prop_assert_eq!(&adaptive, &reference);
            if span.is_some() && total > 0 {
                let forced = merge_with_strategy(
                    mk(), universe, total, span, MergeStrategy::Bitset);
                prop_assert_eq!(&forced, &reference);
            }
        }
    }

    proptest! {
        #[test]
        fn merge_equals_sorted_concat(
            parts in proptest::collection::vec(
                proptest::collection::btree_set(0u64..10_000, 0..50), 1..8)
        ) {
            // Make the parts disjoint by tagging with the part index modulo
            // a stride, then check merge == sorted union.
            let streams: Vec<Vec<u64>> = parts
                .iter()
                .enumerate()
                .map(|(i, s)| s.iter().map(|&x| x * parts.len() as u64 + i as u64).collect())
                .collect();
            let mut expected: Vec<u64> = streams.iter().flatten().copied().collect();
            expected.sort_unstable();
            let merged: Vec<u64> =
                merge_disjoint(streams.into_iter().map(|v| v.into_iter()).collect()).collect();
            prop_assert_eq!(merged, expected);
        }

        #[test]
        fn union_equals_set_union(
            parts in proptest::collection::vec(
                proptest::collection::btree_set(0u64..1000, 0..100), 1..6)
        ) {
            let mut expected: Vec<u64> = parts
                .iter()
                .flat_map(|s| s.iter().copied())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            expected.sort_unstable();
            let streams: Vec<_> = parts
                .into_iter()
                .map(|s| s.into_iter().collect::<Vec<_>>().into_iter())
                .collect();
            let got: Vec<u64> = union_dedup(streams).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
