//! K-way merges over sorted position streams.
//!
//! Range queries in every structure of the paper end by "merging the
//! bitmaps" of the canonical subtrees (§2.1, §2.2). The inputs are sorted
//! position streams decoded from disjoint sets (each position carries
//! exactly one character), so the common case is a disjoint merge; hashed
//! sets in the approximate index (§3) may collide, so a deduplicating
//! union is also provided.

use std::cmp::Reverse;
use std::collections::binary_heap::PeekMut;
use std::collections::BinaryHeap;

use crate::GapBitmap;

/// K-way merge of sorted streams into one sorted stream, assuming global
/// distinctness (disjoint inputs). Duplicates are passed through unchanged;
/// use [`union_dedup`] when inputs may overlap.
pub fn merge_disjoint<I>(inputs: Vec<I>) -> KWayMerge<I>
where
    I: Iterator<Item = u64>,
{
    KWayMerge::new(inputs)
}

/// K-way union of sorted streams with duplicate removal.
pub fn union_dedup<I>(inputs: Vec<I>) -> impl Iterator<Item = u64>
where
    I: Iterator<Item = u64>,
{
    let mut last: Option<u64> = None;
    KWayMerge::new(inputs).filter(move |&p| {
        if last == Some(p) {
            false
        } else {
            last = Some(p);
            true
        }
    })
}

/// Merges sorted streams directly into a [`GapBitmap`] over `universe`.
pub fn merge_into_gap<I>(inputs: Vec<I>, universe: u64) -> GapBitmap
where
    I: Iterator<Item = u64>,
{
    GapBitmap::from_sorted_iter(merge_disjoint(inputs), universe)
}

/// A k-way merge iterator.
///
/// Fan-in 1 is a passthrough and fan-in 2 a branch-per-element linear
/// merge (the overwhelmingly common shapes in the canonical
/// decompositions, which produce `O(lg n)` streams but usually one or
/// two). Larger fan-ins use a min-heap advanced via
/// [`BinaryHeap::peek_mut`]: replacing the head sifts it in place, one
/// `O(lg k)` walk per element instead of the pop-then-push pair.
#[derive(Debug)]
pub struct KWayMerge<I: Iterator<Item = u64>> {
    inner: Inner<I>,
}

#[derive(Debug)]
enum Inner<I: Iterator<Item = u64>> {
    One(Option<I>),
    Two {
        a: I,
        b: I,
        a_head: Option<u64>,
        b_head: Option<u64>,
    },
    Heap {
        heap: BinaryHeap<Reverse<(u64, usize)>>,
        inputs: Vec<I>,
    },
}

impl<I: Iterator<Item = u64>> KWayMerge<I> {
    fn new(mut inputs: Vec<I>) -> Self {
        let inner = match inputs.len() {
            0 => Inner::One(None),
            1 => Inner::One(inputs.pop()),
            2 => {
                let mut b = inputs.pop().expect("two inputs");
                let mut a = inputs.pop().expect("two inputs");
                let (a_head, b_head) = (a.next(), b.next());
                Inner::Two {
                    a,
                    b,
                    a_head,
                    b_head,
                }
            }
            _ => {
                let mut heap = BinaryHeap::with_capacity(inputs.len());
                for (idx, it) in inputs.iter_mut().enumerate() {
                    if let Some(first) = it.next() {
                        heap.push(Reverse((first, idx)));
                    }
                }
                Inner::Heap { heap, inputs }
            }
        };
        KWayMerge { inner }
    }
}

impl<I: Iterator<Item = u64>> Iterator for KWayMerge<I> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        match &mut self.inner {
            Inner::One(input) => input.as_mut()?.next(),
            Inner::Two {
                a,
                b,
                a_head,
                b_head,
            } => match (*a_head, *b_head) {
                (Some(x), Some(y)) => {
                    if x <= y {
                        *a_head = a.next();
                        Some(x)
                    } else {
                        *b_head = b.next();
                        Some(y)
                    }
                }
                (Some(x), None) => {
                    *a_head = a.next();
                    Some(x)
                }
                (None, Some(y)) => {
                    *b_head = b.next();
                    Some(y)
                }
                (None, None) => None,
            },
            Inner::Heap { heap, inputs } => {
                let mut top = heap.peek_mut()?;
                let Reverse((pos, idx)) = *top;
                match inputs[idx].next() {
                    Some(next) => {
                        debug_assert!(next > pos, "input stream {idx} not strictly increasing");
                        // Sifts the replaced head in place when `top` drops.
                        *top = Reverse((next, idx));
                    }
                    None => {
                        PeekMut::pop(top);
                    }
                }
                Some(pos)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            Inner::One(None) => (0, Some(0)),
            Inner::One(Some(input)) => input.size_hint(),
            _ => (0, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn merge_of_disjoint_streams() {
        let a = vec![1u64, 4, 7];
        let b = vec![2u64, 5];
        let c = vec![0u64, 3, 6, 8];
        let merged: Vec<u64> =
            merge_disjoint(vec![a.into_iter(), b.into_iter(), c.into_iter()]).collect();
        assert_eq!(merged, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn merge_of_empty_inputs() {
        let empty: Vec<std::vec::IntoIter<u64>> = vec![];
        assert_eq!(merge_disjoint(empty).count(), 0);
        let some_empty = vec![
            vec![].into_iter(),
            vec![5u64].into_iter(),
            vec![].into_iter(),
        ];
        assert_eq!(merge_disjoint(some_empty).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn union_removes_duplicates() {
        let a = vec![1u64, 3, 5];
        let b = vec![1u64, 2, 5, 6];
        let u: Vec<u64> = union_dedup(vec![a.into_iter(), b.into_iter()]).collect();
        assert_eq!(u, vec![1, 2, 3, 5, 6]);
    }

    #[test]
    fn merge_into_gap_builds_bitmap() {
        let a = vec![10u64, 30];
        let b = vec![20u64];
        let g = merge_into_gap(vec![a.into_iter(), b.into_iter()], 100);
        assert_eq!(g.to_vec(), vec![10, 20, 30]);
        assert_eq!(g.universe(), 100);
    }

    proptest! {
        #[test]
        fn merge_equals_sorted_concat(
            parts in proptest::collection::vec(
                proptest::collection::btree_set(0u64..10_000, 0..50), 1..8)
        ) {
            // Make the parts disjoint by tagging with the part index modulo
            // a stride, then check merge == sorted union.
            let streams: Vec<Vec<u64>> = parts
                .iter()
                .enumerate()
                .map(|(i, s)| s.iter().map(|&x| x * parts.len() as u64 + i as u64).collect())
                .collect();
            let mut expected: Vec<u64> = streams.iter().flatten().copied().collect();
            expected.sort_unstable();
            let merged: Vec<u64> =
                merge_disjoint(streams.into_iter().map(|v| v.into_iter()).collect()).collect();
            prop_assert_eq!(merged, expected);
        }

        #[test]
        fn union_equals_set_union(
            parts in proptest::collection::vec(
                proptest::collection::btree_set(0u64..1000, 0..100), 1..6)
        ) {
            let mut expected: Vec<u64> = parts
                .iter()
                .flat_map(|s| s.iter().copied())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            expected.sort_unstable();
            let streams: Vec<_> = parts
                .into_iter()
                .map(|s| s.into_iter().collect::<Vec<_>>().into_iter())
                .collect();
            let got: Vec<u64> = union_dedup(streams).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
