//! K-way merges over sorted position streams.
//!
//! Range queries in every structure of the paper end by "merging the
//! bitmaps" of the canonical subtrees (§2.1, §2.2). The inputs are sorted
//! position streams decoded from disjoint sets (each position carries
//! exactly one character), so the common case is a disjoint merge; hashed
//! sets in the approximate index (§3) may collide, so a deduplicating
//! union is also provided.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::GapBitmap;

/// K-way merge of sorted streams into one sorted stream, assuming global
/// distinctness (disjoint inputs). Duplicates are passed through unchanged;
/// use [`union_dedup`] when inputs may overlap.
pub fn merge_disjoint<I>(inputs: Vec<I>) -> KWayMerge<I>
where
    I: Iterator<Item = u64>,
{
    KWayMerge::new(inputs)
}

/// K-way union of sorted streams with duplicate removal.
pub fn union_dedup<I>(inputs: Vec<I>) -> impl Iterator<Item = u64>
where
    I: Iterator<Item = u64>,
{
    let mut last: Option<u64> = None;
    KWayMerge::new(inputs).filter(move |&p| {
        if last == Some(p) {
            false
        } else {
            last = Some(p);
            true
        }
    })
}

/// Merges sorted streams directly into a [`GapBitmap`] over `universe`.
pub fn merge_into_gap<I>(inputs: Vec<I>, universe: u64) -> GapBitmap
where
    I: Iterator<Item = u64>,
{
    GapBitmap::from_sorted_iter(merge_disjoint(inputs), universe)
}

/// A heap-based k-way merge iterator.
#[derive(Debug)]
pub struct KWayMerge<I: Iterator<Item = u64>> {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    inputs: Vec<I>,
}

impl<I: Iterator<Item = u64>> KWayMerge<I> {
    fn new(mut inputs: Vec<I>) -> Self {
        let mut heap = BinaryHeap::with_capacity(inputs.len());
        for (idx, it) in inputs.iter_mut().enumerate() {
            if let Some(first) = it.next() {
                heap.push(Reverse((first, idx)));
            }
        }
        KWayMerge { heap, inputs }
    }
}

impl<I: Iterator<Item = u64>> Iterator for KWayMerge<I> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let Reverse((pos, idx)) = self.heap.pop()?;
        if let Some(next) = self.inputs[idx].next() {
            debug_assert!(next > pos, "input stream {idx} not strictly increasing");
            self.heap.push(Reverse((next, idx)));
        }
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn merge_of_disjoint_streams() {
        let a = vec![1u64, 4, 7];
        let b = vec![2u64, 5];
        let c = vec![0u64, 3, 6, 8];
        let merged: Vec<u64> =
            merge_disjoint(vec![a.into_iter(), b.into_iter(), c.into_iter()]).collect();
        assert_eq!(merged, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn merge_of_empty_inputs() {
        let empty: Vec<std::vec::IntoIter<u64>> = vec![];
        assert_eq!(merge_disjoint(empty).count(), 0);
        let some_empty = vec![vec![].into_iter(), vec![5u64].into_iter(), vec![].into_iter()];
        assert_eq!(merge_disjoint(some_empty).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn union_removes_duplicates() {
        let a = vec![1u64, 3, 5];
        let b = vec![1u64, 2, 5, 6];
        let u: Vec<u64> = union_dedup(vec![a.into_iter(), b.into_iter()]).collect();
        assert_eq!(u, vec![1, 2, 3, 5, 6]);
    }

    #[test]
    fn merge_into_gap_builds_bitmap() {
        let a = vec![10u64, 30];
        let b = vec![20u64];
        let g = merge_into_gap(vec![a.into_iter(), b.into_iter()], 100);
        assert_eq!(g.to_vec(), vec![10, 20, 30]);
        assert_eq!(g.universe(), 100);
    }

    proptest! {
        #[test]
        fn merge_equals_sorted_concat(
            parts in proptest::collection::vec(
                proptest::collection::btree_set(0u64..10_000, 0..50), 1..8)
        ) {
            // Make the parts disjoint by tagging with the part index modulo
            // a stride, then check merge == sorted union.
            let streams: Vec<Vec<u64>> = parts
                .iter()
                .enumerate()
                .map(|(i, s)| s.iter().map(|&x| x * parts.len() as u64 + i as u64).collect())
                .collect();
            let mut expected: Vec<u64> = streams.iter().flatten().copied().collect();
            expected.sort_unstable();
            let merged: Vec<u64> =
                merge_disjoint(streams.into_iter().map(|v| v.into_iter()).collect()).collect();
            prop_assert_eq!(merged, expected);
        }

        #[test]
        fn union_equals_set_union(
            parts in proptest::collection::vec(
                proptest::collection::btree_set(0u64..1000, 0..100), 1..6)
        ) {
            let mut expected: Vec<u64> = parts
                .iter()
                .flat_map(|s| s.iter().copied())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            expected.sort_unstable();
            let streams: Vec<_> = parts
                .into_iter()
                .map(|s| s.into_iter().collect::<Vec<_>>().into_iter())
                .collect();
            let got: Vec<u64> = union_dedup(streams).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
