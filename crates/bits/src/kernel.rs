//! Kernel-path counters and switches.
//!
//! The bits crate has several implementations of the same logical
//! operation (window-SWAR vs. lzcnt-accelerated vs. cursor-scalar decode,
//! occupancy block-skipping vs. plain galloping intersection). These
//! process-wide relaxed counters record which path actually ran, so a
//! live server's STATS reply shows the kernel mix and tests can assert a
//! fast path was exercised (not silently skipped by dispatch). Hot loops
//! accumulate locally and flush one `fetch_add` per *operation*, never
//! per element, so the counters cost nothing on the paths they observe.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One named kernel counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` (relaxed; call once per operation with a locally
    /// accumulated total).
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Batch decodes served by the stable SWAR window kernel.
pub static DECODE_SWAR: Counter = Counter::new("kernel/decode_swar");
/// Batch decodes served by the `lzcnt`/BMI-accelerated kernel (requires
/// the `simd` feature and runtime CPU support).
pub static DECODE_SIMD: Counter = Counter::new("kernel/decode_simd");
/// Streams decoded through the scalar cursor decoder (`GapDecoder`).
pub static DECODE_SCALAR: Counter = Counter::new("kernel/decode_scalar");
/// Encodes that ran through the word-accumulating [`crate::BitWriter`].
pub static ENCODE_BULK: Counter = Counter::new("kernel/encode_bulk");
/// Bitset-accumulate re-encodes (`from_words`/`from_words_span`).
pub static REENCODE_BITSET: Counter = Counter::new("kernel/reencode_bitset");
/// Intersection probes resolved by decoding the other stream (gallop).
pub static INTERSECT_GALLOP: Counter = Counter::new("kernel/intersect_gallop");
/// Intersection probes resolved by an occupancy word alone — the probed
/// bucket's summary bit was clear, so no codes were decoded.
pub static INTERSECT_BLOCK_SKIP: Counter = Counter::new("kernel/intersect_block_skip");
/// Whole sample blocks skipped because the two sides' occupancy words
/// ANDed to zero (neither block's codes were decoded).
pub static INTERSECT_BLOCK_AND: Counter = Counter::new("kernel/intersect_block_and");
/// Membership probes answered absent by an occupancy word alone.
pub static CONTAINS_BLOCK_SKIP: Counter = Counter::new("kernel/contains_block_skip");

/// All kernel counters, for snapshot surfaces (the serve STATS op).
pub fn counters() -> [&'static Counter; 9] {
    [
        &DECODE_SWAR,
        &DECODE_SIMD,
        &DECODE_SCALAR,
        &ENCODE_BULK,
        &REENCODE_BITSET,
        &INTERSECT_GALLOP,
        &INTERSECT_BLOCK_SKIP,
        &INTERSECT_BLOCK_AND,
        &CONTAINS_BLOCK_SKIP,
    ]
}

/// `(name, value)` snapshot of every kernel counter.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    counters().iter().map(|c| (c.name, c.get())).collect()
}

/// Resets every counter to zero (test isolation).
pub fn reset() {
    for c in counters() {
        c.value.store(0, Ordering::Relaxed);
    }
}

static BLOCK_SKIP: AtomicBool = AtomicBool::new(true);

/// Enables or disables occupancy-word block skipping in the intersection
/// and membership kernels. The forced-scalar mode exists for differential
/// tests and the E20 before/after measurement: results and simulated
/// `IoStats` must be identical either way.
pub fn set_block_skip(enabled: bool) {
    BLOCK_SKIP.store(enabled, Ordering::Relaxed);
}

/// Whether occupancy-word block skipping is enabled (default true).
#[inline]
pub fn block_skip_enabled() -> bool {
    BLOCK_SKIP.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        // Deltas only: other tests in the process bump these counters
        // concurrently, so absolute values are not stable.
        let before = INTERSECT_BLOCK_AND.get();
        INTERSECT_BLOCK_AND.add(3);
        INTERSECT_BLOCK_AND.add(0); // no-op, no fetch_add
        assert!(INTERSECT_BLOCK_AND.get() >= before + 3);
        let snap = snapshot();
        assert!(snap.iter().any(|&(n, _)| n == "kernel/intersect_block_and"));
        assert_eq!(snap.len(), counters().len());
    }

    #[test]
    fn block_skip_toggle_roundtrips() {
        assert!(block_skip_enabled());
        set_block_skip(false);
        assert!(!block_skip_enabled());
        set_block_skip(true);
    }
}
