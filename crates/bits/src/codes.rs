//! Elias universal codes (gamma and delta), per Elias (ref 12 of the paper) as used in the
//! paper's run-length encoding (§1.2).
//!
//! The gamma code of `x ≥ 1` is `⌊lg x⌋` zeros followed by the
//! `⌊lg x⌋ + 1`-bit binary representation of `x` (whose leading bit is the
//! terminating 1), for a total of `2⌊lg x⌋ + 1` bits — matching the paper's
//! `2⌊lg(x+1)⌋ + 2`-bit budget for encoding a run of length `x ≥ 0` as
//! `gamma(x + 1)`.
//!
//! The delta code encodes `⌊lg x⌋ + 1` in gamma followed by the low
//! `⌊lg x⌋` bits of `x`; it is asymptotically shorter
//! (`lg x + 2 lg lg x + O(1)` bits) and is used where the encoded values
//! can be large (e.g. absolute block headers).

use crate::{BitSink, BitSource};

/// Length of the gamma code of `x` in bits.
///
/// # Panics
/// Panics if `x == 0` (gamma codes start at 1).
pub fn gamma_len(x: u64) -> u64 {
    assert!(x > 0, "gamma code of zero");
    2 * u64::from(63 - x.leading_zeros()) + 1
}

/// Length of the delta code of `x` in bits.
///
/// # Panics
/// Panics if `x == 0`.
pub fn delta_len(x: u64) -> u64 {
    assert!(x > 0, "delta code of zero");
    let n = u64::from(63 - x.leading_zeros()); // ⌊lg x⌋
    gamma_len(n + 1) + n
}

/// Writes the gamma code of `x ≥ 1`.
#[inline]
pub fn put_gamma<S: BitSink>(sink: &mut S, x: u64) {
    assert!(x > 0, "gamma code of zero");
    let n = 63 - x.leading_zeros(); // ⌊lg x⌋
                                    // The codeword is n zeros then the (n+1)-bit binary of x — which is
                                    // exactly x in a (2n+1)-bit field, one sink call when it fits a word.
    if 2 * n < 64 {
        sink.put_bits(x, 2 * n + 1);
    } else {
        sink.put_bits(0, n);
        sink.put_bits(x, n + 1);
    }
}

/// Reads a gamma code.
///
/// Fast path: one [`BitSource::peek_word`] exposes the next 64 bits, so
/// `leading_zeros` locates the terminating 1 and a single shift extracts
/// the whole codeword — the common case for gap codes, whose values are
/// below `2³²` whenever the universe fits in 32 bits. Codes longer than
/// the available lookahead (large values, buffer ends, sources without
/// lookahead) fall back to the unary-then-binary cursor path.
#[inline]
pub fn get_gamma<S: BitSource>(src: &mut S) -> u64 {
    let (word, valid) = src.peek_word();
    let lz = word.leading_zeros();
    // Total codeword length is 2·lz + 1 bits; `lz ≤ 31` whenever this
    // fits in the valid lookahead, so the shifts below cannot overflow.
    if 2 * lz < valid {
        let value = (word << lz) >> (63 - lz);
        src.skip_bits(2 * lz + 1);
        return value;
    }
    let n = src.get_unary(); // consumed the leading 1 of x
    (1u64 << n) | src.get_bits(n)
}

/// Reads a gamma code one bit at a time.
///
/// This is the executable specification the word-level fast path is
/// differentially tested against (`tests/differential.rs`); it touches
/// nothing but [`BitSource::get_bit`]/[`BitSource::get_bits`].
pub fn get_gamma_reference<S: BitSource>(src: &mut S) -> u64 {
    let mut n = 0u32;
    while !src.get_bit() {
        n += 1;
    }
    (1u64 << n) | src.get_bits(n)
}

/// Writes the delta code of `x ≥ 1`.
pub fn put_delta<S: BitSink>(sink: &mut S, x: u64) {
    assert!(x > 0, "delta code of zero");
    let n = 63 - x.leading_zeros();
    put_gamma(sink, u64::from(n) + 1);
    sink.put_bits(x & !(1u64 << n), n);
}

/// Reads a delta code (the length header shares gamma's word-level fast
/// path).
#[inline]
pub fn get_delta<S: BitSource>(src: &mut S) -> u64 {
    let n = (get_gamma(src) - 1) as u32;
    (1u64 << n) | src.get_bits(n)
}

/// Reads a delta code one bit at a time (differential-testing reference,
/// see [`get_gamma_reference`]).
pub fn get_delta_reference<S: BitSource>(src: &mut S) -> u64 {
    let n = (get_gamma_reference(src) - 1) as u32;
    let mut value = 1u64;
    for _ in 0..n {
        value = value << 1 | u64::from(src.get_bit());
    }
    value
}

/// Reads a unary code one bit at a time (differential-testing reference
/// for the word-level [`BitSource::get_unary`] overrides).
pub fn get_unary_reference<S: BitSource>(src: &mut S) -> u32 {
    let mut zeros = 0u32;
    while !src.get_bit() {
        zeros += 1;
    }
    zeros
}

/// Writes `x ≥ 0` as `gamma(x + 1)` — the paper's convention for run
/// lengths, which may be zero.
pub fn put_gamma0<S: BitSink>(sink: &mut S, x: u64) {
    put_gamma(sink, x + 1);
}

/// Reads a `gamma(x + 1)`-coded value, returning `x`.
pub fn get_gamma0<S: BitSource>(src: &mut S) -> u64 {
    get_gamma(src) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitBuf;
    use proptest::prelude::*;

    #[test]
    fn gamma_known_codewords() {
        // gamma(1) = "1", gamma(2) = "010", gamma(3) = "011",
        // gamma(4) = "00100".
        let mut b = BitBuf::new();
        put_gamma(&mut b, 1);
        put_gamma(&mut b, 2);
        put_gamma(&mut b, 3);
        put_gamma(&mut b, 4);
        assert_eq!(b.len(), 1 + 3 + 3 + 5);
        #[allow(clippy::unusual_byte_groupings)] // grouped by codeword, not nibble
        let expected = 0b1_010_011_00100;
        assert_eq!(b.get_bits_at(0, 12), expected);
    }

    #[test]
    fn gamma_lengths_match_formula() {
        for x in [1u64, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX >> 1] {
            let mut b = BitBuf::new();
            put_gamma(&mut b, x);
            assert_eq!(b.len(), gamma_len(x), "gamma({x})");
        }
    }

    #[test]
    fn delta_lengths_match_formula() {
        for x in [1u64, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX >> 1] {
            let mut b = BitBuf::new();
            put_delta(&mut b, x);
            assert_eq!(b.len(), delta_len(x), "delta({x})");
        }
    }

    #[test]
    fn delta_shorter_than_gamma_for_large_values() {
        assert!(delta_len(1 << 30) < gamma_len(1 << 30));
    }

    #[test]
    fn gamma0_handles_zero_runs() {
        let mut b = BitBuf::new();
        put_gamma0(&mut b, 0);
        put_gamma0(&mut b, 5);
        let mut r = b.reader();
        assert_eq!(get_gamma0(&mut r), 0);
        assert_eq!(get_gamma0(&mut r), 5);
    }

    proptest! {
        #[test]
        fn gamma_roundtrip(xs in proptest::collection::vec(1u64..u64::MAX / 2, 1..200)) {
            let mut b = BitBuf::new();
            for &x in &xs {
                put_gamma(&mut b, x);
            }
            let mut r = b.reader();
            for &x in &xs {
                prop_assert_eq!(get_gamma(&mut r), x);
            }
            prop_assert_eq!(r.remaining(), 0);
        }

        #[test]
        fn delta_roundtrip(xs in proptest::collection::vec(1u64..u64::MAX / 2, 1..200)) {
            let mut b = BitBuf::new();
            for &x in &xs {
                put_delta(&mut b, x);
            }
            let mut r = b.reader();
            for &x in &xs {
                prop_assert_eq!(get_delta(&mut r), x);
            }
        }

        #[test]
        fn mixed_streams_roundtrip(xs in proptest::collection::vec((1u64..1_000_000, any::<bool>()), 1..100)) {
            // Interleave gamma and delta codes in one stream.
            let mut b = BitBuf::new();
            for &(x, use_delta) in &xs {
                if use_delta {
                    put_delta(&mut b, x);
                } else {
                    put_gamma(&mut b, x);
                }
            }
            let mut r = b.reader();
            for &(x, use_delta) in &xs {
                let got = if use_delta { get_delta(&mut r) } else { get_gamma(&mut r) };
                prop_assert_eq!(got, x);
            }
        }
    }
}
