//! Gap-compressed bitmaps.
//!
//! A set `S ⊆ [0, universe)` is stored as the strictly increasing sequence
//! of its elements, encoded as Elias-gamma codes of the *gaps*: the first
//! element `p₀` as `gamma(p₀ + 1)`, each subsequent element as
//! `gamma(pᵢ − pᵢ₋₁)`. This is the paper's run-length encoding (§1.2): a
//! run of `x` zeros costs `2⌊lg(x+1)⌋ + O(1)` bits, so a bitmap with `m`
//! ones over `[n]` costs `O(m lg(n/m) + m)` bits — within a constant factor
//! of the information-theoretic minimum `lg C(n, m)` (by concavity of `lg`).

use crate::{codes, BitBuf, BitBufReader, BitSink, BitSource};

/// A compressed bitmap: gamma-coded gaps between consecutive 1-positions.
///
/// The element count and universe size are carried as plain metadata (the
/// paper stores these as node weights in the tree structures); only the gap
/// codes occupy the compressed payload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GapBitmap {
    universe: u64,
    count: u64,
    bits: BitBuf,
}

impl GapBitmap {
    /// An empty bitmap over `[0, universe)`.
    pub fn empty(universe: u64) -> Self {
        GapBitmap {
            universe,
            count: 0,
            bits: BitBuf::new(),
        }
    }

    /// Builds from a strictly increasing slice of positions `< universe`.
    ///
    /// # Panics
    /// Panics if positions are not strictly increasing or exceed the
    /// universe.
    pub fn from_sorted(positions: &[u64], universe: u64) -> Self {
        Self::from_sorted_iter(positions.iter().copied(), universe)
    }

    /// Builds from a strictly increasing iterator of positions.
    pub fn from_sorted_iter<I: IntoIterator<Item = u64>>(positions: I, universe: u64) -> Self {
        let mut bits = BitBuf::new();
        let mut enc = GapEncoder::new(&mut bits);
        for p in positions {
            assert!(p < universe, "position {p} outside universe {universe}");
            enc.push(p);
        }
        let count = enc.finish();
        GapBitmap {
            universe,
            count,
            bits,
        }
    }

    /// Number of 1s (the paper's *cardinality* of a bitmap, §1.4).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The universe size `n`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Size of the compressed payload in bits.
    pub fn size_bits(&self) -> u64 {
        self.bits.len()
    }

    /// The raw code stream.
    pub fn code_bits(&self) -> &BitBuf {
        &self.bits
    }

    /// Wraps an already-encoded gap code stream.
    ///
    /// `bits` must hold exactly `count` gamma codes in the gap convention
    /// of this type (first element as `gamma(p₀ + 1)`, then gaps), for
    /// strictly increasing positions below `universe`. This is how query
    /// paths that cover a single stored bitmap return it as a whole-word
    /// copy instead of a decode-reencode round trip; debug builds verify
    /// the stream.
    pub fn from_code_bits(bits: BitBuf, count: u64, universe: u64) -> Self {
        let b = GapBitmap {
            universe,
            count,
            bits,
        };
        #[cfg(debug_assertions)]
        {
            let mut dec = b.iter();
            let mut prev = None;
            for p in dec.by_ref() {
                debug_assert!(p < universe, "position {p} outside universe {universe}");
                debug_assert!(prev.is_none_or(|q| q < p), "positions not increasing");
                prev = Some(p);
            }
            debug_assert_eq!(
                dec.into_source().bit_pos(),
                b.bits.len(),
                "code stream length mismatch"
            );
        }
        b
    }

    /// Iterates the 1-positions in increasing order.
    pub fn iter(&self) -> GapDecoder<BitBufReader<'_>> {
        GapDecoder::new(self.bits.reader(), self.count)
    }

    /// Decodes all positions into `out` (cleared first) — the batch
    /// endpoint for query pipelines that materialize results.
    ///
    /// The loop keeps a two-word window of the code stream in registers,
    /// so decoding one gamma code is a shift-or to form the window, a
    /// `leading_zeros`, and one shift to extract — one memory load per
    /// *word* of stream instead of per code, and none of the cursor or
    /// iterator machinery. Codes longer than 64 bits (gaps ≥ 2³²) detour
    /// through the cursor decoder and re-synchronize the window.
    pub fn decode_all(&self, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.count as usize);
        let words = self.bits.words();
        let bit_len = self.bits.len();
        // First position is gamma(p₀ + 1): seed the running sum with −1.
        let mut prev = u64::MAX;
        let mut pos = 0u64; // window base, in bits
        while pos < bit_len {
            // Load a 64-bit window at `pos`, then drain every codeword
            // that lies entirely inside it — the drain loop is shift,
            // count zeros, shift: no memory traffic and the shortest
            // possible dependency chain between consecutive codes.
            let w = (pos / 64) as usize;
            let off = (pos % 64) as u32;
            let lo = words.get(w + 1).copied().unwrap_or(0);
            // `(lo >> 1) >> (63 − off)` is `lo >> (64 − off)` without the
            // undefined 64-bit shift at off = 0.
            let window = (words[w] << off) | ((lo >> 1) >> (63 - off));
            let valid = (bit_len - pos).min(64) as u32;
            let mut used = 0u32;
            loop {
                let rest = window << used;
                let lz = rest.leading_zeros();
                if lz == 0 {
                    // A leading 1 is the code for gap 1, and a run of k
                    // ones is k consecutive positions — the dense-bitmap
                    // case (§1.2's "runs"), emitted as one burst with no
                    // per-element decode at all.
                    let ones = (!rest).leading_zeros().min(valid - used);
                    let base = prev;
                    out.extend((1..=u64::from(ones)).map(|d| base.wrapping_add(d)));
                    prev = base.wrapping_add(u64::from(ones));
                    used += ones;
                    if used >= valid {
                        break;
                    }
                    continue;
                }
                let len = 2 * lz + 1;
                if used + len > valid {
                    break;
                }
                // Top `lz` bits of `rest` are zero, so no mask is needed.
                prev = prev.wrapping_add(rest >> (63 - 2 * lz));
                out.push(prev);
                used += len;
                if used >= valid {
                    break;
                }
            }
            if used == 0 {
                // Codeword longer than the window (gap ≥ 2³²): cursor
                // decode, then resume word-at-a-time behind it.
                let mut r = self.bits.reader_at(pos);
                let n = r.get_unary();
                prev = prev.wrapping_add((1u64 << n) | r.get_bits(n));
                out.push(prev);
                pos = r.bit_pos();
            } else {
                pos += u64::from(used);
            }
            assert!(
                out.len() <= self.count as usize,
                "gap stream holds more codes than its count"
            );
        }
        debug_assert_eq!(out.len(), self.count as usize, "count vs stream mismatch");
    }

    /// Decodes all positions into a vector.
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.decode_all(&mut out);
        out
    }

    /// Membership test by scanning (O(count); intended for tests and small
    /// sets — the index structures never need random membership).
    pub fn contains(&self, pos: u64) -> bool {
        self.iter().take_while(|&p| p <= pos).any(|p| p == pos)
    }

    /// Appends this bitmap's raw code stream to a sink (used when
    /// concatenating per-node bitmaps into a level stream on disk). A
    /// 64-bit-aligned sink receives a whole-word copy.
    pub fn write_codes_to<S: BitSink>(&self, sink: &mut S) {
        sink.put_bits_bulk(self.bits.words(), self.bits.len());
    }

    /// The complement set over the same universe (used by Theorem 1's
    /// `z > n/2` trick when a materialized complement is required).
    ///
    /// Walks the gap stream run by run: each decoded 1-position closes a
    /// run of complement elements, whose encoding is one gap code followed
    /// by unit gaps — appended as whole words of 1-bits rather than
    /// re-encoding every element through the generic path.
    pub fn complement(&self) -> GapBitmap {
        let universe = self.universe;
        let mut bits = BitBuf::with_capacity(universe - self.count);
        let mut prev: Option<u64> = None;
        // Emits the complement run [start, end): one gap code to enter the
        // run, then end − start − 1 unit gaps ("1" bits), 64 at a time.
        let emit_run = |bits: &mut BitBuf, prev: &mut Option<u64>, start: u64, end: u64| {
            if start >= end {
                return;
            }
            match *prev {
                None => codes::put_gamma(bits, start + 1),
                Some(p) => codes::put_gamma(bits, start - p),
            }
            let mut ones = end - start - 1;
            while ones > 0 {
                let k = ones.min(64) as u32;
                let chunk = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
                bits.push_bits(chunk, k);
                ones -= u64::from(k);
            }
            *prev = Some(end - 1);
        };
        let mut next_free = 0u64;
        for p in self.iter() {
            emit_run(&mut bits, &mut prev, next_free, p);
            next_free = p + 1;
        }
        emit_run(&mut bits, &mut prev, next_free, universe);
        GapBitmap {
            universe,
            count: universe - self.count,
            bits,
        }
    }
}

impl<'a> IntoIterator for &'a GapBitmap {
    type Item = u64;
    type IntoIter = GapDecoder<BitBufReader<'a>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Streaming gap encoder over any bit sink.
///
/// Feeds strictly increasing positions; encodes the first as
/// `gamma(p + 1)` and the rest as `gamma(gap)`.
#[derive(Debug)]
pub struct GapEncoder<'a, S: BitSink> {
    sink: &'a mut S,
    prev: Option<u64>,
    count: u64,
}

impl<'a, S: BitSink> GapEncoder<'a, S> {
    /// Starts encoding into `sink`.
    pub fn new(sink: &'a mut S) -> Self {
        GapEncoder {
            sink,
            prev: None,
            count: 0,
        }
    }

    /// Appends the next position (must exceed the previous one).
    pub fn push(&mut self, pos: u64) {
        match self.prev {
            None => codes::put_gamma(self.sink, pos + 1),
            Some(prev) => {
                assert!(
                    pos > prev,
                    "positions must be strictly increasing ({prev} then {pos})"
                );
                codes::put_gamma(self.sink, pos - prev);
            }
        }
        self.prev = Some(pos);
        self.count += 1;
    }

    /// Number of positions encoded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Last position encoded, if any.
    pub fn last(&self) -> Option<u64> {
        self.prev
    }

    /// Finishes, returning the number of positions encoded.
    pub fn finish(self) -> u64 {
        self.count
    }
}

/// Streaming gap decoder over any bit source.
///
/// The element count is external metadata (stored as node weights by the
/// index structures), so the decoder is told how many codes to consume.
#[derive(Debug)]
pub struct GapDecoder<S: BitSource> {
    src: S,
    remaining: u64,
    prev: Option<u64>,
}

impl<S: BitSource> GapDecoder<S> {
    /// Decodes `count` positions from `src`.
    pub fn new(src: S, count: u64) -> Self {
        GapDecoder {
            src,
            remaining: count,
            prev: None,
        }
    }

    /// Positions not yet decoded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Decodes up to `out.len()` positions into `out`, returning how many
    /// were written. The loop body is a plain gamma decode plus an add —
    /// no `Option`, no per-element trait dispatch — so the compiler keeps
    /// the running position and the source cursor in registers.
    pub fn next_batch(&mut self, out: &mut [u64]) -> usize {
        let n = self.remaining.min(out.len() as u64) as usize;
        let mut prev = match self.prev {
            Some(p) => p,
            None => {
                if n == 0 {
                    return 0;
                }
                out[0] = codes::get_gamma(&mut self.src) - 1;
                out[0]
            }
        };
        let start = usize::from(self.prev.is_none());
        for slot in &mut out[start..n] {
            prev += codes::get_gamma(&mut self.src);
            *slot = prev;
        }
        if n > 0 {
            self.prev = Some(prev);
        }
        self.remaining -= n as u64;
        n
    }

    /// Consumes the decoder, returning the underlying source positioned
    /// just past the last consumed code.
    pub fn into_source(self) -> S {
        self.src
    }
}

impl<S: BitSource> Iterator for GapDecoder<S> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let code = codes::get_gamma(&mut self.src);
        let pos = match self.prev {
            None => code - 1,
            Some(prev) => prev + code,
        };
        self.prev = Some(pos);
        Some(pos)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining as usize;
        (r, Some(r))
    }

    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, u64) -> B,
    {
        // Internal iteration (`sum`, `for_each`, `collect` via extend):
        // the count is known, so decode in a plain counted loop with no
        // per-element `Option` round trip.
        let mut src = self.src;
        let mut acc = init;
        let mut prev = self.prev;
        for _ in 0..self.remaining {
            let code = codes::get_gamma(&mut src);
            let pos = match prev {
                None => code - 1,
                Some(p) => p + code,
            };
            prev = Some(pos);
            acc = f(acc, pos);
        }
        acc
    }
}

impl<S: BitSource> ExactSizeIterator for GapDecoder<S> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_bitmap_has_no_bits() {
        let b = GapBitmap::empty(100);
        assert_eq!(b.count(), 0);
        assert_eq!(b.size_bits(), 0);
        assert_eq!(b.to_vec(), Vec::<u64>::new());
        assert!(!b.contains(5));
    }

    #[test]
    fn roundtrip_simple() {
        let pos = vec![0u64, 1, 5, 100, 101, 8191];
        let b = GapBitmap::from_sorted(&pos, 8192);
        assert_eq!(b.count(), 6);
        assert_eq!(b.to_vec(), pos);
        assert!(b.contains(100));
        assert!(!b.contains(99));
    }

    #[test]
    fn first_position_zero_is_representable() {
        let b = GapBitmap::from_sorted(&[0], 1);
        assert_eq!(b.to_vec(), vec![0]);
        assert_eq!(b.size_bits(), 1); // gamma(1) = "1"
    }

    #[test]
    fn size_tracks_information_bound() {
        // m evenly spaced ones over [n]: size should be O(m lg(n/m) + m).
        let n = 1u64 << 16;
        let m = 1u64 << 8;
        let step = n / m;
        let b = GapBitmap::from_sorted_iter((0..m).map(|i| i * step), n);
        let bound = psi_io::cost::output_bits(n, m); // m lg(n/m)
        assert!(
            b.size_bits() as f64 <= 2.0 * bound + 2.0 * m as f64,
            "size {} exceeds 2*bound {} + 2m",
            b.size_bits(),
            bound
        );
    }

    #[test]
    fn dense_bitmap_is_linear_not_loglinear() {
        // All n positions set: every gap is 1, one bit each.
        let n = 1000u64;
        let b = GapBitmap::from_sorted_iter(0..n, n);
        assert_eq!(b.size_bits(), n); // gamma(1) = 1 bit per element
    }

    #[test]
    fn complement_roundtrip() {
        let b = GapBitmap::from_sorted(&[1, 3, 5], 7);
        assert_eq!(b.complement().to_vec(), vec![0, 2, 4, 6]);
        assert_eq!(b.complement().complement().to_vec(), b.to_vec());
        let full = GapBitmap::from_sorted_iter(0..5, 5);
        assert!(full.complement().is_empty());
    }

    #[test]
    fn write_codes_to_concatenates_verbatim() {
        let a = GapBitmap::from_sorted(&[2, 9], 16);
        let b = GapBitmap::from_sorted(&[0, 15], 16);
        let mut stream = BitBuf::new();
        a.write_codes_to(&mut stream);
        let a_end = stream.len();
        b.write_codes_to(&mut stream);
        // Decode both back out of the concatenated stream.
        let mut dec = GapDecoder::new(stream.reader(), 2);
        assert_eq!(dec.by_ref().collect::<Vec<_>>(), vec![2, 9]);
        let src = dec.into_source();
        assert_eq!(src.bit_pos(), a_end);
        let dec2 = GapDecoder::new(src, 2);
        assert_eq!(dec2.collect::<Vec<_>>(), vec![0, 15]);
    }

    #[test]
    fn huge_gaps_take_the_long_code_path() {
        // Gaps ≥ 2³² produce gamma codes longer than 64 bits, which the
        // word-window decoder must route through the cursor fallback.
        let positions = vec![3u64, 1 << 33, (1 << 33) + 1, 1 << 62];
        let b = GapBitmap::from_sorted(&positions, (1 << 62) + 1);
        assert_eq!(b.to_vec(), positions);
        let mut batch = [0u64; 2];
        let mut dec = b.iter();
        assert_eq!(dec.next_batch(&mut batch), 2);
        assert_eq!(batch, [3, 1 << 33]);
        assert_eq!(dec.next_batch(&mut batch), 2);
        assert_eq!(batch, [(1 << 33) + 1, 1 << 62]);
        assert_eq!(dec.next_batch(&mut batch), 0);
    }

    #[test]
    fn from_code_bits_wraps_stream_verbatim() {
        let original = GapBitmap::from_sorted(&[1, 4, 9, 100], 128);
        let mut copy = BitBuf::new();
        original.write_codes_to(&mut copy);
        let rebuilt = GapBitmap::from_code_bits(copy, original.count(), original.universe());
        assert_eq!(rebuilt, original);
        assert_eq!(rebuilt.to_vec(), vec![1, 4, 9, 100]);
    }

    #[test]
    fn decode_all_reuses_buffer() {
        let a = GapBitmap::from_sorted(&[5, 10], 20);
        let b = GapBitmap::from_sorted(&[1], 20);
        let mut out = vec![999; 7];
        a.decode_all(&mut out);
        assert_eq!(out, vec![5, 10]);
        b.decode_all(&mut out);
        assert_eq!(out, vec![1]);
        GapBitmap::empty(20).decode_all(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn decode_all_handles_runs_across_word_boundaries() {
        // 120 consecutive positions: the gap-1 burst path must carry runs
        // across 64-bit window reloads.
        let positions: Vec<u64> = (7..127).collect();
        let b = GapBitmap::from_sorted(&positions, 200);
        assert_eq!(b.to_vec(), positions);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_positions_rejected() {
        let _ = GapBitmap::from_sorted(&[5, 5], 10);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn position_outside_universe_rejected() {
        let _ = GapBitmap::from_sorted(&[10], 10);
    }

    fn sorted_unique(max: u64, len: usize) -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::btree_set(0..max, 0..len)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn roundtrip_random_sets(pos in sorted_unique(1 << 20, 300)) {
            let b = GapBitmap::from_sorted(&pos, 1 << 20);
            prop_assert_eq!(b.to_vec(), pos.clone());
            prop_assert_eq!(b.count() as usize, pos.len());
        }

        #[test]
        fn size_within_constant_of_entropy(pos in sorted_unique(1 << 16, 200)) {
            prop_assume!(!pos.is_empty());
            let n = 1u64 << 16;
            let b = GapBitmap::from_sorted(&pos, n);
            let m = pos.len() as u64;
            // lg C(n, m) lower bound; gamma-gap coding is within ~2x + O(m).
            let bound = psi_io::cost::lg_binomial(n, m);
            prop_assert!((b.size_bits() as f64) <= 2.0 * bound + 3.0 * m as f64 + 64.0);
        }

        #[test]
        fn complement_is_involution(pos in sorted_unique(512, 100)) {
            let b = GapBitmap::from_sorted(&pos, 512);
            prop_assert_eq!(b.complement().complement(), b.clone());
            prop_assert_eq!(b.complement().count(), 512 - b.count());
        }
    }
}
