//! Gap-compressed bitmaps.
//!
//! A set `S ⊆ [0, universe)` is stored as the strictly increasing sequence
//! of its elements, encoded as Elias-gamma codes of the *gaps*: the first
//! element `p₀` as `gamma(p₀ + 1)`, each subsequent element as
//! `gamma(pᵢ − pᵢ₋₁)`. This is the paper's run-length encoding (§1.2): a
//! run of `x` zeros costs `2⌊lg(x+1)⌋ + O(1)` bits, so a bitmap with `m`
//! ones over `[n]` costs `O(m lg(n/m) + m)` bits — within a constant factor
//! of the information-theoretic minimum `lg C(n, m)` (by concavity of `lg`).

use std::sync::OnceLock;

use crate::skip::{SkipDirectory, SKIP_SAMPLE};
use crate::{codes, kernel, swar, BitBuf, BitBufReader, BitSink, BitSource, BitWriter};

/// A compressed bitmap: gamma-coded gaps between consecutive 1-positions.
///
/// The element count and universe size are carried as plain metadata (the
/// paper stores these as node weights in the tree structures); only the gap
/// codes occupy the compressed payload. A [`SkipDirectory`] sampled every
/// [`SKIP_SAMPLE`] elements rides alongside the code stream — filled for
/// free by the encoding constructors, lifted from persisted side extents
/// by the storage layers, or built lazily by one decode pass otherwise —
/// and makes [`Self::contains`], [`Self::rank`], [`Self::select`] and the
/// galloping [`GapCursor`] `O(lg(z/K) + K)` instead of `O(z)`.
#[derive(Debug, Clone, Default)]
pub struct GapBitmap {
    universe: u64,
    count: u64,
    bits: BitBuf,
    /// Lazily materialized skip samples. Excluded from equality: the
    /// directory is derived data, never part of the bitmap's value.
    skip: OnceLock<SkipDirectory>,
}

impl PartialEq for GapBitmap {
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe && self.count == other.count && self.bits == other.bits
    }
}

impl Eq for GapBitmap {}

impl GapBitmap {
    /// An empty bitmap over `[0, universe)`.
    pub fn empty(universe: u64) -> Self {
        GapBitmap {
            universe,
            count: 0,
            bits: BitBuf::new(),
            skip: OnceLock::new(),
        }
    }

    /// Builds from a strictly increasing slice of positions `< universe`.
    ///
    /// # Panics
    /// Panics if positions are not strictly increasing or exceed the
    /// universe.
    pub fn from_sorted(positions: &[u64], universe: u64) -> Self {
        Self::from_sorted_iter(positions.iter().copied(), universe)
    }

    /// Builds from a strictly increasing iterator of positions.
    ///
    /// The payload buffer is pre-reserved from the iterator's size hint
    /// (`Σ gamma_len(gap) ≤ m(2⌈lg(n/m + 1)⌉ + 1)` bits for `m` gaps
    /// summing to at most `n`, by concavity of `lg`), so encoding never
    /// re-allocates when the hint is exact; the skip directory is sampled
    /// during the same pass.
    pub fn from_sorted_iter<I: IntoIterator<Item = u64>>(positions: I, universe: u64) -> Self {
        let iter = positions.into_iter();
        let hint = {
            let (lo, up) = iter.size_hint();
            up.unwrap_or(lo) as u64
        };
        Self::encode_iter(iter, universe, hint)
    }

    /// [`Self::from_sorted_iter`] with an externally known element count
    /// (e.g. the summed slot counts of a canonical cover), for call sites
    /// whose iterators cannot carry an exact size hint.
    pub fn from_sorted_iter_sized<I: IntoIterator<Item = u64>>(
        positions: I,
        universe: u64,
        expected: u64,
    ) -> Self {
        Self::encode_iter(positions.into_iter(), universe, expected)
    }

    /// Worst-case payload bits for `m` gap codes over `[0, universe)`.
    fn reserve_bits(m: u64, universe: u64) -> u64 {
        if m == 0 {
            return 0;
        }
        // ⌈lg(universe/m + 1)⌉ ≤ 64 − leading_zeros(universe/m + 1).
        let lg = u64::from(64 - (universe / m + 1).leading_zeros());
        m * (2 * lg + 1)
    }

    fn encode_iter<I: Iterator<Item = u64>>(iter: I, universe: u64, hint: u64) -> Self {
        let reserved = Self::reserve_bits(hint.min(universe), universe);
        let mut bits = BitBuf::with_capacity(reserved);
        let mut skip = SkipDirectory::new(SKIP_SAMPLE);
        let count = {
            // Word-accumulating writer: each gamma code is one register
            // or-shift, with a word push every ~64 bits, instead of a
            // bounds-checked two-word splice per element.
            let mut w = BitWriter::new(&mut bits);
            let mut enc = GapEncoder::new(&mut w);
            for p in iter {
                assert!(p < universe, "position {p} outside universe {universe}");
                enc.push(p);
                skip.observe(enc.count() - 1, p, enc.bit_pos());
            }
            enc.finish()
        };
        kernel::ENCODE_BULK.add(1);
        // The reservation bound is exact mathematics, not a guess: when
        // the hint matched the stream, encoding must have fit in place.
        debug_assert!(
            count != hint || bits.len() <= reserved,
            "encoded {} bits into a {reserved}-bit reservation for {count} elements",
            bits.len()
        );
        let cell = OnceLock::new();
        let _ = cell.set(skip);
        GapBitmap {
            universe,
            count,
            bits,
            skip: cell,
        }
    }

    /// Builds from an LSB-first word array: bit `64i + j` of the array
    /// (bit `j` of `words[i]`) set means position `base + 64i + j` is in
    /// the set. This is the re-encode half of the dense merge path: one
    /// `trailing_zeros` scan per word instead of a per-element encoder
    /// round trip, with whole words of unit gaps emitted for saturated
    /// words. `base` must be 64-bit aligned; bits at or beyond
    /// `universe - base` must be zero.
    pub fn from_words(words: &[u64], universe: u64) -> Self {
        Self::from_words_span(words, 0, universe)
    }

    /// [`Self::from_words`] over the word-aligned span starting at `base`.
    pub fn from_words_span(words: &[u64], base: u64, universe: u64) -> Self {
        assert!(base.is_multiple_of(64), "span base must be word-aligned");
        let count: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
        let reserved = Self::reserve_bits(count, universe);
        let mut bits = BitBuf::with_capacity(reserved);
        let mut skip = SkipDirectory::new(SKIP_SAMPLE);
        let mut index = 0u64;
        let mut prev: Option<u64> = None;
        let mut sink = BitWriter::new(&mut bits);
        for (i, &word) in words.iter().enumerate() {
            let word_base = base + 64 * i as u64;
            // Saturated word continuing a run: 64 unit gaps, one append.
            if word == u64::MAX && word_base > 0 && prev == Some(word_base - 1) {
                assert!(
                    word_base + 63 < universe,
                    "position {} outside universe {universe}",
                    word_base + 63
                );
                sink.push_bits(u64::MAX, 64);
                // Runs cover every element index, so the sample due in
                // this word (if any) is a fixed offset into it. A 64-bit
                // word is exactly one occupancy bucket: elements before
                // the sample (if any exist) belong to the previous
                // entry's block, elements from the sample on are bit 0 of
                // the new entry, so the summaries stay exactly equal to a
                // per-element encode of the same set.
                let next_sample = index.next_multiple_of(u64::from(SKIP_SAMPLE));
                if next_sample > index {
                    skip.cover(word_base);
                }
                if next_sample < index + 64 {
                    let d = next_sample - index;
                    skip.observe(next_sample, word_base + d, sink.len() - 63 + d);
                }
                prev = Some(word_base + 63);
                index += 64;
                continue;
            }
            let mut w = word;
            while w != 0 {
                let pos = word_base + u64::from(w.trailing_zeros());
                assert!(pos < universe, "position {pos} outside universe {universe}");
                match prev {
                    None => codes::put_gamma(&mut sink, pos + 1),
                    Some(p) => codes::put_gamma(&mut sink, pos - p),
                }
                skip.observe(index, pos, sink.len());
                prev = Some(pos);
                index += 1;
                w &= w - 1;
            }
        }
        sink.finish();
        kernel::REENCODE_BITSET.add(1);
        debug_assert_eq!(index, count);
        debug_assert!(bits.len() <= reserved.max(64));
        let cell = OnceLock::new();
        let _ = cell.set(skip);
        GapBitmap {
            universe,
            count,
            bits,
            skip: cell,
        }
    }

    /// Number of 1s (the paper's *cardinality* of a bitmap, §1.4).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The universe size `n`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Size of the compressed payload in bits.
    pub fn size_bits(&self) -> u64 {
        self.bits.len()
    }

    /// The raw code stream.
    pub fn code_bits(&self) -> &BitBuf {
        &self.bits
    }

    /// Wraps an already-encoded gap code stream.
    ///
    /// `bits` must hold exactly `count` gamma codes in the gap convention
    /// of this type (first element as `gamma(p₀ + 1)`, then gaps), for
    /// strictly increasing positions below `universe`. This is how query
    /// paths that cover a single stored bitmap return it as a whole-word
    /// copy instead of a decode-reencode round trip; debug builds verify
    /// the stream.
    pub fn from_code_bits(bits: BitBuf, count: u64, universe: u64) -> Self {
        let b = GapBitmap {
            universe,
            count,
            bits,
            skip: OnceLock::new(),
        };
        #[cfg(debug_assertions)]
        {
            let mut dec = b.iter();
            let mut prev = None;
            for p in dec.by_ref() {
                debug_assert!(p < universe, "position {p} outside universe {universe}");
                debug_assert!(prev.is_none_or(|q| q < p), "positions not increasing");
                prev = Some(p);
            }
            debug_assert_eq!(
                dec.into_source().bit_pos(),
                b.bits.len(),
                "code stream length mismatch"
            );
        }
        b
    }

    /// [`Self::from_code_bits`] plus a skip directory lifted alongside the
    /// stream (the storage layers persist one per slot; a query covered by
    /// a single stored bitmap copies both verbatim, so the result supports
    /// galloping set operations without a decode pass). Debug builds
    /// verify every sample against a decode of the stream.
    pub fn from_code_bits_indexed(
        bits: BitBuf,
        count: u64,
        universe: u64,
        skip: SkipDirectory,
    ) -> Self {
        let b = Self::from_code_bits(bits, count, universe);
        #[cfg(debug_assertions)]
        {
            let reference = b.build_skip();
            debug_assert!(
                skip.len() <= reference.len()
                    && skip
                        .entries()
                        .iter()
                        .zip(reference.entries())
                        .all(|(s, r)| {
                            // Position and offset must match exactly; the
                            // occupancy word is either the exact summary or 0
                            // ("no information" — how append paths persist
                            // entries whose blocks were still growing).
                            s.pos == r.pos
                                && s.bit_off == r.bit_off
                                && (s.occ == 0 || s.occ == r.occ)
                        }),
                "lifted skip directory disagrees with the stream"
            );
        }
        let _ = b.skip.set(skip);
        b
    }

    /// The skip directory, building it with one decode pass if no
    /// construction or storage path supplied it. CPU-only: the payload is
    /// already in memory.
    pub fn skip_dir(&self) -> &SkipDirectory {
        self.skip.get_or_init(|| self.build_skip())
    }

    fn build_skip(&self) -> SkipDirectory {
        let mut skip = SkipDirectory::new(SKIP_SAMPLE);
        let mut src = self.bits.reader();
        let mut prev = u64::MAX;
        for i in 0..self.count {
            prev = prev.wrapping_add(codes::get_gamma(&mut src));
            skip.observe(i, prev, src.bit_pos());
        }
        skip
    }

    /// A decoder re-seated just past sampled element `rank` (`entry` from
    /// this bitmap's directory), ready to yield element `rank + 1`.
    fn resume_after(
        &self,
        rank: u64,
        entry: crate::skip::SkipEntry,
    ) -> GapDecoder<BitBufReader<'_>> {
        GapDecoder::resume(
            self.bits.reader_at(entry.bit_off),
            self.count - rank - 1,
            entry.pos,
        )
    }

    /// Number of elements strictly below `pos` (`rank₁`), in
    /// `O(lg(z/K) + K)` via the skip directory (linear for directory-less
    /// tiny sets).
    pub fn rank(&self, pos: u64) -> u64 {
        match self.skip_dir().seek(pos) {
            None => {
                // Either the first element exceeds `pos`, or a lifted
                // directory is empty (tiny slot): scan from the start.
                if self.skip_dir().is_empty() {
                    self.iter().take_while(|&p| p < pos).count() as u64
                } else {
                    0
                }
            }
            Some((r, e)) if e.pos >= pos => r,
            Some((r, e)) => {
                let mut rank = r + 1;
                for p in self.resume_after(r, e) {
                    if p >= pos {
                        break;
                    }
                    rank += 1;
                }
                rank
            }
        }
    }

    /// The `k`-th element (0-indexed), or `None` when `k ≥ count`, in
    /// `O(lg(z/K) + K)` via the skip directory (linear for directory-less
    /// tiny sets).
    pub fn select(&self, k: u64) -> Option<u64> {
        if k >= self.count {
            return None;
        }
        let Some((r, e)) = self.skip_dir().seek_rank(k) else {
            return self.iter().nth(k as usize); // empty lifted directory
        };
        if r == k {
            return Some(e.pos);
        }
        self.resume_after(r, e).nth((k - r - 1) as usize)
    }

    /// A galloping cursor over the elements (see [`GapCursor`]).
    pub fn cursor(&self) -> GapCursor<'_> {
        GapCursor {
            bm: self,
            src: self.bits.reader(),
            consumed: 0,
            current: None,
        }
    }

    /// Iterates the 1-positions in increasing order.
    pub fn iter(&self) -> GapDecoder<BitBufReader<'_>> {
        GapDecoder::new(self.bits.reader(), self.count)
    }

    /// Decodes all positions into `out` (cleared first) — the batch
    /// endpoint for query pipelines that materialize results.
    ///
    /// Runs the SWAR window kernel ([`crate::swar`]): every codeword
    /// inside a register-resident 64-bit window is decoded with a shift,
    /// a `leading_zeros` and a shift-extract — one memory load per *word*
    /// of stream instead of per code, runs of unit gaps burst-emitted as
    /// whole slices, and (with the `simd` feature on supporting CPUs) an
    /// `lzcnt`/BMI-compiled clone of the same loop. Codes longer than 64
    /// bits (gaps ≥ 2³²) take a word-scan fallback and re-synchronize the
    /// window.
    ///
    /// An already-materialized skip directory additionally splits the
    /// stream at a recorded resume point and decodes the two halves as
    /// independent, interleaved chains — gamma codes chain serially, so
    /// two dependency chains nearly double one core's decode throughput.
    /// (A directory is never *built* for this: absent one, the decode is
    /// single-chain.)
    pub fn decode_all(&self, out: &mut Vec<u64>) {
        swar::decode_gaps(
            self.bits.words(),
            self.bits.len(),
            self.count,
            self.skip.get(),
            out,
        );
    }

    /// Decodes all positions into a vector.
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.decode_all(&mut out);
        out
    }

    /// Membership test: a directory probe plus at most `K − 1` decoded
    /// codes (`O(lg(z/K) + K)` instead of the pre-directory `O(z)` scan).
    /// When the probed bucket's occupancy bit is clear the probe is
    /// answered absent from the directory alone — zero codes decoded.
    pub fn contains(&self, pos: u64) -> bool {
        if kernel::block_skip_enabled() && self.skip_dir().rules_out(pos) {
            kernel::CONTAINS_BLOCK_SKIP.add(1);
            return false;
        }
        match self.skip_dir().seek(pos) {
            None => {
                // Empty lifted directory (tiny slot): linear scan.
                self.skip_dir().is_empty()
                    && self.iter().take_while(|&p| p <= pos).any(|p| p == pos)
            }
            Some((_, e)) if e.pos == pos => true,
            Some((r, e)) => {
                for p in self.resume_after(r, e) {
                    if p >= pos {
                        return p == pos;
                    }
                }
                false
            }
        }
    }

    /// Appends this bitmap's raw code stream to a sink (used when
    /// concatenating per-node bitmaps into a level stream on disk). A
    /// 64-bit-aligned sink receives a whole-word copy.
    pub fn write_codes_to<S: BitSink>(&self, sink: &mut S) {
        sink.put_bits_bulk(self.bits.words(), self.bits.len());
    }

    /// The complement set over the same universe (used by Theorem 1's
    /// `z > n/2` trick when a materialized complement is required).
    ///
    /// Walks the gap stream run by run: each decoded 1-position closes a
    /// run of complement elements, whose encoding is one gap code followed
    /// by unit gaps — appended as whole words of 1-bits rather than
    /// re-encoding every element through the generic path.
    pub fn complement(&self) -> GapBitmap {
        let universe = self.universe;
        let mut bits = BitBuf::with_capacity(universe - self.count);
        let mut prev: Option<u64> = None;
        {
            let mut sink = BitWriter::new(&mut bits);
            // Emits the complement run [start, end): one gap code to enter
            // the run, then end − start − 1 unit gaps ("1" bits), 64 at a
            // time.
            let emit_run =
                |sink: &mut BitWriter<'_>, prev: &mut Option<u64>, start: u64, end: u64| {
                    if start >= end {
                        return;
                    }
                    match *prev {
                        None => codes::put_gamma(sink, start + 1),
                        Some(p) => codes::put_gamma(sink, start - p),
                    }
                    let mut ones = end - start - 1;
                    while ones > 0 {
                        let k = ones.min(64) as u32;
                        let chunk = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
                        sink.push_bits(chunk, k);
                        ones -= u64::from(k);
                    }
                    *prev = Some(end - 1);
                };
            let mut next_free = 0u64;
            for p in self.iter() {
                emit_run(&mut sink, &mut prev, next_free, p);
                next_free = p + 1;
            }
            emit_run(&mut sink, &mut prev, next_free, universe);
        }
        GapBitmap {
            universe,
            count: universe - self.count,
            bits,
            skip: OnceLock::new(),
        }
    }
}

/// A forward-only cursor with galloping seeks.
///
/// [`Self::next_geq`] is the leapfrog primitive behind RID-set
/// intersection: it returns the smallest element `≥ target` at or after
/// the cursor, using the skip directory to jump over sampled runs of
/// smaller elements (re-seating the decoder at a sample costs one binary
/// search and no decoding), then decoding at most `K − 1` codes linearly.
#[derive(Debug)]
pub struct GapCursor<'a> {
    bm: &'a GapBitmap,
    src: BitBufReader<'a>,
    /// Elements decoded so far (index of the next element to decode).
    consumed: u64,
    /// The element most recently returned.
    current: Option<u64>,
}

impl<'a> GapCursor<'a> {
    /// The element most recently returned, if any.
    pub fn current(&self) -> Option<u64> {
        self.current
    }

    /// Elements decoded so far — the index of the next element
    /// [`Self::next`] would yield (so `current()` is element
    /// `consumed() - 1`).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Re-seats the cursor *at* directory entry `j` (element index
    /// `j · K`), so `current()` returns that sample and decoding resumes
    /// behind it — the block-skipping jump: none of the skipped block's
    /// codes are decoded. Must only move forward (`j · K ≥ consumed − 1`)
    /// and `j` must be in range. Returns the sample's position.
    pub fn seat_at(&mut self, j: usize) -> u64 {
        let dir = self.bm.skip_dir();
        let e = dir.entries()[j];
        let k = u64::from(dir.k());
        debug_assert!(j as u64 * k + 1 >= self.consumed, "cursor never rewinds");
        self.src = self.bm.bits.reader_at(e.bit_off);
        self.consumed = j as u64 * k + 1;
        self.current = Some(e.pos);
        e.pos
    }

    /// Advances to the next element.
    #[allow(clippy::should_implement_trait)] // iterator-like, but `next_geq` is the point
    pub fn next(&mut self) -> Option<u64> {
        if self.consumed >= self.bm.count {
            self.current = None;
            return None;
        }
        let code = codes::get_gamma(&mut self.src);
        let pos = match self.current {
            None if self.consumed == 0 => code - 1,
            None => return None, // exhausted earlier
            Some(p) => p + code,
        };
        self.consumed += 1;
        self.current = Some(pos);
        Some(pos)
    }

    /// The smallest element `≥ target` at or after the cursor (the
    /// current element satisfies the bound without advancing). `None`
    /// exhausts the cursor.
    ///
    /// Short advances stay a plain linear decode: one O(1) probe of the
    /// first sample ahead of the cursor decides whether any directory
    /// jump can reach past the target, so the binary search is paid only
    /// when it is guaranteed to skip at least one sample run.
    pub fn next_geq(&mut self, target: u64) -> Option<u64> {
        if let Some(p) = self.current {
            if p >= target {
                return Some(p);
            }
        } else if self.consumed > 0 {
            return None; // exhausted
        }
        let dir = self.bm.skip_dir();
        let k = u64::from(dir.k());
        // First sample whose jump would advance the cursor.
        let j0 = (self.consumed.div_ceil(k)) as usize;
        if dir.entries().get(j0).is_some_and(|e| e.pos <= target) {
            // Gallop: the latest sample ≤ target, searched only in the
            // still-ahead suffix.
            let ahead = &dir.entries()[j0..];
            let j = j0 + ahead.partition_point(|e| e.pos <= target) - 1;
            let e = dir.entries()[j];
            self.src = self.bm.bits.reader_at(e.bit_off);
            self.consumed = j as u64 * k + 1;
            self.current = Some(e.pos);
            if e.pos >= target {
                return Some(e.pos);
            }
        }
        while let Some(p) = self.next() {
            if p >= target {
                return Some(p);
            }
        }
        None
    }
}

impl<'a> IntoIterator for &'a GapBitmap {
    type Item = u64;
    type IntoIter = GapDecoder<BitBufReader<'a>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Streaming gap encoder over any bit sink.
///
/// Feeds strictly increasing positions; encodes the first as
/// `gamma(p + 1)` and the rest as `gamma(gap)`.
#[derive(Debug)]
pub struct GapEncoder<'a, S: BitSink> {
    sink: &'a mut S,
    prev: Option<u64>,
    count: u64,
}

impl<'a, S: BitSink> GapEncoder<'a, S> {
    /// Starts encoding into `sink`.
    pub fn new(sink: &'a mut S) -> Self {
        GapEncoder {
            sink,
            prev: None,
            count: 0,
        }
    }

    /// Appends the next position (must exceed the previous one).
    pub fn push(&mut self, pos: u64) {
        match self.prev {
            None => codes::put_gamma(self.sink, pos + 1),
            Some(prev) => {
                assert!(
                    pos > prev,
                    "positions must be strictly increasing ({prev} then {pos})"
                );
                codes::put_gamma(self.sink, pos - prev);
            }
        }
        self.prev = Some(pos);
        self.count += 1;
    }

    /// Number of positions encoded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sink's current bit position (used by skip-directory samplers,
    /// which record the offset just past each sampled codeword).
    pub fn bit_pos(&self) -> u64 {
        self.sink.bit_pos()
    }

    /// Last position encoded, if any.
    pub fn last(&self) -> Option<u64> {
        self.prev
    }

    /// Finishes, returning the number of positions encoded.
    pub fn finish(self) -> u64 {
        self.count
    }
}

/// Streaming gap decoder over any bit source.
///
/// The element count is external metadata (stored as node weights by the
/// index structures), so the decoder is told how many codes to consume.
#[derive(Debug)]
pub struct GapDecoder<S: BitSource> {
    src: S,
    remaining: u64,
    prev: Option<u64>,
}

impl<S: BitSource> GapDecoder<S> {
    /// Decodes `count` positions from `src`.
    pub fn new(src: S, count: u64) -> Self {
        crate::kernel::DECODE_SCALAR.add(1);
        GapDecoder {
            src,
            remaining: count,
            prev: None,
        }
    }

    /// Resumes decoding mid-stream: `src` must sit just past the code of
    /// an element whose value was `prev`, with `remaining` codes left —
    /// exactly what a [`crate::skip::SkipEntry`] records. This is the
    /// directory-assisted seek: the skipped prefix is neither decoded nor
    /// (for charged sources) read.
    pub fn resume(src: S, remaining: u64, prev: u64) -> Self {
        GapDecoder {
            src,
            remaining,
            prev: Some(prev),
        }
    }

    /// Positions not yet decoded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Decodes up to `out.len()` positions into `out`, returning how many
    /// were written. The loop body is a plain gamma decode plus an add —
    /// no `Option`, no per-element trait dispatch — so the compiler keeps
    /// the running position and the source cursor in registers.
    pub fn next_batch(&mut self, out: &mut [u64]) -> usize {
        let n = self.remaining.min(out.len() as u64) as usize;
        let mut prev = match self.prev {
            Some(p) => p,
            None => {
                if n == 0 {
                    return 0;
                }
                out[0] = codes::get_gamma(&mut self.src) - 1;
                out[0]
            }
        };
        let start = usize::from(self.prev.is_none());
        for slot in &mut out[start..n] {
            prev += codes::get_gamma(&mut self.src);
            *slot = prev;
        }
        if n > 0 {
            self.prev = Some(prev);
        }
        self.remaining -= n as u64;
        n
    }

    /// Consumes the decoder, returning the underlying source positioned
    /// just past the last consumed code.
    pub fn into_source(self) -> S {
        self.src
    }
}

impl<S: BitSource> Iterator for GapDecoder<S> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let code = codes::get_gamma(&mut self.src);
        let pos = match self.prev {
            None => code - 1,
            Some(prev) => prev + code,
        };
        self.prev = Some(pos);
        Some(pos)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining as usize;
        (r, Some(r))
    }

    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, u64) -> B,
    {
        // Internal iteration (`sum`, `for_each`, `collect` via extend):
        // the count is known, so decode in a plain counted loop with no
        // per-element `Option` round trip.
        let mut src = self.src;
        let mut acc = init;
        let mut prev = self.prev;
        for _ in 0..self.remaining {
            let code = codes::get_gamma(&mut src);
            let pos = match prev {
                None => code - 1,
                Some(p) => p + code,
            };
            prev = Some(pos);
            acc = f(acc, pos);
        }
        acc
    }
}

impl<S: BitSource> ExactSizeIterator for GapDecoder<S> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_bitmap_has_no_bits() {
        let b = GapBitmap::empty(100);
        assert_eq!(b.count(), 0);
        assert_eq!(b.size_bits(), 0);
        assert_eq!(b.to_vec(), Vec::<u64>::new());
        assert!(!b.contains(5));
    }

    #[test]
    fn roundtrip_simple() {
        let pos = vec![0u64, 1, 5, 100, 101, 8191];
        let b = GapBitmap::from_sorted(&pos, 8192);
        assert_eq!(b.count(), 6);
        assert_eq!(b.to_vec(), pos);
        assert!(b.contains(100));
        assert!(!b.contains(99));
    }

    #[test]
    fn first_position_zero_is_representable() {
        let b = GapBitmap::from_sorted(&[0], 1);
        assert_eq!(b.to_vec(), vec![0]);
        assert_eq!(b.size_bits(), 1); // gamma(1) = "1"
    }

    #[test]
    fn size_tracks_information_bound() {
        // m evenly spaced ones over [n]: size should be O(m lg(n/m) + m).
        let n = 1u64 << 16;
        let m = 1u64 << 8;
        let step = n / m;
        let b = GapBitmap::from_sorted_iter((0..m).map(|i| i * step), n);
        let bound = psi_io::cost::output_bits(n, m); // m lg(n/m)
        assert!(
            b.size_bits() as f64 <= 2.0 * bound + 2.0 * m as f64,
            "size {} exceeds 2*bound {} + 2m",
            b.size_bits(),
            bound
        );
    }

    #[test]
    fn dense_bitmap_is_linear_not_loglinear() {
        // All n positions set: every gap is 1, one bit each.
        let n = 1000u64;
        let b = GapBitmap::from_sorted_iter(0..n, n);
        assert_eq!(b.size_bits(), n); // gamma(1) = 1 bit per element
    }

    #[test]
    fn complement_roundtrip() {
        let b = GapBitmap::from_sorted(&[1, 3, 5], 7);
        assert_eq!(b.complement().to_vec(), vec![0, 2, 4, 6]);
        assert_eq!(b.complement().complement().to_vec(), b.to_vec());
        let full = GapBitmap::from_sorted_iter(0..5, 5);
        assert!(full.complement().is_empty());
    }

    #[test]
    fn write_codes_to_concatenates_verbatim() {
        let a = GapBitmap::from_sorted(&[2, 9], 16);
        let b = GapBitmap::from_sorted(&[0, 15], 16);
        let mut stream = BitBuf::new();
        a.write_codes_to(&mut stream);
        let a_end = stream.len();
        b.write_codes_to(&mut stream);
        // Decode both back out of the concatenated stream.
        let mut dec = GapDecoder::new(stream.reader(), 2);
        assert_eq!(dec.by_ref().collect::<Vec<_>>(), vec![2, 9]);
        let src = dec.into_source();
        assert_eq!(src.bit_pos(), a_end);
        let dec2 = GapDecoder::new(src, 2);
        assert_eq!(dec2.collect::<Vec<_>>(), vec![0, 15]);
    }

    #[test]
    fn huge_gaps_take_the_long_code_path() {
        // Gaps ≥ 2³² produce gamma codes longer than 64 bits, which the
        // word-window decoder must route through the cursor fallback.
        let positions = vec![3u64, 1 << 33, (1 << 33) + 1, 1 << 62];
        let b = GapBitmap::from_sorted(&positions, (1 << 62) + 1);
        assert_eq!(b.to_vec(), positions);
        let mut batch = [0u64; 2];
        let mut dec = b.iter();
        assert_eq!(dec.next_batch(&mut batch), 2);
        assert_eq!(batch, [3, 1 << 33]);
        assert_eq!(dec.next_batch(&mut batch), 2);
        assert_eq!(batch, [(1 << 33) + 1, 1 << 62]);
        assert_eq!(dec.next_batch(&mut batch), 0);
    }

    #[test]
    fn from_code_bits_wraps_stream_verbatim() {
        let original = GapBitmap::from_sorted(&[1, 4, 9, 100], 128);
        let mut copy = BitBuf::new();
        original.write_codes_to(&mut copy);
        let rebuilt = GapBitmap::from_code_bits(copy, original.count(), original.universe());
        assert_eq!(rebuilt, original);
        assert_eq!(rebuilt.to_vec(), vec![1, 4, 9, 100]);
    }

    #[test]
    fn decode_all_reuses_buffer() {
        let a = GapBitmap::from_sorted(&[5, 10], 20);
        let b = GapBitmap::from_sorted(&[1], 20);
        let mut out = vec![999; 7];
        a.decode_all(&mut out);
        assert_eq!(out, vec![5, 10]);
        b.decode_all(&mut out);
        assert_eq!(out, vec![1]);
        GapBitmap::empty(20).decode_all(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn decode_all_handles_runs_across_word_boundaries() {
        // 120 consecutive positions: the gap-1 burst path must carry runs
        // across 64-bit window reloads.
        let positions: Vec<u64> = (7..127).collect();
        let b = GapBitmap::from_sorted(&positions, 200);
        assert_eq!(b.to_vec(), positions);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_positions_rejected() {
        let _ = GapBitmap::from_sorted(&[5, 5], 10);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn position_outside_universe_rejected() {
        let _ = GapBitmap::from_sorted(&[10], 10);
    }

    #[test]
    fn encode_paths_prefill_the_skip_directory() {
        let positions: Vec<u64> = (0..300u64).map(|i| i * 11).collect();
        let b = GapBitmap::from_sorted(&positions, 4096);
        // 300 elements at K = 64: samples at indices 0, 64, 128, 192, 256.
        assert_eq!(b.skip_dir().len(), 5);
        assert_eq!(b.skip_dir().entries()[0].pos, 0);
        assert_eq!(b.skip_dir().entries()[1].pos, 64 * 11);
        // Lazy build (verbatim wrap drops the directory) agrees exactly.
        let mut copy = BitBuf::new();
        b.write_codes_to(&mut copy);
        let wrapped = GapBitmap::from_code_bits(copy, b.count(), b.universe());
        assert_eq!(wrapped.skip_dir(), b.skip_dir());
    }

    #[test]
    fn rank_select_contains_match_naive() {
        let positions: Vec<u64> = (0..500u64)
            .map(|i| i * i % 9973)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let b = GapBitmap::from_sorted(&positions, 10_000);
        for q in (0..10_000).step_by(131) {
            let naive_rank = positions.iter().filter(|&&p| p < q).count() as u64;
            assert_eq!(b.rank(q), naive_rank, "rank({q})");
            assert_eq!(b.contains(q), positions.binary_search(&q).is_ok());
        }
        for (k, &p) in positions.iter().enumerate() {
            assert_eq!(b.select(k as u64), Some(p));
            assert_eq!(b.rank(p), k as u64);
            assert!(b.contains(p));
        }
        assert_eq!(b.select(positions.len() as u64), None);
        assert_eq!(b.rank(0), 0);
    }

    #[test]
    fn cursor_gallops_and_degrades_to_linear() {
        let positions: Vec<u64> = (0..1000u64).map(|i| i * 7).collect();
        let b = GapBitmap::from_sorted(&positions, 7001);
        let mut c = b.cursor();
        assert_eq!(c.next(), Some(0));
        assert_eq!(c.next_geq(0), Some(0), "current element satisfies bound");
        assert_eq!(c.next_geq(6500), Some(6503), "gallops over ~900 elements");
        assert_eq!(c.next(), Some(6510));
        assert_eq!(c.next_geq(6511), Some(6517), "linear within a sample run");
        assert_eq!(c.next_geq(1), Some(6517), "cursor never rewinds");
        assert_eq!(c.next_geq(99_999), None);
        assert_eq!(c.next(), None, "exhausted cursor stays exhausted");
    }

    #[test]
    fn from_words_matches_from_sorted() {
        let positions: Vec<u64> = vec![0, 1, 5, 63, 64, 65, 200, 511];
        let mut words = vec![0u64; 8];
        for &p in &positions {
            words[(p / 64) as usize] |= 1 << (p % 64);
        }
        let b = GapBitmap::from_words(&words, 512);
        assert_eq!(b, GapBitmap::from_sorted(&positions, 512));
        assert_eq!(b.to_vec(), positions);
        assert!(GapBitmap::from_words(&[], 0).is_empty());
    }

    #[test]
    fn from_words_dense_run_takes_word_appends() {
        // 512 consecutive positions: words 1..7 are saturated and must go
        // through the whole-word unit-gap path, samples included.
        let positions: Vec<u64> = (37..549).collect();
        let mut words = vec![0u64; 9];
        for &p in &positions {
            words[(p / 64) as usize] |= 1 << (p % 64);
        }
        let b = GapBitmap::from_words(&words, 576);
        let reference = GapBitmap::from_sorted(&positions, 576);
        assert_eq!(b, reference);
        assert_eq!(b.skip_dir(), reference.skip_dir());
    }

    #[test]
    fn from_words_span_offsets_the_scan() {
        let base = 128u64;
        let positions: Vec<u64> = vec![130, 190, 191, 300];
        let mut words = vec![0u64; 3];
        for &p in &positions {
            words[((p - base) / 64) as usize] |= 1 << ((p - base) % 64);
        }
        let b = GapBitmap::from_words_span(&words, base, 400);
        assert_eq!(b.to_vec(), positions);
        assert_eq!(b.universe(), 400);
    }

    #[test]
    fn from_code_bits_indexed_carries_the_directory() {
        let original = GapBitmap::from_sorted_iter((0..200u64).map(|i| 3 * i), 600);
        let mut copy = BitBuf::new();
        original.write_codes_to(&mut copy);
        let dir = original.skip_dir().clone();
        let rebuilt =
            GapBitmap::from_code_bits_indexed(copy, original.count(), original.universe(), dir);
        assert_eq!(rebuilt, original);
        assert_eq!(rebuilt.skip_dir(), original.skip_dir());
        assert!(rebuilt.contains(597) && !rebuilt.contains(598));
    }

    #[test]
    fn truncated_directory_stays_correct() {
        // A directory cut off mid-stream (persisted slack exhausted) must
        // still answer correctly via its linear tail.
        let positions: Vec<u64> = (0..400u64).map(|i| 5 * i).collect();
        let full = GapBitmap::from_sorted(&positions, 2000);
        let mut copy = BitBuf::new();
        full.write_codes_to(&mut copy);
        let truncated = crate::skip::SkipDirectory::from_entries(
            crate::SKIP_SAMPLE,
            full.skip_dir().entries()[..2].to_vec(),
        );
        let b = GapBitmap::from_code_bits_indexed(copy, full.count(), full.universe(), truncated);
        assert_eq!(b.select(399), Some(1995));
        assert_eq!(b.rank(1996), 400);
        assert!(b.contains(1000) && !b.contains(1001));
    }

    #[test]
    fn from_sorted_iter_reservation_is_tight() {
        // Exact size hint: the reservation must absorb the whole stream.
        let positions: Vec<u64> = (0..10_000u64).map(|i| i * 97).collect();
        let b = GapBitmap::from_sorted_iter(positions.iter().copied(), 97 * 10_000);
        assert_eq!(b.count(), 10_000);
        assert!(b.code_bits().capacity_bits() >= b.size_bits());
        // Sized constructor with the count known out of band.
        let sized = GapBitmap::from_sorted_iter_sized(
            positions.iter().copied().filter(|_| true),
            97 * 10_000,
            10_000,
        );
        assert_eq!(sized, b);
    }

    fn sorted_unique(max: u64, len: usize) -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::btree_set(0..max, 0..len)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn roundtrip_random_sets(pos in sorted_unique(1 << 20, 300)) {
            let b = GapBitmap::from_sorted(&pos, 1 << 20);
            prop_assert_eq!(b.to_vec(), pos.clone());
            prop_assert_eq!(b.count() as usize, pos.len());
        }

        #[test]
        fn size_within_constant_of_entropy(pos in sorted_unique(1 << 16, 200)) {
            prop_assume!(!pos.is_empty());
            let n = 1u64 << 16;
            let b = GapBitmap::from_sorted(&pos, n);
            let m = pos.len() as u64;
            // lg C(n, m) lower bound; gamma-gap coding is within ~2x + O(m).
            let bound = psi_io::cost::lg_binomial(n, m);
            prop_assert!((b.size_bits() as f64) <= 2.0 * bound + 3.0 * m as f64 + 64.0);
        }

        #[test]
        fn complement_is_involution(pos in sorted_unique(512, 100)) {
            let b = GapBitmap::from_sorted(&pos, 512);
            prop_assert_eq!(b.complement().complement(), b.clone());
            prop_assert_eq!(b.complement().count(), 512 - b.count());
        }

        #[test]
        fn directory_ops_match_full_decode(pos in sorted_unique(1 << 14, 400)) {
            let b = GapBitmap::from_sorted(&pos, 1 << 14);
            for q in (0..(1u64 << 14)).step_by(509) {
                let naive = pos.iter().filter(|&&p| p < q).count() as u64;
                prop_assert_eq!(b.rank(q), naive);
                prop_assert_eq!(b.contains(q), pos.binary_search(&q).is_ok());
            }
            for (k, &p) in pos.iter().enumerate() {
                prop_assert_eq!(b.select(k as u64), Some(p));
            }
            prop_assert_eq!(b.select(pos.len() as u64), None);
            // next_geq sweeps forward exactly like a filtered scan.
            let mut c = b.cursor();
            let mut targets: Vec<u64> = pos.iter().map(|&p| p.saturating_sub(1)).collect();
            targets.sort_unstable();
            let mut expect = pos.iter().copied().peekable();
            for t in targets {
                while expect.peek().is_some_and(|&p| p < t) { expect.next(); }
                prop_assert_eq!(c.next_geq(t), expect.peek().copied());
            }
        }
    }
}
