//! Gap-compressed bitmaps.
//!
//! A set `S ⊆ [0, universe)` is stored as the strictly increasing sequence
//! of its elements, encoded as Elias-gamma codes of the *gaps*: the first
//! element `p₀` as `gamma(p₀ + 1)`, each subsequent element as
//! `gamma(pᵢ − pᵢ₋₁)`. This is the paper's run-length encoding (§1.2): a
//! run of `x` zeros costs `2⌊lg(x+1)⌋ + O(1)` bits, so a bitmap with `m`
//! ones over `[n]` costs `O(m lg(n/m) + m)` bits — within a constant factor
//! of the information-theoretic minimum `lg C(n, m)` (by concavity of `lg`).

use crate::{codes, BitBuf, BitBufReader, BitSink, BitSource};

/// A compressed bitmap: gamma-coded gaps between consecutive 1-positions.
///
/// The element count and universe size are carried as plain metadata (the
/// paper stores these as node weights in the tree structures); only the gap
/// codes occupy the compressed payload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GapBitmap {
    universe: u64,
    count: u64,
    bits: BitBuf,
}

impl GapBitmap {
    /// An empty bitmap over `[0, universe)`.
    pub fn empty(universe: u64) -> Self {
        GapBitmap { universe, count: 0, bits: BitBuf::new() }
    }

    /// Builds from a strictly increasing slice of positions `< universe`.
    ///
    /// # Panics
    /// Panics if positions are not strictly increasing or exceed the
    /// universe.
    pub fn from_sorted(positions: &[u64], universe: u64) -> Self {
        Self::from_sorted_iter(positions.iter().copied(), universe)
    }

    /// Builds from a strictly increasing iterator of positions.
    pub fn from_sorted_iter<I: IntoIterator<Item = u64>>(positions: I, universe: u64) -> Self {
        let mut bits = BitBuf::new();
        let mut enc = GapEncoder::new(&mut bits);
        for p in positions {
            assert!(p < universe, "position {p} outside universe {universe}");
            enc.push(p);
        }
        let count = enc.finish();
        GapBitmap { universe, count, bits }
    }

    /// Number of 1s (the paper's *cardinality* of a bitmap, §1.4).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The universe size `n`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Size of the compressed payload in bits.
    pub fn size_bits(&self) -> u64 {
        self.bits.len()
    }

    /// The raw code stream.
    pub fn code_bits(&self) -> &BitBuf {
        &self.bits
    }

    /// Iterates the 1-positions in increasing order.
    pub fn iter(&self) -> GapDecoder<BitBufReader<'_>> {
        GapDecoder::new(self.bits.reader(), self.count)
    }

    /// Decodes all positions into a vector.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Membership test by scanning (O(count); intended for tests and small
    /// sets — the index structures never need random membership).
    pub fn contains(&self, pos: u64) -> bool {
        self.iter().take_while(|&p| p <= pos).any(|p| p == pos)
    }

    /// Appends this bitmap's raw code stream to a sink (used when
    /// concatenating per-node bitmaps into a level stream on disk).
    pub fn write_codes_to<S: BitSink>(&self, sink: &mut S) {
        let mut pos = 0;
        let mut remaining = self.bits.len();
        while remaining > 0 {
            let k = remaining.min(64) as u32;
            sink.put_bits(self.bits.get_bits_at(pos, k), k);
            pos += u64::from(k);
            remaining -= u64::from(k);
        }
    }

    /// The complement set over the same universe (used by Theorem 1's
    /// `z > n/2` trick when a materialized complement is required).
    pub fn complement(&self) -> GapBitmap {
        let mut inside = self.iter().peekable();
        let universe = self.universe;
        let iter = (0..universe).filter(move |&p| {
            while let Some(&q) = inside.peek() {
                if q < p {
                    inside.next();
                } else {
                    return q != p;
                }
            }
            true
        });
        GapBitmap::from_sorted_iter(iter, universe)
    }
}

impl<'a> IntoIterator for &'a GapBitmap {
    type Item = u64;
    type IntoIter = GapDecoder<BitBufReader<'a>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Streaming gap encoder over any bit sink.
///
/// Feeds strictly increasing positions; encodes the first as
/// `gamma(p + 1)` and the rest as `gamma(gap)`.
#[derive(Debug)]
pub struct GapEncoder<'a, S: BitSink> {
    sink: &'a mut S,
    prev: Option<u64>,
    count: u64,
}

impl<'a, S: BitSink> GapEncoder<'a, S> {
    /// Starts encoding into `sink`.
    pub fn new(sink: &'a mut S) -> Self {
        GapEncoder { sink, prev: None, count: 0 }
    }

    /// Appends the next position (must exceed the previous one).
    pub fn push(&mut self, pos: u64) {
        match self.prev {
            None => codes::put_gamma(self.sink, pos + 1),
            Some(prev) => {
                assert!(pos > prev, "positions must be strictly increasing ({prev} then {pos})");
                codes::put_gamma(self.sink, pos - prev);
            }
        }
        self.prev = Some(pos);
        self.count += 1;
    }

    /// Number of positions encoded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Last position encoded, if any.
    pub fn last(&self) -> Option<u64> {
        self.prev
    }

    /// Finishes, returning the number of positions encoded.
    pub fn finish(self) -> u64 {
        self.count
    }
}

/// Streaming gap decoder over any bit source.
///
/// The element count is external metadata (stored as node weights by the
/// index structures), so the decoder is told how many codes to consume.
#[derive(Debug)]
pub struct GapDecoder<S: BitSource> {
    src: S,
    remaining: u64,
    prev: Option<u64>,
}

impl<S: BitSource> GapDecoder<S> {
    /// Decodes `count` positions from `src`.
    pub fn new(src: S, count: u64) -> Self {
        GapDecoder { src, remaining: count, prev: None }
    }

    /// Positions not yet decoded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Consumes the decoder, returning the underlying source positioned
    /// just past the last consumed code.
    pub fn into_source(self) -> S {
        self.src
    }
}

impl<S: BitSource> Iterator for GapDecoder<S> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let code = codes::get_gamma(&mut self.src);
        let pos = match self.prev {
            None => code - 1,
            Some(prev) => prev + code,
        };
        self.prev = Some(pos);
        Some(pos)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining as usize;
        (r, Some(r))
    }
}

impl<S: BitSource> ExactSizeIterator for GapDecoder<S> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_bitmap_has_no_bits() {
        let b = GapBitmap::empty(100);
        assert_eq!(b.count(), 0);
        assert_eq!(b.size_bits(), 0);
        assert_eq!(b.to_vec(), Vec::<u64>::new());
        assert!(!b.contains(5));
    }

    #[test]
    fn roundtrip_simple() {
        let pos = vec![0u64, 1, 5, 100, 101, 8191];
        let b = GapBitmap::from_sorted(&pos, 8192);
        assert_eq!(b.count(), 6);
        assert_eq!(b.to_vec(), pos);
        assert!(b.contains(100));
        assert!(!b.contains(99));
    }

    #[test]
    fn first_position_zero_is_representable() {
        let b = GapBitmap::from_sorted(&[0], 1);
        assert_eq!(b.to_vec(), vec![0]);
        assert_eq!(b.size_bits(), 1); // gamma(1) = "1"
    }

    #[test]
    fn size_tracks_information_bound() {
        // m evenly spaced ones over [n]: size should be O(m lg(n/m) + m).
        let n = 1u64 << 16;
        let m = 1u64 << 8;
        let step = n / m;
        let b = GapBitmap::from_sorted_iter((0..m).map(|i| i * step), n);
        let bound = psi_io::cost::output_bits(n, m); // m lg(n/m)
        assert!(b.size_bits() as f64 <= 2.0 * bound + 2.0 * m as f64,
            "size {} exceeds 2*bound {} + 2m", b.size_bits(), bound);
    }

    #[test]
    fn dense_bitmap_is_linear_not_loglinear() {
        // All n positions set: every gap is 1, one bit each.
        let n = 1000u64;
        let b = GapBitmap::from_sorted_iter(0..n, n);
        assert_eq!(b.size_bits(), n); // gamma(1) = 1 bit per element
    }

    #[test]
    fn complement_roundtrip() {
        let b = GapBitmap::from_sorted(&[1, 3, 5], 7);
        assert_eq!(b.complement().to_vec(), vec![0, 2, 4, 6]);
        assert_eq!(b.complement().complement().to_vec(), b.to_vec());
        let full = GapBitmap::from_sorted_iter(0..5, 5);
        assert!(full.complement().is_empty());
    }

    #[test]
    fn write_codes_to_concatenates_verbatim() {
        let a = GapBitmap::from_sorted(&[2, 9], 16);
        let b = GapBitmap::from_sorted(&[0, 15], 16);
        let mut stream = BitBuf::new();
        a.write_codes_to(&mut stream);
        let a_end = stream.len();
        b.write_codes_to(&mut stream);
        // Decode both back out of the concatenated stream.
        let mut dec = GapDecoder::new(stream.reader(), 2);
        assert_eq!(dec.by_ref().collect::<Vec<_>>(), vec![2, 9]);
        let src = dec.into_source();
        assert_eq!(src.bit_pos(), a_end);
        let dec2 = GapDecoder::new(src, 2);
        assert_eq!(dec2.collect::<Vec<_>>(), vec![0, 15]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_positions_rejected() {
        let _ = GapBitmap::from_sorted(&[5, 5], 10);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn position_outside_universe_rejected() {
        let _ = GapBitmap::from_sorted(&[10], 10);
    }

    fn sorted_unique(max: u64, len: usize) -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::btree_set(0..max, 0..len)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn roundtrip_random_sets(pos in sorted_unique(1 << 20, 300)) {
            let b = GapBitmap::from_sorted(&pos, 1 << 20);
            prop_assert_eq!(b.to_vec(), pos.clone());
            prop_assert_eq!(b.count() as usize, pos.len());
        }

        #[test]
        fn size_within_constant_of_entropy(pos in sorted_unique(1 << 16, 200)) {
            prop_assume!(!pos.is_empty());
            let n = 1u64 << 16;
            let b = GapBitmap::from_sorted(&pos, n);
            let m = pos.len() as u64;
            // lg C(n, m) lower bound; gamma-gap coding is within ~2x + O(m).
            let bound = psi_io::cost::lg_binomial(n, m);
            prop_assert!((b.size_bits() as f64) <= 2.0 * bound + 3.0 * m as f64 + 64.0);
        }

        #[test]
        fn complement_is_involution(pos in sorted_unique(512, 100)) {
            let b = GapBitmap::from_sorted(&pos, 512);
            prop_assert_eq!(b.complement().complement(), b.clone());
            prop_assert_eq!(b.complement().count(), 512 - b.count());
        }
    }
}
