//! Differential tests: every word-level fast path must agree bit-for-bit
//! with the bit-by-bit reference decoders, for random streams at **all 64
//! start-bit alignments**, including codewords straddling word and buffer
//! boundaries.
//!
//! The word-level paths under test:
//! * [`codes::get_gamma`] / [`codes::get_delta`] — `peek_word` +
//!   `leading_zeros` single-shift extraction with cursor fallback;
//! * [`BitSource::get_unary`] — the word-scan overrides of
//!   [`BitBufReader`] and `DiskReader`;
//! * [`GapBitmap::decode_all`] / [`GapDecoder::next_batch`] — batched
//!   decoding (register-resident window, run bursts);
//! * [`BitBuf::extend_from`] / [`GapBitmap::write_codes_to`] /
//!   `DiskWriter::write_bulk` — whole-word copies at every alignment.
//!
//! The references are [`codes::get_gamma_reference`],
//! [`codes::get_delta_reference`] and [`codes::get_unary_reference`],
//! which touch nothing but `get_bit`/`get_bits`.

use proptest::prelude::*;
use psi_bits::{codes, BitBuf, BitSink, BitSource, GapBitmap, GapDecoder};
use psi_io::{Disk, IoConfig, IoSession};

/// Pads a buffer with `align` junk bits (alternating, worst case for
/// accidental run detection) so the stream under test starts mid-word.
fn pad(align: u32) -> BitBuf {
    let mut b = BitBuf::new();
    for i in 0..align {
        b.push_bit(i % 2 == 0);
    }
    b
}

/// Values spanning 1-bit to >64-bit gamma codes, including codewords that
/// straddle word boundaries at every alignment.
fn gamma_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u32..62).prop_map(|shift| 1u64 << shift), 1..40).prop_map(|bases| {
        // Mix exact powers (longest runs of zeros) with offsets around them.
        bases
            .into_iter()
            .enumerate()
            .map(|(i, b)| b + (i as u64 % 3))
            .collect()
    })
}

proptest! {
    #[test]
    fn gamma_fast_equals_reference_at_all_alignments(xs in gamma_values()) {
        for align in 0..64u32 {
            let mut b = pad(align);
            for &x in &xs {
                codes::put_gamma(&mut b, x);
            }
            let mut fast = b.reader_at(u64::from(align));
            let mut reference = b.reader_at(u64::from(align));
            for &x in &xs {
                prop_assert_eq!(codes::get_gamma(&mut fast), x, "align {}", align);
                prop_assert_eq!(codes::get_gamma_reference(&mut reference), x);
                prop_assert_eq!(fast.bit_pos(), reference.bit_pos(), "cursor drift at align {}", align);
            }
            prop_assert_eq!(fast.bit_pos(), b.len());
        }
    }

    #[test]
    fn delta_fast_equals_reference_at_all_alignments(xs in gamma_values()) {
        for align in [0u32, 1, 7, 31, 32, 33, 62, 63] {
            let mut b = pad(align);
            for &x in &xs {
                codes::put_delta(&mut b, x);
            }
            let mut fast = b.reader_at(u64::from(align));
            let mut reference = b.reader_at(u64::from(align));
            for &x in &xs {
                prop_assert_eq!(codes::get_delta(&mut fast), x, "align {}", align);
                prop_assert_eq!(codes::get_delta_reference(&mut reference), x);
                prop_assert_eq!(fast.bit_pos(), reference.bit_pos());
            }
        }
    }

    #[test]
    fn unary_word_scan_equals_reference(runs in proptest::collection::vec(0u32..200, 1..30)) {
        for align in [0u32, 1, 63] {
            let mut b = pad(align);
            for &r in &runs {
                b.push_bits(0, r % 65);
                for _ in 0..r / 65 {
                    b.push_bits(0, 64);
                }
                b.push_bit(true);
            }
            let mut fast = b.reader_at(u64::from(align));
            let mut reference = b.reader_at(u64::from(align));
            for _ in &runs {
                prop_assert_eq!(fast.get_unary(), codes::get_unary_reference(&mut reference));
                prop_assert_eq!(fast.bit_pos(), reference.bit_pos());
            }
        }
    }

    #[test]
    fn disk_fast_paths_equal_buffer_reference(xs in gamma_values(), align in 0u32..64) {
        // The same stream on the simulated disk: DiskReader's peek/consume
        // fast path must agree with the in-memory reference, and the I/O
        // accounting must match the cursor path bit for bit.
        let mut disk = Disk::new(IoConfig::with_block_bits(256));
        let ext = disk.alloc();
        let session = IoSession::untracked();
        let mut b = pad(align);
        {
            let mut w = disk.writer(ext, &session);
            for i in 0..align {
                w.write_bit(i % 2 == 0);
            }
            for &x in &xs {
                codes::put_gamma(&mut w, x);
                codes::put_gamma(&mut b, x);
            }
        }
        let fast_io = IoSession::new();
        let mut fast = disk.reader(ext, u64::from(align), &fast_io);
        let mut reference = b.reader_at(u64::from(align));
        for &x in &xs {
            prop_assert_eq!(codes::get_gamma(&mut fast), x);
            prop_assert_eq!(codes::get_gamma_reference(&mut reference), x);
            prop_assert_eq!(fast.bit_pos(), reference.bit_pos());
        }
        // Same bits consumed ⇒ same bits charged.
        prop_assert_eq!(fast_io.stats().bits_read, b.len() - u64::from(align));
    }

    #[test]
    fn decode_all_equals_reference_decoder(
        gaps in proptest::collection::vec(1u64..5_000, 0..300),
        dense_run in 0u64..200,
    ) {
        // Interleave arbitrary gaps with a dense run (gap-1 burst path).
        let mut positions = Vec::new();
        let mut p = 0u64;
        for (i, &g) in gaps.iter().enumerate() {
            p += g;
            positions.push(p);
            if i == gaps.len() / 2 {
                for _ in 0..dense_run {
                    p += 1;
                    positions.push(p);
                }
            }
        }
        let universe = p + 1;
        let gap_bitmap = GapBitmap::from_sorted(&positions, universe.max(1));
        // Reference: bit-by-bit decode of the same stream.
        let mut reference = Vec::new();
        {
            let mut r = gap_bitmap.code_bits().reader();
            let mut prev: Option<u64> = None;
            for _ in 0..gap_bitmap.count() {
                let code = codes::get_gamma_reference(&mut r);
                let pos = match prev { None => code - 1, Some(q) => q + code };
                prev = Some(pos);
                reference.push(pos);
            }
        }
        let mut batched = Vec::new();
        gap_bitmap.decode_all(&mut batched);
        prop_assert_eq!(&batched, &reference);
        prop_assert_eq!(&batched, &positions);
        // next_batch in uneven chunks agrees too.
        let mut chunked = Vec::new();
        let mut dec = gap_bitmap.iter();
        let mut buf = [0u64; 7];
        loop {
            let n = dec.next_batch(&mut buf);
            if n == 0 {
                break;
            }
            chunked.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(&chunked, &positions);
    }

    #[test]
    fn chained_decode_equals_reference_with_directory(
        small in proptest::collection::vec(1u64..300, 512..600),
        huge in proptest::collection::vec((1u64 << 32)..(1u64 << 55), 2..5),
        huge_at in 1usize..500,
    ) {
        // ≥ 512 elements with a materialized directory: decode_all splits
        // at a recorded resume point and runs interleaved chains, whose
        // windows land at arbitrary bit alignments. The huge gaps force
        // >64-bit codewords (word-scan fallback) straddling word
        // boundaries, placed anywhere relative to the split.
        let mut positions = Vec::with_capacity(small.len() + huge.len());
        let mut p = 0u64;
        for (i, &g) in small.iter().enumerate() {
            p += g;
            positions.push(p);
            if i == huge_at {
                for &h in &huge {
                    p += h;
                    positions.push(p);
                }
            }
        }
        let b = GapBitmap::from_sorted(&positions, p + 1);
        let _ = b.skip_dir(); // materialize → multi-chain decode
        let mut reference = Vec::new();
        {
            let mut r = b.code_bits().reader();
            let mut prev: Option<u64> = None;
            for _ in 0..b.count() {
                let code = codes::get_gamma_reference(&mut r);
                let pos = match prev { None => code - 1, Some(q) => q + code };
                prev = Some(pos);
                reference.push(pos);
            }
        }
        let mut batched = Vec::new();
        b.decode_all(&mut batched);
        prop_assert_eq!(&batched, &reference);
        prop_assert_eq!(&batched, &positions);
    }

    #[test]
    fn quad_chain_decode_equals_reference(
        stride in 40_000u64..100_000,
        jitter in 1u64..1000,
        count in 8192u64..8600,
    ) {
        // Wide codes (≥ 16 bits each) over ≥ 8192 elements select the
        // four-chain split; every boundary residue must validate.
        let positions: Vec<u64> = (0..count).map(|i| i * stride + (i % jitter)).collect();
        let b = GapBitmap::from_sorted(&positions, count * stride + jitter);
        let _ = b.skip_dir();
        let mut batched = Vec::new();
        b.decode_all(&mut batched);
        prop_assert_eq!(&batched, &positions);
    }

    #[test]
    fn word_copies_equal_bit_copies_at_all_alignments(
        bits in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut src = BitBuf::new();
        for &bit in &bits {
            src.push_bit(bit);
        }
        for align in 0..64u32 {
            // extend_from after an arbitrary-alignment prefix.
            let mut dst = pad(align);
            dst.extend_from(&src);
            prop_assert_eq!(dst.len(), u64::from(align) + src.len());
            for (i, &bit) in bits.iter().enumerate() {
                prop_assert_eq!(dst.get_bit(u64::from(align) + i as u64), bit, "align {}", align);
            }
        }
        // DiskWriter::write_bulk (via BitSink::put_bits_bulk) at aligned
        // and unaligned extent tails.
        for align in [0u32, 1, 37, 63] {
            let mut disk = Disk::new(IoConfig::with_block_bits(128));
            let ext = disk.alloc();
            let session = IoSession::untracked();
            {
                let mut w = disk.writer(ext, &session);
                for i in 0..align {
                    w.write_bit(i % 2 == 0);
                }
                w.put_bits_bulk(src.words(), src.len());
            }
            let mut r = disk.reader(ext, u64::from(align), &session);
            for &bit in &bits {
                prop_assert_eq!(r.read_bit(), bit);
            }
        }
    }

    #[test]
    fn complement_streams_equal_naive(positions in proptest::collection::btree_set(0u64..600, 0..120)) {
        let universe = 600u64;
        let b = GapBitmap::from_sorted_iter(positions.iter().copied(), universe);
        let complement = b.complement();
        let naive: Vec<u64> = (0..universe).filter(|p| !positions.contains(p)).collect();
        prop_assert_eq!(complement.to_vec(), naive);
        prop_assert_eq!(complement.count(), universe - b.count());
        prop_assert_eq!(complement.complement(), b);
    }

    #[test]
    fn write_codes_roundtrip_through_sinks(positions in proptest::collection::btree_set(0u64..10_000, 1..150)) {
        let b = GapBitmap::from_sorted_iter(positions.iter().copied(), 10_000);
        // Concatenate twice into one buffer (first lands aligned, second
        // lands wherever the first ended) and decode both back.
        let mut stream = BitBuf::new();
        b.write_codes_to(&mut stream);
        b.write_codes_to(&mut stream);
        let want: Vec<u64> = positions.iter().copied().collect();
        let dec1 = GapDecoder::new(stream.reader(), b.count());
        prop_assert_eq!(dec1.collect::<Vec<_>>(), want.clone());
        let dec2 = GapDecoder::new(stream.reader_at(b.size_bits()), b.count());
        prop_assert_eq!(dec2.collect::<Vec<_>>(), want);
    }
}

/// The widest codeword the decoder can meet: `gamma((1 << 62) + 3)` is
/// 125 bits — two full words of unary prefix plus a straddling mantissa.
#[test]
fn maximum_width_gamma_codes_decode() {
    let positions = [5u64, 5 + ((1u64 << 62) + 3), u64::MAX - 2];
    let b = GapBitmap::from_sorted(&positions, u64::MAX);
    assert_eq!(b.to_vec(), positions);
    assert_eq!(b.iter().collect::<Vec<_>>(), positions);
}
