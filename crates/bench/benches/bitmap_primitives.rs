//! Wall-clock microbenchmarks of the bit-level substrate: the gamma
//! encode/decode and merge primitives that sit on every query's hot path,
//! plus the word-level batch endpoints added on top of them.

use criterion::{criterion_group, criterion_main, Criterion};
use psi_bits::{codes, merge, BitBuf, GapBitmap};

fn bench_primitives(c: &mut Criterion) {
    let positions: Vec<u64> = (0..100_000u64).map(|i| i * 13).collect();
    let mut g = c.benchmark_group("bitmap_primitives");
    g.bench_function("gamma_encode_100k", |b| {
        b.iter(|| {
            let mut buf = BitBuf::new();
            for &p in &positions {
                codes::put_gamma(&mut buf, p + 1);
            }
            buf.len()
        })
    });
    let gap = GapBitmap::from_sorted(&positions, 13 * 100_000 + 1);
    g.bench_function("gap_decode_100k", |b| b.iter(|| gap.iter().sum::<u64>()));
    g.bench_function("gap_to_vec_100k", |b| {
        b.iter(|| gap.to_vec().last().copied())
    });
    g.bench_function("gap_decode_all_100k", |b| {
        let mut out = Vec::with_capacity(positions.len());
        b.iter(|| {
            gap.decode_all(&mut out);
            out.last().copied()
        })
    });
    // Density spectrum: mixed gaps (zipf-ish query results) and dense runs
    // (clustered data, the complement trick's output).
    let mixed: Vec<u64> = {
        let mut v = Vec::new();
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x += 1 + (i.wrapping_mul(2_654_435_761)) % 200;
            v.push(x);
        }
        v
    };
    let gap_mixed = GapBitmap::from_sorted(&mixed, mixed.last().unwrap() + 1);
    g.bench_function("gap_decode_all_mixed_100k", |b| {
        let mut out = Vec::with_capacity(mixed.len());
        b.iter(|| {
            gap_mixed.decode_all(&mut out);
            out.len()
        })
    });
    let gap_dense = GapBitmap::from_sorted_iter(0..100_000u64, 100_000);
    g.bench_function("gap_decode_all_dense_100k", |b| {
        let mut out = Vec::with_capacity(100_000);
        b.iter(|| {
            gap_dense.decode_all(&mut out);
            out.len()
        })
    });
    // The bit-by-bit reference decoder: the floor the word-level paths are
    // measured against (and differentially tested against in psi-bits).
    g.bench_function("gap_decode_reference_100k", |b| {
        b.iter(|| {
            let mut r = gap.code_bits().reader();
            let mut sum = 0u64;
            let mut prev = 0u64;
            for i in 0..gap.count() {
                let code = codes::get_gamma_reference(&mut r);
                prev = if i == 0 { code - 1 } else { prev + code };
                sum += prev;
            }
            sum
        })
    });
    g.bench_function("kway_merge_8x12k", |b| {
        let streams: Vec<Vec<u64>> = (0..8u64)
            .map(|k| (0..12_500u64).map(|i| i * 8 + k).collect())
            .collect();
        b.iter(|| {
            merge::merge_disjoint(
                streams
                    .iter()
                    .map(|s| s.iter().copied())
                    .collect::<Vec<_>>(),
            )
            .count()
        })
    });
    // Wide fan-in: 32 interleaved streams, the heap's worst territory.
    let streams32: Vec<Vec<u64>> = (0..32u64)
        .map(|k| (0..4096u64).map(|i| i * 32 + k).collect())
        .collect();
    g.bench_function("kway_merge_32x4k", |b| {
        b.iter(|| {
            merge::merge_disjoint(
                streams32
                    .iter()
                    .map(|s| s.iter().copied())
                    .collect::<Vec<_>>(),
            )
            .count()
        })
    });
    // The same dense 32-way union through the planner: counts + span pick
    // the bitset-accumulate path (word array + trailing_zeros re-encode).
    g.bench_function("merge_adaptive_dense_32x4k", |b| {
        b.iter(|| {
            merge::merge_adaptive(
                streams32
                    .iter()
                    .map(|s| s.iter().copied())
                    .collect::<Vec<_>>(),
                32 * 4096,
                32 * 4096,
                Some((0, 32 * 4096 - 1)),
            )
            .count()
        })
    });
    // Dense runs (the complement trick's output shape): 8 streams whose
    // union is a solid run of 100k positions.
    let dense_runs: Vec<Vec<u64>> = (0..8u64)
        .map(|k| (k * 12_500..(k + 1) * 12_500).collect())
        .collect();
    g.bench_function("merge_adaptive_dense_runs_8x12k", |b| {
        b.iter(|| {
            merge::merge_adaptive(
                dense_runs
                    .iter()
                    .map(|s| s.iter().copied())
                    .collect::<Vec<_>>(),
                100_000,
                100_000,
                Some((0, 99_999)),
            )
            .count()
        })
    });
    g.bench_function("two_way_merge_2x50k", |b| {
        let a: Vec<u64> = (0..50_000u64).map(|i| i * 2).collect();
        let z: Vec<u64> = (0..50_000u64).map(|i| i * 2 + 1).collect();
        b.iter(|| merge::merge_disjoint(vec![a.iter().copied(), z.iter().copied()]).count())
    });
    g.bench_function("complement_sparse_in_1m", |b| {
        let sparse = GapBitmap::from_sorted_iter((0..10_000u64).map(|i| i * 100), 1_000_000);
        b.iter(|| sparse.complement().count())
    });
    g.bench_function("extend_from_aligned_64kw", |b| {
        let mut src = BitBuf::new();
        for i in 0..65_536u64 {
            src.push_bits(i, 64);
        }
        b.iter(|| {
            let mut dst = BitBuf::with_capacity(src.len());
            dst.extend_from(&src);
            dst.len()
        })
    });
    let plain = psi_bits::PlainBitmap::from_positions(positions.iter().copied(), 13 * 100_000 + 1);
    g.bench_function("plain_rank_sweep", |b| {
        b.iter(|| (0..100u64).map(|i| plain.rank1(i * 13_000)).sum::<u64>())
    });
    // RID intersection: a 10k-element set against a 100k-element set over
    // the same universe — the galloping leapfrog vs the full-decode
    // reference co-scan.
    let rid_a = psi_api::RidSet::from_positions(GapBitmap::from_sorted_iter(
        (0..10_000u64).map(|i| i * 97),
        13 * 100_000 + 1,
    ));
    let rid_b = psi_api::RidSet::from_positions(gap.clone());
    g.bench_function("rid_intersect_gallop_10kx100k", |b| {
        b.iter(|| rid_a.intersect(&rid_b).cardinality())
    });
    g.bench_function("rid_intersect_reference_10kx100k", |b| {
        b.iter(|| rid_a.intersect_reference(&rid_b).cardinality())
    });
    // Skip-directory point operations on a 100k-element set.
    g.bench_function("gap_contains_sweep_100k", |b| {
        b.iter(|| (0..1000u64).filter(|&i| gap.contains(i * 1300)).count())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_primitives
}
criterion_main!(benches);
