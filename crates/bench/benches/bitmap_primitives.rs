//! Wall-clock microbenchmarks of the bit-level substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use psi_bits::{codes, merge, BitBuf, GapBitmap};

fn bench_primitives(c: &mut Criterion) {
    let positions: Vec<u64> = (0..100_000u64).map(|i| i * 13).collect();
    let mut g = c.benchmark_group("bitmap_primitives");
    g.bench_function("gamma_encode_100k", |b| {
        b.iter(|| {
            let mut buf = BitBuf::new();
            for &p in &positions {
                codes::put_gamma(&mut buf, p + 1);
            }
            buf.len()
        })
    });
    let gap = GapBitmap::from_sorted(&positions, 13 * 100_000 + 1);
    g.bench_function("gap_decode_100k", |b| b.iter(|| gap.iter().sum::<u64>()));
    g.bench_function("kway_merge_8x12k", |b| {
        let streams: Vec<Vec<u64>> =
            (0..8u64).map(|k| (0..12_500u64).map(|i| i * 8 + k).collect()).collect();
        b.iter(|| {
            merge::merge_disjoint(
                streams.iter().map(|s| s.iter().copied()).collect::<Vec<_>>(),
            )
            .count()
        })
    });
    let plain = psi_bits::PlainBitmap::from_positions(positions.iter().copied(), 13 * 100_000 + 1);
    g.bench_function("plain_rank_sweep", |b| {
        b.iter(|| (0..100u64).map(|i| plain.rank1(i * 13_000)).sum::<u64>())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_primitives
}
criterion_main!(benches);
