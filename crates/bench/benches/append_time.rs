//! Wall-clock append/update benchmarks for the dynamic variants.

use criterion::{criterion_group, criterion_main, Criterion};
use psi_api::{AppendIndex, DynamicIndex, SecondaryIndex};
use psi_io::{IoConfig, IoSession};

fn bench_appends(c: &mut Criterion) {
    let sigma = 64u32;
    let stream = psi_workloads::uniform(1 << 14, sigma, 3);
    let mut g = c.benchmark_group("append");
    g.bench_function("semi_dynamic_16k", |b| {
        b.iter(|| {
            let mut idx = psi_core::SemiDynamicIndex::new(sigma, IoConfig::default());
            let io = IoSession::untracked();
            for &s in &stream {
                idx.append(s, &io);
            }
            idx.len()
        })
    });
    g.bench_function("buffered_16k", |b| {
        b.iter(|| {
            let mut idx = psi_core::BufferedIndex::new(sigma, IoConfig::default());
            let io = IoSession::untracked();
            for &s in &stream {
                idx.append(s, &io);
            }
            idx.len()
        })
    });
    g.bench_function("fully_dynamic_changes_4k", |b| {
        let base = psi_workloads::uniform(1 << 14, sigma, 4);
        b.iter(|| {
            let mut idx = psi_core::FullyDynamicIndex::build(&base, sigma, IoConfig::default());
            let io = IoSession::untracked();
            for i in 0..(1u64 << 12) {
                idx.change(i % (1 << 14), (i % u64::from(sigma)) as u32, &io);
            }
            idx.len()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_appends
}
criterion_main!(benches);
