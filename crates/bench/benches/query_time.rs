//! Wall-clock range-query benchmarks across the index spectrum
//! (secondary metric; the primary metric is simulated I/Os, see the
//! experiment binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psi_api::SecondaryIndex;
use psi_io::{IoConfig, IoSession};

fn bench_queries(c: &mut Criterion) {
    let n = 1usize << 17;
    let sigma = 256u32;
    let s = psi_workloads::uniform(n, sigma, 1);
    let cfg = IoConfig::default();
    let opt = psi_core::OptimalIndex::build(&s, sigma, cfg);
    let scan = psi_baselines::CompressedScanIndex::build(&s, sigma, cfg);
    let pl = psi_baselines::PositionListIndex::build(&s, sigma, cfg);
    let mr = psi_baselines::MultiResolutionIndex::build(&s, sigma, 4, cfg);

    let mut g = c.benchmark_group("range_query");
    for width in [1u32, 16, 128] {
        let (lo, hi) = (32, 32 + width - 1);
        g.bench_with_input(BenchmarkId::new("optimal", width), &width, |b, _| {
            b.iter(|| {
                let io = IoSession::untracked();
                opt.query(lo, hi, &io).cardinality()
            })
        });
        g.bench_with_input(
            BenchmarkId::new("compressed_scan", width),
            &width,
            |b, _| {
                b.iter(|| {
                    let io = IoSession::untracked();
                    scan.query(lo, hi, &io).cardinality()
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("position_list", width), &width, |b, _| {
            b.iter(|| {
                let io = IoSession::untracked();
                pl.query(lo, hi, &io).cardinality()
            })
        });
        g.bench_with_input(BenchmarkId::new("multires4", width), &width, |b, _| {
            b.iter(|| {
                let io = IoSession::untracked();
                mr.query(lo, hi, &io).cardinality()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_queries
}
criterion_main!(benches);
