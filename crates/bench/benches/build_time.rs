//! Wall-clock construction benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psi_api::SecondaryIndex;
use psi_io::IoConfig;

fn bench_builds(c: &mut Criterion) {
    let n = 1usize << 16;
    let sigma = 256u32;
    let s = psi_workloads::zipf(n, sigma, 1.0, 2);
    let cfg = IoConfig::default();
    let mut g = c.benchmark_group("build");
    g.bench_with_input(BenchmarkId::new("optimal", n), &n, |b, _| {
        b.iter(|| psi_core::OptimalIndex::build(&s, sigma, cfg).space_bits())
    });
    g.bench_with_input(BenchmarkId::new("uniform_tree", n), &n, |b, _| {
        b.iter(|| psi_core::UniformTreeIndex::build(&s, sigma, cfg).space_bits())
    });
    g.bench_with_input(BenchmarkId::new("compressed_scan", n), &n, |b, _| {
        b.iter(|| psi_baselines::CompressedScanIndex::build(&s, sigma, cfg).space_bits())
    });
    g.bench_with_input(BenchmarkId::new("buffered_bitmap", n), &n, |b, _| {
        b.iter(|| psi_core::BufferedBitmapIndex::build(&s, sigma, cfg).space_bits())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_builds
}
criterion_main!(benches);
