//! Diffing of `BENCH_NNNN.json` snapshots.
//!
//! `compare_bench BEFORE.json AFTER.json` joins two `psi-bench/1`
//! snapshots by benchmark name and reports per-row speedups, flagging
//! regressions beyond [`REGRESSION_THRESHOLD`]. Report-only by default
//! (exit 0 even with regressions — CI wall-clock is noisy); `--strict`
//! makes regressions fail the process. The parser is deliberately tiny:
//! it reads exactly the schema `jsonout` emits, one result per line.

/// Relative slowdown that counts as a regression (ISSUE 2's 15%).
pub const REGRESSION_THRESHOLD: f64 = 0.15;

/// Parses a `psi-bench/1` snapshot into `(bench, ns_per_iter)` rows.
///
/// Tolerant of unknown keys; rows without both fields are skipped.
pub fn parse(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "\"bench\":") else {
            continue;
        };
        let Some(ns) = field_num(line, "\"ns_per_iter\":") else {
            continue;
        };
        out.push((name, ns));
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    let start = rest.find('"')? + 1;
    let end = start + rest[start..].find('"')?;
    Some(rest[start..end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = line[line.find(key)? + key.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One joined comparison row.
#[derive(Debug, PartialEq)]
pub struct Delta {
    /// Benchmark name.
    pub bench: String,
    /// ns/iter in the baseline snapshot.
    pub before: f64,
    /// ns/iter in the new snapshot.
    pub after: f64,
}

impl Delta {
    /// Relative change (`after/before − 1`; negative is faster).
    pub fn change(&self) -> f64 {
        self.after / self.before - 1.0
    }

    /// Whether this row regressed beyond `threshold`.
    pub fn regressed(&self, threshold: f64) -> bool {
        self.change() > threshold
    }
}

/// Joins two parsed snapshots by name (order of the baseline).
pub fn join(before: &[(String, f64)], after: &[(String, f64)]) -> Vec<Delta> {
    before
        .iter()
        .filter_map(|(name, b)| {
            let (_, a) = after.iter().find(|(n, _)| n == name)?;
            Some(Delta {
                bench: name.clone(),
                before: *b,
                after: *a,
            })
        })
        .collect()
}

/// Prints the comparison table; returns the regressed rows' names.
pub fn report(deltas: &[Delta], threshold: f64) -> Vec<String> {
    println!(
        "{:<42} {:>14} {:>14} {:>9}",
        "bench", "before ns", "after ns", "change"
    );
    println!("{}", "-".repeat(82));
    let mut regressions = Vec::new();
    for d in deltas {
        let flag = if d.regressed(threshold) {
            regressions.push(d.bench.clone());
            "  << REGRESSION"
        } else {
            ""
        };
        println!(
            "{:<42} {:>14.1} {:>14.1} {:>+8.1}%{}",
            d.bench,
            d.before,
            d.after,
            100.0 * d.change(),
            flag
        );
    }
    regressions
}

/// Highest-numbered `BENCH_NNNN.json` in `dir`, excluding the file named
/// by `exclude` (so a freshly written snapshot is never its own
/// baseline). This is how the CI step picks its baseline automatically
/// instead of hard-coding the latest snapshot's number.
pub fn latest_snapshot(dir: &std::path::Path, exclude: Option<&str>) -> Option<std::path::PathBuf> {
    let mut best: Option<(u32, std::path::PathBuf)> = None;
    let excluded = exclude.and_then(|e| std::fs::canonicalize(e).ok());
    for entry in std::fs::read_dir(dir).ok()? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        let Some(num) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("BENCH_"))
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|d| d.parse::<u32>().ok())
        else {
            continue;
        };
        if excluded.is_some() && std::fs::canonicalize(&path).ok() == excluded {
            continue;
        }
        if best.as_ref().map(|(b, _)| num > *b).unwrap_or(true) {
            best = Some((num, path));
        }
    }
    best.map(|(_, p)| p)
}

/// Entry point for the `compare_bench` binary. Returns the process exit
/// code: 0 unless `strict` and regressions were found.
pub fn run(before_path: &str, after_path: &str, strict: bool) -> i32 {
    let read = |p: &str| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
    let before = parse(&read(before_path));
    let after = parse(&read(after_path));
    let deltas = join(&before, &after);
    println!("comparing {before_path} (baseline) vs {after_path}:\n");
    let regressions = report(&deltas, REGRESSION_THRESHOLD);
    let missing = before.len() - deltas.len();
    if missing > 0 {
        println!("\n{missing} baseline bench(es) missing from the new snapshot");
    }
    if regressions.is_empty() {
        println!(
            "\nno regressions beyond {:.0}%",
            100.0 * REGRESSION_THRESHOLD
        );
        0
    } else {
        println!(
            "\n{} regression(s) beyond {:.0}%: {}",
            regressions.len(),
            100.0 * REGRESSION_THRESHOLD,
            regressions.join(", ")
        );
        i32::from(strict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
  "schema": "psi-bench/1",
  "results": [
    {"bench": "decode/x", "ns_per_iter": 100.0, "per_element_ns": 1.00},
    {"bench": "merge/y", "ns_per_iter": 2000.5},
    {"bench": "query/z_w128", "ns_per_iter": 3.5e6}
  ]
}"#;

    #[test]
    fn parses_the_emitted_schema() {
        let rows = parse(SNAPSHOT);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], ("decode/x".to_string(), 100.0));
        assert_eq!(rows[1].1, 2000.5);
        assert_eq!(rows[2].1, 3.5e6);
        // Round-trips what jsonout emits.
        let emitted = crate::jsonout::to_json(&[crate::jsonout::JsonResult {
            bench: "a/b".into(),
            ns_per_iter: 42.5,
            elements: 7,
            space_bits: 99,
            file_bytes: 1000,
        }]);
        assert_eq!(parse(&emitted), vec![("a/b".to_string(), 42.5)]);
    }

    #[test]
    fn latest_snapshot_picks_highest_and_skips_the_new_file() {
        let dir = std::env::temp_dir().join("psi_compare_latest");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(latest_snapshot(&dir, None).is_none());
        for n in [1, 3, 11, 2] {
            std::fs::write(dir.join(format!("BENCH_{n:04}.json")), "{}").unwrap();
        }
        std::fs::write(dir.join("BENCH_notanumber.json"), "{}").unwrap();
        std::fs::write(dir.join("other.json"), "{}").unwrap();
        let best = latest_snapshot(&dir, None).expect("baseline");
        assert!(best.ends_with("BENCH_0011.json"));
        // The freshly produced snapshot must not be its own baseline.
        let newest = dir.join("BENCH_0011.json");
        let best = latest_snapshot(&dir, Some(newest.to_str().unwrap())).expect("baseline");
        assert!(best.ends_with("BENCH_0003.json"));
    }

    #[test]
    fn join_flags_regressions_beyond_threshold() {
        let before = vec![
            ("a".to_string(), 100.0),
            ("b".to_string(), 100.0),
            ("gone".to_string(), 5.0),
        ];
        let after = vec![("a".to_string(), 114.0), ("b".to_string(), 116.0)];
        let deltas = join(&before, &after);
        assert_eq!(deltas.len(), 2);
        assert!(!deltas[0].regressed(REGRESSION_THRESHOLD));
        assert!(deltas[1].regressed(REGRESSION_THRESHOLD));
        assert!((deltas[1].change() - 0.16).abs() < 1e-9);
    }
}
