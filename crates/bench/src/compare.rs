//! Diffing of `BENCH_NNNN.json` snapshots.
//!
//! `compare_bench BEFORE.json AFTER.json` joins two `psi-bench/1`
//! snapshots by benchmark name and reports per-row speedups, flagging
//! regressions beyond [`REGRESSION_THRESHOLD`]. Rows carrying a `qps`
//! field (the E15 `concurrent/*` throughput rows) are diffed with
//! higher-is-better direction — a QPS *drop* beyond the threshold is
//! the regression. The E18 `serve/open_loop/*` latency-percentile rows
//! diff lower-is-better like any ns row, but their p999 and
//! shed-permille entries are held to the wider [`TAIL_THRESHOLD`] (see
//! [`threshold_for`]). Rows carrying a `spread` field (the measured
//! IQR/median of their sample set) additionally widen their own bar to
//! twice that spread (see [`bar_for`]) — a reading cannot convict a
//! delta smaller than its own wobble.
//! Report-only by default (exit 0 even with regressions
//! — CI wall-clock is noisy); `--strict` makes regressions fail the
//! process. The parser is deliberately tiny: it reads exactly the schema
//! `jsonout` emits, one result per line.

/// Relative slowdown that counts as a regression (ISSUE 2's 15%).
pub const REGRESSION_THRESHOLD: f64 = 0.15;

/// Wider threshold for the open-loop tail rows (`serve/*/p999`) and shed
/// rates (`serve/*/shed_permille`): a single-run p999 is an order
/// statistic over a handful of samples and swings far more than a median
/// under CI noise, so holding it to the 15% bar would cry wolf on every
/// run. Medians and p99s stay on [`REGRESSION_THRESHOLD`].
pub const TAIL_THRESHOLD: f64 = 0.50;

/// Per-row regression threshold: latency-tail and shed-rate rows get
/// [`TAIL_THRESHOLD`], everything else [`REGRESSION_THRESHOLD`].
///
/// The E19 `obs/*` rows are single-run latency-histogram readings
/// (open-loop percentiles, WAL fsync quantiles, batch-size means) with
/// the same order-statistic noise as the p999s, so every
/// histogram-derived `obs/*` row is held to the tail bar too. The
/// `obs/serve/*/qps` throughput rows carry a `qps` field and stay on
/// the strict bar — they are the overhead claim E19 exists to defend.
pub fn threshold_for(bench: &str) -> f64 {
    let obs_hist = bench.starts_with("obs/")
        && ["/p50", "/p99", "/p999", "/mean"]
            .iter()
            .any(|s| bench.ends_with(s));
    if bench.ends_with("/p999") || bench.ends_with("/shed_permille") || obs_hist {
        TAIL_THRESHOLD
    } else {
        REGRESSION_THRESHOLD
    }
}

/// One parsed snapshot row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmark name.
    pub bench: String,
    /// Median wall-clock ns/iter (lower is better).
    pub ns_per_iter: f64,
    /// Queries/second when the row is a throughput row (higher is
    /// better); `None` otherwise.
    pub qps: Option<f64>,
    /// Run-to-run noise of the reading: IQR of the sample set divided by
    /// its median (so 0.05 means the middle half of samples spans ±~5%).
    /// `None` for rows emitted before the field existed or for
    /// single-shot rows that have no sample set.
    pub spread: Option<f64>,
}

/// Parses a `psi-bench/1` snapshot into [`Row`]s.
///
/// Tolerant of unknown keys; rows without both mandatory fields are
/// skipped.
pub fn parse(json: &str) -> Vec<Row> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(bench) = field_str(line, "\"bench\":") else {
            continue;
        };
        let Some(ns_per_iter) = field_num(line, "\"ns_per_iter\":") else {
            continue;
        };
        out.push(Row {
            bench,
            ns_per_iter,
            qps: field_num(line, "\"qps\":"),
            spread: field_num(line, "\"spread\":"),
        });
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    let start = rest.find('"')? + 1;
    let end = start + rest[start..].find('"')?;
    Some(rest[start..end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = line[line.find(key)? + key.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One joined comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Benchmark name.
    pub bench: String,
    /// Compared metric in the baseline snapshot (ns/iter, or QPS for
    /// throughput rows).
    pub before: f64,
    /// The same metric in the new snapshot.
    pub after: f64,
    /// Whether a larger `after` is an improvement (QPS rows) rather
    /// than a slowdown (ns rows).
    pub higher_is_better: bool,
    /// The larger of the two rows' measured spreads (IQR/median), 0.0
    /// when neither side reported one. [`report`] widens this row's
    /// regression bar to at least twice this value: a change smaller
    /// than the reading's own run-to-run wobble is not evidence.
    pub noise: f64,
}

impl Delta {
    /// Relative change (`after/before − 1`). For ns rows negative is
    /// faster; for QPS rows positive is faster. A zero baseline (a shed
    /// rate of 0‰) compares as no-change when the new value is also
    /// zero, and as an infinite regression otherwise — going from "never
    /// sheds" to "sheds" is a real behavior change, not a ratio glitch.
    pub fn change(&self) -> f64 {
        if self.before == 0.0 {
            return if self.after == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        self.after / self.before - 1.0
    }

    /// Whether this row regressed beyond `threshold` in its metric's
    /// direction.
    pub fn regressed(&self, threshold: f64) -> bool {
        if self.higher_is_better {
            self.change() < -threshold
        } else {
            self.change() > threshold
        }
    }
}

/// Joins two parsed snapshots by name (order of the baseline). A row is
/// compared by QPS when **both** sides carry it, by ns/iter otherwise.
pub fn join(before: &[Row], after: &[Row]) -> Vec<Delta> {
    before
        .iter()
        .filter_map(|b| {
            let a = after.iter().find(|r| r.bench == b.bench)?;
            let noise = b.spread.unwrap_or(0.0).max(a.spread.unwrap_or(0.0));
            Some(match (b.qps, a.qps) {
                (Some(bq), Some(aq)) => Delta {
                    bench: b.bench.clone(),
                    before: bq,
                    after: aq,
                    higher_is_better: true,
                    noise,
                },
                _ => Delta {
                    bench: b.bench.clone(),
                    before: b.ns_per_iter,
                    after: a.ns_per_iter,
                    higher_is_better: false,
                    noise,
                },
            })
        })
        .collect()
}

/// The regression bar for one joined row: the larger of the caller's
/// `threshold`, the row's own [`threshold_for`] bar (tail-latency rows
/// are noisier than medians), and twice its measured [`Delta::noise`] —
/// a snapshot whose middle half of samples spans ±20% cannot convict a
/// 15% delta.
pub fn bar_for(d: &Delta, threshold: f64) -> f64 {
    threshold.max(threshold_for(&d.bench)).max(2.0 * d.noise)
}

/// Prints the comparison table; returns the regressed rows' names. Each
/// row is held to its [`bar_for`] bar.
pub fn report(deltas: &[Delta], threshold: f64) -> Vec<String> {
    println!(
        "{:<42} {:>14} {:>14} {:>9}",
        "bench", "before", "after", "change"
    );
    println!("{}", "-".repeat(82));
    let mut regressions = Vec::new();
    for d in deltas {
        let flag = if d.regressed(bar_for(d, threshold)) {
            regressions.push(d.bench.clone());
            "  << REGRESSION"
        } else {
            ""
        };
        let unit = if d.higher_is_better { "qps" } else { "ns" };
        println!(
            "{:<42} {:>14} {:>14} {:>+8.1}%{}",
            d.bench,
            format!("{:.1} {unit}", d.before),
            format!("{:.1} {unit}", d.after),
            100.0 * d.change(),
            flag
        );
    }
    regressions
}

/// Highest-numbered `BENCH_NNNN.json` in `dir`, excluding the file named
/// by `exclude` (so a freshly written snapshot is never its own
/// baseline). This is how the CI step picks its baseline automatically
/// instead of hard-coding the latest snapshot's number.
pub fn latest_snapshot(dir: &std::path::Path, exclude: Option<&str>) -> Option<std::path::PathBuf> {
    let mut best: Option<(u32, std::path::PathBuf)> = None;
    let excluded = exclude.and_then(|e| std::fs::canonicalize(e).ok());
    for entry in std::fs::read_dir(dir).ok()? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        let Some(num) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("BENCH_"))
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|d| d.parse::<u32>().ok())
        else {
            continue;
        };
        if excluded.is_some() && std::fs::canonicalize(&path).ok() == excluded {
            continue;
        }
        if best.as_ref().map(|(b, _)| num > *b).unwrap_or(true) {
            best = Some((num, path));
        }
    }
    best.map(|(_, p)| p)
}

/// Entry point for the `compare_bench` binary. Returns the process exit
/// code: 0 unless `strict` and regressions were found.
pub fn run(before_path: &str, after_path: &str, strict: bool) -> i32 {
    let read = |p: &str| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
    let before = parse(&read(before_path));
    let after = parse(&read(after_path));
    let deltas = join(&before, &after);
    println!("comparing {before_path} (baseline) vs {after_path}:\n");
    let regressions = report(&deltas, REGRESSION_THRESHOLD);
    let missing = before.len() - deltas.len();
    if missing > 0 {
        println!("\n{missing} baseline bench(es) missing from the new snapshot");
    }
    if regressions.is_empty() {
        println!(
            "\nno regressions beyond {:.0}%",
            100.0 * REGRESSION_THRESHOLD
        );
        0
    } else {
        println!(
            "\n{} regression(s) beyond {:.0}%: {}",
            regressions.len(),
            100.0 * REGRESSION_THRESHOLD,
            regressions.join(", ")
        );
        i32::from(strict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
  "schema": "psi-bench/1",
  "results": [
    {"bench": "decode/x", "ns_per_iter": 100.0, "per_element_ns": 1.00},
    {"bench": "merge/y", "ns_per_iter": 2000.5},
    {"bench": "query/z_w128", "ns_per_iter": 3.5e6},
    {"bench": "concurrent/qps_optimal_file_t8", "ns_per_iter": 2000.0, "qps": 500000.0}
  ]
}"#;

    fn row(bench: &str, ns: f64) -> Row {
        Row {
            bench: bench.to_string(),
            ns_per_iter: ns,
            qps: None,
            spread: None,
        }
    }

    fn qps_row(bench: &str, qps: f64) -> Row {
        Row {
            bench: bench.to_string(),
            ns_per_iter: 1e9 / qps,
            qps: Some(qps),
            spread: None,
        }
    }

    #[test]
    fn parses_the_emitted_schema() {
        let rows = parse(SNAPSHOT);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], row("decode/x", 100.0));
        assert_eq!(rows[1].ns_per_iter, 2000.5);
        assert_eq!(rows[2].ns_per_iter, 3.5e6);
        assert_eq!(rows[3].qps, Some(500000.0));
        // Round-trips what jsonout emits.
        let emitted = crate::jsonout::to_json(&[
            crate::jsonout::JsonResult {
                bench: "a/b".into(),
                ns_per_iter: 42.5,
                elements: 7,
                space_bits: 99,
                file_bytes: 1000,
                ..Default::default()
            },
            crate::jsonout::JsonResult {
                bench: "concurrent/qps_c_t4".into(),
                ns_per_iter: 4000.0,
                qps: 250_000.0,
                ..Default::default()
            },
        ]);
        let parsed = parse(&emitted);
        assert_eq!(parsed[0], row("a/b", 42.5));
        assert_eq!(parsed[1].qps, Some(250_000.0));
        // Rows without a spread field (the whole SNAPSHOT above, and
        // jsonout rows whose spread is 0) parse as spread: None.
        assert!(parsed.iter().all(|r| r.spread.is_none()));
        let with_spread = crate::jsonout::to_json(&[crate::jsonout::JsonResult {
            bench: "decode/noisy".into(),
            ns_per_iter: 100.0,
            spread: 0.082,
            ..Default::default()
        }]);
        let parsed = parse(&with_spread);
        assert_eq!(parsed[0].spread, Some(0.082));
    }

    #[test]
    fn latest_snapshot_picks_highest_and_skips_the_new_file() {
        let dir = std::env::temp_dir().join("psi_compare_latest");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(latest_snapshot(&dir, None).is_none());
        for n in [1, 3, 11, 2] {
            std::fs::write(dir.join(format!("BENCH_{n:04}.json")), "{}").unwrap();
        }
        std::fs::write(dir.join("BENCH_notanumber.json"), "{}").unwrap();
        std::fs::write(dir.join("other.json"), "{}").unwrap();
        let best = latest_snapshot(&dir, None).expect("baseline");
        assert!(best.ends_with("BENCH_0011.json"));
        // The freshly produced snapshot must not be its own baseline.
        let newest = dir.join("BENCH_0011.json");
        let best = latest_snapshot(&dir, Some(newest.to_str().unwrap())).expect("baseline");
        assert!(best.ends_with("BENCH_0003.json"));
    }

    #[test]
    fn join_flags_regressions_beyond_threshold() {
        let before = vec![row("a", 100.0), row("b", 100.0), row("gone", 5.0)];
        let after = vec![row("a", 114.0), row("b", 116.0)];
        let deltas = join(&before, &after);
        assert_eq!(deltas.len(), 2);
        assert!(!deltas[0].regressed(REGRESSION_THRESHOLD));
        assert!(deltas[1].regressed(REGRESSION_THRESHOLD));
        assert!((deltas[1].change() - 0.16).abs() < 1e-9);
    }

    #[test]
    fn noisy_rows_widen_their_own_regression_bar() {
        let noisy = |bench: &str, ns: f64, spread: f64| Row {
            spread: Some(spread),
            ..row(bench, ns)
        };
        // A +20% delta on a reading whose own spread is 12% (2× = 24%
        // bar) is inside the noise; the same delta on a quiet reading
        // flags. The noise is the max of the two sides, so a baseline
        // measured on a quiet machine still gets slack when the new run
        // was noisy.
        let before = vec![row("a/quiet", 100.0), noisy("a/noisy", 100.0, 0.12)];
        let after = vec![noisy("a/quiet", 120.0, 0.12), row("a/noisy", 120.0)];
        let deltas = join(&before, &after);
        assert_eq!(deltas[0].noise, 0.12);
        assert_eq!(deltas[1].noise, 0.12);
        assert_eq!(bar_for(&deltas[0], REGRESSION_THRESHOLD), 0.24);
        assert!(!deltas[0].regressed(bar_for(&deltas[0], REGRESSION_THRESHOLD)));
        assert!(!deltas[1].regressed(bar_for(&deltas[1], REGRESSION_THRESHOLD)));
        let quiet = join(&[row("a", 100.0)], &[row("a", 120.0)]);
        assert_eq!(quiet[0].noise, 0.0);
        assert!(quiet[0].regressed(bar_for(&quiet[0], REGRESSION_THRESHOLD)));
        // Noise never narrows a bar below the per-row threshold: a tail
        // row with a tiny spread keeps its TAIL_THRESHOLD slack.
        let tail = join(
            &[noisy("serve/open_loop/q2000/p999", 100.0, 0.01)],
            &[noisy("serve/open_loop/q2000/p999", 130.0, 0.01)],
        );
        assert_eq!(bar_for(&tail[0], REGRESSION_THRESHOLD), TAIL_THRESHOLD);
        assert!(!tail[0].regressed(bar_for(&tail[0], REGRESSION_THRESHOLD)));
    }

    #[test]
    fn latency_percentile_rows_diff_lower_is_better_with_tail_slack() {
        // The E18 rows as jsonout emits them: plain ns_per_iter, no qps.
        let emitted = crate::jsonout::to_json(&[
            crate::jsonout::JsonResult {
                bench: "serve/open_loop/q2000/p50".into(),
                ns_per_iter: 600_000.0,
                ..Default::default()
            },
            crate::jsonout::JsonResult {
                bench: "serve/open_loop/q2000/p999".into(),
                ns_per_iter: 9_000_000.0,
                ..Default::default()
            },
            crate::jsonout::JsonResult {
                bench: "serve/open_loop/q2000/shed_permille".into(),
                ns_per_iter: 0.0,
                ..Default::default()
            },
        ]);
        let before = parse(&emitted);
        assert_eq!(before.len(), 3);
        assert!(before.iter().all(|r| r.qps.is_none()));

        // +30%: flags the median, not the tail (TAIL_THRESHOLD slack).
        let after = vec![
            row("serve/open_loop/q2000/p50", 780_000.0),
            row("serve/open_loop/q2000/p999", 11_700_000.0),
            row("serve/open_loop/q2000/shed_permille", 0.0),
        ];
        let deltas = join(&before, &after);
        assert!(deltas.iter().all(|d| !d.higher_is_better));
        let flag = |d: &Delta| d.regressed(REGRESSION_THRESHOLD.max(threshold_for(&d.bench)));
        assert!(flag(&deltas[0]), "p50 +30% must flag");
        assert!(!flag(&deltas[1]), "p999 +30% is within tail slack");
        assert!(
            flag(&Delta {
                after: 15_000_000.0,
                ..deltas[1].clone()
            }),
            "p999 +67% must flag"
        );
        // Shed rate 0 -> 0 is no-change; 0 -> nonzero is a regression
        // even under the tail bar.
        assert_eq!(deltas[2].change(), 0.0);
        assert!(!flag(&deltas[2]));
        let started_shedding = Delta {
            after: 2.0,
            ..deltas[2].clone()
        };
        assert_eq!(started_shedding.change(), f64::INFINITY);
        assert!(flag(&started_shedding));
    }

    #[test]
    fn obs_histogram_rows_get_tail_slack_but_obs_qps_stays_strict() {
        // The E19 histogram-derived rows — open-loop percentiles and the
        // WAL fsync/batch quantiles — are single-run order statistics.
        for bench in [
            "obs/serve/instrumented/p50",
            "obs/serve/stripped/p99",
            "obs/wal/fsync_ns/p99",
            "obs/wal/commit_batch/mean",
        ] {
            assert_eq!(threshold_for(bench), TAIL_THRESHOLD, "{bench}");
        }
        // The throughput rows carry the overhead claim: strict bar.
        assert_eq!(
            threshold_for("obs/serve/instrumented/qps"),
            REGRESSION_THRESHOLD
        );
        // Non-obs rows with the same suffixes are untouched by the rule.
        assert_eq!(threshold_for("decode/block/mean"), REGRESSION_THRESHOLD);

        // A +30% fsync p99 passes under the tail bar; a qps drop of 30%
        // on the instrumented arm flags (higher-is-better direction).
        let before = vec![
            row("obs/wal/fsync_ns/p99", 1_000_000.0),
            qps_row("obs/serve/instrumented/qps", 50_000.0),
        ];
        let after = vec![
            row("obs/wal/fsync_ns/p99", 1_300_000.0),
            qps_row("obs/serve/instrumented/qps", 35_000.0),
        ];
        let deltas = join(&before, &after);
        let flag = |d: &Delta| d.regressed(REGRESSION_THRESHOLD.max(threshold_for(&d.bench)));
        assert!(!flag(&deltas[0]), "fsync p99 +30% is within tail slack");
        assert!(deltas[1].higher_is_better);
        assert!(flag(&deltas[1]), "instrumented qps -30% must flag");
    }

    #[test]
    fn qps_rows_regress_on_drops_not_gains() {
        let before = vec![qps_row("concurrent/qps_t8", 100_000.0), row("plain", 10.0)];
        // QPS up 30%: an improvement, never a regression.
        let up = join(&before, &[qps_row("concurrent/qps_t8", 130_000.0)]);
        assert!(up[0].higher_is_better);
        assert!(!up[0].regressed(REGRESSION_THRESHOLD));
        assert!((up[0].change() - 0.30).abs() < 1e-9);
        // QPS down 30%: flagged.
        let down = join(&before, &[qps_row("concurrent/qps_t8", 70_000.0)]);
        assert!(down[0].regressed(REGRESSION_THRESHOLD));
        // A QPS row in the baseline joined against a plain row compares
        // by ns (schema drift tolerance).
        let drifted = join(
            &before,
            &[row("concurrent/qps_t8", 9_000.0), row("plain", 10.0)],
        );
        assert!(!drifted[0].higher_is_better);
    }
}
