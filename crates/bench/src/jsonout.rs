//! Machine-readable microbenchmark output (`all_experiments --json`).
//!
//! Emits a `BENCH_NNNN.json` snapshot of the hot-path primitives — gamma
//! decode/encode, k-way merge, end-to-end range queries — so successive
//! PRs can diff ns/op numbers instead of prose claims. The snapshot
//! format is a single JSON object:
//!
//! ```json
//! {
//!   "schema": "psi-bench/1",
//!   "results": [
//!     {"bench": "decode/sparse_batch_100k", "ns_per_iter": 332876.9, "per_element_ns": 3.33},
//!     ...
//!   ]
//! }
//! ```
//!
//! Timing uses the same calibrate-then-sample discipline as the criterion
//! benches (median of `SAMPLES` samples, each at least `TARGET_MS` long),
//! without depending on the bench harness so the binary stays a plain
//! `cargo run` target.

use std::io::Write as _;
use std::time::{Duration, Instant};

use psi_api::SecondaryIndex;
use psi_io::{IoConfig, IoSession};

const SAMPLES: usize = 9;
const TARGET_MS: u64 = 5;

/// One measured entry.
#[derive(Default)]
pub struct JsonResult {
    /// Hierarchical bench name (`group/name`).
    pub bench: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Elements processed per iteration (0 when not meaningful).
    pub elements: u64,
    /// In-memory structure size in bits (0 when not meaningful) — the
    /// `SecondaryIndex::space_bits` of the index the row measures.
    pub space_bits: u64,
    /// On-disk store-file size in bytes (0 when not meaningful) — the
    /// psi-store file the index saves to.
    pub file_bytes: u64,
    /// Queries per second (0 when not meaningful) — the `concurrent/*`
    /// throughput rows; `compare_bench` diffs these with
    /// higher-is-better direction.
    pub qps: f64,
    /// Real backend block fetches (0 when not meaningful) — the
    /// cold-cache rows, equal to the workload's distinct-block charge.
    pub real_reads: u64,
    /// Relative sample spread of the timed rows: interquartile range of
    /// the [`SAMPLES`] per-sample readings divided by their median (0
    /// when the row was not `measure`d). `compare_bench` widens a row's
    /// regression bar by this — a noisy measurement cannot prove a
    /// regression smaller than its own scatter.
    pub spread: f64,
}

/// One timed reading: the median of the samples and their relative
/// spread (see [`JsonResult::spread`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Measured {
    /// Median wall-clock nanoseconds per iteration.
    pub ns: f64,
    /// Interquartile range of the samples over their median.
    pub spread: f64,
}

pub(crate) fn measure<O, F: FnMut() -> O>(mut f: F) -> Measured {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(TARGET_MS) || iters >= 1 << 28 {
            break;
        }
        let grow = if elapsed.is_zero() {
            16.0
        } else {
            (Duration::from_millis(TARGET_MS).as_secs_f64() / elapsed.as_secs_f64())
                .clamp(1.5, 16.0)
        };
        iters = ((iters as f64) * grow).ceil() as u64;
    }
    let mut ns: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    ns.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let median = ns[ns.len() / 2];
    let iqr = ns[3 * ns.len() / 4] - ns[ns.len() / 4];
    Measured {
        ns: median,
        spread: if median > 0.0 { iqr / median } else { 0.0 },
    }
}

/// Runs the decode / merge / query microbenchmarks and returns the rows.
pub fn run_microbenches() -> Vec<JsonResult> {
    let mut results = Vec::new();
    let mut push = |bench: &str, m: Measured, elements: u64| {
        println!("{bench:<40} {:>14.1} ns/iter", m.ns);
        results.push(JsonResult {
            bench: bench.to_string(),
            ns_per_iter: m.ns,
            spread: m.spread,
            elements,
            ..Default::default()
        });
    };

    // --- decode ---
    use psi_bits::{codes, merge, BitBuf, GapBitmap};
    let sparse: Vec<u64> = (0..100_000u64).map(|i| i * 13).collect();
    let gap_sparse = GapBitmap::from_sorted(&sparse, 13 * 100_000 + 1);
    let mixed: Vec<u64> = {
        let mut v = Vec::new();
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x += 1 + (i.wrapping_mul(2_654_435_761)) % 200;
            v.push(x);
        }
        v
    };
    let gap_mixed = GapBitmap::from_sorted(&mixed, mixed.last().unwrap() + 1);
    let gap_dense = GapBitmap::from_sorted_iter(0..100_000u64, 100_000);
    let mut out = Vec::with_capacity(100_000);
    push(
        "decode/sparse_iter_100k",
        measure(|| gap_sparse.iter().sum::<u64>()),
        100_000,
    );
    push(
        "decode/sparse_batch_100k",
        measure(|| {
            gap_sparse.decode_all(&mut out);
            out.len()
        }),
        100_000,
    );
    push(
        "decode/mixed_batch_100k",
        measure(|| {
            gap_mixed.decode_all(&mut out);
            out.len()
        }),
        100_000,
    );
    push(
        "decode/dense_batch_100k",
        measure(|| {
            gap_dense.decode_all(&mut out);
            out.len()
        }),
        100_000,
    );
    push(
        "decode/sparse_bitwise_reference_100k",
        measure(|| {
            let mut r = gap_sparse.code_bits().reader();
            let mut prev = u64::MAX;
            for _ in 0..gap_sparse.count() {
                prev = prev.wrapping_add(codes::get_gamma_reference(&mut r));
            }
            prev
        }),
        100_000,
    );
    push(
        "encode/gamma_100k",
        measure(|| {
            let mut buf = BitBuf::new();
            for &p in &sparse {
                codes::put_gamma(&mut buf, p + 1);
            }
            buf.len()
        }),
        100_000,
    );

    // --- merge ---
    let streams: Vec<Vec<u64>> = (0..8u64)
        .map(|k| (0..12_500u64).map(|i| i * 8 + k).collect())
        .collect();
    push(
        "merge/kway_8x12k",
        measure(|| {
            merge::merge_disjoint(
                streams
                    .iter()
                    .map(|s| s.iter().copied())
                    .collect::<Vec<_>>(),
            )
            .count()
        }),
        100_000,
    );
    let (evens, odds): (Vec<u64>, Vec<u64>) = (
        (0..50_000u64).map(|i| i * 2).collect(),
        (0..50_000u64).map(|i| i * 2 + 1).collect(),
    );
    push(
        "merge/two_way_2x50k",
        measure(|| {
            merge::merge_disjoint(vec![evens.iter().copied(), odds.iter().copied()]).count()
        }),
        100_000,
    );
    // The same dense 8-way union through the planner's bitset path
    // (word-array accumulate + trailing_zeros re-encode) — the adaptive
    // answer to merge/kway_8x12k's heap traffic.
    push(
        "merge/adaptive_dense_8x12k",
        measure(|| {
            merge::merge_adaptive(
                streams
                    .iter()
                    .map(|s| s.iter().copied())
                    .collect::<Vec<_>>(),
                100_000,
                100_000,
                Some((0, 99_999)),
            )
            .count()
        }),
        100_000,
    );
    // Wide fan-in, sparse: 32 streams over a 17M universe stay on the
    // heap (avg gap 131 > the planner's bitset threshold).
    let streams32: Vec<Vec<u64>> = (0..32u64)
        .map(|k| (0..4096u64).map(|i| (i * 32 + k) * 131).collect())
        .collect();
    push(
        "merge/kway_32x4k",
        measure(|| {
            merge::merge_adaptive(
                streams32
                    .iter()
                    .map(|s| s.iter().copied())
                    .collect::<Vec<_>>(),
                131 * 32 * 4096 + 1,
                32 * 4096,
                Some((0, 131 * (32 * 4096 - 1))),
            )
            .count()
        }),
        32 * 4096,
    );

    // --- RID set operations (galloping vs full-decode reference) ---
    // The paper's conjunctive shape: a selective condition (1k rows)
    // intersected with a broad one (100k rows). The leapfrog jumps the
    // broad stream through its skip directory instead of decoding it.
    use psi_api::RidSet;
    let rid_universe = 13 * 100_000 + 1;
    let rid_a = RidSet::from_positions(GapBitmap::from_sorted_iter(
        (0..1000u64).map(|i| i * 1300),
        rid_universe,
    ));
    let rid_b = RidSet::from_positions(GapBitmap::from_sorted(&sparse, rid_universe));
    push(
        "intersect/rid_gallop_1kx100k",
        measure(|| rid_a.intersect(&rid_b).cardinality()),
        1000,
    );
    push(
        "intersect/rid_reference_1kx100k",
        measure(|| rid_a.intersect_reference(&rid_b).cardinality()),
        1000,
    );
    let comp_a = RidSet::from_complement(GapBitmap::from_sorted_iter(
        (0..10_000u64).map(|i| i * 97),
        rid_universe,
    ));
    push(
        "intersect/rid_complement_10kx100k",
        measure(|| comp_a.intersect(&rid_b).cardinality()),
        100_000,
    );
    push(
        "intersect/rid_complement_reference_10kx100k",
        measure(|| comp_a.intersect_reference(&rid_b).cardinality()),
        100_000,
    );
    push(
        "contains/rid_probe_sweep_100k",
        measure(|| (0..1000u64).filter(|&i| rid_b.contains(i * 1300)).count()),
        1000,
    );

    // --- conjunctive queries (planner vs fixed left-to-right order on a
    // skewed multi-attribute table; identical simulated I/O, the delta is
    // the CPU-side combine order) ---
    {
        use psi_query::{CombineStrategy, IndexedTable, Predicate};
        let n = 1usize << 16;
        let table = psi_workloads::Table::generate(
            n,
            &[
                psi_workloads::ColumnSpec {
                    name: "a".into(),
                    sigma: 256,
                    dist: psi_workloads::Dist::Zipf(1.1),
                },
                psi_workloads::ColumnSpec {
                    name: "b".into(),
                    sigma: 64,
                    dist: psi_workloads::Dist::Zipf(0.9),
                },
                psi_workloads::ColumnSpec {
                    name: "c".into(),
                    sigma: 1024,
                    dist: psi_workloads::Dist::Zipf(1.3),
                },
            ],
            15,
        );
        let indexed = IndexedTable::build(&table, |s, g| {
            Box::new(psi_core::OptimalIndex::build(s, g, IoConfig::default()))
        });
        // Worst-first: broad Zipf-head ranges lead, the selective tail
        // condition is last.
        let query = Predicate::and([
            Predicate::range("a", 0, 3),
            Predicate::range("b", 0, 7),
            Predicate::range("c", 700, 720),
        ])
        .normalize()
        .expect("conjunctive");
        let fixed_order: Vec<usize> = (0..query.len()).collect();
        push(
            "conjunctive/planned_zipf_3cond",
            measure(|| {
                indexed
                    .execute_conjunctive(&query)
                    .expect("planned")
                    .rows
                    .cardinality()
            }),
            0,
        );
        push(
            "conjunctive/fixed_lr_zipf_3cond",
            measure(|| {
                indexed
                    .execute_forced(&query, &fixed_order, CombineStrategy::Gallop)
                    .expect("fixed")
                    .rows
                    .cardinality()
            }),
            0,
        );
        push(
            "conjunctive/probe_zipf_3cond",
            measure(|| {
                let plan = indexed.plan_query(&query).expect("plan");
                indexed
                    .execute_forced(&query, &plan.order, CombineStrategy::Probe)
                    .expect("probe")
                    .rows
                    .cardinality()
            }),
            0,
        );
    }

    // --- query (end to end, wall clock; I/O-model costs are the
    // experiment binaries' domain) ---
    let n = 1usize << 17;
    let sigma = 256u32;
    let s = psi_workloads::uniform(n, sigma, 1);
    let cfg = IoConfig::default();
    let opt = psi_core::OptimalIndex::build(&s, sigma, cfg);
    let scan = psi_baselines::CompressedScanIndex::build(&s, sigma, cfg);
    let pl = psi_baselines::PositionListIndex::build(&s, sigma, cfg);
    let mr = psi_baselines::MultiResolutionIndex::build(&s, sigma, 4, cfg);
    // On-disk footprint per family (the psi-store save of each index),
    // carried as space_bits/file_bytes columns on the query rows.
    let store_dir = std::env::temp_dir().join("psi_bench_store");
    std::fs::create_dir_all(&store_dir).expect("bench store dir");
    let footprint = |name: &str, idx: &dyn StoreBench| {
        let path = store_dir.join(format!("json_{name}.psi"));
        let file_bytes = idx.save_to(&path);
        (idx.space(), file_bytes, path)
    };
    let foot_opt = footprint("optimal", &opt);
    let foot_scan = footprint("compressed_scan", &scan);
    let foot_pl = footprint("position_list", &pl);
    let foot_mr = footprint("multires4", &mr);
    for width in [1u32, 16, 128] {
        let (lo, hi) = (32, 32 + width - 1);
        let mut q =
            |name: &str, idx: &dyn SecondaryIndex, foot: &(u64, u64, std::path::PathBuf)| {
                let m = measure(|| {
                    let io = IoSession::untracked();
                    idx.query(lo, hi, &io).cardinality()
                });
                let bench = format!("query/{name}_w{width}");
                println!("{bench:<40} {:>14.1} ns/iter", m.ns);
                results.push(JsonResult {
                    bench: format!("query/{name}_w{width}"),
                    ns_per_iter: m.ns,
                    spread: m.spread,
                    space_bits: foot.0,
                    file_bytes: foot.1,
                    ..Default::default()
                });
            };
        q("optimal", &opt, &foot_opt);
        q("compressed_scan", &scan, &foot_scan);
        q("position_list", &pl, &foot_pl);
        q("multires4", &mr, &foot_mr);
    }

    // --- store (E14): save/open/warm-pooled-query wall clock ---
    {
        use psi_store::{open, Backend, OpenOptions};
        let mut push = |bench: &str, m: Measured, space_bits: u64, file_bytes: u64| {
            println!("{bench:<40} {:>14.1} ns/iter", m.ns);
            results.push(JsonResult {
                bench: bench.to_string(),
                ns_per_iter: m.ns,
                spread: m.spread,
                space_bits,
                file_bytes,
                ..Default::default()
            });
        };
        let path = &foot_opt.2;
        push(
            "store/save_optimal",
            measure(|| {
                psi_store::save(&opt, store_dir.join("json_save_probe.psi"))
                    .expect("save")
                    .file_bytes
            }),
            foot_opt.0,
            foot_opt.1,
        );
        push(
            "store/open_optimal",
            measure(|| {
                open::<psi_core::OptimalIndex>(path, &OpenOptions::default())
                    .expect("open")
                    .index
                    .len()
            }),
            foot_opt.0,
            foot_opt.1,
        );
        // Warm-pool query cost per backend vs the RAM index: the pooled
        // cursor path (no word-level lookahead, per-word frame reads) is
        // the price of real storage; the cold counterpart additionally
        // pays real I/O, measured one-shot in the E14 experiment binary.
        let (lo, hi) = (32u32, 47);
        for (name, backend) in [("file", Backend::File), ("mmap", Backend::Mmap)] {
            let opened = open::<psi_core::OptimalIndex>(
                path,
                &OpenOptions {
                    backend,
                    pool_blocks: 1 << 16,
                    retry: None,
                    verify: true,
                },
            )
            .expect("open");
            let io = IoSession::untracked();
            let _ = opened.index.query(lo, hi, &io); // warm the pool
            push(
                &format!("store/query_warm_{name}_optimal_w16"),
                measure(|| {
                    let io = IoSession::untracked();
                    opened.index.query(lo, hi, &io).cardinality()
                }),
                foot_opt.0,
                foot_opt.1,
            );
        }
        push(
            "store/query_ram_optimal_w16",
            measure(|| {
                let io = IoSession::untracked();
                opt.query(lo, hi, &io).cardinality()
            }),
            foot_opt.0,
            foot_opt.1,
        );
    }

    // --- concurrent (E15): warm-pool QPS thread sweep + cold real reads.
    // QPS rows carry a `qps` field; compare_bench diffs those with
    // higher-is-better direction. Scaling past the machine's cores is
    // not expected — the rows exist so multi-core runners see the curve
    // and single-core ones see "no contention penalty".
    {
        use psi_store::{open, Backend, OpenOptions};
        let path = &foot_opt.2;
        let queries = crate::e15_workload(sigma);
        for (bname, backend) in [("file", Backend::File), ("mmap", Backend::Mmap)] {
            let opened = open::<psi_core::OptimalIndex>(
                path,
                &OpenOptions {
                    backend,
                    pool_blocks: 1 << 16,
                    retry: None,
                    verify: true,
                },
            )
            .expect("open");
            // Cold pass: per-query sessions; the real fetches equal the
            // workload's distinct-block union (asserted in tests).
            let start = std::time::Instant::now();
            for &(lo, hi) in &queries {
                let io = IoSession::new();
                let _ = opened.index.query(lo, hi, &io);
            }
            let cold_ns = start.elapsed().as_nanos() as f64 / queries.len() as f64;
            let bench = format!("concurrent/cold_optimal_{bname}");
            println!(
                "{bench:<40} {cold_ns:>14.1} ns/iter ({} real reads)",
                opened.real_fetches()
            );
            results.push(JsonResult {
                bench,
                ns_per_iter: cold_ns,
                real_reads: opened.real_fetches(),
                ..Default::default()
            });
            // Warm sweep, calibrated against the now-hot pool (a warm
            // query is ~10x a cold one; calibrating off cold_ns would
            // shrink the measurement window well under the target and
            // make the qps rows jitter past the regression threshold).
            let rounds = crate::e15_calibrate(&opened.index, &queries, 120);
            for threads in [1usize, 2, 4, 8] {
                let mut qps = 0f64;
                for _ in 0..3 {
                    qps = qps.max(crate::e15_qps(&opened.index, &queries, threads, rounds));
                }
                let bench = format!("concurrent/qps_optimal_{bname}_t{threads}");
                println!("{bench:<40} {:>14.1} ns/iter ({qps:.0} qps)", 1e9 / qps);
                results.push(JsonResult {
                    bench,
                    ns_per_iter: 1e9 / qps,
                    qps,
                    ..Default::default()
                });
            }
        }
    }

    // --- durability (E16): group-commit latency, incremental checkpoint
    // bytes, recovery time. All plain lower-is-better ns rows; the two
    // checkpoint rows also carry `file_bytes` = bytes written per
    // checkpoint so the incremental-vs-full gap is diffable.
    {
        use psi_api::MutOp;
        use psi_wal::{recover, Durable, DurableOptions};

        let root = std::env::temp_dir().join("psi_bench_json_durable");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("bench durable dir");
        let dsigma = 64u32;
        let io = IoSession::untracked();

        // Group commit: journal `b` appends + one sync, reported per op.
        for b in [1usize, 8, 64] {
            let dir = root.join(format!("commit_b{b}"));
            let idx = psi_core::SemiDynamicIndex::new(dsigma, IoConfig::default());
            let mut d = Durable::create(
                &dir,
                idx,
                DurableOptions {
                    group_commit_ops: usize::MAX,
                    ..DurableOptions::default()
                },
            )
            .expect("create durable");
            let mut x = 0u32;
            let m_batch = measure(|| {
                for _ in 0..b {
                    x = x.wrapping_mul(2_654_435_761).wrapping_add(1);
                    d.apply(
                        &MutOp::Append {
                            symbol: (x >> 16) & (dsigma - 1),
                        },
                        &io,
                    )
                    .expect("apply");
                }
                d.commit().expect("commit")
            });
            let bench = format!("durability/group_commit_b{b}");
            // Per-op cost; spread is scale-invariant so the batch's
            // relative noise carries over unchanged.
            let ns = m_batch.ns / b as f64;
            println!("{bench:<40} {ns:>14.1} ns/iter");
            results.push(JsonResult {
                bench,
                ns_per_iter: ns,
                spread: m_batch.spread,
                ..Default::default()
            });
        }

        // Incremental checkpoint of a sparse dirty set (2 of 64 extents)
        // vs a full rewrite of the same volume. `file_bytes` records the
        // bytes each variant writes per checkpoint, so the gap is
        // diffable alongside the latency.
        let farm_path = root.join("farm.ck");
        let mut farm = crate::farm_build(64, 2000);
        let (mut cp, created) =
            psi_store::CheckpointFile::create(&farm_path, &farm, &[], 1).expect("farm create");
        let mut salt = 0u64;
        let mut inc_bytes = 0u64;
        let m_inc = measure(|| {
            salt = salt.wrapping_add(0x9E37_79B9);
            crate::farm_rewrite(&mut farm, 3, salt);
            crate::farm_rewrite(&mut farm, 40, salt ^ 0x5555);
            let report = cp.update(&farm, &[]).expect("farm update");
            // Dead space from relocation compacts every ~32 rounds; the
            // steady-state incremental cost is the minimum.
            if !report.compacted {
                inc_bytes = if inc_bytes == 0 {
                    report.bytes_written
                } else {
                    inc_bytes.min(report.bytes_written)
                };
            }
            report.bytes_written
        });
        println!(
            "{:<40} {:>14.1} ns/iter",
            "durability/checkpoint_incremental_2of64", m_inc.ns
        );
        results.push(JsonResult {
            bench: "durability/checkpoint_incremental_2of64".into(),
            ns_per_iter: m_inc.ns,
            spread: m_inc.spread,
            file_bytes: inc_bytes,
            ..Default::default()
        });
        let full_path = root.join("farm_full.ck");
        let mut full_bytes = created.bytes_written;
        let m_full = measure(|| {
            let (_, report) = psi_store::CheckpointFile::create(&full_path, &farm, &[], 1)
                .expect("farm full create");
            full_bytes = report.bytes_written;
            full_bytes
        });
        assert!(
            inc_bytes * 4 < full_bytes,
            "sparse checkpoint must write a fraction of the full save"
        );
        println!(
            "{:<40} {:>14.1} ns/iter",
            "durability/checkpoint_full_save", m_full.ns
        );
        results.push(JsonResult {
            bench: "durability/checkpoint_full_save".into(),
            ns_per_iter: m_full.ns,
            spread: m_full.spread,
            file_bytes: full_bytes,
            ..Default::default()
        });

        // Recovery: checkpoint-only open vs a 1000-op committed tail.
        let n = 1usize << 13;
        let s = psi_workloads::zipf(n, dsigma, 1.1, 77);
        for tail in [0usize, 1000] {
            let dir = root.join(format!("recover_t{tail}"));
            let idx = psi_core::FullyDynamicIndex::build(&s, dsigma, IoConfig::default());
            let mut d =
                Durable::create(&dir, idx, DurableOptions::default()).expect("create durable");
            for k in 0..tail {
                d.apply(
                    &MutOp::Change {
                        pos: ((k * 48_271) % n) as u64,
                        symbol: (k as u32).wrapping_mul(69_621) >> 7 & (dsigma - 1),
                    },
                    &io,
                )
                .expect("apply");
            }
            d.commit().expect("commit");
            drop(d);
            let m = measure(|| {
                let (rd, report) =
                    recover::<psi_core::FullyDynamicIndex>(&dir, DurableOptions::default())
                        .expect("recover");
                assert_eq!(report.replayed, tail);
                drop(rd);
                report.epoch
            });
            let bench = format!("durability/recover_tail_{tail}");
            println!("{bench:<40} {:>14.1} ns/iter", m.ns);
            results.push(JsonResult {
                bench,
                ns_per_iter: m.ns,
                spread: m.spread,
                ..Default::default()
            });
        }
    }

    // --- read faults (E17): verified-fetch cold cost vs raw, and the
    // degraded (quarantined, table-scan fallback) conjunctive plan vs
    // healthy and rebuilt. Cold rows follow the E15 single-pass
    // discipline (a cold pool cannot be re-measured); the plan rows are
    // measure()d steady state.
    {
        use psi_query::{IndexedColumn, IndexedTable, Predicate};
        use psi_store::{open, save, Backend, OpenOptions};

        let root = std::env::temp_dir().join("psi_bench_json_read_faults");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("bench read-faults dir");
        let rn = 1usize << 15;
        let rsigma = 256u32;
        let s = psi_workloads::zipf(rn, rsigma, 1.0, 21);
        let idx = psi_core::OptimalIndex::build(&s, rsigma, IoConfig::default());
        let path = root.join("verified.psi");
        save(&idx, &path).expect("save optimal");
        let queries: Vec<(u32, u32)> = (0..16).map(|i| (i * 16, i * 16 + 15)).collect();
        let mut fetch_counts = Vec::new();
        for (mode, verify) in [("raw", false), ("verified", true)] {
            let opened = open::<psi_core::OptimalIndex>(
                &path,
                &OpenOptions {
                    backend: Backend::File,
                    pool_blocks: 1 << 16,
                    retry: None,
                    verify,
                },
            )
            .expect("open optimal");
            let start = std::time::Instant::now();
            for &(lo, hi) in &queries {
                let io = IoSession::new();
                let _ = opened.index.query(lo, hi, &io);
            }
            let blocks = opened.real_fetches();
            let cold_ns = start.elapsed().as_nanos() as f64 / blocks as f64;
            fetch_counts.push(blocks);
            let bench = format!("read_faults/cold_block_{mode}");
            println!("{bench:<40} {cold_ns:>14.1} ns/iter ({blocks} real reads)");
            results.push(JsonResult {
                bench,
                ns_per_iter: cold_ns,
                real_reads: blocks,
                ..Default::default()
            });
        }
        assert_eq!(
            fetch_counts[0], fetch_counts[1],
            "verification must not change cold fetch counts"
        );

        // Healthy plan, degraded plan (age column corrupted on disk,
        // quarantined at first touch), and the rebuilt plan.
        let table = psi_workloads::people_table(2_000, 7);
        let predicate = Predicate::and([
            Predicate::point("marital_status", 1),
            Predicate::point("sex", 0),
            Predicate::range("age", 30, 35),
        ]);
        let want = predicate.naive_rows(&table);
        let healthy = IndexedTable::build(&table, |sy, g| {
            Box::new(psi_core::OptimalIndex::build(sy, g, IoConfig::default()))
                as Box<dyn SecondaryIndex>
        });
        for col in &table.columns {
            save(
                &psi_core::OptimalIndex::build(&col.data, col.sigma, IoConfig::default()),
                root.join(format!("col_{}.psi", col.name)),
            )
            .expect("save column");
        }
        crate::corrupt_store_payload(&root.join("col_age.psi"));
        let columns = table
            .columns
            .iter()
            .map(|col| IndexedColumn {
                name: col.name.clone(),
                sigma: col.sigma,
                index: Box::new(
                    open::<psi_core::OptimalIndex>(
                        &root.join(format!("col_{}.psi", col.name)),
                        &OpenOptions {
                            backend: Backend::File,
                            pool_blocks: 1 << 14,
                            retry: None,
                            verify: true,
                        },
                    )
                    .expect("open column")
                    .index,
                ) as Box<dyn SecondaryIndex>,
            })
            .collect();
        let mut degraded = IndexedTable::from_columns(columns);
        for col in &table.columns {
            degraded
                .attach_column_data(&col.name, col.data.clone())
                .expect("attach source");
        }
        let tripped = degraded.execute(&predicate).expect("degraded execute");
        assert_eq!(tripped.rows.to_vec(), want, "degraded rows must stay exact");
        assert!(
            !tripped.degraded.is_empty(),
            "corrupted column must degrade the plan"
        );
        let mut plan_row = |label: &str, t: &IndexedTable| {
            let m = measure(|| t.execute(&predicate).expect("execute").io.reads);
            let out = t.execute(&predicate).expect("execute");
            assert_eq!(out.rows.to_vec(), want, "{label} rows must stay exact");
            let bench = format!("read_faults/conjunctive_{label}");
            println!(
                "{bench:<40} {:>14.1} ns/iter ({} io reads)",
                m.ns, out.io.reads
            );
            results.push(JsonResult {
                bench,
                ns_per_iter: m.ns,
                spread: m.spread,
                ..Default::default()
            });
        };
        plan_row("healthy", &healthy);
        plan_row("degraded", &degraded);
        degraded
            .rebuild_attribute("age", |sy, g| {
                Box::new(psi_core::OptimalIndex::build(sy, g, IoConfig::default()))
                    as Box<dyn SecondaryIndex>
            })
            .expect("rebuild");
        plan_row("rebuilt", &degraded);
    }

    // --- serve (E18): open-loop completion-latency percentiles and shed
    // rate against a live server. Single-run tail order statistics are
    // noisy; `compare` holds the p999/shed rows to its wider TAIL bar.
    results.extend(crate::e18());

    // --- observability (E19): instrumented-vs-stripped serve throughput
    // and tails, plus the WAL's group-commit histograms. The `obs/*`
    // latency-percentile rows are likewise held to the TAIL bar.
    results.extend(crate::e19());

    // --- kernels (E20): the decode-chain and block-skip kernels vs
    // their forced references, with the correctness gates inline.
    results.extend(crate::e20());

    results
}

/// The save+size surface the footprint rows need, object-safe over the
/// concrete families.
trait StoreBench {
    fn save_to(&self, path: &std::path::Path) -> u64;
    fn space(&self) -> u64;
}

impl<I: psi_store::PersistIndex + SecondaryIndex> StoreBench for I {
    fn save_to(&self, path: &std::path::Path) -> u64 {
        psi_store::save(self, path).expect("save").file_bytes
    }

    fn space(&self) -> u64 {
        self.space_bits()
    }
}

/// Serializes rows to the `psi-bench/1` JSON schema.
pub fn to_json(results: &[JsonResult]) -> String {
    let mut s = String::from("{\n  \"schema\": \"psi-bench/1\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let mut extras = String::new();
        if r.elements > 0 {
            extras.push_str(&format!(
                ", \"per_element_ns\": {:.2}",
                r.ns_per_iter / r.elements as f64
            ));
        }
        if r.space_bits > 0 {
            extras.push_str(&format!(", \"space_bits\": {}", r.space_bits));
        }
        if r.file_bytes > 0 {
            extras.push_str(&format!(", \"file_bytes\": {}", r.file_bytes));
        }
        if r.qps > 0.0 {
            extras.push_str(&format!(", \"qps\": {:.1}", r.qps));
        }
        if r.real_reads > 0 {
            extras.push_str(&format!(", \"real_reads\": {}", r.real_reads));
        }
        if r.spread > 0.0 {
            extras.push_str(&format!(", \"spread\": {:.3}", r.spread));
        }
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"ns_per_iter\": {:.1}{}}}{}\n",
            r.bench,
            r.ns_per_iter,
            extras,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// First unused `BENCH_NNNN.json` name in the current directory.
pub fn next_bench_path() -> String {
    for i in 1..10_000 {
        let candidate = format!("BENCH_{i:04}.json");
        if !std::path::Path::new(&candidate).exists() {
            return candidate;
        }
    }
    "BENCH_overflow.json".to_string()
}

/// Writes an arbitrary result set as a `psi-bench/1` snapshot (used by
/// `all_experiments --json` and the `e18_serve` latency run).
pub fn write_snapshot(path: &str, results: &[JsonResult]) {
    let json = to_json(results);
    let mut f = std::fs::File::create(path).expect("create bench json");
    f.write_all(json.as_bytes()).expect("write bench json");
    println!("\nwrote {} results to {path}", results.len());
}

/// Entry point for `all_experiments --json [PATH]`.
pub fn emit_json(path: Option<String>) {
    let results = run_microbenches();
    let path = path.unwrap_or_else(next_bench_path);
    write_snapshot(&path, &results);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable() {
        let rows = vec![
            JsonResult {
                bench: "decode/x".into(),
                ns_per_iter: 123.45,
                elements: 100,
                ..Default::default()
            },
            JsonResult {
                bench: "query/y".into(),
                ns_per_iter: 6.0,
                space_bits: 4096,
                file_bytes: 812,
                ..Default::default()
            },
            JsonResult {
                bench: "concurrent/qps_z_t8".into(),
                ns_per_iter: 2000.0,
                qps: 500_000.0,
                real_reads: 42,
                ..Default::default()
            },
        ];
        let s = to_json(&rows);
        assert!(s.contains("\"schema\": \"psi-bench/1\""));
        assert!(
            s.contains("\"bench\": \"decode/x\", \"ns_per_iter\": 123.5, \"per_element_ns\": 1.23")
        );
        assert!(s.contains(
            "\"bench\": \"query/y\", \"ns_per_iter\": 6.0, \"space_bits\": 4096, \"file_bytes\": 812}"
        ));
        assert!(s.contains("\"qps\": 500000.0, \"real_reads\": 42}"));
        // Balanced braces/brackets; trailing comma rules respected.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        assert!(!s.contains("},\n  ]"));
    }
}
