fn main() {
    psi_bench::e09();
}
