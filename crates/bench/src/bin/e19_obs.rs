//! E19 — observability overhead gate.
//!
//! The full run serves the E18 workload twice in one process —
//! metrics recording on (the shipped default) vs. off via
//! `psi_obs::set_enabled` — and prints closed-loop QPS plus open-loop
//! p50/p99 for each arm, then the WAL's group-commit batch-size and
//! fsync-latency histograms from a durable-write run. The run *asserts*
//! the instrumented arm stays within 20% of stripped throughput, so
//! `--smoke` doubles as the CI overhead gate. The machine-readable
//! `obs/*` rows land in `BENCH_NNNN.json` via `all_experiments --json`;
//! `compare_bench` diffs the histogram-derived rows at its wider TAIL
//! bar.

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("--smoke") => {
            // Enough requests per arm (2000) that scheduler noise stays
            // well inside the 20% gate.
            psi_bench::e19_run(800, 2_000, 1.0);
        }
        Some(other) => {
            eprintln!("unknown argument `{other}`; usage: e19_obs [--smoke]");
            std::process::exit(2);
        }
        None => {
            psi_bench::e19();
        }
    }
}
