fn main() {
    psi_bench::e02();
}
