fn main() {
    psi_bench::e03();
}
