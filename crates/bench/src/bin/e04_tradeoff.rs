fn main() {
    psi_bench::e04();
}
