//! E18 — psi-serve open-loop tail latency.
//!
//! The full run drives Poisson arrivals at three offered rates against a
//! live server and prints the p50/p99/p999 + shed-rate table; `--smoke`
//! is the CI-sized run (one low rate, one second). The machine-readable
//! `serve/open_loop/*` rows land in `BENCH_NNNN.json` via
//! `all_experiments --json`, alongside the rest of the perf-trajectory
//! suite, so `compare_bench` diffs them against the checked-in baseline.

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("--smoke") => {
            psi_bench::e18_run(800, &[500], 1.0);
        }
        Some(other) => {
            eprintln!("unknown argument `{other}`; usage: e18_serve [--smoke]");
            std::process::exit(2);
        }
        None => {
            psi_bench::e18();
        }
    }
}
