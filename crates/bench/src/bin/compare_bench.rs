//! `compare_bench [BEFORE.json] AFTER.json [--strict]` — diff two
//! `BENCH_NNNN.json` snapshots and flag >15% regressions (report-only
//! unless `--strict`). With a single file, the baseline is the
//! highest-numbered `BENCH_NNNN.json` in the current directory (the
//! latest checked-in snapshot), so CI never hard-codes a snapshot name.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--strict");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let (before, after) = match files[..] {
        [before, after] => (before.clone(), after.clone()),
        [after] => {
            let Some(baseline) =
                psi_bench::compare::latest_snapshot(std::path::Path::new("."), Some(after))
            else {
                eprintln!("no BENCH_NNNN.json baseline found in the current directory");
                std::process::exit(2);
            };
            (baseline.display().to_string(), after.clone())
        }
        _ => {
            eprintln!("usage: compare_bench [BEFORE.json] AFTER.json [--strict]");
            std::process::exit(2);
        }
    };
    std::process::exit(psi_bench::compare::run(&before, &after, strict));
}
