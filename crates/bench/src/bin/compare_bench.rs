//! `compare_bench BEFORE.json AFTER.json [--strict]` — diff two
//! `BENCH_NNNN.json` snapshots and flag >15% regressions (report-only
//! unless `--strict`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--strict");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [before, after] = files[..] else {
        eprintln!("usage: compare_bench BEFORE.json AFTER.json [--strict]");
        std::process::exit(2);
    };
    std::process::exit(psi_bench::compare::run(before, after, strict));
}
