fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("--smoke") => psi_bench::e17_run(1 << 13, 800),
        Some(other) => {
            eprintln!("unknown argument `{other}`; usage: e17_read_faults [--smoke]");
            std::process::exit(2);
        }
        None => psi_bench::e17(),
    }
}
