fn main() {
    psi_bench::e08();
}
