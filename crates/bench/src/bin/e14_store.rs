fn main() {
    psi_bench::e14();
}
