fn main() {
    psi_bench::e06();
}
