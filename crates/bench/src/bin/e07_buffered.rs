fn main() {
    psi_bench::e07();
}
