fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        // CI smoke mode: `--threads N` caps the sweep (powers of two up
        // to N), keeping the job short on small runners.
        Some("--threads") => {
            let max: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("usage: e15_concurrent [--threads N]");
                std::process::exit(2);
            });
            let sweep: Vec<usize> = (0..)
                .map(|i| 1usize << i)
                .take_while(|&t| t <= max.max(1))
                .collect();
            psi_bench::e15_sweep(&sweep);
        }
        Some(other) => {
            eprintln!("unknown argument `{other}`; usage: e15_concurrent [--threads N]");
            std::process::exit(2);
        }
        None => psi_bench::e15(),
    }
}
