fn main() {
    psi_bench::e11();
}
