fn main() {
    psi_bench::e05();
}
