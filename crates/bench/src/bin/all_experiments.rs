fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("--json") => psi_bench::jsonout::emit_json(args.next()),
        Some(other) => {
            eprintln!("unknown argument `{other}`; usage: all_experiments [--json [PATH]]");
            std::process::exit(2);
        }
        None => psi_bench::all(),
    }
}
