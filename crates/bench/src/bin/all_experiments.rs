fn main() {
    psi_bench::all();
}
