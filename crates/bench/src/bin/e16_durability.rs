fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        // CI smoke mode: a short workload and reduced grids, keeping the
        // durability job fast on small runners.
        Some("--smoke") => psi_bench::e16_run(800, &[1, 64], &[0, 400]),
        Some(other) => {
            eprintln!("unknown argument `{other}`; usage: e16_durability [--smoke]");
            std::process::exit(2);
        }
        None => psi_bench::e16(),
    }
}
