fn main() {
    psi_bench::e01();
}
